#pragma once
/// \file health.hpp
/// \brief Heartbeat-based slot health detection, shared between the
/// resilience controller and the serving front-end.
///
/// One HealthMonitor probes a fixed slot set against a PlatformSimulator
/// at a caller-driven cadence: a slot that misses `miss_threshold`
/// consecutive probes is declared down and stays down until either an
/// external restart is reported (mark_up — the resilience controller sees
/// module-restart fault events) or a probe finds it answering again
/// (auto-recovery, reported as a `recovered` beat — how the serving layer
/// closes a circuit breaker after a restart it cannot observe directly).

#include <map>
#include <set>
#include <string>
#include <vector>

namespace vedliot::platform {

class PlatformSimulator;

struct HealthConfig {
  int miss_threshold = 3;  ///< consecutive missed probes -> declared down
};

/// One noteworthy probe outcome. Beats are only emitted for state-relevant
/// probes: each missed heartbeat (with the running miss count), the miss
/// that crosses the threshold (`declared_down`), and a previously-down
/// slot answering again (`recovered`).
struct HealthBeat {
  std::string slot;
  int misses = 0;
  bool declared_down = false;  ///< this miss crossed the threshold
  bool recovered = false;      ///< down slot answered again
};

class HealthMonitor {
 public:
  HealthMonitor(std::vector<std::string> slots, HealthConfig config);

  /// One probe round: query sim.alive for every monitored slot, in slot
  /// order. Healthy slots reset their miss counter silently; down slots
  /// are only probed for recovery.
  std::vector<HealthBeat> tick(const PlatformSimulator& sim);

  bool down(const std::string& slot) const { return down_.count(slot) > 0; }
  const std::set<std::string>& down_slots() const { return down_; }

  /// External recovery notification (e.g. a module-restart fault event):
  /// clears the down mark and the miss counter so probing resumes.
  void mark_up(const std::string& slot);

 private:
  std::vector<std::string> slots_;
  HealthConfig cfg_;
  std::map<std::string, int> misses_;
  std::set<std::string> down_;
};

}  // namespace vedliot::platform
