#pragma once
/// \file microserver.hpp
/// \brief Computer-on-Module microservers and form factors (Fig. 2).

#include <string>
#include <vector>

#include "hw/device.hpp"

namespace vedliot::platform {

/// COM form factors supported across the RECS family (Fig. 2) plus the
/// extension-slot standards uRECS exposes.
enum class FormFactor {
  kCOMExpress,
  kCOMHPCServer,
  kCOMHPCClient,
  kSMARC,
  kJetsonNX,
  kKriaSOM,     ///< via adaptor PCB on uRECS
  kRPiCM,       ///< via adaptor PCB on uRECS
  kPCIe,        ///< full-size add-in card (t.RECS)
  kM2,          ///< uRECS extension slot
  kUSB,         ///< uRECS extension slot
};

std::string_view form_factor_name(FormFactor f);

/// A pluggable microserver/accelerator module.
struct MicroserverModule {
  std::string name;
  FormFactor form = FormFactor::kCOMExpress;
  std::string device;       ///< hw catalog entry providing the compute model
  double max_power_w = 0;   ///< module power envelope

  const hw::DeviceSpec& device_spec() const { return hw::find_device(device); }
};

/// Catalog of modules used throughout the project's examples and benches.
const std::vector<MicroserverModule>& module_catalog();

/// Look up a module by name; throws NotFound.
const MicroserverModule& find_module(const std::string& name);

}  // namespace vedliot::platform
