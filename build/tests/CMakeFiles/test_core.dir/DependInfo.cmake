
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/test_core.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vedliot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/safety/CMakeFiles/vedliot_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/reqs/CMakeFiles/vedliot_reqs.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/vedliot_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/vedliot_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/kenning/CMakeFiles/vedliot_kenning.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/vedliot_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vedliot_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/vedliot_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vedliot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vedliot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vedliot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/vedliot_security.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vedliot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
