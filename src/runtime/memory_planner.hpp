#pragma once
/// \file memory_planner.hpp
/// \brief Liveness-based activation memory planner.
///
/// Implements the "in-depth study of how memory is utilized in current
/// accelerators" substrate (Sec. II-B): given a graph and an execution
/// order, compute per-tensor lifetimes and pack activation buffers into a
/// single arena with a greedy best-fit algorithm. Benchmarked against the
/// naive sum-of-all-tensors allocation in bench_runtime.

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "tensor/dtype.hpp"

namespace vedliot {

/// One planned buffer within the arena.
struct BufferPlan {
  NodeId node = -1;
  std::int64_t offset = 0;   ///< byte offset within the arena
  std::int64_t size = 0;     ///< byte size
  std::size_t first_use = 0; ///< step index producing the tensor
  std::size_t last_use = 0;  ///< last step reading it
};

struct MemoryPlan {
  std::vector<BufferPlan> buffers;
  std::int64_t arena_bytes = 0;  ///< peak with reuse
  std::int64_t naive_bytes = 0;  ///< sum of all buffers (no reuse)

  double reuse_factor() const {
    return arena_bytes > 0 ? static_cast<double>(naive_bytes) / static_cast<double>(arena_bytes)
                           : 1.0;
  }
};

/// Plan activation memory for executing \p g in topological order at the
/// given activation dtype. Graph inputs are planned too (they must live in
/// the arena until their last consumer).
MemoryPlan plan_memory(const Graph& g, DType act_dtype, std::int64_t alignment = 64);

/// Plan against an explicit execution order (must be a valid topological
/// order over exactly the live nodes; checked).
MemoryPlan plan_memory_with_order(const Graph& g, std::span<const NodeId> order, DType act_dtype,
                                  std::int64_t alignment = 64);

/// A memory-aware execution order: greedy Kahn scheduling that prefers
/// ready nodes which free more input bytes than they allocate — shrinking
/// the peak live set on branchy graphs (residual blocks, multi-head necks)
/// before the arena packer even runs.
std::vector<NodeId> memory_aware_order(const Graph& g, DType act_dtype);

/// Verify the invariant that no two lifetime-overlapping buffers overlap in
/// address range; returns true when the plan is consistent.
bool plan_is_valid(const MemoryPlan& plan);

}  // namespace vedliot
