file(REMOVE_RECURSE
  "libvedliot_sim.a"
)
