#include "util/hash.hpp"

#include <array>

namespace vedliot::util {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::span<const float> data, std::uint32_t seed) {
  const auto* raw = reinterpret_cast<const std::uint8_t*>(data.data());
  return crc32(std::span<const std::uint8_t>(raw, data.size() * sizeof(float)), seed);
}

std::uint64_t fnv1a64(std::string_view s, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace vedliot::util
