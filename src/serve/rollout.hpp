#pragma once
/// \file rollout.hpp
/// \brief Fleet-wide OTA rollout: staged canary waves over a lossy fabric,
/// per-wave health gates, halt-and-rollback with token-bucketed pacing.
///
/// The RolloutController turns the single-node ModelStore OTA machinery
/// (safety/model_store.hpp) plus the chunked resumable transport
/// (safety/ota_transport.hpp) into a fleet capability. One controller
/// drives a swarm of simulated devices — each a slot on a
/// platform::PlatformSimulator with its own persistent ModelStore — through
/// the rollout state machine (DESIGN.md §14):
///
///   idle -> transferring -> staged -> canary/wave-N gate
///        -> committed            (every wave passed its health gate)
///        -> rolled-back          (a gate tripped: halt + paced rollback)
///
///  * transport: chunks stream hub -> device over the simulator's fabric;
///    seeded transient damage, duplication and reordering (kPacketDup /
///    kPacketReorder) are tolerated per OtaReceiver semantics; device
///    crashes and link partitions pause the transfer, which resumes from
///    the last good chunk when the platform heals (faults are first-class
///    wakeups, as in the PR 5 serve loop);
///  * waves: the first `canary_devices` devices form the canary wave;
///    each following wave grows by `wave_growth`. A wave's health gate
///    waits for every member to reach a terminal transfer state and for
///    heartbeats to be green, then demands (a) the ModelStore canary
///    verdict was kCommitted and (b) the device's serve CRC matches the
///    release manifest. A failure fraction above `failure_threshold`
///    halts the rollout;
///  * rollback-storm containment: a halt rolls every already-committed
///    device back — paced by a token bucket (`rollback_rate_per_s`,
///    `rollback_burst`) so a bad package cannot stampede the fabric with
///    simultaneous full-package restores;
///  * version skew: mid-rollout the fleet is split across versions. Every
///    control tick each live device answers a canary probe through the
///    version-aware ResponseCache; a cached answer only hits for devices
///    on the version that produced it, and every hit is CRC-rechecked
///    against the device's own serving CRC.
///
/// Every decision is a ServeEvent mirrored 1:1 into the optional tracer
/// ("vedliot.serve" instants) and metrics registry, the same contract the
/// chaos/fleet/integrity soaks assert.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/faults.hpp"
#include "safety/model_store.hpp"
#include "safety/ota_transport.hpp"
#include "serve/cache.hpp"
#include "serve/server.hpp"

namespace vedliot::serve {

struct RolloutConfig {
  std::vector<std::string> devices;  ///< slots of the simulator's chassis
  std::string hub = "switch0";       ///< fabric node packages stream from
  std::string model_name = "model";  ///< ModelStore entry name on devices

  std::size_t canary_devices = 1;    ///< wave 0 size (>= 1)
  double wave_growth = 2.0;          ///< wave k size = ceil(prev * growth)
  double failure_threshold = 0.25;   ///< strictly-greater fraction halts

  double control_period_s = 5e-3;    ///< probe / gate / pacing tick

  double rollback_rate_per_s = 50.0; ///< token-bucket refill
  double rollback_burst = 2.0;       ///< token-bucket capacity

  std::size_t chunk_bytes = 2048;
  safety::OtaSender::Config sender;  ///< window / attempt cap / backoff

  std::uint64_t canary_seed = 0xCAA1Bull;  ///< serve-probe stimulus seed
  std::size_t cache_capacity = 64;

  std::uint64_t seed = 0x5EEDu;

  obs::Tracer* trace = nullptr;            ///< 1:1 event mirror when set
  obs::MetricsRegistry* metrics = nullptr; ///< vedliot.serve.* when set
};

/// Terminal state of one device after the rollout.
struct DeviceOutcome {
  std::string slot;
  std::uint32_t version = 1;     ///< serving version at the end of the run
  std::uint32_t serve_crc = 0;   ///< CRC-32 of its canary output
  bool committed = false;        ///< reached the target version at some point
  bool rolled_back = false;
  bool transfer_failed = false;  ///< sender exhausted its attempt budget
  std::size_t resumes = 0;
};

struct RolloutReport {
  std::vector<ServeEvent> events;

  std::size_t devices_total = 0;
  std::size_t devices_committed = 0;   ///< on the target version at the end
  std::size_t devices_rejected = 0;    ///< ModelStore refused the package
  std::size_t devices_rolled_back = 0;
  std::size_t devices_failed = 0;      ///< transfer never completed
  std::vector<DeviceOutcome> outcomes; ///< per device, config order

  std::size_t waves_started = 0;
  std::size_t waves_passed = 0;
  bool halted = false;       ///< a health gate tripped
  bool converged = false;    ///< terminal state reached within the run
  double converged_at_s = 0;

  std::size_t chunks_sent = 0;      ///< wire messages (incl. retries)
  std::size_t chunks_accepted = 0;  ///< distinct chunks landed
  std::size_t chunk_retries = 0;
  std::size_t duplicates = 0;       ///< duplicated deliveries deduped
  std::size_t reorders = 0;         ///< out-of-order deliveries tolerated
  std::size_t resumes = 0;          ///< transfers resumed after interruption
  std::uint64_t bytes_sent = 0;
  std::size_t rollbacks_paced = 0;  ///< pacing waits the token bucket forced

  std::size_t skew_probes = 0;        ///< serve probes during the rollout
  std::size_t skew_cache_hits = 0;    ///< probes answered from the cache
  std::size_t skew_version_misses = 0;///< cache present-but-wrong-version
  std::size_t skew_mismatches = 0;    ///< CRC recheck failures (must be 0)
  std::size_t torn_serves = 0;        ///< devices caught serving an
                                      ///< unverifiable package (must be 0)

  /// (time, committed-device count) samples, one per change: the rollout
  /// progress curve the soak checks for monotonicity.
  std::vector<std::pair<double, std::size_t>> progress;

  /// Deterministic JSON summary (events included): bitwise-identical for
  /// identical seeds — the soak's determinism check compares these.
  std::string to_json() const;
};

/// Drives one fleet-wide OTA rollout over a PlatformSimulator. One-shot:
/// configure, set_baseline + set_target, then run() once.
class RolloutController {
 public:
  RolloutController(platform::PlatformSimulator& sim, RolloutConfig config);
  ~RolloutController();

  /// Install version 1 of the model on every device (their golden
  /// baseline) and record its manifest serve CRC. Call before run().
  void set_baseline(const Graph& v1);

  /// The update to distribute plus the release manifest's expected serve
  /// CRC: the CRC-32 of the canary output the *intended* target graph
  /// produces. A package whose committed devices serve a different CRC is
  /// exactly a "bad package" — internally consistent, wrong content.
  void set_target(safety::OtaPackage update, std::uint32_t manifest_serve_crc);

  /// CRC-32 of the canary output \p g produces for \p canary_seed — the
  /// serve fingerprint devices and manifests pin versions with.
  static std::uint32_t serve_crc_of(const Graph& g, std::uint64_t canary_seed);

  /// Drive the rollout for at most \p duration_s of simulated time.
  RolloutReport run(double duration_s);

 private:
  enum class Phase {
    kIdle,          ///< not yet in an active wave
    kTransferring,  ///< chunks streaming
    kPaused,        ///< crashed / partitioned; receiver state retained
    kCommitted,     ///< store swapped to the target version
    kRejected,      ///< store refused the package
    kFailed,        ///< sender exhausted its attempt budget
    kRolledBack,    ///< reverted to the baseline after a halt
  };

  struct Device {
    std::string slot;
    /// Per-device persistent flash (by pointer: the store owns a mutex and
    /// is neither movable nor copyable, but devices live in a vector).
    std::unique_ptr<safety::ModelStore> store;
    std::uint32_t serving_version = 1;
    std::uint32_t serve_crc = 0;
    Phase phase = Phase::kIdle;
    double next_action_s = 0;  ///< only meaningful while kTransferring
    std::size_t wave = 0;
    std::unique_ptr<safety::OtaReceiver> receiver;  ///< the resume journal
    std::unique_ptr<safety::OtaSender> sender;
    std::size_t resumes = 0;
    bool ever_committed = false;  ///< reached the target before any rollback
  };

  void log(double t, ServeEventKind kind, const std::string& subject,
           const std::string& detail, double value = 0);
  bool reachable(const Device& d) const;
  void start_wave(double t);
  void start_transfer(double t, Device& d, std::size_t index);
  void step_transfer(double t, Device& d);
  void stage_and_push(double t, Device& d);
  void wake_paused(double t);
  void control_tick(double t);
  void probe_devices(double t);
  bool wave_settled() const;
  void gate_wave(double t);
  void begin_halt(double t, double fraction, const std::string& why);
  void pump_rollbacks(double t);
  void finish(double t, std::uint32_t final_version, const std::string& detail);
  void sample_progress(double t);
  std::uint32_t target_serve_crc(Device& d);

  platform::PlatformSimulator& sim_;
  RolloutConfig cfg_;
  Rng rng_;

  std::vector<Device> devices_;
  safety::OtaPackage target_;
  std::unique_ptr<safety::OtaChunker> chunker_;
  std::uint32_t manifest_crc_ = 0;   ///< expected serve CRC on the target
  std::uint32_t baseline_crc_ = 0;   ///< serve CRC of version 1
  std::optional<std::uint32_t> target_actual_crc_;  ///< first committed device's CRC
  bool baseline_set_ = false;
  bool target_set_ = false;

  std::size_t wave_index_ = 0;
  std::size_t wave_begin_ = 0;  ///< device index range of the active wave
  std::size_t wave_end_ = 0;
  std::size_t last_wave_size_ = 0;
  bool wave_active_ = false;

  bool halting_ = false;
  std::vector<std::size_t> rollback_queue_;  ///< device indices, FIFO
  double rollback_tokens_ = 0;
  double rollback_refill_t_ = 0;
  double rollback_ready_s_ = 0;  ///< next time the bucket can pay a token
  bool pacing_logged_ = false;

  ResponseCache cache_;
  double next_control_s_ = 0;
  bool done_ = false;

  RolloutReport report_;
  bool ran_ = false;
};

}  // namespace vedliot::serve
