# Empty compiler generated dependencies file for bench_paeb_offload.
# This may be replaced when dependencies are built.
