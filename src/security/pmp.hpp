#pragma once
/// \file pmp.hpp
/// \brief RISC-V Physical Memory Protection unit (Sec. IV-C): the VexRiscv
/// TEE contribution. Models the standard pmpcfg/pmpaddr semantics for
/// TOR (top-of-range) and NAPOT regions with M-mode/U-mode privilege
/// handling and the lock bit.

#include <cstdint>
#include <optional>
#include <vector>

namespace vedliot::security {

enum class Privilege { kMachine, kUser };

enum class Access { kRead, kWrite, kExecute };

enum class AddressMatch : std::uint8_t {
  kOff = 0,
  kTor = 1,    ///< region is [previous pmpaddr, this pmpaddr)
  kNapot = 3,  ///< naturally aligned power-of-two, encoded in the address
};

struct PmpEntry {
  AddressMatch mode = AddressMatch::kOff;
  bool r = false, w = false, x = false;
  bool locked = false;          ///< also enforces the entry against M-mode
  std::uint32_t addr = 0;       ///< pmpaddr register (word-granular, as in the spec)
};

/// PMP with a configurable number of entries (VexRiscv builds 0..16).
class PmpUnit {
 public:
  explicit PmpUnit(std::size_t entries = 16);

  std::size_t entry_count() const { return entries_.size(); }

  /// Program one entry; throws InvalidArgument on bad index or when trying
  /// to modify a locked entry (locked entries are immutable until reset).
  void configure(std::size_t index, const PmpEntry& entry);

  const PmpEntry& entry(std::size_t index) const;

  /// Clear all entries (hardware reset).
  void reset();

  /// The architectural check: first matching entry (lowest index) decides.
  /// M-mode accesses are allowed when no matching entry is locked; U-mode
  /// accesses with no matching entry are denied (spec behaviour when any
  /// PMP entry is implemented).
  bool check(std::uint32_t byte_addr, Access access, Privilege priv) const;

  /// Index of the matching entry, if any (introspection/debug).
  std::optional<std::size_t> match(std::uint32_t byte_addr) const;

 private:
  bool entry_matches(std::size_t index, std::uint32_t word_addr) const;
  std::vector<PmpEntry> entries_;
};

/// Helper: encode a NAPOT region (base, size) into a pmpaddr value.
/// size must be a power of two >= 8 bytes and base size-aligned.
std::uint32_t napot_encode(std::uint32_t base, std::uint32_t size);

}  // namespace vedliot::security
