# Empty dependencies file for bench_twine.
# This may be replaced when dependencies are built.
