#pragma once
/// \file session.hpp
/// \brief Unified run-session API over the runtime backends.
///
/// A Session is the one way application code runs inference: the float
/// reference executor and the true-integer INT8 executor sit behind the
/// same interface, and every run can be observed through the vedliot::obs
/// tracing/metrics sinks passed in RunOptions. Execution-resource knobs
/// (batch cap, thread count) travel as one runtime::ExecConfig so serving
/// controllers — the brownout ladder, the fleet batcher — adjust a live
/// session without rebuilding it.
///
///   obs::Tracer tracer;
///   obs::MetricsRegistry metrics;
///   runtime::RunOptions opts;
///   opts.trace = &tracer;
///   opts.metrics = &metrics;
///   auto session = runtime::make_session(graph, opts);
///   Tensor y = session->run_single(x);
///   obs::write_chrome_trace("trace.json", tracer.spans());

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/exec_config.hpp"
#include "tensor/tensor.hpp"

namespace vedliot::runtime {

/// Per-session knobs; the sink pointers may be null and must outlive the
/// session when set.
struct RunOptions {
  obs::Tracer* trace = nullptr;            ///< span sink for run/node spans
  obs::MetricsRegistry* metrics = nullptr; ///< counter/histogram sink

  /// Keep intermediate activations addressable after run() (float backend
  /// only; needed for quantization calibration). Off by default: serving
  /// sessions should not retain a full activation set per run.
  bool keep_activations = false;

  /// Execution-resource knobs (admission batch cap + intra-op threads).
  /// The one copy; serving-side rung caps reference the same struct.
  ExecConfig exec = {};

  /// Execute Conv2D as im2col + cache-blocked GEMM (default) or fall back
  /// to the direct loop nest (the numerical reference / perf baseline).
  bool use_gemm_conv = true;

  /// Place intermediate activations in one planner-packed arena slab
  /// (float backend; ignored while keep_activations is set).
  bool arena = true;
};

/// What one Session::run produced.
struct RunResult {
  std::map<std::string, Tensor> outputs;  ///< keyed by output node name
  std::size_t nodes_executed = 0;
  std::uint64_t saturations = 0;          ///< int8 backend only, cumulative

  /// The single output; throws Error unless exactly one output exists.
  const Tensor& single() const;
};

/// One deployed model instance, ready to serve. Implementations are not
/// thread-safe; use one session per worker.
class Session {
 public:
  virtual ~Session() = default;

  /// Run the graph on the given feeds (one tensor per Input node, keyed by
  /// node name).
  virtual RunResult run(const std::map<std::string, Tensor>& feeds) = 0;

  /// Convenience for single-input single-output graphs.
  Tensor run_single(const Tensor& input);

  /// Batched submit path for single-input single-output graphs: stack the
  /// per-request inputs along the leading dimension, run once, and split
  /// the output back into per-request tensors (in submission order). The
  /// stacked batch must match the graph's built batch exactly — callers
  /// that coalesce fewer requests pad with zero lanes and discard them
  /// (serve::DynamicBatcher does both). Per-lane outputs are bitwise
  /// identical to singleton runs of the same inputs: every kernel computes
  /// each batch lane independently with a fixed accumulation order.
  std::vector<Tensor> run_batch(std::span<const Tensor> inputs);

  virtual const Graph& graph() const = 0;

  /// Backend identifier: "float-reference" or "int8".
  virtual std::string backend() const = 0;

  /// Replace the live execution-resource knobs without rebuilding the
  /// executor: brownout controllers shrink the batch cap under overload
  /// (and restore it when headroom returns), autoscalers retune threads.
  virtual void set_exec_config(const ExecConfig& exec) = 0;
  virtual const ExecConfig& exec_config() const = 0;

  /// Batch-cap shorthands over {set_,}exec_config (see ExecConfig).
  void set_max_batch(std::int64_t max_batch);
  std::int64_t max_batch() const { return exec_config().max_batch; }
};

/// Float reference session (wraps Executor). The graph must outlive the
/// session and have materialized weights.
std::unique_ptr<Session> make_session(const Graph& graph, const RunOptions& options = {});

/// True-integer INT8 session (wraps QuantizedExecutor). The graph must be
/// deployment-ready: weights materialized, BatchNorm folded, activations
/// calibrated. Throws Unsupported otherwise.
std::unique_ptr<Session> make_quantized_session(const Graph& graph,
                                                const RunOptions& options = {});

}  // namespace vedliot::runtime
