#include "obs/trace.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vedliot::obs {

ScopedSpan& ScopedSpan::operator=(ScopedSpan&& other) noexcept {
  if (this != &other) {
    close();
    tracer_ = other.tracer_;
    index_ = other.index_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void ScopedSpan::attr(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  tracer_->spans_[index_].attrs.emplace_back(std::move(key), std::move(value));
}

void ScopedSpan::attr(std::string key, double value) {
  if (tracer_ == nullptr) return;
  tracer_->spans_[index_].num_attrs.emplace_back(std::move(key), value);
}

void ScopedSpan::close() {
  if (tracer_ == nullptr) return;
  tracer_->close_span(index_);
  tracer_ = nullptr;
}

Tracer::Tracer(Clock* clock) : clock_(clock != nullptr ? clock : &default_clock_) {}

ScopedSpan Tracer::span(std::string name, std::string category) {
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.start_ns = clock_->now_ns();
  s.parent = stack_.empty() ? Span::kNoParent : stack_.back();
  s.depth = stack_.size();
  const std::size_t index = spans_.size();
  spans_.push_back(std::move(s));
  stack_.push_back(index);
  return ScopedSpan(this, index);
}

Span& Tracer::instant(std::string name, std::string category) {
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.start_ns = clock_->now_ns();
  s.end_ns = s.start_ns;
  s.parent = stack_.empty() ? Span::kNoParent : stack_.back();
  s.depth = stack_.size();
  spans_.push_back(std::move(s));
  return spans_.back();
}

void Tracer::close_span(std::size_t index) {
  VEDLIOT_ASSERT(index < spans_.size());
  spans_[index].end_ns = clock_->now_ns();
  // Spans close in LIFO order under RAII; tolerate out-of-order closes from
  // moved handles by erasing wherever the index sits on the stack.
  const auto it = std::find(stack_.rbegin(), stack_.rend(), index);
  if (it != stack_.rend()) stack_.erase(std::next(it).base());
}

void Tracer::clear() {
  spans_.clear();
  stack_.clear();
}

}  // namespace vedliot::obs
