#!/usr/bin/env bash
# Fleet-scale serving soak: sweep fleet size x traffic pattern (diurnal,
# flash crowd, retry storm), an autoscaling flash-crowd run, and an
# execute-mode run whose delivered CRCs are checked against singleton
# reruns, with the JSON-lines records appended to BENCH_serve.json after
# the "soak-serve" records scripts/soak.sh writes (one "soak-fleet" object
# per sweep point; the human summary table stays on stderr). Exit status
# is soak_fleet's: non-zero when any fleet invariant is violated, bitwise
# determinism breaks, or batched throughput misses the 3x floor over the
# per-request path.
#
# Usage: scripts/soak_fleet.sh [--seed N] [--duration S] [--base-hz H] [--quick]
#   (defaults: seed 0x5EED, duration 2.0 s, base 2000 Hz)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_serve.json"

cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)" --target soak_fleet > /dev/null

build/bench/soak_fleet "$@" >> "${OUT}"
echo "fleet soak records appended to ${OUT}" >&2
