// T-TWINE — SQLite inside an SGX enclave via WebAssembly [17] (Sec. IV-C:
// "SQLite can be fully executed inside an SGX enclave via WebAssembly ...
// with small performance overheads").
//
// Reproduces the three-way comparison on the embedded KV workload: the
// identical hash-table logic (1) native C++, (2) interpreted in the
// WASM-like VM, (3) in the VM inside the enclave model. Wall-clock ratios
// come from real execution; the enclave adds simulated transition costs
// reported separately (they depend on call granularity, the paper's key
// point: batching ops per ECALL keeps the overhead small).

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "security/enclave.hpp"
#include "security/kvstore.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::security;

namespace {

constexpr std::uint32_t kCapacity = 16384;
constexpr int kOps = 20000;

struct WorkloadResult {
  double wall_s = 0;
  std::int64_t checksum = 0;
};

WorkloadResult run_native() {
  NativeKvStore kv(kCapacity);
  Rng rng(99);
  const auto t0 = std::chrono::steady_clock::now();
  std::int64_t check = 0;
  for (int i = 0; i < kOps; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.uniform_int(0, 8000));
    if (rng.chance(0.5)) {
      check += kv.put(key, static_cast<std::int32_t>(i)) ? 1 : 0;
    } else {
      check += kv.get(key).value_or(-1);
    }
  }
  check += kv.sum();
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), check};
}

WorkloadResult run_vm() {
  WasmVm vm(build_kv_module(kCapacity));
  vm.set_fuel_limit(1'000'000'000);
  Rng rng(99);
  const auto t0 = std::chrono::steady_clock::now();
  std::int64_t check = 0;
  for (int i = 0; i < kOps; ++i) {
    const auto key = static_cast<std::int32_t>(rng.uniform_int(0, 8000));
    if (rng.chance(0.5)) {
      check += vm.invoke("kv_put", {key, i});
    } else {
      check += vm.invoke("kv_get", {key});
    }
  }
  check += vm.invoke("kv_sum", {});
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), check};
}

struct EnclaveResult {
  WorkloadResult wall;
  CostLedger ledger;
};

// Benches measure transition/interpreter overheads, not the admission gate:
// opt out of require_verified explicitly (the KV module's loops have no
// static fuel bound anyway; see vedliot-lint --wasm --wmod kv).
EnclaveConfig bench_config() {
  EnclaveConfig c;
  c.require_verified = false;
  return c;
}

EnclaveResult run_enclave(int ops_per_ecall) {
  Enclave enc(bench_config(), build_kv_module(kCapacity), Key{});
  enc.vm().set_fuel_limit(1'000'000'000);
  Rng rng(99);
  const auto t0 = std::chrono::steady_clock::now();
  std::int64_t check = 0;
  // ops_per_ecall models call granularity: the host batches that many KV
  // ops behind one ECALL (Twine's actual design runs whole SQL statements
  // per transition).
  int in_batch = 0;
  for (int i = 0; i < kOps; ++i) {
    const auto key = static_cast<std::int32_t>(rng.uniform_int(0, 8000));
    const bool counted_ecall = in_batch == 0;
    if (rng.chance(0.5)) {
      if (counted_ecall) {
        check += enc.ecall("kv_put", {key, i});
      } else {
        check += enc.vm().invoke("kv_put", {key, i});
      }
    } else {
      if (counted_ecall) {
        check += enc.ecall("kv_get", {key});
      } else {
        check += enc.vm().invoke("kv_get", {key});
      }
    }
    in_batch = (in_batch + 1) % ops_per_ecall;
  }
  check += enc.ecall("kv_sum", {});
  const auto t1 = std::chrono::steady_clock::now();
  return {{std::chrono::duration<double>(t1 - t0).count(), check}, enc.ledger()};
}

}  // namespace

void print_artifact() {
  bench::banner("T-TWINE", "embedded KV store: native vs WASM-VM vs WASM-VM-in-enclave");

  const auto native = run_native();
  const auto vm = run_vm();
  const auto enc1 = run_enclave(1);     // one KV op per ECALL (worst case)
  const auto enc64 = run_enclave(64);   // batched, Twine-style

  Table t({"configuration", "wall ms", "vs native", "ECALLs", "simulated transition ms"});
  t.add_row({"native C++", fmt_fixed(native.wall_s * 1e3, 2), "1.0x", "-", "-"});
  t.add_row({"WASM VM", fmt_fixed(vm.wall_s * 1e3, 2), fmt_ratio(vm.wall_s / native.wall_s), "-",
             "-"});
  t.add_row({"VM + enclave (1 op/ecall)", fmt_fixed(enc1.wall.wall_s * 1e3, 2),
             fmt_ratio(enc1.wall.wall_s / native.wall_s), std::to_string(enc1.ledger.ecalls),
             fmt_fixed(enc1.ledger.simulated_ns / 1e6, 2)});
  t.add_row({"VM + enclave (64 ops/ecall)", fmt_fixed(enc64.wall.wall_s * 1e3, 2),
             fmt_ratio(enc64.wall.wall_s / native.wall_s), std::to_string(enc64.ledger.ecalls),
             fmt_fixed(enc64.ledger.simulated_ns / 1e6, 2)});
  t.print(std::cout);

  if (native.checksum != vm.checksum || native.checksum != enc1.wall.checksum) {
    std::printf("CHECKSUM MISMATCH — implementations diverge!\n");
  } else {
    std::printf("checksums agree across all three configurations (%lld)\n",
                static_cast<long long>(native.checksum));
  }
  bench::note("paper shape: interpretation costs an integer factor; enclave transitions add");
  bench::note("little once calls are batched -> 'small performance overheads' end to end.");
}

static void BM_NativeKvOp(benchmark::State& state) {
  NativeKvStore kv(kCapacity);
  Rng rng(1);
  std::uint32_t i = 0;
  for (auto _ : state) {
    kv.put(i % 8000, static_cast<std::int32_t>(i));
    benchmark::DoNotOptimize(kv.get((i * 7) % 8000));
    ++i;
  }
}
BENCHMARK(BM_NativeKvOp);

static void BM_VmKvOp(benchmark::State& state) {
  WasmVm vm(build_kv_module(kCapacity));
  vm.set_fuel_limit(1'000'000'000'000ull);
  std::int32_t i = 0;
  for (auto _ : state) {
    vm.invoke("kv_put", {i % 8000, i});
    benchmark::DoNotOptimize(vm.invoke("kv_get", {(i * 7) % 8000}));
    ++i;
  }
}
BENCHMARK(BM_VmKvOp);

static void BM_SealUnseal4k(benchmark::State& state) {
  Enclave enc(bench_config(), build_kv_module(16), Key{});
  std::vector<std::uint8_t> data(4096, 0x5A);
  for (auto _ : state) {
    auto blob = enc.seal(data);
    auto back = enc.unseal(blob);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_SealUnseal4k);

VEDLIOT_BENCH_MAIN()
