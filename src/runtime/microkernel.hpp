#pragma once
/// \file microkernel.hpp
/// \brief Register-tiled GEMM microkernels with runtime SIMD dispatch.
///
/// The blocked-GEMM recipe from *Performance Analysis of Matrix
/// Multiplication for Deep Learning on the Edge*: the cache-blocked loop
/// nest (kernels.hpp / executor) keeps operands resident, and the inner
/// mr x nr tile is computed by an architecture-specific microkernel that
/// holds the whole accumulator tile in vector registers. Both operands are
/// repacked into panel layouts so the microkernel reads two contiguous
/// streams:
///
///   packed A (weights), panel p of mr rows:  [p][k][r]  (k-major, r minor)
///   packed B (im2col/activations), panel q of nr cols: [q][k][j]
///
/// int8 packs differ: A becomes int16 k-pairs in one int32 word per (k/2,
/// row), B interleaves adjacent k rows byte-wise so AVX2 `madd_epi16`
/// accumulates two k steps per instruction with exact int32 arithmetic.
///
/// Determinism contract (per dispatch level):
///  - every output element accumulates its K products in ascending k order
///    whatever the panel partition, so parallel-vs-serial runs are bitwise
///    identical at every level;
///  - the int8 microkernel performs the same exact int32 arithmetic as the
///    scalar reference (gemm_rows_s8), so its outputs are bitwise equal to
///    portable at any K/M/N;
///  - the f32 microkernel keeps the scalar k order but contracts each
///    multiply-add to one FMA rounding, so SIMD-vs-portable agrees to a
///    tight ULP bound rather than bitwise (scalar epilogues are shared, so
///    activation math is identical).
///
/// Tail handling: partial row/column panels are zero-padded during packing
/// and the epilogue stores only the valid region, so every lane — including
/// a batch-1 dense column — executes the identical instruction sequence.
/// That is what keeps a lane of a batched run bitwise equal to the same
/// sample run alone (the PR 7 fleet contract) at SIMD levels too.

#include <cstdint>

#include "graph/op.hpp"
#include "util/cpu.hpp"

namespace vedliot::runtime_kernels {

/// Register tile of one microkernel; {0, 0} means "no microkernel at this
/// level" (caller falls back to the portable scalar path).
struct MicrokernelTile {
  std::int64_t mr = 0;
  std::int64_t nr = 0;
  bool available() const { return mr > 0 && nr > 0; }
};

inline std::int64_t panel_count(std::int64_t extent, std::int64_t tile) {
  return (extent + tile - 1) / tile;
}

/// Packed-buffer element counts (floats / int32 words / bytes).
std::size_t packed_a_f32_elems(std::int64_t m, std::int64_t k, const MicrokernelTile& t);
std::size_t packed_b_f32_elems(std::int64_t k, std::int64_t n, const MicrokernelTile& t);
std::size_t packed_a_s8_words(std::int64_t m, std::int64_t k, const MicrokernelTile& t);
std::size_t packed_b_s8_bytes(std::int64_t k, std::int64_t n, const MicrokernelTile& t);

/// Pack the row-major [M x K] weight matrix into mr-row panels (zero-padded
/// tail rows). Generic over the tile, so every dispatch level shares it.
void pack_a_f32(const float* a, std::int64_t m, std::int64_t k, const MicrokernelTile& t,
                float* packed);
/// Pack column panels [panel_lo, panel_hi) of the row-major [K x N] matrix
/// into nr-column panels (zero-padded tail columns); panel-ranged so the
/// packing itself partitions over the thread pool.
void pack_b_f32(const float* b, std::int64_t k, std::int64_t n, const MicrokernelTile& t,
                std::int64_t panel_lo, std::int64_t panel_hi, float* packed);

/// int8 A: one int32 word holds the sign-extended int16 pair
/// (a[m][2kp], a[m][2kp+1]); odd K pads the second slot with zero.
void pack_a_s8(const std::int8_t* a, std::int64_t m, std::int64_t k, const MicrokernelTile& t,
               std::int32_t* packed);
/// int8 B: bytes (b[2kp][j], b[2kp+1][j]) interleaved per column so one
/// 32-byte load feeds madd_epi16 with two k steps for nr columns.
void pack_b_s8(const std::int8_t* b, std::int64_t k, std::int64_t n, const MicrokernelTile& t,
               std::int64_t panel_lo, std::int64_t panel_hi, std::int8_t* packed);

/// Row-panel range [panel_lo, panel_hi) of C = A·B (+bias, fused act) over
/// packed operands. C is [M x N]: row-major with leading dimension ldc when
/// !col_major_store (c[m * ldc + j], conv layout), column-scattered when
/// col_major_store (c[j * ldc + m], the dense [batch x units] layout, which
/// lets the dense path skip the output transpose).
using GemmF32Fn = void (*)(const float* pa, const float* pb, float* c, std::int64_t m,
                           std::int64_t n, std::int64_t k, std::int64_t ldc,
                           bool col_major_store, std::int64_t panel_lo, std::int64_t panel_hi,
                           const float* bias, OpKind act, double alpha);

/// int8 variant with the gemm_rows_s8 requant epilogue; returns the
/// requantization saturation count for the panel range (exact, so per-chunk
/// sums are partition-independent).
using GemmS8Fn = std::uint64_t (*)(const std::int32_t* pa, const std::int8_t* pb,
                                   std::int8_t* c, std::int64_t m, std::int64_t n,
                                   std::int64_t k, std::int64_t ldc, bool col_major_store,
                                   std::int64_t panel_lo, std::int64_t panel_hi,
                                   const std::int32_t* bias, const double* mult,
                                   std::int32_t q_lo, std::int32_t q_hi);

/// One dispatch level's kernel set. Levels may offer a subset (e.g. NEON
/// ships f32 only); unavailable entries have a zero tile and null fn.
struct GemmMicrokernels {
  util::SimdLevel level = util::SimdLevel::kPortable;
  MicrokernelTile f32;
  MicrokernelTile s8;
  GemmF32Fn gemm_f32 = nullptr;
  GemmS8Fn gemm_s8 = nullptr;
};

/// Microkernel table lookup for a *resolved* level (resolve_simd_level
/// first). Returns nullptr for kPortable or when the binary has no kernels
/// for the level — callers then use the scalar kernels in kernels.hpp.
const GemmMicrokernels* gemm_microkernels(util::SimdLevel resolved);

/// Measured compute roofs for the roofline model (hw/roofline.hpp): a
/// register-resident FMA / madd chain timed for at least \p min_seconds,
/// returning GFLOP/s (f32, 2 flops per FMA) or GOP/s (int8, 2 ops per MAC)
/// of one thread at the given resolved dispatch level.
double peak_probe_f32(util::SimdLevel resolved, double min_seconds);
double peak_probe_s8(util::SimdLevel resolved, double min_seconds);

}  // namespace vedliot::runtime_kernels
