#include "serve/fleet_soak.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "graph/zoo.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace vedliot::serve {

namespace {

/// Independent stream seeds (same scheme as soak.cpp): the traffic must be
/// identical across fleet sizes for the monotonicity check, and weight
/// materialization must not perturb it.
constexpr std::uint64_t kLoadStream = 0xA11CEull;
constexpr std::uint64_t kWeightStream = 0x3E16Dull;

void check_conservation(const FleetSoakConfig& cfg, const FleetReport& report,
                        const std::vector<std::uint64_t>& ids,
                        std::vector<std::string>& violations) {
  (void)cfg;
  if (report.responses.size() != report.offered) {
    violations.push_back("conservation: " + std::to_string(report.responses.size()) +
                         " responses for " + std::to_string(report.offered) + " offered");
    return;
  }
  const std::size_t accounted =
      report.completed + report.deadline_missed + report.shed + report.cancelled;
  if (accounted != report.offered) {
    violations.push_back("conservation: status counts sum to " + std::to_string(accounted) +
                         " != offered " + std::to_string(report.offered));
  }
  std::map<std::uint64_t, std::size_t> seen;
  for (const Response& r : report.responses) ++seen[r.request_id];
  for (const std::uint64_t id : ids) {
    const auto it = seen.find(id);
    if (it == seen.end() || it->second != 1) {
      violations.push_back("conservation: request " + std::to_string(id) + " has " +
                           std::to_string(it == seen.end() ? 0 : it->second) +
                           " terminal responses");
      return;  // one example is enough; the log would otherwise explode
    }
  }
}

void check_deadlines(const FleetReport& report,
                     const std::map<std::uint64_t, double>& deadline_of,
                     std::vector<std::string>& violations) {
  if (report.deadline_missed != 0) {
    violations.push_back("capacity honesty: " + std::to_string(report.deadline_missed) +
                         " responses delivered late (the fleet must cancel instead)");
  }
  for (const Response& r : report.responses) {
    if (r.status != ResponseStatus::kOk) continue;
    const double deadline = deadline_of.at(r.request_id);
    if (r.time_s > deadline + 1e-12) {
      violations.push_back("capacity honesty: request " + std::to_string(r.request_id) +
                           " marked ok at " + std::to_string(r.time_s) + "s past deadline " +
                           std::to_string(deadline) + "s");
      return;
    }
  }
}

void check_bounds(const FleetSoakConfig& cfg, const FleetReport& report,
                  std::vector<std::string>& violations) {
  if (report.max_queue_depth > cfg.queue_capacity) {
    violations.push_back("bounded queues: depth " + std::to_string(report.max_queue_depth) +
                         " exceeded capacity " + std::to_string(cfg.queue_capacity));
  }
  if (report.max_replicas > cfg.fleet_size) {
    violations.push_back("replica bound: " + std::to_string(report.max_replicas) +
                         " replicas exceeded fleet size " + std::to_string(cfg.fleet_size));
  }
}

void check_observability(const FleetReport& report, const obs::Tracer& tracer,
                         const obs::MetricsRegistry& metrics,
                         std::vector<std::string>& violations) {
  std::vector<const obs::Span*> mirrored;
  for (const obs::Span& sp : tracer.spans()) {
    if (sp.category == "vedliot.fleet") mirrored.push_back(&sp);
  }
  if (mirrored.size() != report.events.size()) {
    violations.push_back("tracer mirror count " + std::to_string(mirrored.size()) +
                         " != event count " + std::to_string(report.events.size()));
    return;
  }
  for (std::size_t i = 0; i < mirrored.size(); ++i) {
    const std::string expect(serve_event_name(report.events[i].kind));
    if (mirrored[i]->name != expect) {
      violations.push_back("tracer mirror out of order at event " + std::to_string(i) + ": " +
                           mirrored[i]->name + " != " + expect);
      return;
    }
  }
  std::map<std::string, std::uint64_t> counts;
  for (const ServeEvent& e : report.events) {
    ++counts["vedliot.fleet." + std::string(serve_event_name(e.kind))];
  }
  for (const auto& [name, count] : counts) {
    if (!metrics.has_counter(name) || metrics.counters().at(name).value() != count) {
      violations.push_back("counter " + name + " != event count " + std::to_string(count));
    }
  }
  for (const auto& [name, counter] : metrics.counters()) {
    if (name.rfind("vedliot.fleet.", 0) == 0 && !counts.count(name)) {
      violations.push_back("counter " + name + " has no matching events");
    }
  }
}

void check_power(const FleetReport& report, std::vector<std::string>& violations) {
  constexpr double kEps = 1e-9;
  for (const auto& sp : report.power) {
    if (sp.avg_power_w() > sp.budget_w + kEps) {
      violations.push_back("power honesty: " + sp.replica + " at " + sp.slot + " averaged " +
                           std::to_string(sp.avg_power_w()) + " W against slot budget " +
                           std::to_string(sp.budget_w) + " W");
    }
    if (sp.avg_power_w() > sp.module_cap_w + kEps) {
      violations.push_back("power honesty: " + sp.replica + " averaged " +
                           std::to_string(sp.avg_power_w()) + " W over its module envelope " +
                           std::to_string(sp.module_cap_w) + " W");
    }
  }
}

void check_batches(const FleetSoakConfig& cfg, const FleetReport& report,
                   std::vector<std::string>& violations) {
  for (const ServeEvent& e : report.events) {
    if (e.kind != ServeEventKind::kBatchExecuted) continue;
    if (e.value > static_cast<double>(cfg.max_batch)) {
      violations.push_back("batch honesty: " + std::to_string(e.value) + " lanes on " +
                           e.subject + " exceeded the configured cap " +
                           std::to_string(cfg.max_batch));
    }
  }
}

/// Execute-mode invariant 6b: a sample of batched outputs, re-run as
/// singleton sessions over the same synthesized inputs, must match
/// CRC-for-CRC — lane independence makes batching invisible bitwise.
void check_batched_equality(const FleetSoakConfig& cfg, const Graph& model,
                            const FleetReport& report,
                            const std::map<std::uint64_t, Request>& requests,
                            std::vector<std::string>& violations) {
  std::map<std::int64_t, std::unique_ptr<Graph>> ref_graphs;
  std::map<std::int64_t, std::unique_ptr<runtime::Session>> ref_sessions;
  std::size_t checked = 0;
  for (const Response& r : report.responses) {
    if (checked >= cfg.equality_samples) break;
    if (r.status != ResponseStatus::kOk || r.cache_hit || r.served_by.empty()) continue;
    const Request& req = requests.at(r.request_id);
    auto& session = ref_sessions[req.batch];
    if (!session) {
      ref_graphs[req.batch] = std::make_unique<Graph>(rebatched(model, req.batch));
      session = runtime::make_session(*ref_graphs[req.batch], {});
    }
    const Tensor input = synthesize_input(model, cfg.seed, req);
    const Tensor output = session->run_single(input);
    const std::uint32_t crc = util::crc32(output.data());
    if (crc != r.output_crc32) {
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "batched-vs-singleton mismatch on request %llu: batched crc %08x != "
                    "singleton crc %08x",
                    static_cast<unsigned long long>(r.request_id), r.output_crc32, crc);
      violations.push_back(buf);
      return;
    }
    ++checked;
  }
}

}  // namespace

std::string FleetSoakResult::to_json() const {
  std::string out = "{\"record\":\"soak-fleet\"";
  out += ",\"seed\":" + obs::json_number(static_cast<double>(config.seed));
  out += ",\"pattern\":\"" + std::string(traffic_pattern_name(config.pattern)) + "\"";
  out += ",\"fleet_size\":" + obs::json_number(static_cast<double>(config.fleet_size));
  out += ",\"autoscale\":" + std::string(config.autoscale ? "true" : "false");
  out += ",\"execute\":" + std::string(config.execute ? "true" : "false");
  out += ",\"base_hz\":" + obs::json_number(config.base_hz);
  out += ",\"duration_s\":" + obs::json_number(config.duration_s);
  out += ",\"max_batch\":" + obs::json_number(static_cast<double>(config.max_batch));
  out += ",\"report\":" + report.to_json();
  out += ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) out += ",";
    out += "\"";
    out += obs::json_escape(violations[i]);
    out += "\"";
  }
  out += "]}";
  return out;
}

FleetSoakResult run_fleet_soak(const FleetSoakConfig& cfg) {
  VEDLIOT_CHECK(cfg.duration_s > 0, "fleet soak duration must be positive");
  VEDLIOT_CHECK(cfg.fleet_size >= 1, "fleet soak needs at least one replica");
  VEDLIOT_CHECK(cfg.base_hz > 0, "offered rate must be positive");

  // Model: the analytic sweeps cost ResNet-50 through the roofline model
  // only; execute mode runs a micro CNN for real so the soak stays fast.
  Graph model = cfg.execute ? zoo::micro_cnn("fleet-exec", 1, 3, 16, 10, 8)
                            : zoo::resnet50(1, 100, 64);
  if (cfg.execute) {
    Rng weight_rng(cfg.seed ^ kWeightStream);
    model.materialize_weights(weight_rng);
  }

  TrafficConfig traffic;
  traffic.pattern = cfg.pattern;
  traffic.duration_s = cfg.duration_s;
  traffic.base_hz = cfg.base_hz;
  traffic.deadline_s = cfg.deadline_s;
  traffic.seed = cfg.seed ^ kLoadStream;
  const std::vector<Request> offered = generate_traffic(traffic);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;

  FleetConfig fleet_cfg;
  fleet_cfg.graph = &model;
  fleet_cfg.execute = cfg.execute;
  fleet_cfg.max_batch = cfg.max_batch;
  fleet_cfg.queue_capacity = cfg.queue_capacity;
  fleet_cfg.max_replicas = cfg.fleet_size;
  fleet_cfg.min_replicas = cfg.autoscale ? 1 : cfg.fleet_size;
  fleet_cfg.initial_replicas =
      cfg.autoscale ? std::max<std::size_t>(1, cfg.fleet_size / 2) : cfg.fleet_size;
  fleet_cfg.seed = cfg.seed;
  fleet_cfg.trace = &tracer;
  fleet_cfg.metrics = &metrics;

  Fleet fleet(fleet_cfg);
  std::vector<std::uint64_t> ids;
  std::map<std::uint64_t, double> deadline_of;
  std::map<std::uint64_t, Request> by_id;
  ids.reserve(offered.size());
  for (const Request& r : offered) {
    const std::uint64_t id = fleet.submit(r);
    ids.push_back(id);
    deadline_of[id] = r.deadline_s;
    Request keyed = r;
    keyed.id = id;
    by_id.emplace(id, std::move(keyed));
  }

  FleetSoakResult result;
  result.config = cfg;
  result.report = fleet.run(cfg.duration_s);

  check_conservation(cfg, result.report, ids, result.violations);
  check_deadlines(result.report, deadline_of, result.violations);
  check_bounds(cfg, result.report, result.violations);
  check_observability(result.report, tracer, metrics, result.violations);
  check_power(result.report, result.violations);
  check_batches(cfg, result.report, result.violations);
  if (cfg.execute) {
    check_batched_equality(cfg, model, result.report, by_id, result.violations);
  }
  return result;
}

std::vector<std::string> check_fleet_goodput_monotone(
    const std::vector<FleetSoakResult>& sweep) {
  std::vector<std::string> violations;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    VEDLIOT_CHECK(sweep[i].config.fleet_size >= sweep[i - 1].config.fleet_size,
                  "goodput sweep must be ordered by ascending fleet size");
    if (sweep[i].goodput() + 1e-9 < sweep[i - 1].goodput()) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "goodput not monotone in fleet size: %.4f at %zu replicas < %.4f at %zu",
                    sweep[i].goodput(), sweep[i].config.fleet_size, sweep[i - 1].goodput(),
                    sweep[i - 1].config.fleet_size);
      violations.push_back(buf);
    }
  }
  return violations;
}

}  // namespace vedliot::serve
