// Tests for the end-to-end VEDLIoT design flow (Fig. 1 as one API).

#include <gtest/gtest.h>

#include "exec_single.hpp"
#include "core/designflow.hpp"
#include "graph/zoo.hpp"
#include "util/rng.hpp"

namespace vedliot::core {
namespace {

DesignSpec mirror_spec() {
  DesignSpec spec;
  spec.application = "smart-mirror-gesture";
  spec.latency_budget_s = 0.05;
  spec.power_budget_w = 15.0;
  spec.rate_hz = 15.0;
  spec.platform = "uRECS";
  return spec;
}

TEST(DesignFlow, GestureNetDeploysOnUrecs) {
  Graph g = zoo::gesture_net();
  const auto report = run_design_flow(g, mirror_spec());
  EXPECT_FALSE(report.selected_device.empty());
  EXPECT_FALSE(report.selected_module.empty());
  EXPECT_LE(report.estimate.latency_s, 0.05);
  EXPECT_LE(report.duty_cycled_power_w, 15.0);
  EXPECT_FALSE(report.candidates.empty());
}

TEST(DesignFlow, PicksLowestEnergyFeasibleCandidate) {
  Graph g = zoo::gesture_net();
  const auto report = run_design_flow(g, mirror_spec());
  double best = 1e18;
  std::string best_device;
  for (const auto& c : report.candidates) {
    if (c.feasible && c.energy_per_inference_j < best) {
      best = c.energy_per_inference_j;
      best_device = c.device;
    }
  }
  EXPECT_EQ(report.selected_device, best_device);
}

TEST(DesignFlow, OptimizationPassesRunOnMaterializedModel) {
  Graph g = zoo::gesture_net();
  Rng rng(5);
  g.materialize_weights(rng);
  DesignSpec spec = mirror_spec();
  const auto report = run_design_flow(g, spec);
  // fuse-bn + fuse-act + quantize
  EXPECT_EQ(report.optimization_log.size(), 3u);
  EXPECT_EQ(report.optimization_log[2].pass_name, "quantize-weights");
}

TEST(DesignFlow, AnalyticModelSkipsQuantizePass) {
  Graph g = zoo::gesture_net();  // no weights
  const auto report = run_design_flow(g, mirror_spec());
  EXPECT_EQ(report.optimization_log.size(), 2u);
}

TEST(DesignFlow, ImpossibleBudgetThrows) {
  Graph g = zoo::yolov4();
  DesignSpec spec = mirror_spec();
  spec.application = "impossible";
  spec.latency_budget_s = 0.001;  // 1 ms YoloV4 on a 15 W node: no
  EXPECT_THROW((void)run_design_flow(g, spec), DesignFlowError);
}

TEST(DesignFlow, RejectionReasonsRecorded) {
  Graph g = zoo::pedestrian_net();
  DesignSpec spec = mirror_spec();
  spec.latency_budget_s = 0.004;
  spec.application = "paeb";
  try {
    const auto report = run_design_flow(g, spec);
    // if it succeeded, slower candidates must carry rejection reasons
    bool any_rejected = false;
    for (const auto& c : report.candidates) {
      if (!c.feasible) {
        any_rejected = true;
        EXPECT_FALSE(c.rejection.empty());
      }
    }
    EXPECT_TRUE(any_rejected);
  } catch (const DesignFlowError&) {
    // also acceptable on this tight budget
  }
}

TEST(DesignFlow, BiggerPlatformAdmitsBiggerModels) {
  Graph g = zoo::resnet50();
  DesignSpec spec;
  spec.application = "cloud-offload";
  spec.latency_budget_s = 0.05;
  spec.power_budget_w = 300.0;
  spec.rate_hz = 10.0;
  spec.platform = "t.RECS";
  const auto report = run_design_flow(g, spec);
  EXPECT_LE(report.estimate.latency_s, 0.05);
}

TEST(DesignFlow, UnknownPlatformThrows) {
  Graph g = zoo::gesture_net();
  DesignSpec spec = mirror_spec();
  spec.platform = "z.RECS";
  EXPECT_THROW((void)run_design_flow(g, spec), DesignFlowError);
}

TEST(DesignFlow, SecurityAndSafetyFlagsPropagate) {
  Graph g = zoo::pedestrian_net();
  DesignSpec spec = mirror_spec();
  spec.application = "paeb";
  spec.latency_budget_s = 0.1;
  spec.require_attestation = true;
  spec.enable_robustness_monitor = true;
  const auto report = run_design_flow(g, spec);
  EXPECT_TRUE(report.attestation_configured);
  EXPECT_TRUE(report.robustness_monitor_configured);
}

TEST(DesignFlow, MarkdownReportComplete) {
  Graph g = zoo::gesture_net();
  const auto report = run_design_flow(g, mirror_spec());
  const std::string md = report.to_markdown();
  EXPECT_NE(md.find("design-flow report"), std::string::npos);
  EXPECT_NE(md.find(report.selected_module), std::string::npos);
  EXPECT_NE(md.find("Candidate accelerators"), std::string::npos);
  EXPECT_NE(md.find("Optimization passes"), std::string::npos);
}

}  // namespace
}  // namespace vedliot::core
// appended: hardware-aware autotuning + executor profiling
#include "core/autotune.hpp"
#include "runtime/executor.hpp"

namespace vedliot::core {
namespace {

std::vector<Tensor> tune_probes(const Shape& shape, int n, std::uint64_t seed) {
  std::vector<Tensor> out;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    out.emplace_back(shape, rng.normal_vector(static_cast<std::size_t>(shape.numel())));
  }
  return out;
}

Graph tuned_model(std::uint64_t seed = 17) {
  Graph g = zoo::micro_cnn("edge", 1, 1, 16, 4);
  Rng rng(seed);
  g.materialize_weights(rng);
  return g;
}

TEST(Autotune, EvaluatesFullGridOnVersatileDevice) {
  Graph g = tuned_model();
  const auto& dev = hw::find_device("XavierNX");  // fp32+fp16+int8
  TuneBudget budget;
  budget.latency_s = 1.0;
  budget.max_output_rmse = 1.0;
  const auto r = autotune(g, dev, budget, tune_probes(Shape{1, 1, 16, 16}, 4, 3));
  EXPECT_EQ(r.points.size(), 9u);  // 3 dtypes x 3 prune levels
  EXPECT_TRUE(r.feasible);
}

TEST(Autotune, PrefersLowPrecisionWhenQualityAllows) {
  Graph g = tuned_model();
  const auto& dev = hw::find_device("XavierNX");
  TuneBudget budget;
  budget.latency_s = 1.0;
  budget.max_output_rmse = 0.2;  // generous
  const auto r = autotune(g, dev, budget, tune_probes(Shape{1, 1, 16, 16}, 4, 3));
  ASSERT_TRUE(r.feasible);
  // INT8 variants dominate on energy when allowed.
  EXPECT_EQ(r.best.option.dtype, DType::kINT8);
}

TEST(Autotune, QualityFloorExcludesAggressiveOptions) {
  Graph g = tuned_model();
  const auto& dev = hw::find_device("XavierNX");
  TuneBudget strict;
  strict.latency_s = 1.0;
  strict.max_output_rmse = 1e-9;  // only bit-exact survives
  const auto r = autotune(g, dev, strict, tune_probes(Shape{1, 1, 16, 16}, 2, 3));
  if (r.feasible) {
    EXPECT_EQ(r.best.option.dtype, DType::kFP32);
    EXPECT_DOUBLE_EQ(r.best.option.channel_prune, 0.0);
  }
  // aggressive options must be flagged as quality violations
  bool saw_violation = false;
  for (const auto& p : r.points) {
    if (p.option.dtype == DType::kINT8 && !p.meets_quality) saw_violation = true;
  }
  EXPECT_TRUE(saw_violation);
}

TEST(Autotune, PruningReducesEstimatedLatency) {
  Graph g = tuned_model();
  const auto& dev = hw::find_device("XavierNX");
  TuneBudget budget;
  budget.latency_s = 1.0;
  budget.max_output_rmse = 10.0;
  const auto r = autotune(g, dev, budget, tune_probes(Shape{1, 1, 16, 16}, 2, 3));
  double lat_dense = 0, lat_pruned = 0;
  for (const auto& p : r.points) {
    if (p.option.dtype != DType::kINT8) continue;
    if (p.option.channel_prune == 0.0) lat_dense = p.latency_s;
    if (p.option.channel_prune == 0.5) lat_pruned = p.latency_s;
  }
  EXPECT_GT(lat_dense, 0.0);
  EXPECT_LT(lat_pruned, lat_dense);
}

TEST(Autotune, Validation) {
  Graph analytic = zoo::micro_cnn("a", 1, 1, 16, 4);  // no weights
  const auto& dev = hw::find_device("XavierNX");
  EXPECT_THROW((void)autotune(analytic, dev, {}, tune_probes(Shape{1, 1, 16, 16}, 1, 1)), Error);
  Graph g = tuned_model();
  EXPECT_THROW((void)autotune(g, dev, {}, {}), Error);
}

TEST(ExecutorProfile, HotspotsRankConvFirst) {
  Graph g = tuned_model();
  Executor exec(g);
  exec.enable_profiling();
  Rng rng(5);
  for (int i = 0; i < 3; ++i) {
    (void)testutil::exec_single(exec, g, Tensor(Shape{1, 1, 16, 16}, rng.normal_vector(256)));
  }
  const auto hot = exec.hotspots(3);
  ASSERT_FALSE(hot.empty());
  EXPECT_EQ(hot.front().first, OpKind::kConv2d);  // convs dominate a CNN
  EXPECT_EQ(hot.front().second.invocations, 9u);  // 3 convs x 3 runs
  exec.reset_profile();
  EXPECT_TRUE(exec.profile().empty());
}

TEST(ExecutorProfile, DisabledByDefault) {
  Graph g = tuned_model();
  Executor exec(g);
  Rng rng(5);
  (void)testutil::exec_single(exec, g, Tensor(Shape{1, 1, 16, 16}, rng.normal_vector(256)));
  EXPECT_TRUE(exec.profile().empty());
}

}  // namespace
}  // namespace vedliot::core
