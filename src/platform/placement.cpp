#include "platform/placement.hpp"

#include <utility>

#include "util/error.hpp"

namespace vedliot::platform {

FleetPlacement::FleetPlacement(Config config) : cfg_(std::move(config)) {
  VEDLIOT_CHECK(!cfg_.board.slots.empty(), "placement board needs at least one slot");
  VEDLIOT_CHECK(!cfg_.modules.empty(), "placement needs at least one module kind");
  for (const std::string& m : cfg_.modules) find_module(m);  // fail fast on typos
}

Placement FleetPlacement::place(const std::string& replica) {
  for (const Placement& p : placements_) {
    VEDLIOT_CHECK(p.replica != replica, "replica already placed: " + replica);
  }
  const MicroserverModule& module =
      find_module(cfg_.modules[next_module_ % cfg_.modules.size()]);
  // First fit; Chassis::install is the sole admission gate, so we probe
  // slots and let the chassis say no (form factor or power) rather than
  // duplicate its budget arithmetic here.
  for (std::size_t c = 0;; ++c) {
    if (c == chassis_.size()) {
      chassis_.push_back(std::make_unique<Chassis>(cfg_.board));
    }
    Chassis& box = *chassis_[c];
    for (const SlotSpec& slot : box.spec().slots) {
      if (box.occupied(slot.name)) continue;
      try {
        box.install(slot.name, module);
      } catch (const PlatformError&) {
        continue;  // this slot refused; try the next
      }
      ++next_module_;
      Placement p{replica, c, slot.name, module.name};
      placements_.push_back(p);
      metered_.emplace(replica, std::pair<double, double>{0, 0});
      return p;
    }
    // A fresh chassis that admits nothing means the module can never be
    // placed on this board — surface that instead of looping forever.
    if (box.installed().empty()) {
      throw PlatformError("module " + module.name + " fits no slot of " + cfg_.board.name);
    }
  }
}

void FleetPlacement::release(const std::string& replica) {
  for (auto it = placements_.begin(); it != placements_.end(); ++it) {
    if (it->replica != replica) continue;
    chassis_[it->chassis]->remove(it->slot);
    placements_.erase(it);
    return;  // metered_ entry stays: drained slots still owe a power report
  }
  throw NotFound("no placement for replica " + replica);
}

const Placement& FleetPlacement::placement_of(const std::string& replica) const {
  for (const Placement& p : placements_) {
    if (p.replica == replica) return p;
  }
  throw NotFound("no placement for replica " + replica);
}

const Chassis& FleetPlacement::chassis(std::size_t i) const {
  VEDLIOT_CHECK(i < chassis_.size(), "chassis index out of range");
  return *chassis_[i];
}

void FleetPlacement::meter(const std::string& replica, double joules, double seconds) {
  VEDLIOT_CHECK(joules >= 0 && seconds >= 0, "meter values must be >= 0");
  const auto it = metered_.find(replica);
  if (it == metered_.end()) throw NotFound("no placement for replica " + replica);
  it->second.first += joules;
  it->second.second += seconds;
}

std::vector<FleetPlacement::SlotPower> FleetPlacement::power_report() const {
  std::vector<SlotPower> out;
  out.reserve(placements_.size());
  for (const Placement& p : placements_) {
    SlotPower sp;
    sp.replica = p.replica;
    sp.slot = "box" + std::to_string(p.chassis) + "/" + p.slot;
    for (const SlotSpec& s : cfg_.board.slots) {
      if (s.name == p.slot) sp.budget_w = s.power_budget_w;
    }
    sp.module_cap_w = find_module(p.module).max_power_w;
    const auto it = metered_.find(p.replica);
    if (it != metered_.end()) {
      sp.joules = it->second.first;
      sp.busy_s = it->second.second;
    }
    out.push_back(std::move(sp));
  }
  return out;
}

}  // namespace vedliot::platform
