# Empty compiler generated dependencies file for vedliot_core.
# This may be replaced when dependencies are built.
