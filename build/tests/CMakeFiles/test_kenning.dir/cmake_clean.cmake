file(REMOVE_RECURSE
  "CMakeFiles/test_kenning.dir/test_kenning.cpp.o"
  "CMakeFiles/test_kenning.dir/test_kenning.cpp.o.d"
  "test_kenning"
  "test_kenning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kenning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
