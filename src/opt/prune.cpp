#include "opt/prune.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/cost.hpp"
#include "util/error.hpp"

namespace vedliot::opt {

MagnitudePrunePass::MagnitudePrunePass(double sparsity) : sparsity_(sparsity) {
  VEDLIOT_CHECK(sparsity >= 0.0 && sparsity < 1.0, "sparsity must be in [0,1)");
}

PassResult MagnitudePrunePass::run(Graph& g) {
  PassResult r;
  r.pass_name = name();
  std::int64_t zeroed = 0;
  for (NodeId id : g.topo_order()) {
    Node& n = g.node(id);
    if ((n.kind != OpKind::kConv2d && n.kind != OpKind::kDense) || n.weights.empty()) continue;
    Tensor& w = n.weights[0];
    std::vector<float> mags;
    mags.reserve(static_cast<std::size_t>(w.numel()));
    for (float v : w.data()) mags.push_back(std::abs(v));
    const auto k = static_cast<std::size_t>(sparsity_ * static_cast<double>(mags.size()));
    if (k == 0) continue;
    std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k - 1), mags.end());
    const float threshold = mags[k - 1];
    for (float& v : w.data()) {
      if (std::abs(v) <= threshold && v != 0.0f) {
        v = 0.0f;
        ++zeroed;
      }
    }
    ++r.nodes_changed;
  }
  r.detail = std::to_string(zeroed) + " connections zeroed at sparsity " + std::to_string(sparsity_);
  return r;
}

ChannelPrunePass::ChannelPrunePass(double fraction) : fraction_(fraction) {
  VEDLIOT_CHECK(fraction >= 0.0 && fraction < 1.0, "fraction must be in [0,1)");
}

namespace {
/// True if the node's value reaches a graph output only through
/// shape-preserving ops (activations, softmax, flatten, identity): pruning
/// its channels would change the model's output dimension/semantics.
bool feeds_model_output(const Graph& g, NodeId id) {
  const auto consumers = g.consumers(id);
  if (consumers.empty()) return true;
  for (NodeId c : consumers) {
    const Node& n = g.node(c);
    const bool passthrough = op_is_activation(n.kind) || n.kind == OpKind::kSoftmax ||
                             n.kind == OpKind::kFlatten || n.kind == OpKind::kIdentity ||
                             n.kind == OpKind::kBatchNorm;
    if (passthrough && feeds_model_output(g, c)) return true;
  }
  return false;
}
}  // namespace

PassResult ChannelPrunePass::run(Graph& g) {
  PassResult r;
  r.pass_name = name();
  for (NodeId id : g.topo_order()) {
    Node& n = g.node(id);
    if ((n.kind != OpKind::kConv2d && n.kind != OpKind::kDense) || n.weights.empty()) continue;
    // Don't prune channels from output heads — their width is the API.
    if (feeds_model_output(g, id)) continue;
    Tensor& w = n.weights[0];
    const auto oc = w.shape().dim(0);
    const auto per = static_cast<std::size_t>(w.numel() / oc);
    const auto kill = static_cast<std::int64_t>(fraction_ * static_cast<double>(oc));
    if (kill == 0) continue;

    std::vector<std::pair<double, std::int64_t>> norms;
    norms.reserve(static_cast<std::size_t>(oc));
    for (std::int64_t c = 0; c < oc; ++c) {
      auto chan = w.data().subspan(static_cast<std::size_t>(c) * per, per);
      double l1 = 0.0;
      for (float v : chan) l1 += std::abs(v);
      norms.emplace_back(l1, c);
    }
    std::sort(norms.begin(), norms.end());
    for (std::int64_t i = 0; i < kill; ++i) {
      const auto c = static_cast<std::size_t>(norms[static_cast<std::size_t>(i)].second);
      auto chan = w.data().subspan(c * per, per);
      std::fill(chan.begin(), chan.end(), 0.0f);
      if (n.weights.size() > 1) n.weights[1].at(c) = 0.0f;  // bias too
    }
    n.attrs.set_int("pruned_out_channels", kill);
    ++r.nodes_changed;
  }
  r.detail = "structured pruning at fraction " + std::to_string(fraction_);
  return r;
}

namespace {
double pruned_fraction(const Node& n) {
  if (n.kind != OpKind::kConv2d && n.kind != OpKind::kDense) return 0.0;
  const auto pruned = n.attrs.get_int_or("pruned_out_channels", 0);
  if (pruned == 0) return 0.0;
  const auto total = n.kind == OpKind::kConv2d ? n.attrs.get_int("out_channels")
                                               : n.attrs.get_int("units");
  return static_cast<double>(pruned) / static_cast<double>(total);
}
}  // namespace

std::int64_t effective_macs(const Graph& g) {
  double total = 0.0;
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    const auto c = node_cost(g, id);
    if (c.macs == 0) continue;
    double keep = 1.0 - pruned_fraction(n);
    // Structured pruning of the producer shrinks this node's input channels.
    if (!n.inputs.empty()) {
      keep *= 1.0 - pruned_fraction(g.node(n.inputs.front()));
    }
    total += static_cast<double>(c.macs) * keep;
  }
  return static_cast<std::int64_t>(total);
}

double graph_sparsity(const Graph& g) {
  std::int64_t zeros = 0, total = 0;
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    if ((n.kind != OpKind::kConv2d && n.kind != OpKind::kDense) || n.weights.empty()) continue;
    const Tensor& w = n.weights[0];
    total += w.numel();
    for (float v : w.data()) {
      if (v == 0.0f) ++zeros;
    }
  }
  return total > 0 ? static_cast<double>(zeros) / static_cast<double>(total) : 0.0;
}

}  // namespace vedliot::opt
