#!/usr/bin/env bash
# Memory-fault soak of the silent-data-corruption defense: the seeded sweep
# over SEU flip rates {0, 4, 12}/s against the integrity-checked serving
# stack (per-delivery robustness checks, weight scrubbing, self-healing
# reload, OTA commit/reject/rollback), with the JSON-lines records captured
# into BENCH_integrity.json (one "soak-integrity" object per rate; the
# human summary table stays on stderr). Exit status is soak_integrity's:
# non-zero when any of the four integrity invariants is violated or bitwise
# determinism breaks.
#
# Usage: scripts/soak_integrity.sh [--quick] [--seed N] [--duration S]
#                                  [--arrival-hz H]
#   (defaults: seed 0x5EED, duration 2.0 s, arrival 400 Hz;
#    --quick: duration 1.0 s, arrival 200 Hz)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_integrity.json"

cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)" --target soak_integrity > /dev/null

build/bench/soak_integrity "$@" > "${OUT}"
echo "integrity soak records written to ${OUT}" >&2
