// Fleet-rollout soak driver (serve/ota_soak.hpp): sweep the seeded OTA
// rollout over fault rates {0, 0.05, 0.2} (lossy-fabric campaigns plus
// transient chunk damage), run the seeded bad-package scenario that must
// halt at the canary wave and drain its rollbacks inside the pacing
// budget, machine-check the five rollout invariants (convergence onto
// verified versions, no torn install, bounded rollback traffic, monotone
// progress, exact observability mirror), check that wire-level retry cost
// is monotone in the fault rate, and re-run the loss-heaviest sweep point
// to prove bitwise determinism (identical to_json). Prints a human summary
// table on stderr and one JSON-lines record per scenario on stdout
// (scripts/soak_ota.sh redirects those into BENCH_ota.json).
//
// Usage: soak_ota [--seed N] [--duration S] [--devices N] [--quick]
// Exit status 1 when any invariant is violated or determinism breaks.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/ota_soak.hpp"

namespace {

using vedliot::serve::OtaSoakConfig;
using vedliot::serve::OtaSoakResult;

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--seed N] [--duration S] [--devices N] [--quick]\n",
               argv0);
  std::exit(2);
}

void print_row(const char* label, const OtaSoakResult& r) {
  std::fprintf(stderr, "%-10s %6zu %6zu %7zu %7zu %5zu %5zu %6zu %6zu %5s %9.4fs\n", label,
               r.report.devices_committed, r.report.devices_rolled_back,
               r.report.chunks_sent, r.report.chunk_retries, r.report.duplicates,
               r.report.reorders, r.report.resumes, r.report.rollbacks_paced,
               r.converged ? "yes" : "NO", r.report.converged_at_s);
}

}  // namespace

int main(int argc, char** argv) {
  OtaSoakConfig base;
  base.seed = 0x5EEDu;
  base.duration_s = 4.0;
  base.n_devices = 12;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed") {
      base.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--duration") {
      base.duration_s = std::strtod(next(), nullptr);
    } else if (arg == "--devices") {
      base.n_devices = static_cast<int>(std::strtol(next(), nullptr, 0));
    } else if (arg == "--quick") {
      base.n_devices = 6;
      base.duration_s = 2.0;
    } else {
      usage(argv[0]);
    }
  }

  const std::vector<double> rates = {0.0, 0.05, 0.2};
  std::vector<OtaSoakResult> sweep;
  bool ok = true;

  std::fprintf(stderr, "ota soak: seed=0x%llx duration=%.2fs devices=%d\n",
               static_cast<unsigned long long>(base.seed), base.duration_s, base.n_devices);
  std::fprintf(stderr, "%-10s %6s %6s %7s %7s %5s %5s %6s %6s %5s %10s\n", "scenario",
               "commit", "rollbk", "chunks", "retry", "dup", "reord", "resume", "paced",
               "conv", "done-at");

  for (const double rate : rates) {
    OtaSoakConfig cfg = base;
    cfg.fault_rate = rate;
    OtaSoakResult r = vedliot::serve::run_ota_soak(cfg);
    char label[32];
    std::snprintf(label, sizeof(label), "loss=%.2f", rate);
    print_row(label, r);
    for (const std::string& v : r.violations) {
      std::fprintf(stderr, "  INVARIANT VIOLATION: %s\n", v.c_str());
      ok = false;
    }
    std::printf("%s\n", r.to_json().c_str());
    sweep.push_back(std::move(r));
  }

  // Cross-rate monotonicity: a lossier fabric must never make the rollout
  // cheaper on the wire — chunk retries are non-decreasing in fault rate.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].report.chunk_retries < sweep[i - 1].report.chunk_retries) {
      std::fprintf(stderr,
                   "  INVARIANT VIOLATION: retries dropped from %zu to %zu as fault rate "
                   "rose %.2f -> %.2f\n",
                   sweep[i - 1].report.chunk_retries, sweep[i].report.chunk_retries,
                   rates[i - 1], rates[i]);
      ok = false;
    }
  }

  // Bad-package scenario: canary-wave halt + paced fleet rollback, on a
  // mildly lossy fabric so the halt path composes with retries/resumes.
  {
    OtaSoakConfig cfg = base;
    cfg.fault_rate = 0.05;
    cfg.bad_package = true;
    OtaSoakResult r = vedliot::serve::run_ota_soak(cfg);
    print_row("bad-pkg", r);
    for (const std::string& v : r.violations) {
      std::fprintf(stderr, "  INVARIANT VIOLATION: %s\n", v.c_str());
      ok = false;
    }
    std::printf("%s\n", r.to_json().c_str());
    sweep.push_back(std::move(r));
  }

  // Determinism: the same seed must reproduce the loss-heaviest run bit for
  // bit — transfers, waves, halts and paced rollbacks are all replayable.
  OtaSoakConfig again = base;
  again.fault_rate = rates.back();
  const OtaSoakResult rerun = vedliot::serve::run_ota_soak(again);
  if (rerun.to_json() != sweep[rates.size() - 1].to_json()) {
    std::fprintf(stderr, "  INVARIANT VIOLATION: re-run of seed 0x%llx diverged [%s]\n",
                 static_cast<unsigned long long>(base.seed), rerun.sim_describe.c_str());
    ok = false;
  }

  std::fprintf(stderr, ok ? "ota soak OK: all invariants hold\n" : "ota soak FAILED\n");
  return ok ? 0 : 1;
}
