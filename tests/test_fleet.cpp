// Tests for the fleet-scale serving layer: consistent-hash routing, the
// idempotency cache, traffic generation, the dynamic batcher's
// brownout-visible ExecConfig plumbing, chassis placement power honesty,
// and the full admit -> batch -> execute path's bitwise equality with
// per-request singleton runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph/zoo.hpp"
#include "opt/fusion.hpp"
#include "opt/quantize.hpp"
#include "platform/placement.hpp"
#include "runtime/executor.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/fleet_soak.hpp"
#include "serve/ring.hpp"
#include "serve/traffic.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace vedliot::serve {
namespace {

// ---------------------------------------------------------------------------
// Consistent-hash ring
// ---------------------------------------------------------------------------

TEST(HashRing, RoutesDeterministicallyAndOrderIndependent) {
  HashRing a(64);
  HashRing b(64);
  for (const char* m : {"r0", "r1", "r2"}) a.add(m);
  for (const char* m : {"r2", "r0", "r1"}) b.add(m);  // different order
  for (int i = 0; i < 200; ++i) {
    const std::string key = "client" + std::to_string(i);
    EXPECT_EQ(a.route(key), b.route(key));
  }
}

TEST(HashRing, RemovalRemapsOnlyTheRemovedMembersKeys) {
  HashRing ring(64);
  for (const char* m : {"r0", "r1", "r2", "r3"}) ring.add(m);
  std::map<std::string, std::string> before;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "client" + std::to_string(i);
    before[key] = ring.route(key);
  }
  ring.remove("r2");
  for (const auto& [key, owner] : before) {
    if (owner != "r2") {
      EXPECT_EQ(ring.route(key), owner) << key;  // untouched arc
    } else {
      EXPECT_NE(ring.route(key), "r2");
    }
  }
}

TEST(HashRing, VirtualNodesKeepLoadRoughlyBalanced) {
  // Virtual nodes are the smoothing mechanism: a single point per member
  // leaves arc lengths wildly uneven, many points average them out. Check
  // both that 256 vnodes hold every member within 4x of fair share and
  // that they are measurably smoother than a 4-vnode ring.
  auto spread = [](const std::map<std::string, double>& load) {
    double lo = 1.0, hi = 0.0;
    for (const auto& [member, fraction] : load) {
      lo = std::min(lo, fraction);
      hi = std::max(hi, fraction);
    }
    return hi / lo;
  };
  HashRing smooth(256);
  HashRing coarse(4);
  for (int i = 0; i < 8; ++i) {
    smooth.add("replica" + std::to_string(i));
    coarse.add("replica" + std::to_string(i));
  }
  const auto load = smooth.load_fractions(4096);
  ASSERT_EQ(load.size(), 8u);
  for (const auto& [member, fraction] : load) {
    EXPECT_GT(fraction, 0.125 / 4.0) << member;  // no starved member
    EXPECT_LT(fraction, 0.125 * 4.0) << member;  // no hot-spotted member
  }
  EXPECT_LT(spread(load), spread(coarse.load_fractions(4096)));
}

TEST(HashRing, WeightedMembersOwnProportionalArcs) {
  HashRing ring(256);
  ring.add("fast", 1.0);
  ring.add("slow", 0.25);
  const auto load = ring.load_fractions(8192);
  // Expected split 0.8 / 0.2; allow generous hash-variance slack while
  // still distinguishing it decisively from an even split.
  EXPECT_GT(load.at("fast"), 0.65);
  EXPECT_LT(load.at("slow"), 0.35);
  EXPECT_GT(load.at("slow"), 0.05);
  EXPECT_THROW(ring.add("zero", 0.0), InvalidArgument);
  EXPECT_THROW(ring.add("negative", -1.0), InvalidArgument);
}

TEST(HashRing, RejectsDuplicatesEmptyNamesAndUnknownRemovals) {
  HashRing ring(8);
  ring.add("r0");
  EXPECT_THROW(ring.add("r0"), InvalidArgument);
  EXPECT_THROW(ring.add(""), InvalidArgument);
  EXPECT_THROW(ring.remove("ghost"), NotFound);
  ring.remove("r0");
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW((void)ring.route("anyone"), Error);
}

// ---------------------------------------------------------------------------
// Idempotency response cache
// ---------------------------------------------------------------------------

Response canned_response(std::uint64_t id) {
  Response r;
  r.request_id = id;
  r.status = ResponseStatus::kOk;
  return r;
}

TEST(ResponseCache, HitsRefreshRecencyAndEvictLru) {
  ResponseCache cache(2);
  cache.put("a", canned_response(1));
  cache.put("b", canned_response(2));
  ASSERT_TRUE(cache.get("a").has_value());  // refresh "a": now "b" is LRU
  cache.put("c", canned_response(3));       // evicts "b"
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ResponseCache, EmptyKeysNeverCache) {
  ResponseCache cache(4);
  cache.put("", canned_response(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get("").has_value());
}

// ---------------------------------------------------------------------------
// Traffic generation
// ---------------------------------------------------------------------------

TEST(Traffic, DeterministicSortedAndVersioned) {
  TrafficConfig cfg;
  cfg.pattern = TrafficPattern::kDiurnal;
  cfg.duration_s = 0.5;
  cfg.base_hz = 500;
  const auto a = generate_traffic(cfg);
  const auto b = generate_traffic(cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].client, b[i].client);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].version, kServeApiVersion);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
    }
    EXPECT_GT(a[i].deadline_s, a[i].arrival_s);
  }
}

TEST(Traffic, RetryStormSharesIdempotencyKeys) {
  TrafficConfig cfg;
  cfg.pattern = TrafficPattern::kRetryStorm;
  cfg.duration_s = 0.5;
  cfg.base_hz = 200;
  const auto load = generate_traffic(cfg);
  std::map<std::string, std::size_t> by_key;
  for (const Request& r : load) {
    if (!r.idempotency_key.empty()) ++by_key[r.idempotency_key];
  }
  // At least one storm wave re-submitted the same key many times, and
  // every share of one key shares one payload (identical work).
  std::size_t max_repeats = 0;
  for (const auto& [key, count] : by_key) max_repeats = std::max(max_repeats, count);
  EXPECT_GE(max_repeats, cfg.storm_burst / 2);
  std::map<std::string, std::set<std::uint64_t>> payloads;
  for (const Request& r : load) {
    if (!r.idempotency_key.empty()) payloads[r.idempotency_key].insert(r.payload);
  }
  for (const auto& [key, set] : payloads) EXPECT_EQ(set.size(), 1u) << key;
}

TEST(Traffic, ZipfConcentratesOnHotRanks) {
  ZipfSampler zipf(1'000'000, 1.1);
  Rng rng(42);
  std::size_t head = 0;
  const std::size_t draws = 4096;
  for (std::size_t i = 0; i < draws; ++i) {
    if (zipf.sample(rng.uniform()) < 100) ++head;  // hottest 100 of 1M
  }
  // Heavy tail: the top 0.01% of the population draws a large share.
  EXPECT_GT(head, draws / 10);
}

// ---------------------------------------------------------------------------
// Dynamic batcher: brownout shrink is visible through the Session API
// ---------------------------------------------------------------------------

Graph small_mlp(std::uint64_t seed) {
  Graph g = zoo::micro_mlp("fleet-test", 1, 16, {16}, 4);
  Rng rng(seed);
  g.materialize_weights(rng);
  return g;
}

TEST(DynamicBatcher, BrownoutShrinkEnforcedByBucketSessions) {
  Graph g = small_mlp(11);
  DynamicBatcher::Config bc;
  bc.max_batch = 8;
  DynamicBatcher batcher(g, bc);
  EXPECT_EQ(batcher.effective_max_batch(), 8);

  // A brownout rung shrinks the cap live. The wide buckets must now refuse
  // their own feeds through Session's admission check — the shrink is
  // runtime-enforced, not batcher bookkeeping.
  runtime::ExecConfig rung;
  rung.max_batch = 2;
  batcher.set_exec_config(rung);
  EXPECT_EQ(batcher.effective_max_batch(), 2);

  Rng data_rng(12);
  Tensor wide(Shape{8, 16}, data_rng.normal_vector(8 * 16));
  EXPECT_THROW((void)batcher.bucket_session(8).run_single(wide), ExecError);
  Tensor narrow(Shape{2, 16}, data_rng.normal_vector(2 * 16));
  EXPECT_NO_THROW((void)batcher.bucket_session(2).run_single(narrow));

  // Recovery restores the full ladder.
  batcher.set_exec_config({});
  EXPECT_EQ(batcher.effective_max_batch(), 8);
  EXPECT_NO_THROW((void)batcher.bucket_session(8).run_single(wide));
}

TEST(DynamicBatcher, PadsToBucketAndSplitsBitwise) {
  Graph g = small_mlp(13);
  DynamicBatcher::Config bc;
  bc.max_batch = 4;
  DynamicBatcher batcher(g, bc);

  Rng data_rng(14);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 3; ++i) inputs.emplace_back(Shape{1, 16}, data_rng.normal_vector(16));
  const auto outputs = batcher.run(inputs);  // 3 lanes on the width-4 bucket
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_EQ(batcher.padded_lanes(), 1u);

  const auto single = runtime::make_session(g, {});
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Tensor ref = single->run_single(inputs[i]);
    EXPECT_EQ(util::crc32(outputs[i].data()), util::crc32(ref.data())) << i;
  }
}

// ---------------------------------------------------------------------------
// Chassis placement and power honesty
// ---------------------------------------------------------------------------

TEST(FleetPlacement, InstallsUnderBudgetsAndMetersPower) {
  platform::FleetPlacement::Config cfg;
  cfg.board = platform::recs_box();
  cfg.modules = {"COMe-XavierAGX", "COMe-D1577"};
  platform::FleetPlacement placement(cfg);

  for (int i = 0; i < 6; ++i) {
    const auto& p = placement.place("replica" + std::to_string(i));
    EXPECT_FALSE(p.slot.empty());
  }
  placement.meter("replica0", /*joules=*/5.0, /*seconds=*/1.0);
  const auto report = placement.power_report();
  ASSERT_EQ(report.size(), 6u);
  for (const auto& slot : report) {
    EXPECT_GT(slot.budget_w, 0.0);
    EXPECT_LE(slot.avg_power_w(), slot.budget_w + 1e-9) << slot.replica;
  }
}

// ---------------------------------------------------------------------------
// Fleet soaks: invariants, determinism, autoscaling
// ---------------------------------------------------------------------------

FleetSoakConfig quick_soak() {
  FleetSoakConfig cfg;
  cfg.duration_s = 0.25;
  cfg.base_hz = 400;
  cfg.fleet_size = 2;
  cfg.autoscale = false;
  return cfg;
}

TEST(FleetSoak, AnalyticInvariantsHold) {
  const FleetSoakResult r = run_fleet_soak(quick_soak());
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_GT(r.report.offered, 0u);
  EXPECT_EQ(r.report.responses.size(), r.report.offered);
}

TEST(FleetSoak, SameSeedIsBitwiseDeterministic) {
  const FleetSoakResult a = run_fleet_soak(quick_soak());
  const FleetSoakResult b = run_fleet_soak(quick_soak());
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(FleetSoak, AutoscaleAddsReplicasUnderFlashCrowd) {
  FleetSoakConfig cfg = quick_soak();
  cfg.pattern = TrafficPattern::kFlashCrowd;
  cfg.duration_s = 0.5;
  cfg.base_hz = 2000;
  cfg.fleet_size = 4;
  cfg.autoscale = true;
  const FleetSoakResult r = run_fleet_soak(cfg);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_GT(r.report.scale_ups, 0u);
  EXPECT_LE(r.report.max_replicas, cfg.fleet_size);
}

TEST(FleetSoak, MoreReplicasNeverServeLess) {
  std::vector<FleetSoakResult> sweep;
  for (std::size_t size : {1, 2, 4}) {
    FleetSoakConfig cfg = quick_soak();
    cfg.base_hz = 1200;  // overloaded at size 1, so capacity matters
    cfg.fleet_size = size;
    sweep.push_back(run_fleet_soak(cfg));
  }
  const auto violations = check_fleet_goodput_monotone(sweep);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations.front());
}

// ---------------------------------------------------------------------------
// Full-path batched-vs-singleton bitwise equality: ResNet-50 / MobileNetV3,
// float and int8, through admit -> route -> coalesce -> execute.
// ---------------------------------------------------------------------------

/// BN-fold + activation-fuse + calibrate, the int8 deployment pipeline.
Graph deploy_ready_int8(Graph g, std::uint64_t seed, const Shape& input_shape) {
  Rng rng(seed);
  g.materialize_weights(rng);
  opt::FuseBatchNormPass bn;
  bn.run(g);
  opt::FuseActivationPass act;
  act.run(g);
  std::vector<Tensor> samples;
  Rng data_rng(seed + 1);
  for (int i = 0; i < 2; ++i) {
    samples.emplace_back(input_shape,
                         data_rng.normal_vector(static_cast<std::size_t>(input_shape.numel())));
  }
  opt::calibrate_activations(g, samples, Calibration::kMinMax);
  return g;
}

struct EqualityCase {
  const char* model;
  bool quantized;
};

class FleetBatchedEquality : public ::testing::TestWithParam<EqualityCase> {};

TEST_P(FleetBatchedEquality, LanesMatchSingletonRunsBitwise) {
  const auto& param = GetParam();
  Graph model = param.model == std::string("resnet50")
                    ? zoo::resnet50(1, 10, 32)
                    : zoo::mobilenet_v3_large(1, 10, 32);
  if (param.quantized) {
    model = deploy_ready_int8(std::move(model), 0xBEEF, Shape{1, 3, 32, 32});
  } else {
    Rng rng(0xBEEF);
    model.materialize_weights(rng);
  }

  FleetConfig cfg;
  cfg.graph = &model;
  cfg.quantized = param.quantized;
  cfg.execute = true;
  cfg.max_batch = 2;  // buckets 1 and 2: enough to prove coalescing
  cfg.initial_replicas = 1;
  cfg.min_replicas = 1;
  cfg.max_replicas = 1;
  cfg.seed = 0xF1EE7;

  Fleet fleet(cfg);
  for (int i = 0; i < 4; ++i) {
    Request r;
    r.client = "client" + std::to_string(i);
    r.arrival_s = 0.0;  // simultaneous: forces coalescing into batches
    r.deadline_s = 60.0;
    r.payload = 1000 + static_cast<std::uint64_t>(i);
    fleet.submit(std::move(r));
  }
  const FleetReport report = fleet.run(0.5);

  ASSERT_EQ(report.responses.size(), 4u);
  EXPECT_GT(report.batches, 0u);
  bool saw_coalesced = false;
  for (const ServeEvent& e : report.events) {
    if (e.kind == ServeEventKind::kBatchExecuted && e.value > 1.0) saw_coalesced = true;
  }
  EXPECT_TRUE(saw_coalesced) << "no batch wider than one lane was executed";

  // Every delivered CRC must equal a from-scratch singleton run of the
  // same synthesized input on a batch-1 build of the same model.
  const Graph lane_graph = rebatched(model, 1);
  auto single = param.quantized ? runtime::make_quantized_session(lane_graph, {})
                                : runtime::make_session(lane_graph, {});
  std::size_t checked = 0;
  for (const Response& resp : report.responses) {
    ASSERT_EQ(resp.status, ResponseStatus::kOk) << resp.request_id;
    if (resp.cache_hit) continue;
    Request probe;
    probe.id = resp.request_id;
    probe.payload = 999 + resp.request_id;  // ids assigned 1..4 in submit order
    probe.batch = 1;
    const Tensor x = synthesize_input(model, cfg.seed, probe);
    const Tensor y = single->run_single(x);
    EXPECT_EQ(resp.output_crc32, util::crc32(y.data())) << resp.request_id;
    ++checked;
  }
  EXPECT_GE(checked, 3u);
}

// MobileNetV3 int8 is excluded: the integer executor rejects fused HSwish
// (Relu/Relu6 only), matching the PR 5 serving soak where the mnv3-int8
// ladder rung is declared but never executed. The rejection is pinned below.
INSTANTIATE_TEST_SUITE_P(Models, FleetBatchedEquality,
                         ::testing::Values(EqualityCase{"resnet50", false},
                                           EqualityCase{"resnet50", true},
                                           EqualityCase{"mnv3", false}),
                         [](const ::testing::TestParamInfo<EqualityCase>& info) {
                           return std::string(info.param.model) +
                                  (info.param.quantized ? "_int8" : "_f32");
                         });

TEST(FleetBatchedEqualityLimits, MobileNetV3Int8IsRejectedAsUnsupported) {
  Graph model = deploy_ready_int8(zoo::mobilenet_v3_large(1, 10, 32), 0xBEEF,
                                  Shape{1, 3, 32, 32});
  EXPECT_THROW((void)runtime::make_quantized_session(model, {})->run_single(Tensor(
                   Shape{1, 3, 32, 32}, std::vector<float>(3 * 32 * 32, 0.5f))),
               Unsupported);
}

}  // namespace
}  // namespace vedliot::serve
