#include "security/wasm.hpp"

#include <cstring>

namespace vedliot::security {

std::vector<std::uint8_t> WModule::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(code.size() * 5 + data.size());
  for (const auto& ins : code) {
    out.push_back(static_cast<std::uint8_t>(ins.op));
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(static_cast<std::uint32_t>(ins.imm) >> (8 * i)));
    }
  }
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::uint32_t WModule::find_function(const std::string& name) const {
  for (std::uint32_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) return i;
  }
  throw NotFound("wasm module has no function " + name);
}

WasmVm::WasmVm(WModule module) : module_(std::move(module)), memory_(module_.memory_bytes, 0) {
  VEDLIOT_CHECK(module_.data.size() <= memory_.size(), "data segment exceeds linear memory");
  std::memcpy(memory_.data(), module_.data.data(), module_.data.size());
}

void WasmVm::add_host(HostImport import) { hosts_.push_back(std::move(import)); }

std::int32_t WasmVm::invoke(const std::string& fn, const std::vector<std::int32_t>& args) {
  return call(module_.find_function(fn), args, 0);
}

std::int32_t WasmVm::call(std::uint32_t fn_index, const std::vector<std::int32_t>& args,
                          int depth) {
  if (depth > 256) throw WasmTrap("call stack exhausted");
  VEDLIOT_CHECK(fn_index < module_.functions.size(), "function index out of range");
  const WFunction& fn = module_.functions[fn_index];
  if (args.size() != fn.nargs) {
    throw WasmTrap("function " + fn.name + " expects " + std::to_string(fn.nargs) + " args");
  }
  std::vector<std::int32_t> locals(std::max<std::uint32_t>(fn.nlocals, fn.nargs), 0);
  std::copy(args.begin(), args.end(), locals.begin());

  std::vector<std::int32_t> stack;
  auto pop = [&]() {
    if (stack.empty()) throw WasmTrap("value stack underflow in " + fn.name);
    const std::int32_t v = stack.back();
    stack.pop_back();
    return v;
  };
  auto mem_check = [&](std::int64_t addr) {
    if (addr < 0 || addr + 4 > static_cast<std::int64_t>(memory_.size())) {
      throw WasmTrap("out-of-bounds linear memory access at " + std::to_string(addr));
    }
  };

  std::uint32_t pc = fn.entry;
  while (true) {
    if (pc >= module_.code.size()) throw WasmTrap("pc out of range in " + fn.name);
    if (++retired_ > fuel_limit_) throw WasmTrap("fuel exhausted");
    const WInstr ins = module_.code[pc];
    ++pc;
    switch (ins.op) {
      case WOp::kConst: stack.push_back(ins.imm); break;
      case WOp::kLocalGet: {
        const auto i = static_cast<std::size_t>(ins.imm);
        if (i >= locals.size()) throw WasmTrap("local index out of range");
        stack.push_back(locals[i]);
        break;
      }
      case WOp::kLocalSet: {
        const auto i = static_cast<std::size_t>(ins.imm);
        if (i >= locals.size()) throw WasmTrap("local index out of range");
        locals[i] = pop();
        break;
      }
      case WOp::kAdd: { const auto b = pop(), a = pop(); stack.push_back(static_cast<std::int32_t>(
          static_cast<std::uint32_t>(a) + static_cast<std::uint32_t>(b))); break; }
      case WOp::kSub: { const auto b = pop(), a = pop(); stack.push_back(static_cast<std::int32_t>(
          static_cast<std::uint32_t>(a) - static_cast<std::uint32_t>(b))); break; }
      case WOp::kMul: { const auto b = pop(), a = pop(); stack.push_back(static_cast<std::int32_t>(
          static_cast<std::uint32_t>(a) * static_cast<std::uint32_t>(b))); break; }
      case WOp::kDivS: {
        const auto b = pop(), a = pop();
        if (b == 0) throw WasmTrap("integer division by zero");
        if (a == INT32_MIN && b == -1) throw WasmTrap("integer overflow in division");
        stack.push_back(a / b);
        break;
      }
      case WOp::kRemS: {
        const auto b = pop(), a = pop();
        if (b == 0) throw WasmTrap("integer remainder by zero");
        if (a == INT32_MIN && b == -1) { stack.push_back(0); break; }
        stack.push_back(a % b);
        break;
      }
      case WOp::kAnd: { const auto b = pop(), a = pop(); stack.push_back(a & b); break; }
      case WOp::kOr: { const auto b = pop(), a = pop(); stack.push_back(a | b); break; }
      case WOp::kXor: { const auto b = pop(), a = pop(); stack.push_back(a ^ b); break; }
      case WOp::kShl: { const auto b = pop(), a = pop(); stack.push_back(static_cast<std::int32_t>(
          static_cast<std::uint32_t>(a) << (static_cast<std::uint32_t>(b) & 31u))); break; }
      case WOp::kShrS: { const auto b = pop(), a = pop(); stack.push_back(a >> (static_cast<std::uint32_t>(b) & 31u)); break; }
      case WOp::kEq: { const auto b = pop(), a = pop(); stack.push_back(a == b ? 1 : 0); break; }
      case WOp::kNe: { const auto b = pop(), a = pop(); stack.push_back(a != b ? 1 : 0); break; }
      case WOp::kLtS: { const auto b = pop(), a = pop(); stack.push_back(a < b ? 1 : 0); break; }
      case WOp::kGtS: { const auto b = pop(), a = pop(); stack.push_back(a > b ? 1 : 0); break; }
      case WOp::kLeS: { const auto b = pop(), a = pop(); stack.push_back(a <= b ? 1 : 0); break; }
      case WOp::kGeS: { const auto b = pop(), a = pop(); stack.push_back(a >= b ? 1 : 0); break; }
      case WOp::kLoad: {
        const std::int64_t addr = static_cast<std::int64_t>(pop()) + ins.imm;
        mem_check(addr);
        std::int32_t v;
        std::memcpy(&v, memory_.data() + addr, 4);
        stack.push_back(v);
        break;
      }
      case WOp::kStore: {
        const std::int32_t v = pop();
        const std::int64_t addr = static_cast<std::int64_t>(pop()) + ins.imm;
        mem_check(addr);
        std::memcpy(memory_.data() + addr, &v, 4);
        break;
      }
      case WOp::kJmp:
        pc = static_cast<std::uint32_t>(ins.imm);
        break;
      case WOp::kJmpIfZ:
        if (pop() == 0) pc = static_cast<std::uint32_t>(ins.imm);
        break;
      case WOp::kCall: {
        const auto callee = static_cast<std::uint32_t>(ins.imm);
        if (callee >= module_.functions.size()) throw WasmTrap("call target out of range");
        const WFunction& cf = module_.functions[callee];
        std::vector<std::int32_t> cargs(cf.nargs);
        for (std::size_t i = cf.nargs; i > 0; --i) cargs[i - 1] = pop();
        const std::int32_t ret = call(callee, cargs, depth + 1);
        if (cf.returns_value) stack.push_back(ret);
        break;
      }
      case WOp::kHostCall: {
        const auto hi = static_cast<std::size_t>(ins.imm);
        if (hi >= hosts_.size()) throw WasmTrap("host import out of range");
        const HostImport& h = hosts_[hi];
        std::vector<std::int32_t> hargs(h.nargs);
        for (std::size_t i = h.nargs; i > 0; --i) hargs[i - 1] = pop();
        HostContext ctx{memory_};
        stack.push_back(h.fn(ctx, hargs));
        break;
      }
      case WOp::kRet:
        return fn.returns_value ? pop() : 0;
      case WOp::kDrop:
        pop();
        break;
      case WOp::kHalt:
        return stack.empty() ? 0 : stack.back();
    }
  }
}

}  // namespace vedliot::security
