#pragma once
/// \file monitors.hpp
/// \brief Input-data quality monitors (Sec. IV-B, first direction):
/// "characterizing the quality of the input data, detecting situations in
/// which these data may have been accidentally or even maliciously
/// compromised", with per-kind detectors (time series, image) and error
/// types (outliers, stuck-at, noise, exposure).

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace vedliot::safety {

enum class DataVerdict {
  kOk,
  kOutlier,      ///< point anomaly (robust z-score)
  kStuckAt,      ///< sensor frozen at a constant value
  kNoisy,        ///< variance above the calibrated envelope
  kMissing,      ///< NaN / inf
  kOutOfRange,   ///< violates the physical range
};

std::string_view verdict_name(DataVerdict v);

/// Sliding-window monitor for scalar sensor streams.
///
/// Uses median/MAD for outlier robustness (a single faulty spike must not
/// poison the detector that is supposed to flag it).
class TimeSeriesMonitor {
 public:
  struct Config {
    std::size_t window = 64;          ///< history length
    double outlier_z = 5.0;           ///< robust z-score threshold
    double stuck_epsilon = 1e-9;      ///< |x - prev| below this counts as stuck
    std::size_t stuck_run = 10;       ///< consecutive stuck samples to flag
    double range_lo = -1e12;
    double range_hi = 1e12;
    double noise_factor = 8.0;        ///< flag when short-term MAD exceeds
                                      ///< calibrated MAD by this factor
  };

  explicit TimeSeriesMonitor(Config config);

  /// Feed one sample; returns the verdict for it.
  DataVerdict check(double x);

  /// Replacement value for a bad sample (last known-good, else median).
  double corrected() const { return last_good_; }

  std::size_t samples_seen() const { return seen_; }
  std::size_t anomalies() const { return anomalies_; }

 private:
  Config cfg_;
  std::deque<double> window_;
  double last_good_ = 0.0;
  double prev_ = 0.0;
  std::size_t stuck_count_ = 0;
  std::size_t seen_ = 0;
  std::size_t anomalies_ = 0;
};

/// Frame-level monitor for camera inputs (rank-4 single-image tensors).
class ImageMonitor {
 public:
  struct Config {
    double min_mean = 0.02;     ///< under-exposure threshold (on [0,1] data)
    double max_mean = 0.98;     ///< over-exposure threshold
    double max_noise = 0.15;    ///< mean absolute Laplacian threshold
    double min_contrast = 0.01; ///< stddev floor (stuck/covered lens)
  };

  ImageMonitor() : ImageMonitor(Config{}) {}
  explicit ImageMonitor(Config config);

  DataVerdict check(const Tensor& frame) const;

  /// Mean absolute 4-neighbour Laplacian — the noise estimator.
  static double noise_level(const Tensor& frame);
  static double mean_brightness(const Tensor& frame);
  static double contrast(const Tensor& frame);

 private:
  Config cfg_;
};

/// Correction policy applied on flagged data before it reaches the model
/// ("may be corrected, or the affected data may be removed").
enum class CorrectionAction { kPass, kReplace, kDrop };

CorrectionAction correction_for(DataVerdict v);

}  // namespace vedliot::safety
