#pragma once
/// \file ring.hpp
/// \brief Consistent-hash ring: stable client -> replica routing for the
/// fleet front-end.
///
/// Classic Karger ring with virtual nodes: each replica owns a set of
/// points on a 64-bit hash circle (avalanche-mixed FNV-1a of
/// "replica/vnode-i"), and a client key routes to the first point
/// clockwise from its own hash. The properties the fleet relies on:
///
///  * stability — adding or removing one replica remaps only the keys in
///    the arcs that replica owned (~its share of traffic), so an
///    autoscaling step does not reshuffle every client's queue position
///    or cache affinity;
///  * determinism — placement is a pure function of the member names,
///    weights, and the key, independent of insertion order, so same-seed
///    fleet runs route identically;
///  * balance — virtual nodes smooth the arc-length variance; 64 vnodes
///    keeps the max/mean load ratio low enough for the soak's balance
///    check;
///  * capacity weighting — a member added with weight w owns ~w times the
///    arc length of a weight-1 member. The fleet weights each replica by
///    its module's analytic throughput, so a slow CPU module drowning
///    behind an even split cannot drag fleet goodput below a smaller
///    fleet of fast modules ("more replicas never serve less").

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vedliot::serve {

class HashRing {
 public:
  /// \p vnodes points per member on the circle (>= 1).
  explicit HashRing(std::size_t vnodes = 64);

  /// Add a member owning `round(vnodes * weight)` circle points (at least
  /// one). Throws InvalidArgument on duplicates, empty names, or
  /// non-positive weights.
  void add(const std::string& member, double weight = 1.0);

  /// Remove a member; only its own arcs are reassigned. Throws NotFound
  /// for unknown members.
  void remove(const std::string& member);

  bool contains(const std::string& member) const;
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// Members in insertion-independent (sorted) order.
  std::vector<std::string> members() const;

  /// The member owning \p key's point on the circle. Throws Error when the
  /// ring is empty.
  const std::string& route(const std::string& key) const;

  /// Fraction of a dense key probe that lands on each member (diagnostic
  /// for the balance invariant): keys "probe-0".."probe-(n-1)".
  std::map<std::string, double> load_fractions(std::size_t probes = 4096) const;

 private:
  std::size_t vnodes_;
  std::vector<std::string> members_;           ///< sorted unique names
  std::map<std::uint64_t, std::string> circle_;  ///< point -> owner
};

}  // namespace vedliot::serve
