#include "hw/accel.hpp"

#include <algorithm>
#include <cmath>

#include "graph/cost.hpp"
#include "util/error.hpp"

namespace vedliot::hw {

std::string_view accelerator_kind_name(AcceleratorKind k) {
  switch (k) {
    case AcceleratorKind::kOffTheShelf: return "off-the-shelf";
    case AcceleratorKind::kStaticConfig: return "static-config";
    case AcceleratorKind::kReconfigurable: return "reconfigurable";
    case AcceleratorKind::kCoDesign: return "co-design";
  }
  throw InvalidArgument("unknown AcceleratorKind");
}

PerfEstimate OffTheShelfAccelerator::estimate_graph(const Graph& g, DType dt) const {
  return estimate(spec_, g, dt);
}

StaticConfigAccelerator::StaticConfigAccelerator(DeviceSpec base, std::string configured_for_model,
                                                 double matched_util_boost, double mismatch_penalty)
    : base_(std::move(base)),
      name_(base_.name + "+static[" + configured_for_model + "]"),
      configured_for_(std::move(configured_for_model)),
      boost_(matched_util_boost),
      penalty_(mismatch_penalty) {}

PerfEstimate StaticConfigAccelerator::estimate_graph(const Graph& g, DType dt) const {
  DeviceSpec spec = base_;
  const double factor = g.name() == configured_for_ ? boost_ : penalty_;
  spec.util_b1 = std::min(0.95, spec.util_b1 * factor);
  spec.util_sat = std::min(0.95, spec.util_sat * factor);
  spec.name = name_;
  return estimate(spec, g, dt);
}

ReconfigurableAccelerator::ReconfigurableAccelerator(DeviceSpec base,
                                                     std::vector<ReconfigProfile> profiles,
                                                     double config_bandwidth_gbs)
    : base_(std::move(base)), profiles_(std::move(profiles)), config_bw_(config_bandwidth_gbs) {
  VEDLIOT_CHECK(!profiles_.empty(), "ReconfigurableAccelerator needs at least one profile");
}

double ReconfigurableAccelerator::reconfigure(const std::string& profile_name) {
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    if (profiles_[i].name == profile_name) {
      if (i == active_) return 0.0;  // already loaded
      active_ = i;
      return profiles_[i].bitstream_mib * 1024.0 * 1024.0 / (config_bw_ * 1e9);
    }
  }
  throw NotFound("no reconfiguration profile named " + profile_name);
}

DeviceSpec ReconfigurableAccelerator::effective_spec() const {
  DeviceSpec spec = base_;
  const auto& p = profiles_[active_];
  spec.peak_gops *= p.peak_scale;
  spec.tdp_w *= p.power_scale;
  spec.idle_w *= p.power_scale;
  spec.name = base_.name + "@" + p.name;
  return spec;
}

PerfEstimate ReconfigurableAccelerator::estimate_graph(const Graph& g, DType dt) const {
  return estimate(effective_spec(), g, dt);
}

std::string ReconfigurableAccelerator::best_profile_for(const Graph& g, DType dt,
                                                        double latency_budget_s) const {
  const ReconfigProfile* best = nullptr;
  double best_energy = 0.0;
  for (const auto& p : profiles_) {
    DeviceSpec spec = base_;
    spec.peak_gops *= p.peak_scale;
    spec.tdp_w *= p.power_scale;
    spec.idle_w *= p.power_scale;
    const PerfEstimate e = estimate(spec, g, dt);
    if (e.latency_s > latency_budget_s) continue;
    if (!best || e.energy_j < best_energy) {
      best = &p;
      best_energy = e.energy_j;
    }
  }
  if (!best) throw Unsupported("no profile meets the latency budget");
  return best->name;
}

// ---------------------------------------------------------------------------
// Co-design
// ---------------------------------------------------------------------------

double array_tiling_efficiency(const Graph& g, int pe_rows, int pe_cols) {
  VEDLIOT_CHECK(pe_rows >= 1 && pe_cols >= 1, "PE array dims must be positive");
  double weighted = 0.0, total_macs = 0.0;
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    const NodeCost c = node_cost(g, id);
    if (c.macs == 0) continue;
    std::int64_t oc, icg;
    if (n.kind == OpKind::kConv2d) {
      oc = n.attrs.get_int("out_channels");
      const auto groups = n.attrs.get_int_or("groups", 1);
      icg = g.node(n.inputs.front()).out_shape.c() / groups;
    } else {  // Dense
      oc = n.attrs.get_int("units");
      icg = g.node(n.inputs.front()).out_shape.dim(1);
    }
    auto tile_eff = [](std::int64_t dim, int pe) {
      const auto tiles = (dim + pe - 1) / pe;
      return static_cast<double>(dim) / static_cast<double>(tiles * pe);
    };
    const double eff = tile_eff(oc, pe_rows) * tile_eff(icg, pe_cols);
    weighted += eff * static_cast<double>(c.macs);
    total_macs += static_cast<double>(c.macs);
  }
  return total_macs > 0 ? weighted / total_macs : 1.0;
}

std::vector<DesignPoint> codesign_search(const Graph& g, const FabricBudget& budget) {
  const GraphCost cost = graph_cost(g);
  const double traffic = graph_traffic_bytes(g, DType::kINT8, DType::kINT8);
  const double wbytes = weight_bytes(g, DType::kINT8);
  constexpr double kDramGbs = 4.0;  // embedded LPDDR4 32-bit

  std::vector<DesignPoint> points;
  for (int rows = 8; rows <= budget.max_macs; rows *= 2) {
    for (int cols = 8; cols <= budget.max_macs; cols *= 2) {
      if (rows * cols > budget.max_macs) continue;
      for (double sram = 1.0; sram <= budget.max_sram_mib; sram *= 2.0) {
        DesignPoint p;
        p.pe_rows = rows;
        p.pe_cols = cols;
        p.sram_mib = sram;
        p.mean_pe_utilization = array_tiling_efficiency(g, rows, cols);

        const double peak_macs_s = static_cast<double>(rows * cols) * budget.clock_ghz * 1e9;
        const double compute_s =
            static_cast<double>(cost.macs) / (peak_macs_s * p.mean_pe_utilization);
        double eff_traffic = traffic;
        if (wbytes > sram * 1024 * 1024) eff_traffic += wbytes;  // weights re-streamed
        const double mem_s = eff_traffic / (kDramGbs * 1e9);
        p.latency_s = std::max(compute_s, mem_s);

        const double active_kmacs =
            static_cast<double>(rows * cols) / 1000.0 * p.mean_pe_utilization;
        p.power_w = budget.idle_w + budget.watts_per_kmac * active_kmacs + 0.2 * sram;
        p.energy_j = p.power_w * p.latency_s;
        points.push_back(p);
      }
    }
  }
  std::sort(points.begin(), points.end(),
            [](const DesignPoint& a, const DesignPoint& b) { return a.energy_j < b.energy_j; });
  return points;
}

namespace {
/// True when a node's value reaches a graph output only through shape-
/// preserving ops — widening such a node would change the model's API.
bool reaches_output_unreshaped(const Graph& g, NodeId id) {
  const auto consumers = g.consumers(id);
  if (consumers.empty()) return true;
  for (NodeId c : consumers) {
    const Node& n = g.node(c);
    const bool passthrough = op_is_activation(n.kind) || n.kind == OpKind::kSoftmax ||
                             n.kind == OpKind::kFlatten || n.kind == OpKind::kIdentity ||
                             n.kind == OpKind::kBatchNorm;
    if (passthrough && reaches_output_unreshaped(g, c)) return true;
  }
  return false;
}
}  // namespace

Graph apply_channel_rounding(const Graph& g, std::int64_t multiple) {
  VEDLIOT_CHECK(multiple >= 1, "channel multiple must be >= 1");
  Graph out = g.clone();
  auto round_up = [&](std::int64_t v) { return (v + multiple - 1) / multiple * multiple; };

  // Pass 1: widen regular convs and dense layers (never the heads — their
  // width is the model's API).
  for (NodeId id : out.topo_order()) {
    Node& n = out.node(id);
    const bool is_head = reaches_output_unreshaped(out, id);
    if (is_head) continue;
    if (n.kind == OpKind::kConv2d && n.attrs.get_int_or("groups", 1) == 1) {
      n.attrs.set_int("out_channels", round_up(n.attrs.get_int("out_channels")));
      n.weights.clear();  // shapes changed
    } else if (n.kind == OpKind::kDense) {
      n.attrs.set_int("units", round_up(n.attrs.get_int("units")));
      n.weights.clear();
    } else if (n.kind == OpKind::kBatchNorm) {
      n.weights.clear();
    }
  }

  // Pass 2: depthwise/grouped convs follow their (now wider) producer: a
  // conv whose groups equalled its input channel count stays depthwise.
  for (NodeId id : out.topo_order()) {
    Node& n = out.node(id);
    if (n.kind != OpKind::kConv2d) continue;
    const auto groups = n.attrs.get_int_or("groups", 1);
    if (groups == 1) continue;
    const auto old_oc = n.attrs.get_int("out_channels");
    VEDLIOT_CHECK(groups == old_oc, "only depthwise grouped convs are supported by rounding");
    const std::int64_t new_c = round_up(old_oc);
    n.attrs.set_int("out_channels", new_c);
    n.attrs.set_int("groups", new_c);
    n.weights.clear();
  }

  out.infer_all();

  // Pass 3: widening a producer changes the input-channel dimension of every
  // downstream parametric node, including heads that were themselves skipped.
  // Any node whose stored weights no longer match its (new) input shape must
  // drop them for re-materialization, or executors would read stale layouts.
  for (NodeId id : out.topo_order()) {
    Node& n = out.node(id);
    if (n.weights.empty() || !op_has_weights(n.kind)) continue;
    const Shape& in = out.node(n.inputs.front()).out_shape;
    Shape expect;
    switch (n.kind) {
      case OpKind::kConv2d: {
        const auto oc = n.attrs.get_int("out_channels");
        const auto k = n.attrs.get_int("kernel");
        expect = Shape{oc, in.c() / n.attrs.get_int_or("groups", 1), k, k};
        break;
      }
      case OpKind::kDense:
        expect = Shape{n.attrs.get_int("units"), in.dim(1)};
        break;
      case OpKind::kBatchNorm:
        expect = Shape{in.rank() == 4 ? in.c() : in.dim(1)};
        break;
      default:
        continue;
    }
    if (!(n.weights.front().shape() == expect)) n.weights.clear();
  }

  out.validate();
  return out;
}

}  // namespace vedliot::hw
