// Quickstart: the complete VEDLIoT design flow (Fig. 1) in one program.
//
//   1. Pick a model from the zoo (MobileNetV3-Large).
//   2. Run the optimizing toolchain (fusion + INT8 quantization).
//   3. Let the design flow select an accelerator on a uRECS node that
//      meets the latency / power / rate budgets.
//   4. Print the full report, including every rejected candidate and why.
//   5. Serve one frame through a traced runtime::Session and (optionally)
//      write the Chrome trace:  ./build/examples/quickstart trace.json
//
// Build & run:  ./build/examples/quickstart [trace.json]

#include <cstdio>
#include <iostream>

#include "core/designflow.hpp"
#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "obs/export.hpp"
#include "runtime/session.hpp"
#include "util/rng.hpp"

using namespace vedliot;

int main(int argc, char** argv) {
  std::printf("VEDLIoT quickstart: deploy MobileNetV3-Large to a uRECS edge node\n\n");

  // 1. Model.
  Graph model = zoo::mobilenet_v3_large();
  const auto cost = graph_cost(model);
  std::printf("model: %s — %.1f M params, %.0f MMACs per inference\n", model.name().c_str(),
              static_cast<double>(cost.params) / 1e6, static_cast<double>(cost.macs) / 1e6);

  // Materialize weights so the quantization pass has something to quantize
  // (deterministic seed: every run of this example is identical).
  Rng rng(1);
  model.materialize_weights(rng);

  // 2 + 3. Application requirements -> one design-flow call.
  core::DesignSpec spec;
  spec.application = "quickstart-classifier";
  spec.latency_budget_s = 0.050;  // 50 ms per frame
  spec.rate_hz = 10.0;            // sustained 10 fps
  spec.power_budget_w = 15.0;     // the uRECS envelope
  spec.platform = "uRECS";
  spec.quantize_int8 = true;
  spec.require_attestation = true;
  spec.enable_robustness_monitor = true;

  try {
    const core::FlowReport report = core::run_design_flow(model, spec);
    // 4. Everything the flow decided, as Markdown.
    std::cout << report.to_markdown() << "\n";
    std::printf("==> deploy to %s (%s): %.1f ms/inference, %.2f W duty-cycled\n",
                report.selected_module.c_str(), report.selected_device.c_str(),
                report.estimate.latency_s * 1e3, report.duty_cycled_power_w);
  } catch (const core::DesignFlowError& e) {
    std::printf("design flow failed: %s\n", e.what());
    return 1;
  }

  // 5. Observability: serve one frame through a traced Session. A smaller
  // classifier keeps the reference interpreter quick here; the span/metric
  // taxonomy is identical for any zoo model.
  Graph served = zoo::micro_cnn("quickstart-served", 1, 1, 24, 6);
  served.materialize_weights(rng);
  const Shape in_shape{1, 1, 24, 24};
  Rng data_rng(3);
  Tensor frame(in_shape, data_rng.normal_vector(static_cast<std::size_t>(in_shape.numel())));

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  runtime::RunOptions run_opts;
  run_opts.trace = &tracer;
  run_opts.metrics = &metrics;
  auto session = runtime::make_session(served, run_opts);
  const runtime::RunResult rr =
      session->run({{served.node(served.inputs().front()).name, frame}});

  std::printf("\ntraced serve on %s (%s backend): %zu nodes -> %zu spans\n",
              served.name().c_str(), session->backend().c_str(), rr.nodes_executed,
              tracer.spans().size());
  std::printf("%s\n", obs::metrics_table(metrics).c_str());
  if (argc > 1) {
    obs::write_chrome_trace(argv[1], tracer.spans());
    std::printf("wrote Chrome trace to %s (open in chrome://tracing)\n", argv[1]);
  }
  return 0;
}
