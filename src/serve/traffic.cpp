#include "serve/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace vedliot::serve {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Instantaneous aggregate rate at time t (the thinning target).
double rate_at(const TrafficConfig& cfg, double t) {
  switch (cfg.pattern) {
    case TrafficPattern::kSteady:
    case TrafficPattern::kRetryStorm:
      return cfg.base_hz;
    case TrafficPattern::kDiurnal:
      // One compressed day: quiet at the edges, peak mid-run.
      return cfg.base_hz *
             (1.0 + cfg.diurnal_depth * std::sin(2.0 * kPi * t / cfg.duration_s - kPi / 2.0));
    case TrafficPattern::kFlashCrowd: {
      const double lo = cfg.duration_s * (0.5 - cfg.flash_width / 2.0);
      const double hi = cfg.duration_s * (0.5 + cfg.flash_width / 2.0);
      return (t >= lo && t < hi) ? cfg.base_hz * cfg.flash_factor : cfg.base_hz;
    }
  }
  throw InvalidArgument("unknown traffic pattern");
}

double peak_rate(const TrafficConfig& cfg) {
  switch (cfg.pattern) {
    case TrafficPattern::kSteady:
    case TrafficPattern::kRetryStorm:
      return cfg.base_hz;
    case TrafficPattern::kDiurnal:
      return cfg.base_hz * (1.0 + cfg.diurnal_depth);
    case TrafficPattern::kFlashCrowd:
      return cfg.base_hz * std::max(1.0, cfg.flash_factor);
  }
  throw InvalidArgument("unknown traffic pattern");
}

}  // namespace

std::string_view traffic_pattern_name(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kSteady: return "steady";
    case TrafficPattern::kDiurnal: return "diurnal";
    case TrafficPattern::kFlashCrowd: return "flash-crowd";
    case TrafficPattern::kRetryStorm: return "retry-storm";
  }
  throw InvalidArgument("unknown traffic pattern");
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  VEDLIOT_CHECK(n_ >= 1, "zipf population must be >= 1");
  VEDLIOT_CHECK(s_ > 0, "zipf exponent must be positive");
  const double m = static_cast<double>(n_) + 1.0;
  harmonic_ = s_ == 1.0 ? std::log(m) : (std::pow(m, 1.0 - s_) - 1.0) / (1.0 - s_);
}

std::uint64_t ZipfSampler::sample(double u01) const {
  // Continuous inverse-CDF of the power-law density over [1, n+1]; the
  // floor is the sampled rank. Rank 0 (the hottest client) absorbs the
  // head of the distribution.
  const double u = std::clamp(u01, 0.0, std::nextafter(1.0, 0.0));
  double x;
  if (s_ == 1.0) {
    x = std::exp(u * harmonic_);
  } else {
    x = std::pow(1.0 + u * harmonic_ * (1.0 - s_), 1.0 / (1.0 - s_));
  }
  const auto rank = static_cast<std::uint64_t>(x) - 1;
  return std::min(rank, n_ - 1);
}

std::vector<Request> generate_traffic(const TrafficConfig& cfg) {
  VEDLIOT_CHECK(cfg.duration_s > 0, "traffic duration must be positive");
  VEDLIOT_CHECK(cfg.base_hz > 0, "base rate must be positive");
  VEDLIOT_CHECK(cfg.population >= 1, "client population must be >= 1");
  VEDLIOT_CHECK(cfg.interactive_share + cfg.batch_share <= 1.0,
                "priority shares must sum to <= 1");
  VEDLIOT_CHECK(cfg.deadline_s > 0, "deadline must be positive");
  VEDLIOT_CHECK(cfg.think_time_s >= 0, "think time must be >= 0");

  Rng rng(cfg.seed);
  const ZipfSampler zipf(cfg.population, cfg.zipf_s);
  std::vector<Request> out;

  // Thinned Poisson over the rate curve: candidates at the peak rate,
  // accepted with probability rate(t)/peak.
  const double peak = peak_rate(cfg);
  std::map<std::string, double> next_allowed;  ///< closed loop, touched clients
  double t = 0;
  std::uint64_t serial = 0;
  while (true) {
    t += -std::log(1.0 - rng.uniform()) / peak;
    if (t >= cfg.duration_s) break;
    if (!rng.chance(rate_at(cfg, t) / peak)) continue;

    Request r;
    r.client = "user" + std::to_string(zipf.sample(rng.uniform()));
    r.arrival_s = t;
    if (cfg.think_time_s > 0) {
      // Closed loop: a client cannot have two requests closer than its
      // think time — later picks of a hot client slide forward.
      double& gate = next_allowed[r.client];
      r.arrival_s = std::max(r.arrival_s, gate);
      gate = r.arrival_s + cfg.think_time_s;
      if (r.arrival_s >= cfg.duration_s) continue;
    }
    const double cls = rng.uniform();
    r.priority_class = cls < cfg.interactive_share ? PriorityClass::kInteractive
                       : cls < cfg.interactive_share + cfg.batch_share
                           ? PriorityClass::kBatch
                           : PriorityClass::kStandard;
    r.deadline_s = r.arrival_s + rng.jittered(cfg.deadline_s, 0.5);
    r.batch = rng.chance(cfg.multi_lane_share) ? 2 : 1;
    ++serial;
    if (rng.chance(cfg.idempotent_share)) {
      // Organic cacheable repeat: payloads repeat within a small pool, so
      // the same key genuinely recurs and the cache can answer it.
      r.payload = 1 + static_cast<std::uint64_t>(rng.uniform_int(0, 99));
      r.idempotency_key = "idem-" + std::to_string(r.payload);
    } else {
      r.payload = 1000 + serial;
    }
    out.push_back(std::move(r));
  }

  if (cfg.pattern == TrafficPattern::kRetryStorm) {
    // Synchronized waves of identical re-submissions: every request in a
    // wave shares one idempotency key and payload — the classic herd of
    // misbehaving clients re-sending the same work.
    for (std::size_t w = 0; w < cfg.storm_count; ++w) {
      const double at = cfg.duration_s * static_cast<double>(w + 1) /
                        static_cast<double>(cfg.storm_count + 1);
      const std::uint64_t payload = 500'000 + w;
      for (std::size_t b = 0; b < cfg.storm_burst; ++b) {
        Request r;
        r.client = "storm-client" + std::to_string(b % 8);
        r.arrival_s = at + 1e-4 * static_cast<double>(b);
        if (r.arrival_s >= cfg.duration_s) break;
        r.deadline_s = r.arrival_s + rng.jittered(cfg.deadline_s, 0.5);
        r.priority_class = PriorityClass::kStandard;
        r.payload = payload;
        r.idempotency_key = "storm-" + std::to_string(w);
        out.push_back(std::move(r));
      }
    }
  }

  std::stable_sort(out.begin(), out.end(), [](const Request& a, const Request& b) {
    return a.arrival_s < b.arrival_s;
  });
  return out;
}

}  // namespace vedliot::serve
