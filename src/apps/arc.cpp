#include "apps/arc.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace vedliot::apps {

ArcWaveformGenerator::ArcWaveformGenerator(Config config, std::uint64_t seed)
    : cfg_(config), rng_(seed) {
  VEDLIOT_CHECK(cfg_.trace_s > 0 && cfg_.sample_rate_hz > 0, "bad generator config");
}

void ArcWaveformGenerator::base_waveform(std::vector<float>& out) {
  const auto n = static_cast<std::size_t>(cfg_.trace_s * cfg_.sample_rate_hz);
  out.assign(n, 0.0f);
  const double ripple_freq = 20000.0;  // converter switching frequency
  const double phase = rng_.uniform(0.0, 2.0 * 3.141592653589793);
  double level = cfg_.dc_level_a;

  // Optional benign load step.
  std::size_t step_at = n;  // none
  double step_to = level;
  if (rng_.chance(cfg_.load_step_prob)) {
    step_at = static_cast<std::size_t>(rng_.uniform_int(static_cast<std::int64_t>(n / 5),
                                                        static_cast<std::int64_t>(4 * n / 5)));
    step_to = level * rng_.uniform(0.5, 1.6);
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (i == step_at) level = step_to;
    const double t = static_cast<double>(i) / cfg_.sample_rate_hz;
    const double ripple = cfg_.ripple_a * std::sin(2.0 * 3.141592653589793 * ripple_freq * t + phase);
    const double noise = rng_.normal(0.0, cfg_.ripple_a * 0.2);
    out[i] = static_cast<float>(level + ripple + noise);
  }
}

ArcTrace ArcWaveformGenerator::arc_trace() {
  ArcTrace trace;
  trace.sample_rate_hz = cfg_.sample_rate_hz;
  base_waveform(trace.current);
  const auto n = trace.current.size();
  const auto onset = static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::int64_t>(n / 5), static_cast<std::int64_t>(4 * n / 5)));
  trace.arc_onset = onset;

  // Arc physics proxy: the series arc drops the DC level slightly and
  // superimposes heavy-tailed broadband noise with random extinction/
  // re-ignition micro-gaps.
  double envelope = 0.0;
  for (std::size_t i = onset; i < n; ++i) {
    envelope = std::min(1.0, envelope + 0.02);  // arc develops over ~50 samples
    double burst = rng_.normal(0.0, cfg_.arc_noise_a * envelope);
    // Heavy tail: occasional large excursions (chaotic re-ignition).
    if (rng_.chance(0.05)) burst *= 3.0;
    trace.current[i] += static_cast<float>(burst - 0.3 * envelope);
  }
  return trace;
}

ArcTrace ArcWaveformGenerator::normal_trace() {
  ArcTrace trace;
  trace.sample_rate_hz = cfg_.sample_rate_hz;
  base_waveform(trace.current);
  trace.arc_onset = std::nullopt;
  return trace;
}

ArcDetector::ArcDetector(Config config) : cfg_(config) {
  VEDLIOT_CHECK(cfg_.window >= 8, "window too small");
  VEDLIOT_CHECK(cfg_.persistence >= 1, "persistence must be >= 1");
}

double ArcDetector::hf_energy(std::span<const float> w) {
  double acc = 0.0;
  for (std::size_t i = 1; i < w.size(); ++i) {
    const double d = static_cast<double>(w[i]) - w[i - 1];
    acc += d * d;
  }
  return acc / static_cast<double>(w.size() - 1);
}

double ArcDetector::lf_energy(std::span<const float> w) {
  double mean = 0.0;
  for (float v : w) mean += v;
  mean /= static_cast<double>(w.size());
  // Use the squared mean level as the low-band reference so a load step
  // (level change, little HF) does not trip the ratio.
  return std::max(mean * mean * 1e-4, 1e-9);
}

std::optional<std::size_t> ArcDetector::detect(const ArcTrace& trace) const {
  const auto& x = trace.current;
  std::size_t hits = 0;
  for (std::size_t start = 0; start + cfg_.window <= x.size(); start += cfg_.window) {
    std::span<const float> w(x.data() + start, cfg_.window);
    const double ratio = hf_energy(w) / lf_energy(w);
    if (ratio > cfg_.threshold) {
      ++hits;
      if (hits >= cfg_.persistence) return start + cfg_.window;  // decision point
    } else {
      hits = 0;
    }
  }
  return std::nullopt;
}

std::optional<double> ArcDetector::latency_s(const ArcTrace& trace) const {
  VEDLIOT_CHECK(trace.arc_onset.has_value(), "latency needs a labelled onset");
  const auto hit = detect(trace);
  if (!hit) return std::nullopt;
  if (*hit < *trace.arc_onset) return std::nullopt;  // tripped before the arc: a false alarm
  return static_cast<double>(*hit - *trace.arc_onset) / trace.sample_rate_hz;
}

ArcEvalResult evaluate_arc_detector(const ArcDetector& detector, ArcWaveformGenerator& gen,
                                    std::size_t arc_traces, std::size_t normal_traces) {
  ArcEvalResult r;
  std::vector<double> latencies;
  for (std::size_t i = 0; i < arc_traces; ++i) {
    const ArcTrace t = gen.arc_trace();
    ++r.arcs;
    const auto lat = detector.latency_s(t);
    if (lat) {
      ++r.detected;
      latencies.push_back(*lat * 1e3);
    }
  }
  for (std::size_t i = 0; i < normal_traces; ++i) {
    const ArcTrace t = gen.normal_trace();
    ++r.normals;
    if (detector.detect(t)) ++r.false_alarms;
  }
  if (!latencies.empty()) {
    r.mean_latency_ms = stats::mean(latencies);
    r.p99_latency_ms = stats::percentile(latencies, 99.0);
  }
  return r;
}

}  // namespace vedliot::apps
