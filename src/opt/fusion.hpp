#pragma once
/// \file fusion.hpp
/// \brief Operator fusion passes (Sec. III step 4: "operator fusion").

#include "opt/pass.hpp"

namespace vedliot::opt {

/// Fold BatchNorm into the preceding Conv2d/Dense.
///
/// When weights are materialized the fold is numeric: W' = W * gamma/sqrt(var+eps),
/// b' = (b - mean) * gamma/sqrt(var+eps) + beta, and the executor output is
/// preserved up to float rounding. On analytic graphs (no weights) the BN is
/// bypassed and the conv is tagged `fused_bn=1` so cost accounting still
/// reflects the fusion.
class FuseBatchNormPass : public Pass {
 public:
  std::string name() const override { return "fuse-batchnorm"; }
  PassResult run(Graph& g) override;
};

/// Fuse a unary activation into the preceding Conv2d/Dense (tag `fused_act`);
/// the executor applies the activation in the producer's epilogue, which is
/// how every real inference runtime avoids an extra memory round trip.
class FuseActivationPass : public Pass {
 public:
  std::string name() const override { return "fuse-activation"; }
  PassResult run(Graph& g) override;
};

/// Remove Identity nodes left behind by other rewrites.
class EliminateIdentityPass : public Pass {
 public:
  std::string name() const override { return "eliminate-identity"; }
  PassResult run(Graph& g) override;
};

/// Common-subexpression elimination: weight-free nodes with identical
/// (kind, inputs, attributes) compute the same tensor — keep the first,
/// rewire consumers of the duplicates. Catches e.g. parallel identical
/// pooling branches produced by mechanical graph construction/import.
class CsePass : public Pass {
 public:
  std::string name() const override { return "cse"; }
  PassResult run(Graph& g) override;
};

}  // namespace vedliot::opt
