#include "util/thread_pool.hpp"

#include <algorithm>

namespace vedliot::util {

ThreadPool::ThreadPool(unsigned threads) : threads_(std::max(1u, threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

unsigned ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::run_chunks(const ChunkFn& fn) {
  for (;;) {
    const std::size_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= chunk_count_) return;
    const std::int64_t lo = begin_ + static_cast<std::int64_t>(chunk) * chunk_len_;
    const std::int64_t hi = std::min(end_, lo + chunk_len_);
    fn(lo, hi, chunk);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const ChunkFn* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      fn = fn_;
    }
    std::exception_ptr error;
    try {
      run_chunks(*fn);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

std::size_t ThreadPool::parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                                     const ChunkFn& fn) {
  const std::int64_t range = end - begin;
  if (range <= 0) return 0;
  grain = std::max<std::int64_t>(1, grain);

  // Chunk boundaries are a pure function of (range, threads, grain):
  // at most threads() chunks, each at least `grain` long.
  const std::int64_t max_chunks =
      std::min<std::int64_t>(threads_, (range + grain - 1) / grain);
  const std::int64_t chunk_len = (range + max_chunks - 1) / max_chunks;
  const std::size_t chunk_count =
      static_cast<std::size_t>((range + chunk_len - 1) / chunk_len);

  if (chunk_count == 1 || workers_.empty()) {
    for (std::size_t c = 0; c < chunk_count; ++c) {
      const std::int64_t lo = begin + static_cast<std::int64_t>(c) * chunk_len;
      fn(lo, std::min(end, lo + chunk_len), c);
    }
    return chunk_count;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    begin_ = begin;
    end_ = end;
    chunk_len_ = chunk_len;
    chunk_count_ = chunk_count;
    next_chunk_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    first_error_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();

  std::exception_ptr error;
  try {
    run_chunks(fn);
  } catch (...) {
    error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
  if (error && !first_error_) first_error_ = error;
  if (first_error_) std::rethrow_exception(first_error_);
  return chunk_count;
}

}  // namespace vedliot::util
