#include "safety/monitors.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace vedliot::safety {

std::string_view verdict_name(DataVerdict v) {
  switch (v) {
    case DataVerdict::kOk: return "ok";
    case DataVerdict::kOutlier: return "outlier";
    case DataVerdict::kStuckAt: return "stuck-at";
    case DataVerdict::kNoisy: return "noisy";
    case DataVerdict::kMissing: return "missing";
    case DataVerdict::kOutOfRange: return "out-of-range";
  }
  throw InvalidArgument("unknown DataVerdict");
}

TimeSeriesMonitor::TimeSeriesMonitor(Config config) : cfg_(config) {
  VEDLIOT_CHECK(cfg_.window >= 8, "monitor window must be >= 8");
}

DataVerdict TimeSeriesMonitor::check(double x) {
  ++seen_;
  DataVerdict verdict = DataVerdict::kOk;

  if (!std::isfinite(x)) {
    verdict = DataVerdict::kMissing;
  } else if (x < cfg_.range_lo || x > cfg_.range_hi) {
    verdict = DataVerdict::kOutOfRange;
  } else {
    // Stuck-at detection.
    if (seen_ > 1 && std::abs(x - prev_) <= cfg_.stuck_epsilon) {
      ++stuck_count_;
    } else {
      stuck_count_ = 0;
    }
    if (stuck_count_ >= cfg_.stuck_run) verdict = DataVerdict::kStuckAt;

    // Robust z-score against the window.
    if (verdict == DataVerdict::kOk && window_.size() >= cfg_.window / 2) {
      std::vector<double> w(window_.begin(), window_.end());
      const double med = stats::median(w);
      const double m = stats::mad(w);
      const double scale = m > 1e-12 ? 1.4826 * m : 1e-12;  // MAD -> sigma
      if (std::abs(x - med) / scale > cfg_.outlier_z) verdict = DataVerdict::kOutlier;
    }
  }

  if (std::isfinite(x)) prev_ = x;

  if (verdict == DataVerdict::kOk) {
    last_good_ = x;
    window_.push_back(x);
    if (window_.size() > cfg_.window) window_.pop_front();
  } else {
    ++anomalies_;
  }
  return verdict;
}

ImageMonitor::ImageMonitor(Config config) : cfg_(config) {}

double ImageMonitor::noise_level(const Tensor& frame) {
  const Shape& s = frame.shape();
  VEDLIOT_CHECK(s.rank() == 4, "ImageMonitor expects NCHW frames");
  double acc = 0.0;
  std::int64_t count = 0;
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (std::int64_t c = 0; c < s.c(); ++c) {
      for (std::int64_t h = 1; h + 1 < s.h(); ++h) {
        for (std::int64_t w = 1; w + 1 < s.w(); ++w) {
          const double lap = 4.0 * frame.at4(n, c, h, w) - frame.at4(n, c, h - 1, w) -
                             frame.at4(n, c, h + 1, w) - frame.at4(n, c, h, w - 1) -
                             frame.at4(n, c, h, w + 1);
          acc += std::abs(lap);
          ++count;
        }
      }
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

double ImageMonitor::mean_brightness(const Tensor& frame) {
  if (frame.numel() == 0) return 0.0;
  double acc = 0.0;
  for (float v : frame.data()) acc += v;
  return acc / static_cast<double>(frame.numel());
}

double ImageMonitor::contrast(const Tensor& frame) {
  if (frame.numel() == 0) return 0.0;
  const double mean = mean_brightness(frame);
  double acc = 0.0;
  for (float v : frame.data()) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(frame.numel()));
}

DataVerdict ImageMonitor::check(const Tensor& frame) const {
  for (float v : frame.data()) {
    if (!std::isfinite(v)) return DataVerdict::kMissing;
  }
  const double mean = mean_brightness(frame);
  if (mean < cfg_.min_mean || mean > cfg_.max_mean) return DataVerdict::kOutOfRange;
  if (contrast(frame) < cfg_.min_contrast) return DataVerdict::kStuckAt;
  if (noise_level(frame) > cfg_.max_noise) return DataVerdict::kNoisy;
  return DataVerdict::kOk;
}

CorrectionAction correction_for(DataVerdict v) {
  switch (v) {
    case DataVerdict::kOk: return CorrectionAction::kPass;
    case DataVerdict::kOutlier:
    case DataVerdict::kMissing:
    case DataVerdict::kOutOfRange:
      return CorrectionAction::kReplace;  // easily identified and corrected
    case DataVerdict::kStuckAt:
    case DataVerdict::kNoisy:
      return CorrectionAction::kDrop;  // unreliable; remove to stop propagation
  }
  return CorrectionAction::kDrop;
}

}  // namespace vedliot::safety
