file(REMOVE_RECURSE
  "CMakeFiles/vedliot_core.dir/autotune.cpp.o"
  "CMakeFiles/vedliot_core.dir/autotune.cpp.o.d"
  "CMakeFiles/vedliot_core.dir/designflow.cpp.o"
  "CMakeFiles/vedliot_core.dir/designflow.cpp.o.d"
  "libvedliot_core.a"
  "libvedliot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
