#pragma once
/// \file dataflow.hpp
/// \brief Dataflow analyses over the graph IR.
///
/// One computation derives the facts every downstream client needs:
///  - use-def chains (producers/consumers per node, resolved once),
///  - liveness intervals over an execution order (def step, last-use step),
///  - reaching producers (the first non-trivial value source behind
///    Identity/Flatten chains),
///  - single-consumer facts (the fusion passes' legality question),
///  - per-node/per-edge byte volumes and the peak live-set size.
///
/// The verifier, the activation memory planner and the optimization passes
/// all consume these facts instead of re-deriving them ad hoc. Results are
/// immutable snapshots stamped with Graph::version(); DataflowCache
/// recomputes transparently when the graph has mutated since.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "tensor/dtype.hpp"

namespace vedliot::analysis {

/// Liveness of one value over the execution order.
struct LiveInterval {
  NodeId node = -1;
  std::size_t def_step = 0;   ///< step index producing the value
  std::size_t last_use = 0;   ///< last step reading it; == order size for graph outputs
  bool is_output = false;     ///< graph output: lives past the final step
  std::int64_t bytes = 0;     ///< value size at the analysis dtype
};

class Dataflow {
 public:
  /// Analyze \p g over its canonical topological order.
  static Dataflow compute(const Graph& g, DType act_dtype = DType::kFP32);

  /// Analyze over an explicit execution order. The order must cover exactly
  /// the live nodes, without duplicates, topologically; throws Error
  /// otherwise (same contract the memory planner enforces).
  static Dataflow compute_with_order(const Graph& g, std::span<const NodeId> order,
                                     DType act_dtype = DType::kFP32);

  const std::vector<NodeId>& order() const { return order_; }
  std::size_t step_of(NodeId id) const;

  /// Liveness interval of a node's output value.
  const LiveInterval& interval(NodeId id) const;
  const std::vector<LiveInterval>& intervals() const { return intervals_; }

  /// Use-def: live consumers of a node (the "uses" of its def).
  const std::vector<NodeId>& consumers(NodeId id) const;
  /// Def-use: the node's live input list (its defs), as stored in the IR.
  const std::vector<NodeId>& producers(NodeId id) const;

  /// True when exactly one live node consumes \p id (fusion legality).
  bool single_consumer(NodeId id) const { return consumers(id).size() == 1; }

  /// The value source feeding \p id's input \p input_index after skipping
  /// pass-through nodes (Identity, Flatten): the "reaching producer".
  NodeId reaching_producer(NodeId id, std::size_t input_index) const;

  /// Branch-level dependence levels ("waves"): wave 0 holds the nodes with
  /// no producers (the graph inputs), and every node lands one wave after
  /// its deepest producer. Nodes sharing a wave are mutually independent —
  /// no def-use path connects them — so an executor may run a whole wave
  /// concurrently once the previous waves are complete (the inter-op
  /// parallelism query). Within each wave, nodes keep their execution-order
  /// position, so the partition itself is deterministic.
  std::vector<std::vector<NodeId>> waves() const;

  /// Bytes of one node's output value at the analysis dtype.
  std::int64_t value_bytes(NodeId id) const { return interval(id).bytes; }

  /// Sum of bytes flowing over all def->use edges (each edge counted once).
  std::int64_t total_edge_bytes() const { return total_edge_bytes_; }

  /// Peak of the live-set byte size over the execution order — the lower
  /// bound any activation arena packing can reach.
  std::int64_t peak_live_bytes() const { return peak_live_bytes_; }

  /// Graph::version() at computation time; false once the graph mutated.
  std::uint64_t graph_version() const { return graph_version_; }
  bool valid_for(const Graph& g) const { return graph_version_ == g.version(); }

 private:
  std::vector<NodeId> order_;
  std::map<NodeId, std::size_t> step_of_;
  std::vector<LiveInterval> intervals_;          // indexed by step
  std::map<NodeId, std::vector<NodeId>> consumers_;
  std::map<NodeId, std::vector<NodeId>> producers_;
  std::set<NodeId> passthrough_;                 // Identity/Flatten nodes

  std::int64_t total_edge_bytes_ = 0;
  std::int64_t peak_live_bytes_ = 0;
  std::uint64_t graph_version_ = 0;
};

/// Single-entry cache keyed on (graph identity, Graph::version, dtype):
/// `get` recomputes only when the graph mutated since the last call.
class DataflowCache {
 public:
  const Dataflow& get(const Graph& g, DType act_dtype = DType::kFP32);
  std::size_t recomputations() const { return recomputations_; }

 private:
  const Graph* graph_ = nullptr;
  DType dtype_ = DType::kFP32;
  std::unique_ptr<Dataflow> cached_;
  std::size_t recomputations_ = 0;
};

}  // namespace vedliot::analysis
