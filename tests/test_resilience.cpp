// Tests for the resilience subsystem: the fault-injecting platform
// simulator (faults.hpp) and the resilient distributed inference runtime
// (resilience.hpp) driving a pipeline through crashes, partitions,
// throttles and transient transfer errors.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "graph/zoo.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "platform/faults.hpp"
#include "platform/resilience.hpp"

namespace vedliot::platform {
namespace {

struct TestRig {
  Chassis chassis;
  Fabric fabric;
  std::vector<std::string> slots;
};

TestRig recs_box_with_modules(int count) {
  TestRig s{Chassis(recs_box()), star_fabric({"come0", "come1", "come2", "come3"}, 10.0, {1.0, 10.0}),
            {}};
  for (int i = 0; i < count; ++i) {
    const std::string slot = "come" + std::to_string(i);
    s.chassis.install(slot, find_module(i % 2 == 0 ? "COMe-XavierAGX" : "COMe-D1577"));
    s.slots.push_back(slot);
  }
  return s;
}

FaultEvent crash(double t, const std::string& slot) {
  FaultEvent e;
  e.time_s = t;
  e.kind = FaultKind::kModuleCrash;
  e.slot = slot;
  return e;
}

FaultEvent restart(double t, const std::string& slot) {
  FaultEvent e;
  e.time_s = t;
  e.kind = FaultKind::kModuleRestart;
  e.slot = slot;
  return e;
}

std::size_t count_kind(const ResilienceReport& r, ResilienceEventKind k) {
  return static_cast<std::size_t>(
      std::count_if(r.events.begin(), r.events.end(),
                    [&](const ResilienceEvent& e) { return e.kind == k; }));
}

const ResilienceEvent* first_of(const ResilienceReport& r, ResilienceEventKind k) {
  const auto it = std::find_if(r.events.begin(), r.events.end(),
                               [&](const ResilienceEvent& e) { return e.kind == k; });
  return it == r.events.end() ? nullptr : &*it;
}

// ---------------------------------------------------------------------------
// PlatformSimulator
// ---------------------------------------------------------------------------

TEST(PlatformSimulator, AppliesScheduledFaultsInTimeOrder) {
  TestRig s = recs_box_with_modules(2);
  PlatformSimulator sim(s.chassis, s.fabric);
  sim.schedule(crash(0.05, "come1"));
  sim.schedule(restart(0.10, "come1"));

  EXPECT_TRUE(sim.advance_to(0.04).empty());
  EXPECT_TRUE(sim.alive("come1"));

  const auto hit = sim.advance_to(0.06);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].kind, FaultKind::kModuleCrash);
  EXPECT_FALSE(sim.alive("come1"));
  EXPECT_EQ(sim.alive_of(s.slots), std::vector<std::string>{"come0"});

  const auto back = sim.advance_to(0.2);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].kind, FaultKind::kModuleRestart);
  EXPECT_TRUE(sim.alive("come1"));
  EXPECT_EQ(sim.faults_applied(), 2u);
  EXPECT_EQ(sim.faults_skipped(), 0u);
}

TEST(PlatformSimulator, SkipsInapplicableEventsInsteadOfThrowing) {
  TestRig s = recs_box_with_modules(1);
  PlatformSimulator sim(s.chassis, s.fabric);
  sim.schedule(crash(0.01, "come0"));
  sim.schedule(crash(0.02, "come0"));    // already dead
  sim.schedule(restart(0.03, "come0"));
  sim.schedule(restart(0.04, "come0"));  // already back
  sim.advance_to(0.1);
  EXPECT_EQ(sim.faults_applied(), 2u);
  EXPECT_EQ(sim.faults_skipped(), 2u);
  EXPECT_TRUE(sim.alive("come0"));
}

TEST(PlatformSimulator, RejectsEventsInTheSimulatedPast) {
  TestRig s = recs_box_with_modules(1);
  PlatformSimulator sim(s.chassis, s.fabric);
  sim.advance_to(1.0);
  EXPECT_THROW(sim.schedule(crash(0.5, "come0")), InvalidArgument);
  EXPECT_THROW((void)sim.advance_to(0.5), Error);  // clock cannot go backwards
}

TEST(PlatformSimulator, ThermalThrottleScalesEffectiveGops) {
  TestRig s = recs_box_with_modules(2);
  PlatformSimulator sim(s.chassis, s.fabric);
  FaultEvent th;
  th.time_s = 0.01;
  th.kind = FaultKind::kThermalThrottle;
  th.slot = "come0";
  th.magnitude = 0.5;
  sim.schedule(th);
  FaultEvent rec = th;
  rec.time_s = 0.02;
  rec.kind = FaultKind::kThermalRecover;
  sim.schedule(rec);

  sim.advance_to(0.015);
  EXPECT_DOUBLE_EQ(sim.gops_scale("come0"), 0.5);
  EXPECT_DOUBLE_EQ(sim.gops_scale("come1"), 1.0);
  EXPECT_EQ(sim.gops_scales().size(), 1u);
  sim.advance_to(0.03);
  EXPECT_DOUBLE_EQ(sim.gops_scale("come0"), 1.0);
  EXPECT_TRUE(sim.gops_scales().empty());
}

TEST(PlatformSimulator, LinkDropPartitionsAndRestoreHeals) {
  TestRig s = recs_box_with_modules(2);
  PlatformSimulator sim(s.chassis, s.fabric);
  FaultEvent drop;
  drop.time_s = 0.01;
  drop.kind = FaultKind::kLinkDrop;
  drop.a = "switch0";
  drop.b = "come1";
  sim.schedule(drop);
  FaultEvent restore = drop;
  restore.time_s = 0.02;
  restore.kind = FaultKind::kLinkRestore;
  sim.schedule(restore);

  sim.advance_to(0.015);
  EXPECT_THROW((void)sim.try_transfer("come0", "come1"), NotFound);
  sim.advance_to(0.03);
  EXPECT_TRUE(sim.try_transfer("come0", "come1"));  // prob 0 -> always ok
}

TEST(PlatformSimulator, TransientTransferErrorsAreSeededAndDeterministic) {
  TestRig s = recs_box_with_modules(2);
  PlatformSimulator::Config cfg;
  cfg.transient_transfer_prob = 0.5;
  cfg.seed = 42;
  PlatformSimulator a(s.chassis, s.fabric, cfg);
  PlatformSimulator b(s.chassis, s.fabric, cfg);
  int failures = 0;
  for (int i = 0; i < 64; ++i) {
    const bool ra = a.try_transfer("come0", "come1");
    EXPECT_EQ(ra, b.try_transfer("come0", "come1"));
    if (!ra) ++failures;
  }
  EXPECT_GT(failures, 8);  // prob 0.5 over 64 draws
  EXPECT_LT(failures, 56);
}

TEST(PlatformSimulator, LinkPartitionSeversEveryLinkAndHealReinstates) {
  TestRig s = recs_box_with_modules(3);
  PlatformSimulator sim(s.chassis, s.fabric);
  FaultEvent cut;
  cut.time_s = 0.01;
  cut.kind = FaultKind::kLinkPartition;
  cut.slot = "come1";
  sim.schedule(cut);
  FaultEvent heal = cut;
  heal.time_s = 0.02;
  heal.kind = FaultKind::kLinkHeal;
  sim.schedule(heal);
  // healing an unpartitioned slot later is a skip, not an error
  FaultEvent spurious = heal;
  spurious.time_s = 0.03;
  sim.schedule(spurious);

  sim.advance_to(0.015);
  EXPECT_TRUE(sim.partitioned("come1"));
  EXPECT_THROW((void)sim.try_transfer("come0", "come1"), NotFound);
  EXPECT_THROW((void)sim.draw_channel("switch0", "come1"), NotFound);
  EXPECT_TRUE(sim.try_transfer("come0", "come2"));  // others unaffected

  sim.advance_to(0.025);
  EXPECT_FALSE(sim.partitioned("come1"));
  EXPECT_TRUE(sim.try_transfer("come0", "come1"));

  sim.advance_to(0.04);
  EXPECT_EQ(sim.faults_applied(), 2u);
  EXPECT_EQ(sim.faults_skipped(), 1u);
}

TEST(PlatformSimulator, PacketDupAndReorderArmPerLinkHazards) {
  TestRig s = recs_box_with_modules(2);
  PlatformSimulator::Config cfg;
  cfg.seed = 21;
  PlatformSimulator sim(s.chassis, s.fabric, cfg);

  FaultEvent dup;
  dup.time_s = 0.01;
  dup.kind = FaultKind::kPacketDup;
  dup.a = "switch0";
  dup.b = "come1";
  dup.magnitude = 0.9;
  sim.schedule(dup);
  FaultEvent reorder = dup;
  reorder.kind = FaultKind::kPacketReorder;
  sim.schedule(reorder);
  sim.advance_to(0.02);

  EXPECT_DOUBLE_EQ(sim.dup_prob("switch0", "come1"), 0.9);
  EXPECT_DOUBLE_EQ(sim.reorder_prob("come1", "switch0"), 0.9);  // undirected
  EXPECT_DOUBLE_EQ(sim.dup_prob("switch0", "come0"), 0.0);      // other links clean

  int dups = 0, reorders = 0;
  for (int i = 0; i < 100; ++i) {
    const auto d = sim.draw_channel("switch0", "come1");
    if (d.duplicated) ++dups;
    if (d.reordered) ++reorders;
  }
  EXPECT_GT(dups, 60);  // p = 0.9 over 100 draws
  EXPECT_GT(reorders, 60);
  // the clean link consumes no hazard draws
  const auto clean = sim.draw_channel("switch0", "come0");
  EXPECT_TRUE(clean.intact);
  EXPECT_FALSE(clean.duplicated);
  EXPECT_FALSE(clean.reordered);

  // magnitude 0 disarms the hazard (the heal convention)
  FaultEvent disarm = dup;
  disarm.time_s = 0.03;
  disarm.magnitude = 0.0;
  sim.schedule(disarm);
  sim.advance_to(0.04);
  EXPECT_DOUBLE_EQ(sim.dup_prob("switch0", "come1"), 0.0);
}

TEST(PlatformSimulator, DescribeNamesChannelFaultState) {
  TestRig s = recs_box_with_modules(2);
  PlatformSimulator sim(s.chassis, s.fabric);
  FaultEvent cut;
  cut.time_s = 0.01;
  cut.kind = FaultKind::kLinkPartition;
  cut.slot = "come1";
  sim.schedule(cut);
  FaultEvent dup;
  dup.time_s = 0.01;
  dup.kind = FaultKind::kPacketDup;
  dup.a = "switch0";
  dup.b = "come0";
  dup.magnitude = 0.5;
  sim.schedule(dup);
  sim.advance_to(0.02);
  const std::string d = sim.describe();
  EXPECT_NE(d.find("partitioned=1"), std::string::npos) << d;
  EXPECT_NE(d.find("dup_links=1"), std::string::npos) << d;
  EXPECT_NE(d.find("reorder_links=0"), std::string::npos) << d;
}

TEST(PlatformSimulator, NextFaultTimeDrivesEventLoops) {
  TestRig s = recs_box_with_modules(2);
  PlatformSimulator sim(s.chassis, s.fabric);
  EXPECT_FALSE(sim.next_fault_time().has_value());
  sim.schedule(crash(0.05, "come1"));
  sim.schedule(restart(0.10, "come1"));
  ASSERT_TRUE(sim.next_fault_time().has_value());
  EXPECT_DOUBLE_EQ(*sim.next_fault_time(), 0.05);
  sim.advance_to(0.06);
  EXPECT_DOUBLE_EQ(*sim.next_fault_time(), 0.10);
  sim.advance_to(0.2);
  EXPECT_FALSE(sim.next_fault_time().has_value());
}

TEST(FaultTimeline, PushKeepsEventsSorted) {
  FaultTimeline t;
  t.push(crash(0.3, "come0"));
  t.push(crash(0.1, "come1"));
  t.push(crash(0.2, "come2"));
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.events()[0].time_s, 0.1);
  EXPECT_DOUBLE_EQ(t.events()[1].time_s, 0.2);
  EXPECT_DOUBLE_EQ(t.events()[2].time_s, 0.3);
}

TEST(FaultTimeline, RandomCampaignIsDeterministicAndSorted) {
  const std::vector<std::string> slots{"come0", "come1", "come2"};
  Rng ra(7), rb(7);
  const FaultTimeline a = FaultTimeline::random_campaign(slots, 8, 1.0, ra);
  const FaultTimeline b = FaultTimeline::random_campaign(slots, 8, 1.0, rb);
  ASSERT_EQ(a.size(), 16u);  // inject + recover per fault
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time_s, b.events()[i].time_s);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].subject(), b.events()[i].subject());
    if (i > 0) {
      EXPECT_GE(a.events()[i].time_s, a.events()[i - 1].time_s);
    }
  }
}

TEST(FaultTimeline, LossyFabricCampaignIsDeterministicAndSelfHealing) {
  const std::vector<std::string> slots{"come0", "come1", "come2"};
  Rng ra(7), rb(7);
  const FaultTimeline a = FaultTimeline::lossy_fabric_campaign(slots, 10, 1.0, 0.4, ra);
  const FaultTimeline b = FaultTimeline::lossy_fabric_campaign(slots, 10, 1.0, 0.4, rb);
  ASSERT_EQ(a.size(), 20u);  // inject + heal per fault
  ASSERT_EQ(a.size(), b.size());
  std::size_t channel_faults = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time_s, b.events()[i].time_s);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].subject(), b.events()[i].subject());
    if (i > 0) {
      EXPECT_GE(a.events()[i].time_s, a.events()[i - 1].time_s);
    }
    switch (a.events()[i].kind) {
      case FaultKind::kLinkPartition:
      case FaultKind::kPacketDup:
      case FaultKind::kPacketReorder:
        ++channel_faults;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(channel_faults, 0u);  // the campaign actually exercises the fabric
  // every injection heals inside the window: count balance per kind
  std::map<FaultKind, int> balance;
  for (const FaultEvent& e : a.events()) {
    switch (e.kind) {
      case FaultKind::kLinkPartition: ++balance[FaultKind::kLinkPartition]; break;
      case FaultKind::kLinkHeal: --balance[FaultKind::kLinkPartition]; break;
      case FaultKind::kModuleCrash: ++balance[FaultKind::kModuleCrash]; break;
      case FaultKind::kModuleRestart: --balance[FaultKind::kModuleCrash]; break;
      case FaultKind::kPacketDup:
        balance[FaultKind::kPacketDup] += e.magnitude > 0 ? 1 : -1;
        break;
      case FaultKind::kPacketReorder:
        balance[FaultKind::kPacketReorder] += e.magnitude > 0 ? 1 : -1;
        break;
      default:
        break;
    }
  }
  for (const auto& [kind, n] : balance) {
    EXPECT_EQ(n, 0) << "unbalanced fault kind " << static_cast<int>(kind);
  }
}

// ---------------------------------------------------------------------------
// ResilienceController: end-to-end scenario (the ISSUE acceptance case)
// ---------------------------------------------------------------------------

ResilienceConfig scenario_config() {
  ResilienceConfig cfg;
  cfg.heartbeat_period_s = 10e-3;
  cfg.heartbeat_miss_threshold = 3;
  cfg.max_transfer_attempts = 5;
  cfg.latency_budget_s = 1.0;
  cfg.precision_ladder = {DType::kINT8};
  cfg.seed = 1234;
  return cfg;
}

ResilienceReport run_crash_scenario(std::uint64_t sim_seed, obs::Tracer* tracer = nullptr) {
  TestRig s = recs_box_with_modules(3);
  PlatformSimulator::Config pc;
  pc.transient_transfer_prob = 0.05;
  pc.seed = sim_seed;
  PlatformSimulator sim(s.chassis, s.fabric, pc);
  sim.schedule(crash(0.205, "come1"));  // mid-run, between heartbeats

  Graph g = zoo::resnet50();
  ResilienceConfig cfg = scenario_config();
  cfg.trace = tracer;
  ResilienceController ctl(g, sim, s.slots, 3, DType::kINT8, cfg);
  return ctl.run(1.0);
}

TEST(Resilience, EndToEndCrashDetectFailoverRecover) {
  const ResilienceReport r = run_crash_scenario(99);

  // The healthy plan used all three modules, three stages.
  ASSERT_EQ(r.healthy_plan.stages.size(), 3u);
  EXPECT_GT(r.healthy_plan.throughput_fps, 0.0);

  // The crash was injected and detected by missed heartbeats within the
  // configured threshold: 3 misses at 10 ms cadence, crash at t=0.205 ->
  // detection no later than t=0.24 (3 full periods + phase).
  const ResilienceEvent* injected = first_of(r, ResilienceEventKind::kFaultInjected);
  ASSERT_NE(injected, nullptr);
  EXPECT_EQ(injected->subject, "slot come1");
  ASSERT_GE(count_kind(r, ResilienceEventKind::kHeartbeatMiss), 3u);
  const ResilienceEvent* detected = first_of(r, ResilienceEventKind::kFaultDetected);
  ASSERT_NE(detected, nullptr);
  EXPECT_EQ(detected->subject, "slot come1");
  ASSERT_EQ(r.detection_latencies_s.size(), 1u);
  EXPECT_LE(r.detection_latencies_s[0], 3 * 10e-3 + 10e-3);
  EXPECT_GE(r.detection_latencies_s[0], 2 * 10e-3);

  // Transient link faults were retried with backoff.
  EXPECT_GT(r.transfer_retries, 0u);
  EXPECT_GE(count_kind(r, ResilienceEventKind::kTransientFault), r.transfer_retries / 2);

  // The dead slot's stages failed over to survivors; the final plan avoids
  // come1 entirely and the pipeline stayed alive.
  EXPECT_GE(r.failovers, 1u);
  ASSERT_TRUE(r.pipeline_alive);
  ASSERT_FALSE(r.final_plan.stages.empty());
  for (const auto& st : r.final_plan.stages) EXPECT_NE(st.slot, "come1");
  EXPECT_EQ(r.recovery_times_s.size(), 1u);
  EXPECT_GT(r.mean_recovery_time_s(), 0.0);
  EXPECT_GT(r.frames_completed, 0u);

  // Recovered throughput is within 2x of a fresh plan computed directly on
  // the degraded platform (same survivors, same fabric).
  TestRig degraded = recs_box_with_modules(3);
  degraded.chassis.remove("come1");
  const auto fresh = plan_distributed_inference(
      zoo::resnet50(), degraded.chassis, degraded.fabric, {"come0", "come2"},
      r.final_plan.stages.size(), DType::kINT8);
  EXPECT_GE(r.final_plan.throughput_fps, fresh.throughput_fps / 2.0);
  EXPECT_LE(r.final_plan.throughput_fps, fresh.throughput_fps * 2.0);
}

TEST(Resilience, DeterministicUnderFixedSeed) {
  const ResilienceReport a = run_crash_scenario(99);
  const ResilienceReport b = run_crash_scenario(99);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events[i].time_s, b.events[i].time_s);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].subject, b.events[i].subject);
    EXPECT_EQ(a.events[i].detail, b.events[i].detail);
  }
  EXPECT_EQ(a.frames_completed, b.frames_completed);
  EXPECT_EQ(a.frames_dropped, b.frames_dropped);
  EXPECT_EQ(a.transfer_retries, b.transfer_retries);
  EXPECT_DOUBLE_EQ(a.mean_detection_latency_s(), b.mean_detection_latency_s());
  EXPECT_DOUBLE_EQ(a.mean_recovery_time_s(), b.mean_recovery_time_s());

  // A different fault seed changes the transient-error pattern.
  const ResilienceReport c = run_crash_scenario(100);
  EXPECT_NE(a.transfer_retries, c.transfer_retries);
}

TEST(Resilience, ThermalThrottleDetectedViaTelemetryAndRebalanced) {
  TestRig s = recs_box_with_modules(3);
  PlatformSimulator sim(s.chassis, s.fabric);
  FaultEvent th;
  th.time_s = 0.105;
  th.kind = FaultKind::kThermalThrottle;
  th.slot = "come0";
  th.magnitude = 0.4;
  sim.schedule(th);

  Graph g = zoo::resnet50();
  ResilienceController ctl(g, sim, s.slots, 3, DType::kINT8, scenario_config());
  const ResilienceReport r = ctl.run(0.5);

  const ResilienceEvent* detected = first_of(r, ResilienceEventKind::kFaultDetected);
  ASSERT_NE(detected, nullptr);
  EXPECT_EQ(detected->subject, "slot come0");
  EXPECT_NE(detected->detail.find("telemetry"), std::string::npos);
  ASSERT_EQ(r.detection_latencies_s.size(), 1u);
  EXPECT_LE(r.detection_latencies_s[0], 10e-3);  // visible at the next tick

  // The pipeline replanned against the throttled capacity and kept going;
  // steady-state throughput cannot exceed the healthy plan's.
  EXPECT_TRUE(r.pipeline_alive);
  EXPECT_GT(r.frames_completed, 0u);
  EXPECT_LE(r.final_plan.throughput_fps, r.healthy_plan.throughput_fps + 1e-9);
}

TEST(Resilience, RobustnessVerdictQuarantinesSlot) {
  TestRig s = recs_box_with_modules(3);
  PlatformSimulator sim(s.chassis, s.fabric);
  Graph g = zoo::resnet50();
  ResilienceController ctl(g, sim, s.slots, 3, DType::kINT8, scenario_config());

  // checked-ok and not-checked verdicts are ignored; checked-faulty at
  // t=0.3 quarantines come2 even though it still answers heartbeats.
  ctl.report_verdict("come2", safety::CheckResult::kCheckedOk, 0.1);
  ctl.report_verdict("come2", safety::CheckResult::kNotChecked, 0.2);
  ctl.report_verdict("come2", safety::CheckResult::kCheckedFaulty, 0.3);
  const ResilienceReport r = ctl.run(1.0);

  const ResilienceEvent* detected = first_of(r, ResilienceEventKind::kFaultDetected);
  ASSERT_NE(detected, nullptr);
  EXPECT_EQ(detected->subject, "slot come2");
  EXPECT_NE(detected->detail.find("robustness service"), std::string::npos);
  EXPECT_GE(detected->time_s, 0.3);
  EXPECT_EQ(count_kind(r, ResilienceEventKind::kHeartbeatMiss), 0u);  // silent fault
  EXPECT_GE(r.failovers, 1u);
  ASSERT_TRUE(r.pipeline_alive);
  for (const auto& st : r.final_plan.stages) EXPECT_NE(st.slot, "come2");
}

TEST(Resilience, UnrecoverableWhenAllSlotsDieThenHealsOnRestart) {
  TestRig s = recs_box_with_modules(2);
  PlatformSimulator sim(s.chassis, s.fabric);
  sim.schedule(crash(0.1, "come0"));
  sim.schedule(crash(0.1, "come1"));
  sim.schedule(restart(0.5, "come0"));

  Graph g = zoo::resnet50();
  ResilienceController ctl(g, sim, s.slots, 2, DType::kINT8, scenario_config());
  const ResilienceReport r = ctl.run(1.0);

  EXPECT_GE(count_kind(r, ResilienceEventKind::kUnrecoverable), 1u);
  EXPECT_GT(r.frames_dropped, 0u);
  // come0 restarted at t=0.5: the controller replans and the pipeline ends
  // the run alive as a single-slot deployment.
  EXPECT_TRUE(r.pipeline_alive);
  ASSERT_FALSE(r.final_plan.stages.empty());
  for (const auto& st : r.final_plan.stages) EXPECT_EQ(st.slot, "come0");
}

TEST(Resilience, TracerMirrorsEventLogWithoutChangingIt) {
  // Routing the event log through vedliot::obs must be a pure mirror: the
  // structured report is bit-identical with and without a tracer attached,
  // and every event appears as one instant span in log order.
  const ResilienceReport plain = run_crash_scenario(99);
  obs::Tracer tracer;
  const ResilienceReport traced = run_crash_scenario(99, &tracer);

  ASSERT_EQ(plain.events.size(), traced.events.size());
  for (std::size_t i = 0; i < plain.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.events[i].time_s, traced.events[i].time_s);
    EXPECT_EQ(plain.events[i].kind, traced.events[i].kind);
    EXPECT_EQ(plain.events[i].subject, traced.events[i].subject);
    EXPECT_EQ(plain.events[i].detail, traced.events[i].detail);
    EXPECT_DOUBLE_EQ(plain.events[i].value, traced.events[i].value);
  }
  EXPECT_EQ(plain.frames_completed, traced.frames_completed);
  EXPECT_EQ(plain.transfer_retries, traced.transfer_retries);

  // Every logged event has exactly one instant span in the resilience
  // category, in log order, carrying the event fields as attributes.
  std::vector<const obs::Span*> instants;
  for (const obs::Span& sp : tracer.spans()) {
    if (sp.category == "vedliot.platform.resilience" && sp.name != "resilience.run") {
      instants.push_back(&sp);
    }
  }
  ASSERT_EQ(instants.size(), traced.events.size());
  for (std::size_t i = 0; i < instants.size(); ++i) {
    const ResilienceEvent& e = traced.events[i];
    EXPECT_EQ(instants[i]->name, resilience_event_name(e.kind));
    ASSERT_FALSE(instants[i]->attrs.empty());
    EXPECT_EQ(instants[i]->attrs.front().first, "subject");
    EXPECT_EQ(instants[i]->attrs.front().second, e.subject);
    ASSERT_GE(instants[i]->num_attrs.size(), 2u);
    EXPECT_DOUBLE_EQ(instants[i]->num_attrs[0].second, e.time_s);
    EXPECT_DOUBLE_EQ(instants[i]->num_attrs[1].second, e.value);
  }

  // The whole run sits under one closed "resilience.run" span, and the
  // replans show up as planner spans.
  ASSERT_FALSE(tracer.spans().empty());
  EXPECT_EQ(tracer.spans().front().name, "resilience.run");
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_TRUE(std::any_of(tracer.spans().begin(), tracer.spans().end(), [](const obs::Span& sp) {
    return sp.name == "plan_distributed_inference";
  }));
}

TEST(Resilience, EventsAccessorAndJsonRoundTrip) {
  TestRig s = recs_box_with_modules(2);
  PlatformSimulator sim(s.chassis, s.fabric);
  sim.schedule(crash(0.105, "come1"));
  Graph g = zoo::resnet50();
  ResilienceController ctl(g, sim, s.slots, 2, DType::kINT8, scenario_config());
  const ResilienceReport r = ctl.run(0.5);

  // The typed accessor exposes the same log the report carries.
  const std::span<const ResilienceEvent> view = ctl.events();
  ASSERT_EQ(view.size(), r.events.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i].kind, r.events[i].kind);
    EXPECT_EQ(view[i].subject, r.events[i].subject);
  }

  // to_json() round-trips through the obs JSON parser with every event.
  const obs::JsonValue doc = obs::json_parse(r.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("record").as_string(), "resilience-report");
  EXPECT_EQ(doc.at("pipeline_alive").boolean, r.pipeline_alive);
  EXPECT_DOUBLE_EQ(doc.at("frames_completed").as_number(),
                   static_cast<double>(r.frames_completed));
  const obs::JsonValue& events = doc.at("events");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), r.events.size());
  for (std::size_t i = 0; i < r.events.size(); ++i) {
    EXPECT_EQ(events.array[i].at("kind").as_string(),
              resilience_event_name(r.events[i].kind));
    EXPECT_EQ(events.array[i].at("subject").as_string(), r.events[i].subject);
    EXPECT_DOUBLE_EQ(events.array[i].at("time_s").as_number(), r.events[i].time_s);
  }
}

TEST(Resilience, EventLogFormatsHumanReadably) {
  ResilienceEvent e;
  e.time_s = 0.03;
  e.kind = ResilienceEventKind::kFaultDetected;
  e.subject = "slot come1";
  e.detail = "declared dead after 3 missed heartbeats";
  const std::string line = format_event(e);
  EXPECT_NE(line.find("fault-detected"), std::string::npos);
  EXPECT_NE(line.find("slot come1"), std::string::npos);
  EXPECT_NE(line.find("declared dead"), std::string::npos);
}

TEST(Resilience, ControllerIsOneShot) {
  TestRig s = recs_box_with_modules(2);
  PlatformSimulator sim(s.chassis, s.fabric);
  Graph g = zoo::resnet50();
  ResilienceController ctl(g, sim, s.slots, 2, DType::kINT8, scenario_config());
  (void)ctl.run(0.05);
  EXPECT_THROW((void)ctl.run(0.05), Error);
}

TEST(Resilience, TransferAttemptsAreCappedAgainstRetryStorms) {
  // A pathological config asks for a million attempts per frame on a
  // fabric that fails 99% of transfers. The controller must clamp to
  // kTransferAttemptCap: frames drop (a million attempts would virtually
  // never give up) and every give-up names the clamped attempt count.
  TestRig s = recs_box_with_modules(2);
  PlatformSimulator::Config pc;
  pc.transient_transfer_prob = 0.99;
  pc.seed = 31;
  PlatformSimulator sim(s.chassis, s.fabric, pc);
  Graph g = zoo::resnet50();
  ResilienceConfig cfg = scenario_config();
  cfg.max_transfer_attempts = 1'000'000;
  ResilienceController ctl(g, sim, s.slots, 2, DType::kINT8, cfg);
  const ResilienceReport r = ctl.run(0.2);

  EXPECT_GT(r.frames_dropped, 0u);
  const ResilienceEvent* timeout = first_of(r, ResilienceEventKind::kTransferTimeout);
  ASSERT_NE(timeout, nullptr);
  EXPECT_NE(timeout->detail.find(
                "after " + std::to_string(ResilienceController::kTransferAttemptCap)),
            std::string::npos);
  // No frame burned more than the cap: transient faults per give-up are
  // bounded by kTransferAttemptCap (plus the frames that squeaked through).
  const std::size_t timeouts = count_kind(r, ResilienceEventKind::kTransferTimeout);
  const std::size_t frames = r.frames_completed + r.frames_dropped;
  EXPECT_LE(r.transfer_retries,
            frames * 2 * static_cast<std::size_t>(ResilienceController::kTransferAttemptCap));
  EXPECT_GE(timeouts, 1u);
}

// ---------------------------------------------------------------------------
// HealthMonitor (shared by the resilience controller and the serve layer)
// ---------------------------------------------------------------------------

TEST(HealthMonitor, DeclaresDownAtThresholdAndRecoversByProbe) {
  TestRig s = recs_box_with_modules(2);
  PlatformSimulator sim(s.chassis, s.fabric);
  HealthMonitor mon({"come0", "come1"}, HealthConfig{3});
  sim.schedule(crash(0.01, "come1"));
  sim.advance_to(0.02);

  const auto b1 = mon.tick(sim);
  ASSERT_EQ(b1.size(), 1u);  // healthy come0 is silent
  EXPECT_EQ(b1[0].slot, "come1");
  EXPECT_EQ(b1[0].misses, 1);
  EXPECT_FALSE(b1[0].declared_down);
  (void)mon.tick(sim);
  const auto b3 = mon.tick(sim);
  ASSERT_EQ(b3.size(), 1u);
  EXPECT_EQ(b3[0].misses, 3);
  EXPECT_TRUE(b3[0].declared_down);
  EXPECT_TRUE(mon.down("come1"));

  // Down slots are only probed for recovery — no further miss beats.
  EXPECT_TRUE(mon.tick(sim).empty());

  sim.schedule(restart(0.03, "come1"));
  sim.advance_to(0.05);
  const auto back = mon.tick(sim);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(back[0].recovered);
  EXPECT_FALSE(mon.down("come1"));
}

TEST(HealthMonitor, MarkUpClearsStateForExternallyObservedRestarts) {
  TestRig s = recs_box_with_modules(1);
  PlatformSimulator sim(s.chassis, s.fabric);
  HealthMonitor mon({"come0"}, HealthConfig{2});
  sim.schedule(crash(0.01, "come0"));
  sim.advance_to(0.02);
  (void)mon.tick(sim);
  (void)mon.tick(sim);
  ASSERT_TRUE(mon.down("come0"));

  // The controller saw the module-restart fault event itself.
  sim.schedule(restart(0.03, "come0"));
  sim.advance_to(0.04);
  mon.mark_up("come0");
  EXPECT_FALSE(mon.down("come0"));
  // Miss counting starts fresh after the clear.
  EXPECT_TRUE(mon.tick(sim).empty());
}

}  // namespace
}  // namespace vedliot::platform
