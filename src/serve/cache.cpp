#include "serve/cache.hpp"

#include "util/error.hpp"

namespace vedliot::serve {

ResponseCache::ResponseCache(std::size_t capacity) : capacity_(capacity) {
  VEDLIOT_CHECK(capacity_ >= 1, "response cache capacity must be >= 1");
}

std::optional<Response> ResponseCache::get(const std::string& key, std::uint32_t model_version) {
  if (key.empty()) return std::nullopt;
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (it->second.model_version != model_version) {
    // Skew: the cached answer came from a different serving version. The
    // entry stays (peers on its version still hit it); this request must
    // recompute against its own version.
    ++misses_;
    ++version_misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.response;
}

void ResponseCache::put(const std::string& key, const Response& response,
                        std::uint32_t model_version) {
  if (key.empty()) return;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.response = response;
    it->second.model_version = model_version;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{response, model_version, lru_.begin()});
}

}  // namespace vedliot::serve
