#include "platform/health.hpp"

#include "platform/faults.hpp"
#include "util/error.hpp"

namespace vedliot::platform {

HealthMonitor::HealthMonitor(std::vector<std::string> slots, HealthConfig config)
    : slots_(std::move(slots)), cfg_(config) {
  VEDLIOT_CHECK(!slots_.empty(), "health monitor needs at least one slot");
  VEDLIOT_CHECK(cfg_.miss_threshold >= 1, "miss threshold must be >= 1");
}

std::vector<HealthBeat> HealthMonitor::tick(const PlatformSimulator& sim) {
  std::vector<HealthBeat> beats;
  for (const auto& slot : slots_) {
    const bool alive = sim.alive(slot);
    if (down_.count(slot)) {
      if (alive) {
        down_.erase(slot);
        misses_[slot] = 0;
        beats.push_back(HealthBeat{slot, 0, false, true});
      }
      continue;
    }
    if (alive) {
      misses_[slot] = 0;
      continue;
    }
    const int n = ++misses_[slot];
    HealthBeat beat{slot, n, n >= cfg_.miss_threshold, false};
    if (beat.declared_down) down_.insert(slot);
    beats.push_back(beat);
  }
  return beats;
}

void HealthMonitor::mark_up(const std::string& slot) {
  down_.erase(slot);
  misses_.erase(slot);
}

}  // namespace vedliot::platform
