// FIG2 — Computer-On-Module form factors supported by the VEDLIoT hardware
// platforms (paper Fig. 2, reproduced as the compatibility matrix the
// diagram encodes).

#include <iostream>

#include "bench_common.hpp"
#include "platform/baseboard.hpp"
#include "platform/microserver.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::platform;

void print_artifact() {
  bench::banner("FIG2", "COM form factors supported per RECS platform");

  const std::vector<BaseboardSpec> boards{recs_box(), t_recs(), u_recs()};
  const std::vector<FormFactor> factors{
      FormFactor::kCOMExpress, FormFactor::kCOMHPCServer, FormFactor::kCOMHPCClient,
      FormFactor::kSMARC,      FormFactor::kJetsonNX,     FormFactor::kKriaSOM,
      FormFactor::kRPiCM,      FormFactor::kPCIe,         FormFactor::kM2,
      FormFactor::kUSB};

  std::vector<std::string> header{"form factor"};
  for (const auto& b : boards) header.push_back(b.name);
  Table t(header);
  for (FormFactor f : factors) {
    std::vector<std::string> row{std::string(form_factor_name(f))};
    for (const auto& b : boards) {
      bool accepted = false;
      for (const auto& slot : b.slots) accepted |= slot.accepts_form(f);
      row.push_back(accepted ? "yes" : "-");
    }
    t.add_row(row);
  }
  t.print(std::cout);

  std::printf("\nboard envelopes: RECS|Box %g W, t.RECS %g W, uRECS %g W (paper: < 15 W)\n\n",
              recs_box().total_power_budget_w, t_recs().total_power_budget_w,
              u_recs().total_power_budget_w);

  Table m({"module", "form factor", "device", "module power W"});
  for (const auto& module : module_catalog()) {
    m.add_row({module.name, std::string(form_factor_name(module.form)), module.device,
               fmt_fixed(module.max_power_w, 0)});
  }
  m.print(std::cout);
  bench::note("uRECS natively hosts SMARC and Jetson NX and integrates Kria/RPi CM via");
  bench::note("adaptor PCBs; extension slots (M.2, USB) carry additional accelerators —");
  bench::note("exactly the coverage Fig. 2 draws.");
}

static void BM_CompatibilityScan(benchmark::State& state) {
  const auto board = u_recs();
  for (auto _ : state) {
    int accepted = 0;
    for (const auto& module : module_catalog()) {
      for (const auto& slot : board.slots) {
        if (slot.accepts_form(module.form)) ++accepted;
      }
    }
    benchmark::DoNotOptimize(accepted);
  }
}
BENCHMARK(BM_CompatibilityScan);

VEDLIOT_BENCH_MAIN()
