#include "kenning/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace vedliot::kenning {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_(num_classes), cells_(num_classes * num_classes, 0) {
  VEDLIOT_CHECK(num_classes >= 2, "confusion matrix needs >= 2 classes");
}

void ConfusionMatrix::add(std::size_t truth, std::size_t predicted) {
  VEDLIOT_CHECK(truth < n_ && predicted < n_, "class index out of range");
  ++cells_[truth * n_ + predicted];
  ++total_;
}

std::uint64_t ConfusionMatrix::count(std::size_t truth, std::size_t predicted) const {
  VEDLIOT_CHECK(truth < n_ && predicted < n_, "class index out of range");
  return cells_[truth * n_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::uint64_t correct = 0;
  for (std::size_t i = 0; i < n_; ++i) correct += cells_[i * n_ + i];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::size_t cls) const {
  VEDLIOT_CHECK(cls < n_, "class index out of range");
  std::uint64_t predicted = 0;
  for (std::size_t t = 0; t < n_; ++t) predicted += cells_[t * n_ + cls];
  if (predicted == 0) return 0.0;
  return static_cast<double>(cells_[cls * n_ + cls]) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t cls) const {
  VEDLIOT_CHECK(cls < n_, "class index out of range");
  std::uint64_t actual = 0;
  for (std::size_t p = 0; p < n_; ++p) actual += cells_[cls * n_ + p];
  if (actual == 0) return 0.0;
  return static_cast<double>(cells_[cls * n_ + cls]) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(std::size_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double acc = 0.0;
  for (std::size_t c = 0; c < n_; ++c) acc += f1(c);
  return acc / static_cast<double>(n_);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << "truth\\pred";
  for (std::size_t p = 0; p < n_; ++p) os << '\t' << p;
  os << '\n';
  for (std::size_t t = 0; t < n_; ++t) {
    os << t;
    for (std::size_t p = 0; p < n_; ++p) os << '\t' << count(t, p);
    os << '\n';
  }
  return os.str();
}

double iou(const Box& a, const Box& b) {
  const double x1 = std::max(a.x, b.x);
  const double y1 = std::max(a.y, b.y);
  const double x2 = std::min(a.x + a.w, b.x + b.w);
  const double y2 = std::min(a.y + a.h, b.y + b.h);
  const double inter = std::max(0.0, x2 - x1) * std::max(0.0, y2 - y1);
  const double uni = a.area() + b.area() - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

DetectionEval evaluate_detections(std::vector<Detection> detections,
                                  const std::vector<GroundTruth>& truths,
                                  double iou_threshold) {
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });

  std::vector<bool> gt_used(truths.size(), false);
  std::vector<bool> is_tp(detections.size(), false);
  for (std::size_t d = 0; d < detections.size(); ++d) {
    double best = iou_threshold;
    std::ptrdiff_t best_gt = -1;
    for (std::size_t g = 0; g < truths.size(); ++g) {
      if (gt_used[g] || truths[g].image_id != detections[d].image_id) continue;
      const double ov = iou(detections[d].box, truths[g].box);
      if (ov >= best) {
        best = ov;
        best_gt = static_cast<std::ptrdiff_t>(g);
      }
    }
    if (best_gt >= 0) {
      gt_used[static_cast<std::size_t>(best_gt)] = true;
      is_tp[d] = true;
    }
  }

  DetectionEval eval;
  std::size_t tp = 0, fp = 0;
  const double total_gt = static_cast<double>(truths.size());
  double ap = 0.0;
  double last_recall = 0.0;
  for (std::size_t d = 0; d < detections.size(); ++d) {
    if (is_tp[d]) ++tp;
    else ++fp;
    PrPoint pt;
    pt.threshold = detections[d].score;
    pt.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
    pt.recall = total_gt > 0 ? static_cast<double>(tp) / total_gt : 0.0;
    // all-point AP: rectangle between consecutive recall levels
    ap += pt.precision * (pt.recall - last_recall);
    last_recall = pt.recall;
    eval.curve.push_back(pt);
  }
  eval.average_precision = ap;
  eval.true_positives = tp;
  eval.false_positives = fp;
  eval.false_negatives = truths.size() - tp;
  return eval;
}

}  // namespace vedliot::kenning
