# Empty compiler generated dependencies file for bench_cfu.
# This may be replaced when dependencies are built.
