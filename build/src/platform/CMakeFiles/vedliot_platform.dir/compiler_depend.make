# Empty compiler generated dependencies file for vedliot_platform.
# This may be replaced when dependencies are built.
