# Empty compiler generated dependencies file for bench_pmp.
# This may be replaced when dependencies are built.
