#include "runtime/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "analysis/dataflow.hpp"
#include "runtime/instrument.hpp"
#include "runtime/memory_planner.hpp"

namespace vedliot {

using runtime_kernels::apply_activation;
using runtime_kernels::Conv2dGeometry;

namespace {

OpKind fused_act_kind(const Node& n) {
  const std::string name = n.attrs.get_str_or("fused_act", "");
  if (name.empty()) return OpKind::kIdentity;
  return parse_op(name);
}

Conv2dGeometry conv_geometry(const Graph& g, const Node& n) {
  Conv2dGeometry geo;
  const Shape& in = g.node(n.inputs.at(0)).out_shape;
  geo.batch = n.out_shape.n();
  geo.in_c = in.c();
  geo.in_h = in.h();
  geo.in_w = in.w();
  geo.out_c = n.out_shape.c();
  geo.out_h = n.out_shape.h();
  geo.out_w = n.out_shape.w();
  geo.kernel = n.attrs.get_int("kernel");
  geo.stride = n.attrs.get_int_or("stride", 1);
  geo.pad = n.attrs.get_int_or("pad", 0);
  geo.groups = n.attrs.get_int_or("groups", 1);
  return geo;
}

}  // namespace

Executor::Executor(const Graph& graph) : graph_(graph) {
  if (!graph_.weights_materialized()) {
    throw ExecError("graph " + graph.name() + " has unmaterialized weights; call materialize_weights()");
  }
  // Resolve every per-node constant once: fused activation kind (string attr
  // -> OpKind), alphas, BN epsilon, pool/upsample geometry, conv geometry.
  plans_.resize(graph_.total_nodes());
  for (NodeId id : graph_.topo_order()) {
    const Node& n = graph_.node(id);
    NodePlan& plan = plans_[static_cast<std::size_t>(id)];
    plan.alpha = n.attrs.get_float_or("alpha", 0.01);
    plan.bn_eps = n.attrs.get_float_or("epsilon", 1e-5);
    if (n.kind == OpKind::kConv2d || n.kind == OpKind::kDense) {
      plan.fused_act = fused_act_kind(n);
      plan.fused_alpha = n.attrs.get_float_or("fused_alpha", 0.01);
    }
    if (n.kind == OpKind::kConv2d) plan.conv = conv_geometry(graph_, n);
    if (n.kind == OpKind::kMaxPool || n.kind == OpKind::kAvgPool) {
      plan.pool_kernel = n.attrs.get_int("kernel");
      plan.pool_stride = n.attrs.get_int_or("stride", plan.pool_kernel);
      plan.pool_pad = n.attrs.get_int_or("pad", 0);
    }
    if (n.kind == OpKind::kUpsample) plan.upsample_scale = n.attrs.get_int("scale");
  }
}

void Executor::instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

void Executor::set_threads(unsigned threads) {
  if (threads == 0) threads = util::ThreadPool::hardware_threads();
  if (threads == threads_) return;
  threads_ = threads;
  pool_ = threads_ > 1 ? std::make_unique<util::ThreadPool>(threads_) : nullptr;
}

void Executor::set_inter_op(unsigned inter_op) {
  if (inter_op == 0) inter_op = util::ThreadPool::hardware_threads();
  if (inter_op == inter_op_) return;
  inter_op_ = inter_op;
  wave_pool_ = inter_op_ > 1 ? std::make_unique<util::ThreadPool>(inter_op_) : nullptr;
}

void Executor::pfor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const util::ThreadPool::ChunkFn& fn) {
  // Inside a parallel wave the intra-op pool is unavailable (the pool does
  // not nest); each wave node runs its kernels inline.
  if (pool_ == nullptr || in_wave_) {
    if (end > begin) fn(begin, end, 0);
    return;
  }
  const std::size_t chunks = pool_->parallel_for(begin, end, grain, fn);
  if (metrics_ != nullptr && chunks > 0) {
    runtime_detail::pool_utilization_histogram(*metrics_)
        .add(static_cast<double>(chunks) / static_cast<double>(threads_));
  }
}

void Executor::prepare_arena() {
  if (!arena_offset_.empty()) return;
  const auto order = graph_.topo_order();
  const MemoryPlan plan = plan_memory_with_order(graph_, order, DType::kFP32);
  arena_.assign(static_cast<std::size_t>(plan.arena_bytes / 4), 0.0f);
  for (const BufferPlan& b : plan.buffers) {
    arena_offset_[b.node] = static_cast<std::size_t>(b.offset / 4);
  }
  arena_stats_.arena_bytes = plan.arena_bytes;
  arena_stats_.naive_bytes = plan.naive_bytes;
}

Tensor Executor::alloc_output(const Node& n) {
  if (arena_stats_.active) {
    const auto it = arena_offset_.find(n.id);
    if (it != arena_offset_.end()) {
      return Tensor::view(n.out_shape,
                          std::span<float>(arena_.data() + it->second,
                                           static_cast<std::size_t>(n.out_shape.numel())));
    }
  }
  return Tensor(n.out_shape);
}

void Executor::feed_input(const Node& n, const std::map<std::string, Tensor>& feeds) {
  auto it = feeds.find(n.name);
  if (it == feeds.end()) throw ExecError("missing feed for input '" + n.name + "'");
  if (it->second.shape() != n.out_shape) {
    throw ExecError("feed shape mismatch for '" + n.name + "': expected " +
                    n.out_shape.to_string() + " got " + it->second.shape().to_string());
  }
  values_[n.id] = it->second;
}

void Executor::exec_node_serial(const Node& n) {
  std::vector<const Tensor*> ins;
  ins.reserve(n.inputs.size());
  for (NodeId in : n.inputs) ins.push_back(&values_.at(in));

  obs::ScopedSpan node_span;
  if (tracer_ != nullptr) {
    node_span = tracer_->span(n.name, std::string(op_name(n.kind)));
  }
  const NodePlan& plan = plans_[static_cast<std::size_t>(n.id)];
  Tensor out = alloc_output(n);
  const bool timed = profiling_ || metrics_ != nullptr;
  if (timed) {
    const auto t0 = std::chrono::steady_clock::now();
    execute_node(n, plan, ins, out);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (profiling_) {
      auto& entry = profile_[n.kind];
      ++entry.invocations;
      entry.total_seconds += seconds;
    }
    if (metrics_ != nullptr) {
      runtime_detail::op_histogram(*metrics_, n.kind).add(seconds * 1e6);
    }
  } else {
    execute_node(n, plan, ins, out);
  }
  values_[n.id] = std::move(out);
  if (tracer_ != nullptr) {
    node_span.attr("out_elems", static_cast<double>(n.out_shape.numel()));
    node_span.close();
  }
  ++nodes_executed_;
}

void Executor::run_waves(const std::map<std::string, Tensor>& feeds) {
  if (!waves_computed_ || waves_version_ != graph_.version()) {
    waves_ = analysis::Dataflow::compute(graph_).waves();
    waves_version_ = graph_.version();
    waves_computed_ = true;
  }
  for (const auto& wave : waves_) {
    std::vector<NodeId> work;
    work.reserve(wave.size());
    for (NodeId id : wave) {
      const Node& n = graph_.node(id);
      if (n.kind == OpKind::kInput) {
        feed_input(n, feeds);
      } else {
        work.push_back(id);
      }
    }
    if (work.empty()) continue;
    if (work.size() == 1 || wave_pool_ == nullptr) {
      // A single-node wave keeps the full serial path (spans, profiling,
      // intra-op threading) — most of a deep chain executes here.
      for (NodeId id : work) exec_node_serial(graph_.node(id));
      continue;
    }
    // Parallel wave: pre-insert every output on this thread (the values_
    // map must not be mutated concurrently), then execute the nodes over
    // the wave pool. Each node runs fully serially inside (pfor inlines),
    // computes exactly what its serial execution computes, and writes only
    // its own pre-allocated tensor — so bits match the serial schedule.
    for (NodeId id : work) values_[id] = Tensor(graph_.node(id).out_shape);
    in_wave_ = true;
    try {
      wave_pool_->parallel_for(
          0, static_cast<std::int64_t>(work.size()), 1,
          [&](std::int64_t lo, std::int64_t hi, std::size_t) {
            for (std::int64_t i = lo; i < hi; ++i) {
              const Node& n = graph_.node(work[static_cast<std::size_t>(i)]);
              std::vector<const Tensor*> ins;
              ins.reserve(n.inputs.size());
              for (NodeId in : n.inputs) ins.push_back(&values_.at(in));
              execute_node(n, plans_[static_cast<std::size_t>(n.id)], ins, values_.at(n.id));
            }
          });
    } catch (...) {
      in_wave_ = false;
      throw;
    }
    in_wave_ = false;
    nodes_executed_ += work.size();
  }
}

std::map<std::string, Tensor> Executor::run(const std::map<std::string, Tensor>& feeds) {
  values_.clear();
  nodes_executed_ = 0;
  {
    std::lock_guard<std::mutex> lock(gemm_stats_mutex_);
    gemm_flops_ = 0;
    gemm_seconds_ = 0;
  }
  // Dispatch level resolved per run (env overrides are live) — the whole
  // run executes at one level.
  active_simd_ = util::resolve_simd_level(simd_req_);
  mk_ = use_gemm_ ? runtime_kernels::gemm_microkernels(active_simd_) : nullptr;
  const bool wave_mode = inter_op_ > 1;
  // The arena's liveness plan assumes the serial topological schedule; a
  // concurrent wave would alias buffers the plan considers dead.
  arena_stats_.active = use_arena_ && !keep_activations_ && !wave_mode;
  if (arena_stats_.active) prepare_arena();

  obs::ScopedSpan run_span;
  if (tracer_ != nullptr) {
    run_span = tracer_->span("session.run", "vedliot.runtime");
    run_span.attr("graph", graph_.name());
    run_span.attr("backend", "float-reference");
    run_span.attr("threads", static_cast<double>(threads_));
    run_span.attr("simd", std::string(util::simd_level_name(active_simd_)));
  }

  if (wave_mode) {
    run_waves(feeds);
  } else {
    for (NodeId id : graph_.topo_order()) {
      const Node& n = graph_.node(id);
      if (n.kind == OpKind::kInput) {
        feed_input(n, feeds);
        continue;
      }
      exec_node_serial(n);
    }
  }

  std::map<std::string, Tensor> outs;
  for (NodeId id : graph_.outputs()) {
    const Tensor& t = values_.at(id);
    outs[graph_.node(id).name] = t.is_view() ? t.clone() : t;
  }

  if (metrics_ != nullptr) {
    metrics_->counter(runtime_detail::kRunsCounter).inc();
    metrics_->counter(runtime_detail::kNodesCounter).inc(nodes_executed_);
    metrics_->gauge(runtime_detail::kThreadsGauge).set(static_cast<double>(threads_));
    {
      std::lock_guard<std::mutex> lock(gemm_stats_mutex_);
      if (gemm_seconds_ > 0) {
        metrics_->gauge(runtime_detail::kGemmGflopsGauge).set(gemm_flops_ / gemm_seconds_ / 1e9);
      }
    }
    if (arena_stats_.active) {
      metrics_->gauge(runtime_detail::kArenaBytesGauge)
          .set(static_cast<double>(arena_stats_.arena_bytes));
      metrics_->gauge(runtime_detail::kArenaSavedGauge)
          .set(static_cast<double>(arena_stats_.naive_bytes - arena_stats_.arena_bytes));
    }
  }
  if (tracer_ != nullptr) {
    run_span.attr("nodes_executed", static_cast<double>(nodes_executed_));
    run_span.close();
  }
  if (!keep_activations_) values_.clear();
  return outs;
}

std::vector<std::pair<OpKind, Executor::OpProfile>> Executor::hotspots(std::size_t top_n) const {
  std::vector<std::pair<OpKind, OpProfile>> out(profile_.begin(), profile_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.total_seconds > b.second.total_seconds;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

const Tensor& Executor::activation(const std::string& node_name) const {
  for (const auto& [id, t] : values_) {
    if (graph_.node(id).name == node_name) return t;
  }
  throw NotFound("no recorded activation for node " + node_name);
}

void Executor::record_gemm(double seconds, double flops) {
  std::lock_guard<std::mutex> lock(gemm_stats_mutex_);
  gemm_seconds_ += seconds;
  gemm_flops_ += flops;
}

void Executor::conv2d_gemm(const Node& n, const NodePlan& plan, const Tensor& in, Tensor& out) {
  using namespace runtime_kernels;
  const Conv2dGeometry& geo = plan.conv;
  const float* x = in.data().data();
  const float* w = n.weights[0].data().data();
  const float* bias = n.weights.size() > 1 ? n.weights[1].data().data() : nullptr;
  float* y = out.data().data();
  const auto t0 = std::chrono::steady_clock::now();

  if (geo.depthwise()) {
    // Direct at every dispatch level: the k*k dot per pixel has no GEMM
    // shape, so portable and SIMD runs share these exact bits.
    for (std::int64_t b = 0; b < geo.batch; ++b) {
      pfor(0, geo.out_c, 1, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
        depthwise_f32(x, w, bias, y, geo, b, lo, hi, plan.fused_act, plan.fused_alpha);
      });
    }
  } else {
    const std::int64_t patch = geo.patch();
    const std::int64_t cols = geo.cols();
    // In a parallel wave the shared scratch buffers would race across
    // concurrently executing conv nodes; fall back to node-local storage.
    std::vector<float> local_col, local_pb;
    std::vector<float>& colbuf = in_wave_ ? local_col : scratch_;
    const std::size_t need = static_cast<std::size_t>(patch * cols);
    if (colbuf.size() < need) colbuf.resize(need);
    float* col = colbuf.data();

    const GemmMicrokernels* mk =
        (mk_ != nullptr && mk_->gemm_f32 != nullptr && mk_->f32.available()) ? mk_ : nullptr;
    const std::int64_t m = geo.ocg();
    if (mk != nullptr) {
      std::vector<float>& pbbuf = in_wave_ ? local_pb : packed_b_;
      const std::size_t pb_need = packed_b_f32_elems(patch, cols, mk->f32);
      if (pbbuf.size() < pb_need) pbbuf.resize(pb_need);
      const std::int64_t b_panels = panel_count(cols, mk->f32.nr);
      const std::int64_t a_panels = panel_count(m, mk->f32.mr);
      for (std::int64_t b = 0; b < geo.batch; ++b) {
        for (std::int64_t g = 0; g < geo.groups; ++g) {
          pfor(0, patch, 4, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
            im2col_f32(x, geo, b, g, lo, hi, col);
          });
          pfor(0, b_panels, 1, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
            pack_b_f32(col, patch, cols, mk->f32, lo, hi, pbbuf.data());
          });
          const float* a = w + g * m * patch;
          const std::vector<float>& pa =
              packed_.get_f32(n.id, g, graph_.version(), mk->f32, [&](std::vector<float>& v) {
                v.resize(packed_a_f32_elems(m, patch, mk->f32));
                pack_a_f32(a, m, patch, mk->f32, v.data());
              });
          const float* gbias = bias != nullptr ? bias + g * m : nullptr;
          float* c = y + ((b * geo.out_c + g * m) * cols);
          pfor(0, a_panels, 1, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
            mk->gemm_f32(pa.data(), pbbuf.data(), c, m, cols, patch, cols,
                         /*col_major_store=*/false, lo, hi, gbias, plan.fused_act,
                         plan.fused_alpha);
          });
        }
      }
    } else {
      for (std::int64_t b = 0; b < geo.batch; ++b) {
        for (std::int64_t g = 0; g < geo.groups; ++g) {
          pfor(0, patch, 4, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
            im2col_f32(x, geo, b, g, lo, hi, col);
          });
          const float* a = w + g * m * patch;
          const float* gbias = bias != nullptr ? bias + g * m : nullptr;
          float* c = y + ((b * geo.out_c + g * m) * cols);
          pfor(0, m, 1, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
            gemm_rows_f32(a, col, c, lo, hi, cols, patch, gbias, plan.fused_act,
                          plan.fused_alpha);
          });
        }
      }
    }
  }

  const auto t1 = std::chrono::steady_clock::now();
  record_gemm(std::chrono::duration<double>(t1 - t0).count(), 2.0 * geo.macs());
}

void Executor::conv2d_direct(const Node& n, const NodePlan& plan, const Tensor& in, Tensor& out) {
  // The numerically faithful reference path: the original 6-deep loop nest
  // with double accumulation, partitioned over output channels.
  const Conv2dGeometry& geo = plan.conv;
  const Tensor& w = n.weights[0];
  const Tensor* bias = n.weights.size() > 1 ? &n.weights[1] : nullptr;
  const std::int64_t icg = geo.icg(), ocg = geo.ocg(), k = geo.kernel;

  for (std::int64_t b = 0; b < geo.batch; ++b) {
    pfor(0, geo.out_c, 1, [&](std::int64_t oc_lo, std::int64_t oc_hi, std::size_t) {
      for (std::int64_t oc = oc_lo; oc < oc_hi; ++oc) {
        const auto g = oc / ocg;
        for (std::int64_t oh = 0; oh < geo.out_h; ++oh) {
          for (std::int64_t ow = 0; ow < geo.out_w; ++ow) {
            double acc = bias ? bias->at(static_cast<std::size_t>(oc)) : 0.0;
            for (std::int64_t ic = 0; ic < icg; ++ic) {
              const auto in_c = g * icg + ic;
              for (std::int64_t kh = 0; kh < k; ++kh) {
                const auto ih = oh * geo.stride - geo.pad + kh;
                if (ih < 0 || ih >= geo.in_h) continue;
                for (std::int64_t kw = 0; kw < k; ++kw) {
                  const auto iw = ow * geo.stride - geo.pad + kw;
                  if (iw < 0 || iw >= geo.in_w) continue;
                  acc += static_cast<double>(in.at4(b, in_c, ih, iw)) *
                         static_cast<double>(w.at4(oc, ic, kh, kw));
                }
              }
            }
            const float v = static_cast<float>(acc);
            out.at4(b, oc, oh, ow) =
                plan.fused_act == OpKind::kIdentity
                    ? v
                    : apply_activation(v, plan.fused_act, plan.fused_alpha);
          }
        }
      }
    });
  }
}

void Executor::execute_node(const Node& n, const NodePlan& plan,
                            const std::vector<const Tensor*>& ins, Tensor& out) {
  switch (n.kind) {
    case OpKind::kConv2d: {
      if (n.weights.empty()) throw ExecError("Conv2d " + n.name + " has no weights");
      if (use_gemm_) {
        conv2d_gemm(n, plan, *ins.at(0), out);
      } else {
        conv2d_direct(n, plan, *ins.at(0), out);
      }
      break;
    }
    case OpKind::kDense: {
      if (n.weights.empty()) throw ExecError("Dense " + n.name + " has no weights");
      const Tensor& in = *ins.at(0);
      const float* x = in.data().data();
      const float* w = n.weights[0].data().data();
      const float* bias = n.weights.size() > 1 ? n.weights[1].data().data() : nullptr;
      float* y = out.data().data();
      const std::int64_t N = in.shape().dim(0);
      const std::int64_t F = in.shape().dim(1);
      const std::int64_t U = n.out_shape.dim(1);
      const auto t0 = std::chrono::steady_clock::now();
      // Batch the whole layer through one GEMM so each weight row is read
      // once for all lanes, instead of one latency-bound dot product per
      // sample. A [1 x F] input is its own transpose, so the singleton path
      // skips the packing copy entirely.
      std::vector<float> xt;
      const float* xin = x;
      if (N > 1) {
        xt.resize(static_cast<std::size_t>(N * F));
        for (std::int64_t b = 0; b < N; ++b) {
          for (std::int64_t f = 0; f < F; ++f) xt[static_cast<std::size_t>(f * N + b)] = x[b * F + f];
        }
        xin = xt.data();
      }
      const runtime_kernels::GemmMicrokernels* mk =
          (mk_ != nullptr && mk_->gemm_f32 != nullptr && mk_->f32.available()) ? mk_ : nullptr;
      if (mk != nullptr) {
        // Microkernel over (m=U, n=N, k=F) with the column-major store
        // writing straight into the [N x U] activation layout. Every lane
        // occupies one SIMD slot padded to the full tile, so its FMA
        // sequence — and therefore its bits — is the same whether it runs
        // in a batch-1 or a batch-8 panel.
        using namespace runtime_kernels;
        std::vector<float> pb(packed_b_f32_elems(F, N, mk->f32));
        pfor(0, panel_count(N, mk->f32.nr), 1, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          pack_b_f32(xin, F, N, mk->f32, lo, hi, pb.data());
        });
        const std::vector<float>& pa =
            packed_.get_f32(n.id, 0, graph_.version(), mk->f32, [&](std::vector<float>& v) {
              v.resize(packed_a_f32_elems(U, F, mk->f32));
              pack_a_f32(w, U, F, mk->f32, v.data());
            });
        pfor(0, panel_count(U, mk->f32.mr), 1, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          mk->gemm_f32(pa.data(), pb.data(), y, U, N, F, /*ldc=*/U, /*col_major_store=*/true,
                       lo, hi, bias, plan.fused_act, plan.fused_alpha);
        });
      } else {
        pfor(0, U, 8, [&](std::int64_t u_lo, std::int64_t u_hi, std::size_t) {
          runtime_kernels::dense_rows_f32(w, xin, y, u_lo, u_hi, N, F, U, bias, plan.fused_act,
                                          plan.fused_alpha);
        });
      }
      const auto t1 = std::chrono::steady_clock::now();
      record_gemm(std::chrono::duration<double>(t1 - t0).count(),
                  2.0 * static_cast<double>(N) * static_cast<double>(U) * static_cast<double>(F));
      break;
    }
    case OpKind::kBatchNorm: {
      if (n.weights.size() != 4) throw ExecError("BatchNorm " + n.name + " needs 4 weight tensors");
      const Tensor& in = *ins.at(0);
      const auto& s = in.shape();
      const std::int64_t C = s.rank() == 4 ? s.c() : s.dim(1);
      const std::int64_t spatial = s.rank() == 4 ? s.h() * s.w() : 1;
      const std::int64_t N = s.dim(0);
      // Per-channel scale/shift computed once, not once per batch element.
      std::vector<float> scale(static_cast<std::size_t>(C));
      std::vector<float> shift(static_cast<std::size_t>(C));
      const auto& gamma = n.weights[0];
      const auto& beta = n.weights[1];
      const auto& mean = n.weights[2];
      const auto& var = n.weights[3];
      for (std::int64_t c = 0; c < C; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        scale[ci] = static_cast<float>(gamma.at(ci) / std::sqrt(var.at(ci) + plan.bn_eps));
        shift[ci] = static_cast<float>(beta.at(ci) - mean.at(ci) * scale[ci]);
      }
      const float* x = in.data().data();
      float* y = out.data().data();
      pfor(0, N * C, 1, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
        for (std::int64_t bc = lo; bc < hi; ++bc) {
          const auto ci = static_cast<std::size_t>(bc % C);
          const float* xr = x + bc * spatial;
          float* yr = y + bc * spatial;
          for (std::int64_t i = 0; i < spatial; ++i) yr[i] = xr[i] * scale[ci] + shift[ci];
        }
      });
      break;
    }
    case OpKind::kRelu:
    case OpKind::kRelu6:
    case OpKind::kLeakyRelu:
    case OpKind::kSigmoid:
    case OpKind::kHSigmoid:
    case OpKind::kHSwish:
    case OpKind::kMish:
    case OpKind::kTanh: {
      const float* x = ins.at(0)->data().data();
      float* y = out.data().data();
      const OpKind kind = n.kind;
      const double alpha = plan.alpha;
      pfor(0, out.numel(), 4096, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
        for (std::int64_t i = lo; i < hi; ++i) y[i] = apply_activation(x[i], kind, alpha);
      });
      break;
    }
    case OpKind::kAdd:
    case OpKind::kMul: {
      const Tensor& a = *ins.at(0);
      const Tensor& b = *ins.at(1);
      const bool mul = n.kind == OpKind::kMul;
      float* y = out.data().data();
      if (a.shape() == b.shape()) {
        const float* pa = a.data().data();
        const float* pb = b.data().data();
        pfor(0, out.numel(), 4096, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          if (mul) {
            for (std::int64_t i = lo; i < hi; ++i) y[i] = pa[i] * pb[i];
          } else {
            for (std::int64_t i = lo; i < hi; ++i) y[i] = pa[i] + pb[i];
          }
        });
        break;
      }
      // channelwise broadcast: one side is [N,C,1,1]
      const Tensor& big = a.numel() >= b.numel() ? a : b;
      const Tensor& vec = a.numel() >= b.numel() ? b : a;
      const auto& s = big.shape();
      const std::int64_t C = s.c(), spatial = s.h() * s.w();
      const float* px = big.data().data();
      const float* pv = vec.data().data();
      pfor(0, s.n() * C, 1, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
        for (std::int64_t bc = lo; bc < hi; ++bc) {
          const float v = pv[bc];
          const float* xr = px + bc * spatial;
          float* yr = y + bc * spatial;
          if (mul) {
            for (std::int64_t i = 0; i < spatial; ++i) yr[i] = xr[i] * v;
          } else {
            for (std::int64_t i = 0; i < spatial; ++i) yr[i] = xr[i] + v;
          }
        }
      });
      break;
    }
    case OpKind::kConcat: {
      const auto& os = n.out_shape;
      if (os.rank() == 4) {
        std::int64_t c_off = 0;
        for (const Tensor* t : ins) {
          const auto& s = t->shape();
          for (std::int64_t b = 0; b < s.n(); ++b)
            for (std::int64_t c = 0; c < s.c(); ++c)
              for (std::int64_t h = 0; h < s.h(); ++h)
                for (std::int64_t w = 0; w < s.w(); ++w)
                  out.at4(b, c_off + c, h, w) = t->at4(b, c, h, w);
          c_off += s.c();
        }
      } else {
        std::int64_t f_off = 0;
        const auto F = os.dim(1);
        for (const Tensor* t : ins) {
          const auto& s = t->shape();
          for (std::int64_t b = 0; b < s.dim(0); ++b)
            for (std::int64_t f = 0; f < s.dim(1); ++f)
              out.at(static_cast<std::size_t>(b * F + f_off + f)) =
                  t->at(static_cast<std::size_t>(b * s.dim(1) + f));
          f_off += s.dim(1);
        }
      }
      break;
    }
    case OpKind::kMaxPool:
    case OpKind::kAvgPool: {
      const bool is_max = n.kind == OpKind::kMaxPool;
      const std::int64_t k = plan.pool_kernel, stride = plan.pool_stride, pad = plan.pool_pad;
      const Tensor& in = *ins.at(0);
      const auto& s = in.shape();
      const std::int64_t IH = s.h(), IW = s.w();
      const std::int64_t OC = n.out_shape.c(), OH = n.out_shape.h(), OW = n.out_shape.w();
      const float* x = in.data().data();
      float* y = out.data().data();
      pfor(0, n.out_shape.n() * OC, 1, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
        for (std::int64_t bc = lo; bc < hi; ++bc) {
          const float* plane = x + bc * IH * IW;
          float* oplane = y + bc * OH * OW;
          for (std::int64_t oh = 0; oh < OH; ++oh) {
            for (std::int64_t ow = 0; ow < OW; ++ow) {
              double acc = is_max ? -std::numeric_limits<double>::infinity() : 0.0;
              std::int64_t count = 0;
              for (std::int64_t kh = 0; kh < k; ++kh) {
                const auto ih = oh * stride - pad + kh;
                if (ih < 0 || ih >= IH) continue;
                for (std::int64_t kw = 0; kw < k; ++kw) {
                  const auto iw = ow * stride - pad + kw;
                  if (iw < 0 || iw >= IW) continue;
                  const double v = plane[ih * IW + iw];
                  if (is_max) {
                    acc = std::max(acc, v);
                  } else {
                    acc += v;
                  }
                  ++count;
                }
              }
              oplane[oh * OW + ow] = static_cast<float>(
                  is_max ? acc : (count > 0 ? acc / static_cast<double>(count) : 0.0));
            }
          }
        }
      });
      break;
    }
    case OpKind::kGlobalAvgPool: {
      const Tensor& in = *ins.at(0);
      const auto& s = in.shape();
      const std::int64_t spatial = s.h() * s.w();
      const double denom = static_cast<double>(spatial);
      const float* x = in.data().data();
      float* y = out.data().data();
      pfor(0, s.n() * s.c(), 8, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
        for (std::int64_t bc = lo; bc < hi; ++bc) {
          const float* plane = x + bc * spatial;
          double acc = 0.0;
          for (std::int64_t i = 0; i < spatial; ++i) acc += plane[i];
          y[bc] = static_cast<float>(acc / denom);
        }
      });
      break;
    }
    case OpKind::kUpsample: {
      const auto scale = plan.upsample_scale;
      const auto& os = n.out_shape;
      for (std::int64_t b = 0; b < os.n(); ++b)
        for (std::int64_t c = 0; c < os.c(); ++c)
          for (std::int64_t h = 0; h < os.h(); ++h)
            for (std::int64_t w = 0; w < os.w(); ++w)
              out.at4(b, c, h, w) = ins.at(0)->at4(b, c, h / scale, w / scale);
      break;
    }
    case OpKind::kFlatten:
    case OpKind::kIdentity: {
      const auto src = ins.at(0)->data();
      std::copy(src.begin(), src.end(), out.data().begin());
      break;
    }
    case OpKind::kSoftmax: {
      const Tensor& in = *ins.at(0);
      const auto& s = in.shape();
      const std::int64_t N = s.dim(0);
      const std::int64_t F = in.numel() / N;
      const float* x = in.data().data();
      float* y = out.data().data();
      for (std::int64_t b = 0; b < N; ++b) {
        const float* xr = x + b * F;
        float* yr = y + b * F;
        float mx = -std::numeric_limits<float>::infinity();
        for (std::int64_t f = 0; f < F; ++f) mx = std::max(mx, xr[f]);
        double sum = 0.0;
        for (std::int64_t f = 0; f < F; ++f) {
          const double e = std::exp(static_cast<double>(xr[f] - mx));
          yr[f] = static_cast<float>(e);
          sum += e;
        }
        for (std::int64_t f = 0; f < F; ++f) yr[f] = static_cast<float>(yr[f] / sum);
      }
      break;
    }
    case OpKind::kInput:
      throw ExecError("Input node reached execute_node");
  }
}

}  // namespace vedliot
