#include "safety/scrub.hpp"

#include "util/error.hpp"
#include "util/hash.hpp"

namespace vedliot::safety {

WeightScrubber::WeightScrubber(const Graph& deployed) : WeightScrubber(deployed, Config{}) {}

WeightScrubber::WeightScrubber(const Graph& deployed, Config config)
    : graph_(&deployed), cfg_(config) {
  VEDLIOT_CHECK(cfg_.tensors_per_tick >= 1, "scrub budget must be >= 1 tensor per tick");
  rebaseline();
}

void WeightScrubber::rebaseline() {
  entries_.clear();
  cursor_ = 0;
  for (NodeId id : graph_->topo_order()) {
    const Node& n = graph_->node(id);
    for (std::size_t t = 0; t < n.weights.size(); ++t) {
      entries_.push_back(Entry{id, t, util::crc32(n.weights[t].data())});
    }
  }
}

std::size_t WeightScrubber::ticks_per_sweep() const {
  if (entries_.empty()) return 1;
  return (entries_.size() + cfg_.tensors_per_tick - 1) / cfg_.tensors_per_tick;
}

WeightScrubber::Hit WeightScrubber::make_hit(const Entry& e, std::uint32_t actual) const {
  return Hit{e.node, graph_->node(e.node).name, e.tensor, e.crc, actual};
}

bool WeightScrubber::scan_one(const Entry& e, std::vector<Hit>& out) {
  ++scanned_;
  const std::uint32_t actual = util::crc32(graph_->node(e.node).weights.at(e.tensor).data());
  if (actual == e.crc) return false;
  ++hits_;
  out.push_back(make_hit(e, actual));
  return true;
}

std::vector<WeightScrubber::Hit> WeightScrubber::tick() {
  ++ticks_;
  std::vector<Hit> out;
  if (entries_.empty()) return out;
  for (std::size_t i = 0; i < cfg_.tensors_per_tick && i < entries_.size(); ++i) {
    scan_one(entries_[cursor_], out);
    cursor_ = (cursor_ + 1) % entries_.size();
  }
  return out;
}

std::vector<WeightScrubber::Hit> WeightScrubber::full_scan() {
  std::vector<Hit> out;
  for (const Entry& e : entries_) scan_one(e, out);
  return out;
}

}  // namespace vedliot::safety
