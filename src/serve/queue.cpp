#include "serve/queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vedliot::serve {

namespace {

/// True when a dispatches before b: priority desc, deadline asc, enqueue
/// asc, id asc — a strict total order, so dispatch is deterministic.
bool dispatches_before(const Ticket& a, const Ticket& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a.deadline_s != b.deadline_s) return a.deadline_s < b.deadline_s;
  if (a.enqueued_s != b.enqueued_s) return a.enqueued_s < b.enqueued_s;
  return a.id < b.id;
}

}  // namespace

AdmissionQueue::AdmissionQueue(QueueConfig config) : cfg_(config) {
  VEDLIOT_CHECK(cfg_.capacity >= 1, "admission queue capacity must be >= 1");
}

void AdmissionQueue::push(Ticket t) {
  VEDLIOT_CHECK(!full(), "admission queue overflow (caller must shed or displace)");
  tickets_.push_back(t);
}

std::optional<Ticket> AdmissionQueue::pop(double now) {
  auto best = tickets_.end();
  for (auto it = tickets_.begin(); it != tickets_.end(); ++it) {
    if (it->not_before_s > now) continue;
    if (best == tickets_.end() || dispatches_before(*it, *best)) best = it;
  }
  if (best == tickets_.end()) return std::nullopt;
  Ticket t = *best;
  tickets_.erase(best);
  return t;
}

std::vector<Ticket> AdmissionQueue::expire(double now) {
  std::vector<Ticket> expired;
  auto keep = tickets_.begin();
  for (auto& t : tickets_) {
    if (t.deadline_s < now) {
      expired.push_back(t);
    } else {
      *keep++ = t;
    }
  }
  tickets_.erase(keep, tickets_.end());
  return expired;
}

std::optional<Ticket> AdmissionQueue::displace(int priority) {
  auto worst = tickets_.end();
  for (auto it = tickets_.begin(); it != tickets_.end(); ++it) {
    if (it->priority >= priority) continue;
    if (worst == tickets_.end() || dispatches_before(*worst, *it)) worst = it;
  }
  if (worst == tickets_.end()) return std::nullopt;
  Ticket t = *worst;
  tickets_.erase(worst);
  return t;
}

}  // namespace vedliot::serve
