file(REMOVE_RECURSE
  "CMakeFiles/paeb_automotive.dir/paeb_automotive.cpp.o"
  "CMakeFiles/paeb_automotive.dir/paeb_automotive.cpp.o.d"
  "paeb_automotive"
  "paeb_automotive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paeb_automotive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
