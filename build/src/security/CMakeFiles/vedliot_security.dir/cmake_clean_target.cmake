file(REMOVE_RECURSE
  "libvedliot_security.a"
)
