#pragma once
/// \file integrity_soak.hpp
/// \brief Deterministic memory-fault soak for the silent-data-corruption
/// defense (scrubbing + self-healing reload + OTA rollback).
///
/// One run_integrity_soak() call serves a tiny CNN in execute mode with a
/// per-delivery robustness check (check_period = 1), a per-tick weight
/// scrubber and a golden ModelStore, then attacks it three ways:
///
///   * a seeded campaign of kMemoryFault events flips single weight bits
///     in the deployed model at `flip_rate_hz`;
///   * one OTA payload is corrupted in transit (kOtaCorrupt marker) and
///     must be rejected at staging with the old version still serving;
///   * one OTA commits cleanly, then an SEU lands inside its probation
///     window — the "bad push" case that must roll the update back.
///
/// Invariants checked on every run:
///
///   1. bounded detection — every memory fault is localized by a scrub hit
///      within (ticks_per_sweep + 2) control ticks of injection;
///   2. no unchecked delivery — every delivered response (completed or
///      late) was verified by the robustness service: integrity_checks ==
///      completed + deadline_missed;
///   3. bounded recovery — every detection self-heals (kModelReloaded or
///      kOtaRolledBack) at detection time, and a final full scan leaves
///      zero corrupt tensors (dirty_at_end == 0);
///   4. bad OTA never sticks — every corrupted payload is rejected
///      pre-swap, and the scripted bad push always ends in kOtaRolledBack.
///
/// Plus the observability mirror check the chaos soak makes: events are
/// mirrored 1:1 into the tracer and per-kind counters match. Everything
/// derives from the seed; two runs of the same config are bitwise
/// identical (to_json string compare).

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace vedliot::serve {

struct IntegritySoakConfig {
  std::uint64_t seed = 0x5EEDu;
  double duration_s = 1.0;
  double flip_rate_hz = 0.0;      ///< random SEU events per second (0 = none)
  double arrival_hz = 400.0;      ///< offered load (execute mode, real tensors)
  int n_backends = 2;             ///< modules installed in the RECS|Box
  double deadline_s = 60e-3;      ///< generous; this soak is not a load test
  std::size_t scrub_per_tick = 4; ///< WeightScrubber budget per control tick
  bool ota_scenario = true;       ///< schedule good push / corrupt push / bad push
};

struct IntegritySoakResult {
  IntegritySoakConfig config;
  ServeReport report;
  std::vector<std::string> violations;  ///< empty = all four invariants hold
  std::string sim_describe;             ///< seed/fault identity of the run

  double detection_bound_s = 0;   ///< guaranteed worst-case scrub latency
  double max_detection_s = 0;     ///< observed worst fault -> scrub-hit gap
  double mean_detection_s = 0;

  bool ok() const { return violations.empty(); }

  /// Deterministic JSON-lines record ("record":"soak-integrity"); bitwise
  /// identical across runs of the same config.
  std::string to_json() const;
};

/// Run one seeded memory-fault soak at the configured flip rate.
IntegritySoakResult run_integrity_soak(const IntegritySoakConfig& config);

}  // namespace vedliot::serve
