#include "tensor/quant.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "util/error.hpp"

namespace vedliot {

namespace {

struct Range {
  float lo = 0.0f;
  float hi = 0.0f;
};

Range observed_range(std::span<const float> data, Calibration cal, double percentile) {
  VEDLIOT_CHECK(!data.empty(), "cannot calibrate on empty data");
  if (cal == Calibration::kMinMax) {
    auto [mn, mx] = std::minmax_element(data.begin(), data.end());
    return {*mn, *mx};
  }
  VEDLIOT_CHECK(percentile >= 0.0 && percentile < 50.0, "percentile must be in [0,50)");
  std::vector<float> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  const auto idx = [&](double p) {
    auto i = static_cast<std::size_t>(p / 100.0 * static_cast<double>(n - 1));
    return std::min(i, n - 1);
  };
  return {sorted[idx(percentile)], sorted[idx(100.0 - percentile)]};
}

void int_limits(DType dt, std::int32_t& qmin, std::int32_t& qmax) {
  switch (dt) {
    case DType::kINT8: qmin = -128; qmax = 127; return;
    case DType::kINT4: qmin = -8; qmax = 7; return;
    case DType::kBinary: qmin = -1; qmax = 1; return;
    default: throw InvalidArgument("quantization requires an integer dtype");
  }
}

}  // namespace

std::int32_t QuantParams::quantize(float v) const {
  const double q = std::nearbyint(static_cast<double>(v) / scale) + zero_point;
  return static_cast<std::int32_t>(std::clamp<double>(q, qmin, qmax));
}

float QuantParams::dequantize(std::int32_t q) const {
  return static_cast<float>(scale * (q - zero_point));
}

QuantParams choose_symmetric(std::span<const float> data, DType dt, Calibration cal,
                             double percentile) {
  QuantParams qp;
  int_limits(dt, qp.qmin, qp.qmax);
  const Range r = observed_range(data, cal, percentile);
  const double amax = std::max(std::abs(static_cast<double>(r.lo)), std::abs(static_cast<double>(r.hi)));
  qp.scale = amax > 0.0 ? amax / static_cast<double>(qp.qmax) : 1.0;
  qp.zero_point = 0;
  return qp;
}

QuantParams choose_affine(std::span<const float> data, DType dt, Calibration cal,
                          double percentile) {
  QuantParams qp;
  int_limits(dt, qp.qmin, qp.qmax);
  Range r = observed_range(data, cal, percentile);
  // The representable range must include zero so that padding/zero values
  // quantize exactly (standard TFLite-style constraint).
  r.lo = std::min(r.lo, 0.0f);
  r.hi = std::max(r.hi, 0.0f);
  const double span = static_cast<double>(r.hi) - static_cast<double>(r.lo);
  qp.scale = span > 0.0 ? span / static_cast<double>(qp.qmax - qp.qmin) : 1.0;
  const double zp = static_cast<double>(qp.qmin) - static_cast<double>(r.lo) / qp.scale;
  qp.zero_point = static_cast<std::int32_t>(std::clamp<double>(std::nearbyint(zp), qp.qmin, qp.qmax));
  return qp;
}

std::vector<std::int32_t> quantize(std::span<const float> data, const QuantParams& qp) {
  std::vector<std::int32_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = qp.quantize(data[i]);
  return out;
}

std::vector<float> dequantize(std::span<const std::int32_t> q, const QuantParams& qp) {
  std::vector<float> out(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) out[i] = qp.dequantize(q[i]);
  return out;
}

QuantParams fake_quantize(Tensor& t, DType dt, Calibration cal, double percentile) {
  auto qp = choose_symmetric(t.data(), dt, cal, percentile);
  for (float& v : t.data()) v = qp.dequantize(qp.quantize(v));
  return qp;
}

std::vector<QuantParams> fake_quantize_per_channel(Tensor& weight, DType dt) {
  VEDLIOT_CHECK(weight.shape().rank() == 4, "per-channel quantization expects OIHW weights");
  const auto oc = weight.shape().dim(0);
  const auto per = static_cast<std::size_t>(weight.numel() / oc);
  std::vector<QuantParams> params;
  params.reserve(static_cast<std::size_t>(oc));
  auto data = weight.data();
  for (std::int64_t c = 0; c < oc; ++c) {
    auto chan = data.subspan(static_cast<std::size_t>(c) * per, per);
    auto qp = choose_symmetric(chan, dt);
    for (float& v : chan) v = qp.dequantize(qp.quantize(v));
    params.push_back(qp);
  }
  return params;
}

double quant_step(std::span<const float> data, DType dt) {
  return choose_symmetric(data, dt).scale;
}

float fp16_round_trip(float v) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(v);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xFFu) - 127 + 15;
  std::uint32_t mant = x & 0x7FFFFFu;

  std::uint16_t h;
  if (((x >> 23) & 0xFFu) == 0xFFu) {
    // Inf/NaN
    h = static_cast<std::uint16_t>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  } else if (exp >= 31) {
    h = static_cast<std::uint16_t>(sign | 0x7C00u);  // overflow -> inf
  } else if (exp <= 0) {
    if (exp < -10) {
      h = static_cast<std::uint16_t>(sign);  // underflow -> signed zero
    } else {
      // subnormal half: h_mant = mant24 >> (14 - exp), round to nearest even
      mant |= 0x800000u;
      const int shift = 14 - exp;
      std::uint32_t sub = mant >> shift;
      // round to nearest even
      const std::uint32_t rem = mant & ((1u << shift) - 1);
      const std::uint32_t half = 1u << (shift - 1);
      if (rem > half || (rem == half && (sub & 1u))) ++sub;
      h = static_cast<std::uint16_t>(sign | sub);
    }
  } else {
    std::uint32_t m = mant >> 13;
    const std::uint32_t rem = mant & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (m & 1u))) ++m;
    std::uint32_t e = static_cast<std::uint32_t>(exp);
    if (m == 0x400u) {  // mantissa rounding carried into the exponent
      m = 0;
      ++e;
    }
    if (e >= 31) {
      h = static_cast<std::uint16_t>(sign | 0x7C00u);
    } else {
      h = static_cast<std::uint16_t>(sign | (e << 10) | m);
    }
  }

  // half -> float
  const std::uint32_t hs = (h >> 15) & 1u;
  const std::uint32_t he = (h >> 10) & 0x1Fu;
  const std::uint32_t hm = h & 0x3FFu;
  std::uint32_t f;
  if (he == 0) {
    if (hm == 0) {
      f = hs << 31;
    } else {
      // subnormal half -> normalized float
      int e = -1;
      std::uint32_t m = hm;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      f = (hs << 31) | (static_cast<std::uint32_t>(127 - 15 - e) << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (he == 31) {
    f = (hs << 31) | 0x7F800000u | (hm << 13);
  } else {
    f = (hs << 31) | ((he - 15 + 127) << 23) | (hm << 13);
  }
  return std::bit_cast<float>(f);
}

void cast_fp16_inplace(Tensor& t) {
  for (float& v : t.data()) v = fp16_round_trip(v);
}

}  // namespace vedliot
