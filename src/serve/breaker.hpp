#pragma once
/// \file breaker.hpp
/// \brief Per-backend circuit breaker for the serving layer.
///
/// Classic three-state breaker: kClosed passes traffic and counts
/// consecutive failures; at the threshold it trips to kOpen and sheds load
/// off the backend; after a cooldown it half-opens and lets a bounded
/// number of probe requests through — enough consecutive probe successes
/// close it again, any probe failure re-opens it. The serving front-end
/// keeps one breaker per backend slot and feeds it from transfer results,
/// completion results and HealthMonitor down/up beats, so a crashed module
/// stops receiving work within one detection period instead of eating its
/// queue share as timeouts.

#include <optional>
#include <string>

namespace vedliot::serve {

enum class BreakerState {
  kClosed,    ///< normal operation, failures counted
  kOpen,      ///< shedding: no traffic until the cooldown expires
  kHalfOpen,  ///< probing: a bounded number of trial requests allowed
};

std::string_view breaker_state_name(BreakerState s);

struct BreakerConfig {
  int failure_threshold = 3;   ///< consecutive failures -> open
  double cooldown_s = 50e-3;   ///< open duration before half-open probing
  int half_open_probes = 2;    ///< consecutive probe successes -> closed
};

/// One observed state change, in the order it happened. The breaker never
/// logs on its own: transitions are returned to the caller, which owns the
/// serving event stream.
struct BreakerTransition {
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
  std::string reason;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {});

  /// Advance to \p now: an open breaker whose cooldown has expired moves to
  /// half-open (returned as a transition). Call once per control tick.
  std::optional<BreakerTransition> tick(double now);

  /// May a request be dispatched right now? Closed always; half-open only
  /// while a probe slot is free; open never.
  bool allow() const;

  /// A request was dispatched; in half-open this occupies one probe slot.
  void on_dispatch();

  std::optional<BreakerTransition> record_success(double now);
  std::optional<BreakerTransition> record_failure(double now, const std::string& reason);

  /// External kill signal (heartbeat monitor declared the backend down):
  /// trip straight to open no matter the state. Re-arming an already-open
  /// breaker refreshes its cooldown.
  std::optional<BreakerTransition> force_open(double now, const std::string& reason);

  BreakerState state() const { return state_; }
  int consecutive_failures() const { return failures_; }

 private:
  BreakerTransition to(BreakerState next, const std::string& reason);

  BreakerConfig cfg_;
  BreakerState state_ = BreakerState::kClosed;
  int failures_ = 0;        ///< consecutive, while closed
  double opened_at_ = 0;    ///< cooldown anchor, while open
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
};

}  // namespace vedliot::serve
