#pragma once
/// \file executor.hpp
/// \brief Reference CPU executor: actually computes every op in the IR.
///
/// This is the runtime the Kenning-analogue deploys to when the target is
/// "host CPU". Since PR 3 it is a real execution engine rather than a naive
/// interpreter:
///
///  - Conv2D runs as im2col + cache-blocked GEMM (kernels.hpp) with a fused
///    bias+activation epilogue; set_use_gemm_conv(false) falls back to the
///    direct 6-deep loop (kept as the numerical reference and the perf
///    baseline in bench_runtime).
///  - Conv/Dense/BatchNorm/pool/elementwise kernels partition their output
///    rows/channels over a util::ThreadPool. Accumulation order within each
///    output element is fixed, so results are bitwise identical for any
///    thread count.
///  - Intermediate activations live in a single arena slab laid out by the
///    liveness-based memory planner (memory_planner.hpp) instead of one heap
///    allocation per node; graph outputs are deep-copied out of the arena.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/kernels.hpp"
#include "runtime/microkernel.hpp"
#include "util/thread_safety.hpp"
#include "runtime/packed_cache.hpp"
#include "tensor/tensor.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

namespace vedliot {

/// Exception for execution-time failures (missing weights, bad feeds).
class ExecError : public Error {
 public:
  explicit ExecError(const std::string& message) : Error(message) {}
};

class Executor {
 public:
  /// The graph must outlive the executor and have materialized weights for
  /// every parametric node.
  explicit Executor(const Graph& graph);

  /// Run the graph on the given feeds (one tensor per Input node, keyed by
  /// node name). Returns the outputs of all graph output nodes by name.
  ///
  /// This is the engine entry runtime::Session wraps; application code goes
  /// through Session. Direct construction is reserved for calibration-style
  /// introspection (keep_activations + activation(), arena_stats, profile)
  /// that the session API deliberately does not expose.
  std::map<std::string, Tensor> run(const std::map<std::string, Tensor>& feeds);

  /// Attach observability sinks (either may be null). When a tracer is set,
  /// run() emits one root span plus one child span per executed (non-input)
  /// node; when a registry is set, per-op-class latency histograms
  /// (`vedliot.runtime.op.<Op>`, microseconds), run/node counters, the GEMM
  /// throughput gauge, arena gauges and the pool-utilization histogram are
  /// recorded. The sinks must outlive the executor.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// When false, intermediate activations are released at the end of run()
  /// (activation() then throws NotFound). Default true. Keeping activations
  /// disables the arena: every tensor must stay addressable after the run.
  void set_keep_activations(bool keep) { keep_activations_ = keep; }

  /// Intra-op parallelism: kernels partition work over this many threads
  /// (including the calling thread). 0 selects the hardware concurrency;
  /// default 1 (fully serial). Output bits do not depend on this value.
  void set_threads(unsigned threads);

  /// Requested kernel dispatch level (default kAuto). Resolved per run —
  /// env overrides and CPU feature detection applied — so a test can flip
  /// VEDLIOT_FORCE_PORTABLE between runs of one live executor.
  void set_simd(util::SimdLevel level) { simd_req_ = level; }
  /// The concrete dispatch level the last run() executed at.
  util::SimdLevel active_simd() const { return active_simd_; }

  /// Inter-op parallelism: when > 1, independent nodes of one dataflow wave
  /// (analysis::Dataflow::waves) execute concurrently over this many
  /// threads, with intra-op threading suspended inside parallel waves and
  /// the activation arena disabled (its liveness plan assumes serial
  /// order). Output bits do not depend on this value.
  void set_inter_op(unsigned inter_op);

  /// Total weight-pack operations of the packed-panel cache — stays flat
  /// across steady-state runs and grows when Graph::version() moves (OTA
  /// swap, scrubber repair) or the dispatch tile changes.
  std::size_t weight_packs() const { return packed_.packs(); }

  /// Execute Conv2D as im2col + GEMM (default) or as the direct loop nest.
  void set_use_gemm_conv(bool on) { use_gemm_ = on; }

  /// Place intermediate activations in the planner-packed arena (default
  /// on; effective only while keep_activations is off).
  void set_use_arena(bool on) { use_arena_ = on; }

  /// Arena accounting for the last run().
  struct ArenaStats {
    bool active = false;           ///< arena was used by the last run
    std::int64_t arena_bytes = 0;  ///< packed slab size
    std::int64_t naive_bytes = 0;  ///< sum of all activation buffers
  };
  const ArenaStats& arena_stats() const { return arena_stats_; }

  /// After run(): number of nodes executed (profiling hook).
  std::size_t nodes_executed() const { return nodes_executed_; }

  /// Retrieve any intermediate activation from the last run() by node name
  /// (used for quantization calibration). Throws NotFound if absent.
  const Tensor& activation(const std::string& node_name) const;

  /// Per-op-kind wall-clock accounting, accumulated across runs when
  /// profiling is enabled (the Kenning "monitor inference time" hook).
  struct OpProfile {
    std::uint64_t invocations = 0;
    double total_seconds = 0;
  };
  void enable_profiling(bool on = true) { profiling_ = on; }
  const std::map<OpKind, OpProfile>& profile() const { return profile_; }
  void reset_profile() { profile_.clear(); }

  /// The heaviest op kinds by accumulated time, descending.
  std::vector<std::pair<OpKind, OpProfile>> hotspots(std::size_t top_n = 3) const;

 private:
  /// Per-node execution plan resolved once at construction so the hot loop
  /// never re-parses string attributes or re-derives loop geometry.
  struct NodePlan {
    OpKind fused_act = OpKind::kIdentity;
    double fused_alpha = 0.01;
    double alpha = 0.01;  ///< standalone activation alpha
    double bn_eps = 1e-5;
    std::int64_t pool_kernel = 0, pool_stride = 0, pool_pad = 0;
    std::int64_t upsample_scale = 1;
    runtime_kernels::Conv2dGeometry conv;  ///< valid for kConv2d nodes
  };

  void execute_node(const Node& n, const NodePlan& plan,
                    const std::vector<const Tensor*>& ins, Tensor& out);
  void conv2d_gemm(const Node& n, const NodePlan& plan, const Tensor& in, Tensor& out);
  void conv2d_direct(const Node& n, const NodePlan& plan, const Tensor& in, Tensor& out);
  Tensor alloc_output(const Node& n);
  void prepare_arena();
  void feed_input(const Node& n, const std::map<std::string, Tensor>& feeds);
  /// Full serial per-node path: span + timing + alloc + execute + store.
  void exec_node_serial(const Node& n);
  /// Wave-parallel execution body (inter_op > 1): nodes of one dataflow
  /// wave run concurrently, each fully serial inside.
  void run_waves(const std::map<std::string, Tensor>& feeds);
  void record_gemm(double seconds, double flops);
  /// Dispatch over [begin, end) with the configured pool (inline when
  /// serial); records one pool-utilization sample when metrics are attached.
  void pfor(std::int64_t begin, std::int64_t end, std::int64_t grain,
            const util::ThreadPool::ChunkFn& fn);

  const Graph& graph_;
  std::vector<NodePlan> plans_;  ///< indexed by NodeId over all node slots
  std::map<NodeId, Tensor> values_;
  std::size_t nodes_executed_ = 0;
  bool profiling_ = false;
  std::map<OpKind, OpProfile> profile_;
  bool keep_activations_ = true;

  unsigned threads_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;
  bool use_gemm_ = true;
  bool use_arena_ = true;
  std::vector<float> arena_;  ///< one slab; node buffers are planner offsets
  std::map<NodeId, std::size_t> arena_offset_;  ///< float offset into arena_
  ArenaStats arena_stats_;
  std::vector<float> scratch_;  ///< im2col column matrix, grown on demand
  std::vector<float> packed_b_;  ///< microkernel B panels, grown on demand

  // Runtime SIMD dispatch: requested level, the level the current run
  // resolved to, and that level's microkernel table (null => portable).
  util::SimdLevel simd_req_ = util::SimdLevel::kAuto;
  util::SimdLevel active_simd_ = util::SimdLevel::kPortable;
  const runtime_kernels::GemmMicrokernels* mk_ = nullptr;
  runtime_kernels::PackedWeightCache packed_;

  // Inter-op (wave) parallelism state. in_wave_ is set around a parallel
  // wave dispatch and makes pfor inline (the pool cannot nest) and the
  // conv scratch buffers node-local.
  unsigned inter_op_ = 1;
  std::unique_ptr<util::ThreadPool> wave_pool_;
  bool in_wave_ = false;
  std::vector<std::vector<NodeId>> waves_;
  std::uint64_t waves_version_ = 0;
  bool waves_computed_ = false;

  // Per-run GEMM accounting feeding the GFLOP/s gauge; the mutex serializes
  // updates from concurrent wave nodes.
  std::mutex gemm_stats_mutex_;
  double gemm_flops_ VEDLIOT_GUARDED_BY(gemm_stats_mutex_) = 0;
  double gemm_seconds_ VEDLIOT_GUARDED_BY(gemm_stats_mutex_) = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace vedliot
