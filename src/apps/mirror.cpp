#include "apps/mirror.hpp"

#include "util/error.hpp"

namespace vedliot::apps {

std::vector<MirrorPipeline> default_pipelines() {
  return {
      {"gesture", 15.0, 0.10},
      {"face", 5.0, 0.25},
      {"object", 5.0, 0.25},
      {"speech", 20.0, 0.08},
  };
}

platform::Workload mirror_workload(const MirrorPipeline& pipeline) {
  Graph g = [&] {
    if (pipeline.name == "gesture") return zoo::gesture_net();
    if (pipeline.name == "face") return zoo::face_net();
    if (pipeline.name == "object") return zoo::object_det_net();
    if (pipeline.name == "speech") return zoo::speech_net();
    throw InvalidArgument("unknown mirror pipeline: " + pipeline.name);
  }();
  return platform::Workload::from_graph(pipeline.name, g, DType::kINT8, pipeline.rate_hz,
                                        pipeline.latency_budget_s);
}

MirrorPlan plan_smart_mirror(const std::string& main_module,
                             const std::vector<MirrorPipeline>& pipelines) {
  platform::Chassis chassis(platform::u_recs());
  chassis.install("main", platform::find_module(main_module));

  std::vector<platform::Workload> workloads;
  workloads.reserve(pipelines.size());
  for (const auto& p : pipelines) workloads.push_back(mirror_workload(p));

  MirrorPlan plan;
  platform::ResourceManager rm(chassis);
  plan.placements = rm.place(workloads);  // throws if infeasible
  plan.average_power_w = platform::ResourceManager::total_average_power_w(plan.placements) +
                         chassis.module_at("main").device_spec().idle_w;
  plan.realtime_ok = plan.placements.size() == pipelines.size();
  plan.within_power_budget = plan.average_power_w <= chassis.spec().total_power_budget_w;
  plan.privacy_preserved = true;  // by construction: no off-site target exists
  return plan;
}

}  // namespace vedliot::apps
