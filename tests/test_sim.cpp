// Tests for the Renode-analogue functional simulator: bus, RV32IM core,
// assembler, CFU dispatch, PMP enforcement, peripherals.

#include <gtest/gtest.h>

#include "sim/assembler.hpp"
#include "sim/bus.hpp"
#include "sim/cfu.hpp"
#include "sim/cpu.hpp"
#include "sim/machine.hpp"

namespace vedliot::sim {
namespace {

using security::AddressMatch;
using security::PmpEntry;

TEST(Bus, RamReadWriteAllWidths) {
  Bus bus(0x80000000, 1024);
  bus.write32(0x80000000, 0xDEADBEEF);
  EXPECT_EQ(bus.read32(0x80000000), 0xDEADBEEFu);
  EXPECT_EQ(bus.read8(0x80000000), 0xEFu);   // little endian
  EXPECT_EQ(bus.read8(0x80000003), 0xDEu);
  EXPECT_EQ(bus.read16(0x80000002), 0xDEADu);
  bus.write8(0x80000001, 0x42);
  EXPECT_EQ(bus.read32(0x80000000), 0xDEAD42EFu);
}

TEST(Bus, FaultOutsideMappedRegions) {
  Bus bus(0x80000000, 1024);
  EXPECT_THROW((void)bus.read32(0x00000000), SimError);
  EXPECT_THROW(bus.write32(0x80000000 + 1024, 1), SimError);
}

TEST(Bus, PeripheralOverlapRejected) {
  Bus bus(0x80000000, 1024);
  bus.attach(std::make_shared<Uart>(0x10000000));
  EXPECT_THROW(bus.attach(std::make_shared<Uart>(0x10000008)), SimError);
  EXPECT_THROW(bus.attach(std::make_shared<Uart>(0x80000000)), SimError);
}

TEST(Assembler, KnownEncodings) {
  Assembler a;
  a.addi(a0, x0, 1);   // addi a0, zero, 1 = 0x00100513
  a.add(a1, a0, a0);   // add a1, a0, a0  = 0x00A505B3
  a.ecall();
  const auto code = a.finish();
  EXPECT_EQ(code[0], 0x00100513u);
  EXPECT_EQ(code[1], 0x00A505B3u);
  EXPECT_EQ(code[2], 0x00000073u);
}

TEST(Assembler, ImmediateRangeChecked) {
  Assembler a;
  EXPECT_THROW(a.addi(a0, x0, 5000), Error);
  EXPECT_THROW(a.addi(a0, x0, -3000), Error);
}

TEST(Assembler, UnboundLabelRejected) {
  Assembler a;
  const int l = a.new_label();
  a.j(l);
  EXPECT_THROW((void)a.finish(), Error);
}

TEST(Machine, ArithmeticProgram) {
  Machine m;
  Assembler a(kRamBase);
  a.li(a0, 21);
  a.li(a1, 2);
  a.mul(a2, a0, a1);
  a.ecall();
  m.load_program(a);
  EXPECT_EQ(m.run(), HaltReason::kEcall);
  EXPECT_EQ(m.cpu().reg(a2), 42u);
}

TEST(Machine, LiLargeConstants) {
  Machine m;
  Assembler a(kRamBase);
  a.li(a0, 0x12345678);
  a.li(a1, -123456);
  a.ecall();
  m.load_program(a);
  m.run();
  EXPECT_EQ(m.cpu().reg(a0), 0x12345678u);
  EXPECT_EQ(static_cast<std::int32_t>(m.cpu().reg(a1)), -123456);
}

TEST(Machine, FibonacciLoop) {
  // Compute fib(10) = 55 with a branch loop.
  Machine m;
  Assembler a(kRamBase);
  a.li(a0, 0);   // f0
  a.li(a1, 1);   // f1
  a.li(t0, 10);  // counter
  const int loop = a.new_label();
  const int done = a.new_label();
  a.bind(loop);
  a.beq(t0, x0, done);
  a.add(t1, a0, a1);
  a.mv(a0, a1);
  a.mv(a1, t1);
  a.addi(t0, t0, -1);
  a.j(loop);
  a.bind(done);
  a.ecall();
  m.load_program(a);
  EXPECT_EQ(m.run(), HaltReason::kEcall);
  EXPECT_EQ(m.cpu().reg(a0), 55u);
}

TEST(Machine, LoadStoreRoundTrip) {
  Machine m;
  Assembler a(kRamBase);
  a.li(t0, static_cast<std::int32_t>(kRamBase + 0x1000));
  a.li(t1, 0x55AA);
  a.sw(t1, t0, 0);
  a.lw(a0, t0, 0);
  a.lbu(a1, t0, 1);
  a.ecall();
  m.load_program(a);
  m.run();
  EXPECT_EQ(m.cpu().reg(a0), 0x55AAu);
  EXPECT_EQ(m.cpu().reg(a1), 0x55u);
}

TEST(Machine, DivisionSemantics) {
  // RISC-V: div by zero = -1, rem by zero = dividend; INT_MIN/-1 = INT_MIN.
  Machine m;
  Assembler a(kRamBase);
  a.li(a0, 7);
  a.li(a1, 0);
  a.div(a2, a0, a1);
  a.rem(a3, a0, a1);
  a.li(t0, 1);
  a.slli(t0, t0, 31);  // INT_MIN
  a.li(t1, -1);
  a.div(a4, t0, t1);
  a.ecall();
  m.load_program(a);
  m.run();
  EXPECT_EQ(m.cpu().reg(a2), 0xFFFFFFFFu);
  EXPECT_EQ(m.cpu().reg(a3), 7u);
  EXPECT_EQ(m.cpu().reg(a4), 0x80000000u);
}

TEST(Machine, X0AlwaysZero) {
  Machine m;
  Assembler a(kRamBase);
  a.li(t0, 99);
  a.add(x0, t0, t0);
  a.mv(a0, x0);
  a.ecall();
  m.load_program(a);
  m.run();
  EXPECT_EQ(m.cpu().reg(a0), 0u);
}

TEST(Machine, UartHelloWorld) {
  // The same software you'd run on hardware: write bytes to the UART MMIO.
  Machine m;
  Assembler a(kRamBase);
  a.li(t0, static_cast<std::int32_t>(kUartBase));
  for (char ch : std::string("HELLO")) {
    a.li(t1, ch);
    a.sw(t1, t0, 0);
  }
  a.ecall();
  m.load_program(a);
  EXPECT_EQ(m.run(), HaltReason::kEcall);
  EXPECT_EQ(m.uart().output(), "HELLO");
}

TEST(Machine, EbreakHalts) {
  Machine m;
  Assembler a(kRamBase);
  a.ebreak();
  m.load_program(a);
  EXPECT_EQ(m.run(), HaltReason::kEbreak);
}

TEST(Machine, InstructionBudgetEnforced) {
  Machine m;
  Assembler a(kRamBase);
  const int spin = a.new_label();
  a.bind(spin);
  a.j(spin);
  m.load_program(a);
  EXPECT_EQ(m.run(1000), HaltReason::kMaxInstructions);
  EXPECT_EQ(m.cpu().instructions_retired(), 1000u);
}

TEST(Machine, JalAndRet) {
  Machine m;
  Assembler a(kRamBase);
  const int fn = a.new_label();
  a.jal(ra, fn);    // call
  a.ecall();        // after return
  a.bind(fn);
  a.li(a0, 77);
  a.ret();
  m.load_program(a);
  EXPECT_EQ(m.run(), HaltReason::kEcall);
  EXPECT_EQ(m.cpu().reg(a0), 77u);
}

TEST(Machine, TraceHookSeesInstructions) {
  Machine m;
  Assembler a(kRamBase);
  a.li(a0, 1);
  a.li(a1, 2);
  a.ecall();
  m.load_program(a);
  std::vector<std::uint32_t> pcs;
  m.cpu().set_trace([&](std::uint32_t pc, std::uint32_t) { pcs.push_back(pc); });
  m.run();
  ASSERT_EQ(pcs.size(), 3u);
  EXPECT_EQ(pcs[0], kRamBase);
  EXPECT_EQ(pcs[1], kRamBase + 4);
}

// ---------------------------------------------------------------------------
// CFU (custom function unit)
// ---------------------------------------------------------------------------

TEST(Cfu, MacAccumulates) {
  MacCfu cfu;
  cfu.execute(1, 0, 0, 0);  // reset
  cfu.execute(0, 0, 3, 4);
  cfu.execute(0, 0, 5, 6);
  EXPECT_EQ(cfu.accumulator(), 42);
  EXPECT_EQ(cfu.execute(2, 0, 0, 0), 42u);
}

TEST(Cfu, SignedOperands) {
  MacCfu cfu;
  cfu.execute(1, 0, 0, 0);
  cfu.execute(0, 0, static_cast<std::uint32_t>(-3), 4);
  EXPECT_EQ(cfu.accumulator(), -12);
}

TEST(Cfu, ReluRequantize) {
  MacCfu cfu;
  cfu.execute(1, 0, 0, 0);
  cfu.execute(0, 0, 1000, 1000);  // acc = 1e6
  EXPECT_EQ(cfu.execute(3, 8, 8, 0), 127u);  // >>8 then clamp to int8 max
  cfu.execute(1, 0, 0, 0);
  cfu.execute(0, 0, static_cast<std::uint32_t>(-10), 10);
  EXPECT_EQ(cfu.execute(3, 0, 0, 0), 0u);  // negative -> relu 0
}

TEST(Cfu, SimdDotProduct) {
  MacCfu cfu;
  cfu.execute(1, 0, 0, 0);
  // bytes [1,2,3,4] . [1,1,1,1] = 10
  const std::uint32_t a = 0x04030201;
  const std::uint32_t b = 0x01010101;
  cfu.execute(4, 0, a, b);
  EXPECT_EQ(cfu.accumulator(), 10);
}

TEST(Machine, CfuDotProductProgram) {
  // The CI workflow from Sec. II-B: run a DL kernel on the simulated core
  // with the MAC CFU via the custom-0 opcode.
  Machine m;
  m.attach_cfu(std::make_shared<MacCfu>());
  Assembler a(kRamBase);
  const std::uint32_t data = kRamBase + 0x2000;
  // store vectors x = [1..4], w = [2,2,2,2]
  a.li(t0, static_cast<std::int32_t>(data));
  for (int i = 0; i < 4; ++i) {
    a.li(t1, i + 1);
    a.sw(t1, t0, 4 * i);
    a.li(t1, 2);
    a.sw(t1, t0, 16 + 4 * i);
  }
  a.cfu(1, 0, a0, x0, x0);  // reset acc
  for (int i = 0; i < 4; ++i) {
    a.lw(a1, t0, 4 * i);
    a.lw(a2, t0, 16 + 4 * i);
    a.cfu(0, 0, a0, a1, a2);  // mac
  }
  a.cfu(2, 0, a0, x0, x0);  // read acc: 2*(1+2+3+4) = 20
  a.ecall();
  m.load_program(a);
  EXPECT_EQ(m.run(), HaltReason::kEcall);
  EXPECT_EQ(m.cpu().reg(a0), 20u);
}

TEST(Machine, CfuWithoutUnitTraps) {
  Machine m;  // no CFU attached
  Assembler a(kRamBase);
  a.cfu(0, 0, a0, a1, a2);
  m.load_program(a);
  EXPECT_EQ(m.run(), HaltReason::kUnhandledTrap);
}

// ---------------------------------------------------------------------------
// PMP integration (the VexRiscv TEE demo)
// ---------------------------------------------------------------------------

TEST(Machine, PmpBlocksUserModeStore) {
  Machine m;
  auto& pmp = m.enable_pmp(4);

  // Region 0: all of RAM readable/executable for U-mode, not writable.
  PmpEntry exec_region;
  exec_region.mode = AddressMatch::kTor;
  exec_region.addr = 0xFFFFFFFF >> 2;
  exec_region.r = true;
  exec_region.x = true;
  exec_region.w = false;
  pmp.configure(0, exec_region);

  // Layout: jump over the trap handler, configure CSRs, mret into U-mode
  // code padded to a fixed address (kRamBase + 0x100).
  constexpr std::uint32_t kUserCode = kRamBase + 0x100;
  Assembler a(kRamBase);
  const int handler = a.new_label();
  const int setup = a.new_label();
  a.j(setup);
  a.bind(handler);                 // at kRamBase + 4
  a.li(a0, 0x600D);                // marks that the M-mode handler ran
  a.ecall();
  a.bind(setup);
  a.li(t1, static_cast<std::int32_t>(kRamBase + 4));
  a.csrrw(x0, 0x305, t1);          // mtvec = handler
  a.li(t2, 0);
  a.csrrw(x0, 0x300, t2);          // mstatus.MPP = U
  a.li(t3, static_cast<std::int32_t>(kUserCode));
  a.csrrw(x0, 0x341, t3);          // mepc = user code
  a.mret();
  while (a.pc() < kUserCode) a.nop();
  // U-mode: try to write RAM -> PMP store fault -> trap to the handler.
  a.li(t4, static_cast<std::int32_t>(kRamBase + 0x3000));
  a.sw(t4, t4, 0);
  a.ecall();  // unreachable
  m.load_program(a);
  EXPECT_EQ(m.run(), HaltReason::kEcall);
  EXPECT_EQ(m.cpu().reg(a0), 0x600Du);          // the M-mode handler ran
  EXPECT_EQ(m.cpu().csr(0x342), kCauseStoreAccessFault);
  EXPECT_EQ(m.cpu().trap_count(), 1u);
}

TEST(Machine, MachineModeUnaffectedByUnlockedPmp) {
  Machine m;
  auto& pmp = m.enable_pmp(4);
  PmpEntry no_access;
  no_access.mode = AddressMatch::kTor;
  no_access.addr = 0xFFFFFFFF >> 2;
  pmp.configure(0, no_access);  // r=w=x=false, unlocked

  Assembler a(kRamBase);
  a.li(t0, static_cast<std::int32_t>(kRamBase + 0x3000));
  a.li(t1, 123);
  a.sw(t1, t0, 0);
  a.lw(a0, t0, 0);
  a.ecall();
  m.load_program(a);
  // Unlocked entries don't bind M-mode: program runs fine.
  EXPECT_EQ(m.run(), HaltReason::kEcall);
  EXPECT_EQ(m.cpu().reg(a0), 123u);
}

TEST(Machine, LockedPmpBindsMachineMode) {
  Machine m;
  auto& pmp = m.enable_pmp(4);
  // Lock a small no-write region over [kRamBase+0x3000, +0x3400).
  PmpEntry lo;
  lo.mode = AddressMatch::kTor;
  lo.addr = (kRamBase + 0x3000) >> 2;
  lo.r = true;
  lo.w = true;
  lo.x = true;
  pmp.configure(0, lo);
  PmpEntry locked;
  locked.mode = AddressMatch::kTor;
  locked.addr = (kRamBase + 0x3400) >> 2;
  locked.r = true;
  locked.w = false;
  locked.x = false;
  locked.locked = true;
  pmp.configure(1, locked);

  Assembler a(kRamBase);
  a.li(t0, static_cast<std::int32_t>(kRamBase + 0x3000));
  a.li(t1, 7);
  a.sw(t1, t0, 0);  // M-mode write into the locked region -> fault, no handler
  a.ecall();
  m.load_program(a);
  EXPECT_EQ(m.run(), HaltReason::kUnhandledTrap);
}

}  // namespace
}  // namespace vedliot::sim
// appended: halfword memory ops + misc coverage
namespace vedliot::sim {
namespace {

TEST(Machine, HalfwordLoadStore) {
  Machine m;
  Assembler a(kRamBase);
  a.li(t0, static_cast<std::int32_t>(kRamBase + 0x2000));
  a.li(t1, -2);          // 0xFFFFFFFE
  a.sh(t1, t0, 0);       // store halfword 0xFFFE
  a.lh(a0, t0, 0);       // sign-extended: -2
  a.lhu(a1, t0, 0);      // zero-extended: 0xFFFE
  a.lw(a2, t0, 0);       // upper half untouched (RAM zero-initialised)
  a.ecall();
  m.load_program(a);
  EXPECT_EQ(m.run(), HaltReason::kEcall);
  EXPECT_EQ(static_cast<std::int32_t>(m.cpu().reg(a0)), -2);
  EXPECT_EQ(m.cpu().reg(a1), 0xFFFEu);
  EXPECT_EQ(m.cpu().reg(a2), 0x0000FFFEu);
}

TEST(Machine, ByteStorePreservesNeighbors) {
  Machine m;
  Assembler a(kRamBase);
  a.li(t0, static_cast<std::int32_t>(kRamBase + 0x2000));
  a.li(t1, 0x11223344 >> 16);  // build 0x11223344 via lui/addi path
  a.li(t1, 0x11223344);
  a.sw(t1, t0, 0);
  a.li(t2, 0xAA - 256);  // 0xAA as signed byte
  a.sb(t2, t0, 1);
  a.lw(a0, t0, 0);
  a.ecall();
  m.load_program(a);
  m.run();
  EXPECT_EQ(m.cpu().reg(a0), 0x1122AA44u);
}

TEST(Machine, SrlVsSraOnNegative) {
  Machine m;
  Assembler a(kRamBase);
  a.li(t0, -16);
  a.li(t1, 2);
  a.srl(a0, t0, t1);
  a.sra(a1, t0, t1);
  a.ecall();
  m.load_program(a);
  m.run();
  EXPECT_EQ(m.cpu().reg(a0), 0x3FFFFFFCu);                     // logical
  EXPECT_EQ(static_cast<std::int32_t>(m.cpu().reg(a1)), -4);   // arithmetic
}

}  // namespace
}  // namespace vedliot::sim
