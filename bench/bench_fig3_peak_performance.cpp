// FIG3 — Peak Performance of DL Accelerators (paper Fig. 3).
//
// Reproduces the survey scatter: vendor peak performance (GOPS) against
// power (W) across the accelerator landscape, from mW endpoint devices to
// 400 W cloud parts, and the paper's headline observation that "most
// architectures cluster around an energy efficiency of about 1 TOPS/W".

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "hw/device.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace vedliot;

void print_artifact() {
  bench::banner("FIG3", "Peak performance of DL accelerators (vendor datasheet peaks)");
  bench::note("unnormalized vendor peaks, mixed precisions — exactly as the paper plots them");

  Table t({"device", "class", "dtype", "peak GOPS", "TDP W", "TOPS/W"});
  std::vector<double> efficiencies;
  for (const auto& d : hw::survey_catalog()) {
    const double eff = d.peak_tops_per_watt();
    efficiencies.push_back(eff);
    t.add_row({d.name, std::string(hw::device_class_name(d.cls)),
               std::string(dtype_name(d.best_dtype)), fmt_eng(d.peak_gops * 1e9),
               fmt_fixed(d.tdp_w, d.tdp_w < 1 ? 3 : 1), fmt_fixed(eff, 3)});
  }
  t.print(std::cout);

  std::printf("\ndevices: %zu, power range: spans %0.0fx\n", efficiencies.size(),
              400.0 / 0.02);
  std::printf("efficiency cluster: geomean %.2f TOPS/W, median %.2f TOPS/W "
              "(paper: ~1 TOPS/W independent of performance)\n",
              stats::geomean(efficiencies), stats::median(efficiencies));

  // The paper's secondary observation: efficiency is (roughly) independent
  // of the performance level -> the log-log correlation of peak vs power is
  // strong while efficiency shows no trend with peak.
  std::vector<double> log_peak, log_power;
  for (const auto& d : hw::survey_catalog()) {
    log_peak.push_back(std::log10(d.peak_gops));
    log_power.push_back(std::log10(d.tdp_w));
  }
  std::printf("log(peak) vs log(power) correlation: %.2f (clusters along the 1 TOPS/W diagonal)\n",
              stats::pearson(log_peak, log_power));
}

static void BM_SurveyScan(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0;
    for (const auto& d : hw::survey_catalog()) acc += d.peak_tops_per_watt();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SurveyScan);

VEDLIOT_BENCH_MAIN()
