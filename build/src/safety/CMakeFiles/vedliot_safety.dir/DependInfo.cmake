
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/safety/hybrid.cpp" "src/safety/CMakeFiles/vedliot_safety.dir/hybrid.cpp.o" "gcc" "src/safety/CMakeFiles/vedliot_safety.dir/hybrid.cpp.o.d"
  "/root/repo/src/safety/monitors.cpp" "src/safety/CMakeFiles/vedliot_safety.dir/monitors.cpp.o" "gcc" "src/safety/CMakeFiles/vedliot_safety.dir/monitors.cpp.o.d"
  "/root/repo/src/safety/robustness.cpp" "src/safety/CMakeFiles/vedliot_safety.dir/robustness.cpp.o" "gcc" "src/safety/CMakeFiles/vedliot_safety.dir/robustness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/vedliot_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vedliot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vedliot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vedliot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/vedliot_security.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
