#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "hw/perf_model.hpp"
#include "obs/json.hpp"
#include "platform/baseboard.hpp"

namespace vedliot::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

}  // namespace

std::string_view serve_event_name(ServeEventKind kind) {
  switch (kind) {
    case ServeEventKind::kAdmitted: return "admitted";
    case ServeEventKind::kShed: return "shed";
    case ServeEventKind::kDisplaced: return "displaced";
    case ServeEventKind::kDispatched: return "dispatched";
    case ServeEventKind::kTransientFault: return "transient-fault";
    case ServeEventKind::kBackendFailure: return "backend-failure";
    case ServeEventKind::kRetry: return "retry";
    case ServeEventKind::kFailed: return "failed";
    case ServeEventKind::kCancelled: return "cancelled";
    case ServeEventKind::kCompleted: return "completed";
    case ServeEventKind::kDeadlineMiss: return "deadline-miss";
    case ServeEventKind::kQualityDegraded: return "quality-degraded";
    case ServeEventKind::kBackendDown: return "backend-down";
    case ServeEventKind::kBackendUp: return "backend-up";
    case ServeEventKind::kBreakerOpen: return "breaker-open";
    case ServeEventKind::kBreakerHalfOpen: return "breaker-half-open";
    case ServeEventKind::kBreakerClosed: return "breaker-closed";
    case ServeEventKind::kBrownoutDown: return "brownout-down";
    case ServeEventKind::kBrownoutUp: return "brownout-up";
    case ServeEventKind::kMemoryFault: return "memory-fault";
    case ServeEventKind::kScrubHit: return "scrub-hit";
    case ServeEventKind::kQuarantine: return "quarantine";
    case ServeEventKind::kModelReloaded: return "model-reloaded";
    case ServeEventKind::kOtaStaged: return "ota-staged";
    case ServeEventKind::kOtaCommitted: return "ota-committed";
    case ServeEventKind::kOtaRejected: return "ota-rejected";
    case ServeEventKind::kOtaRolledBack: return "ota-rolled-back";
    case ServeEventKind::kBatchExecuted: return "batch-executed";
    case ServeEventKind::kCacheHit: return "cache-hit";
    case ServeEventKind::kScaleUp: return "scale-up";
    case ServeEventKind::kScaleDown: return "scale-down";
    case ServeEventKind::kOtaChunk: return "ota-chunk";
    case ServeEventKind::kOtaChunkRetry: return "ota-chunk-retry";
    case ServeEventKind::kOtaResumed: return "ota-resumed";
    case ServeEventKind::kWaveStarted: return "wave-started";
    case ServeEventKind::kWavePassed: return "wave-passed";
    case ServeEventKind::kRolloutHalted: return "rollout-halted";
    case ServeEventKind::kRollbackPaced: return "rollback-paced";
    case ServeEventKind::kRolloutDone: return "rollout-done";
  }
  throw InvalidArgument("unknown serve event kind");
}

std::string format_serve_event(const ServeEvent& e) {
  char head[64];
  std::snprintf(head, sizeof(head), "[%8.4fs] %-18s ", e.time_s,
                std::string(serve_event_name(e.kind)).c_str());
  std::string out(head);
  out += e.subject;
  if (!e.detail.empty()) {
    out += "  ";
    out += e.detail;
  }
  return out;
}

double ServeReport::goodput() const {
  if (offered == 0) return 0.0;
  return static_cast<double>(completed) / static_cast<double>(offered);
}

std::string ServeReport::to_json() const {
  std::string out = "{\"record\":\"serve-report\"";
  out += ",\"offered\":" + obs::json_number(static_cast<double>(offered));
  out += ",\"admitted\":" + obs::json_number(static_cast<double>(admitted));
  out += ",\"shed\":" + obs::json_number(static_cast<double>(shed));
  out += ",\"displaced\":" + obs::json_number(static_cast<double>(displaced));
  out += ",\"completed\":" + obs::json_number(static_cast<double>(completed));
  out += ",\"deadline_missed\":" + obs::json_number(static_cast<double>(deadline_missed));
  out += ",\"cancelled\":" + obs::json_number(static_cast<double>(cancelled));
  out += ",\"failed\":" + obs::json_number(static_cast<double>(failed));
  out += ",\"retries\":" + obs::json_number(static_cast<double>(retries));
  out += ",\"quality_degraded\":" + obs::json_number(static_cast<double>(quality_degraded));
  out += ",\"max_queue_depth\":" + obs::json_number(static_cast<double>(max_queue_depth));
  out += ",\"max_brownout_level\":" + obs::json_number(static_cast<double>(max_brownout_level));
  out +=
      ",\"final_brownout_level\":" + obs::json_number(static_cast<double>(final_brownout_level));
  out += ",\"memory_faults\":" + obs::json_number(static_cast<double>(memory_faults));
  out += ",\"scrub_hits\":" + obs::json_number(static_cast<double>(scrub_hits));
  out += ",\"quarantines\":" + obs::json_number(static_cast<double>(quarantines));
  out += ",\"model_reloads\":" + obs::json_number(static_cast<double>(model_reloads));
  out += ",\"ota_staged\":" + obs::json_number(static_cast<double>(ota_staged));
  out += ",\"ota_committed\":" + obs::json_number(static_cast<double>(ota_committed));
  out += ",\"ota_rejected\":" + obs::json_number(static_cast<double>(ota_rejected));
  out += ",\"ota_rolled_back\":" + obs::json_number(static_cast<double>(ota_rolled_back));
  out += ",\"integrity_checks\":" + obs::json_number(static_cast<double>(integrity_checks));
  out += ",\"integrity_faults\":" + obs::json_number(static_cast<double>(integrity_faults));
  out += ",\"dirty_at_end\":" + obs::json_number(static_cast<double>(dirty_at_end));
  out += ",\"goodput\":" + obs::json_number(goodput());
  out += ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ServeEvent& e = events[i];
    if (i) out += ",";
    out += "{\"time_s\":" + obs::json_number(e.time_s);
    out += ",\"kind\":\"" + obs::json_escape(serve_event_name(e.kind)) + "\"";
    out += ",\"subject\":\"" + obs::json_escape(e.subject) + "\"";
    out += ",\"detail\":\"" + obs::json_escape(e.detail) + "\"";
    out += ",\"value\":" + obs::json_number(e.value) + "}";
  }
  out += "]}";
  return out;
}

Server::Server(platform::PlatformSimulator& sim, ServerConfig config)
    : sim_(sim),
      cfg_(std::move(config)),
      rng_(cfg_.seed),
      queue_(cfg_.queue),
      ladder_([&] {
        BrownoutConfig b = cfg_.brownout;
        b.max_level = static_cast<int>(cfg_.ladder.size()) - 1;
        return b;
      }()),
      health_(cfg_.backends, cfg_.health),
      fault_rng_(cfg_.seed ^ 0xB17F11Bull) {
  VEDLIOT_CHECK(!cfg_.backends.empty(), "server needs at least one backend");
  VEDLIOT_CHECK(!cfg_.variants.empty(), "server needs at least one model variant");
  VEDLIOT_CHECK(!cfg_.ladder.empty(), "degradation ladder needs at least one rung");
  for (const auto& step : cfg_.ladder) {
    VEDLIOT_CHECK(step.variant < cfg_.variants.size(), "ladder rung names unknown variant");
    VEDLIOT_CHECK(cfg_.variants[step.variant].graph != nullptr, "model variant needs a graph");
  }
  VEDLIOT_CHECK(cfg_.control_period_s > 0, "control period must be positive");
  VEDLIOT_CHECK(cfg_.retry_tokens_per_request >= 0, "retry token rate must be >= 0");
  VEDLIOT_CHECK(cfg_.backoff_base_s > 0 && cfg_.backoff_cap_s > 0,
                "backoff parameters must be positive");
  for (const auto& slot : cfg_.backends) {
    VEDLIOT_CHECK(sim_.chassis().occupied(slot), "backend slot " + slot + " has no module");
    breakers_.emplace(slot, CircuitBreaker(cfg_.breaker));
  }
  base_latency_.resize(cfg_.variants.size());
  if (cfg_.store) {
    // Integrity mode: serve from our own deployed clones; the pristine
    // variant graph becomes (or must already match) the golden package.
    for (const auto& v : cfg_.variants) {
      VEDLIOT_CHECK(v.graph->weights_materialized(),
                    "integrity mode needs materialized weights on variant " + v.name);
      deployed_.push_back(std::make_unique<Graph>(v.graph->clone()));
      if (!cfg_.store->has(v.name)) cfg_.store->install(v.name, *v.graph);
      scrubbers_.push_back(
          std::make_unique<safety::WeightScrubber>(*deployed_.back(), cfg_.scrub));
    }
    probation_.assign(cfg_.variants.size(), 0);
  }
  if (cfg_.execute) {
    for (std::size_t i = 0; i < cfg_.variants.size(); ++i) {
      const ModelVariant& v = cfg_.variants[i];
      const Graph& g = cfg_.store ? *deployed_[i] : *v.graph;
      runtime::RunOptions opts;
      opts.exec = cfg_.ladder.front().exec;
      sessions_.push_back(v.quantized ? runtime::make_quantized_session(g, opts)
                                      : runtime::make_session(g, opts));
    }
  }
}

Server::~Server() = default;

std::uint64_t Server::submit(Request r) {
  VEDLIOT_CHECK(!ran_, "submit all load before run()");
  VEDLIOT_CHECK(r.version == kServeApiVersion,
                "request wire version " + std::to_string(r.version) + " != expected " +
                    std::to_string(kServeApiVersion));
  VEDLIOT_CHECK(r.arrival_s >= 0, "arrival time must be >= 0");
  VEDLIOT_CHECK(r.deadline_s > r.arrival_s, "deadline must lie after arrival");
  VEDLIOT_CHECK(r.batch >= 1, "batch must be >= 1");
  if (r.id == 0) r.id = next_id_;
  next_id_ = std::max(next_id_, r.id + 1);
  arrivals_.push_back(r);
  return r.id;
}

// Pre-v2 shim: positional arguments into a v2 Request. Remove next PR.
std::uint64_t Server::submit(const std::string& client, int priority, double arrival_s,
                             double deadline_s, std::int64_t batch) {
  Request r;
  r.client = client;
  r.priority_class = static_cast<PriorityClass>(
      std::clamp(priority, static_cast<int>(PriorityClass::kBatch),
                 static_cast<int>(PriorityClass::kInteractive)));
  r.arrival_s = arrival_s;
  r.deadline_s = deadline_s;
  r.batch = batch;
  return submit(std::move(r));
}

void Server::log(double t, ServeEventKind kind, const std::string& subject,
                 const std::string& detail, double value) {
  report_.events.push_back(ServeEvent{t, kind, subject, detail, value});
  if (cfg_.trace) {
    obs::Span& sp =
        cfg_.trace->instant(std::string(serve_event_name(kind)), "vedliot.serve");
    sp.attrs.emplace_back("subject", subject);
    if (!detail.empty()) sp.attrs.emplace_back("detail", detail);
    sp.num_attrs.emplace_back("time_s", t);
    sp.num_attrs.emplace_back("value", value);
  }
  if (cfg_.metrics) {
    cfg_.metrics->counter("vedliot.serve." + std::string(serve_event_name(kind))).inc();
  }
}

void Server::log_transition(double t, const std::string& slot, const BreakerTransition& tr) {
  ServeEventKind kind;
  switch (tr.to) {
    case BreakerState::kOpen: kind = ServeEventKind::kBreakerOpen; break;
    case BreakerState::kHalfOpen: kind = ServeEventKind::kBreakerHalfOpen; break;
    case BreakerState::kClosed: kind = ServeEventKind::kBreakerClosed; break;
    default: throw InvalidArgument("unknown breaker state");
  }
  log(t, kind, "backend " + slot, tr.reason);
}

double Server::service_time(const std::string& slot, std::int64_t batch) const {
  // A crashed module is hot-removed from the chassis, so its device spec
  // is unreadable while down: report it unusable without poisoning the
  // cache (the estimate is re-computed once the module restarts).
  if (!sim_.alive(slot)) return kInf;
  const std::size_t variant = rung().variant;
  auto& cache = base_latency_[variant];
  auto it = cache.find(slot);
  if (it == cache.end()) {
    const ModelVariant& v = cfg_.variants[variant];
    double base = kInf;  // backend cannot run this precision -> never chosen
    try {
      base = hw::estimate(sim_.chassis().module_at(slot).device_spec(), *v.graph, v.dtype)
                 .latency_s;
    } catch (const Unsupported&) {
    }
    it = cache.emplace(slot, base).first;
  }
  const double scale = sim_.gops_scale(slot);
  return it->second * static_cast<double>(batch) / std::max(scale, 1e-9);
}

double Server::tenant_overhead(const std::string& client) const {
  const auto it = cfg_.tenant_cost_s.find(client);
  return it == cfg_.tenant_cost_s.end() ? 0.0 : it->second;
}

std::optional<std::pair<double, double>> Server::service_bounds(std::int64_t batch) const {
  double fast = kInf, slow = 0;
  for (const auto& slot : cfg_.backends) {
    if (!breakers_.at(slot).allow()) continue;
    const double svc = service_time(slot, batch);
    if (!std::isfinite(svc)) continue;
    fast = std::min(fast, svc);
    slow = std::max(slow, svc);
  }
  if (!std::isfinite(fast)) return std::nullopt;
  return std::make_pair(fast, slow);
}

void Server::admit(const Request& r) {
  const double t = r.arrival_s;
  ++report_.offered;
  requests_.emplace(r.id, r);
  double& tokens = retry_tokens_[r.client];
  tokens = std::min(cfg_.retry_token_cap, tokens + cfg_.retry_tokens_per_request);
  const std::string subject = "request " + std::to_string(r.id);

  // Tenant sandbox surcharge from the static verifier's fuel bound. No
  // bound means the cost model cannot promise anything about this client's
  // module: its requests are infeasible by construction.
  const double tenant = tenant_overhead(r.client);
  if (!std::isfinite(tenant)) {
    ++report_.shed;
    log(t, ServeEventKind::kShed, subject,
        "tenant module has no static cost bound (wasm.cost.unbounded)");
    return;
  }

  const BrownoutStep& step = rung();
  if (step.exec.max_batch > 0 && r.batch > step.exec.max_batch) {
    ++report_.shed;
    log(t, ServeEventKind::kShed, subject,
        "batch " + std::to_string(r.batch) + " exceeds brownout cap " +
            std::to_string(step.exec.max_batch));
    return;
  }

  std::size_t allowed = 0;
  for (const auto& slot : cfg_.backends) {
    if (breakers_.at(slot).allow()) ++allowed;
  }
  const auto bounds = service_bounds(r.batch);
  if (!bounds || allowed == 0) {
    ++report_.shed;
    log(t, ServeEventKind::kShed, subject, "no backend available (breakers open)");
    return;
  }

  // Conservative wait bound from the cost model: the queue drains across
  // the allowed backends at the fastest per-request rate, and this request
  // may land on the slowest one. Shedding on an estimate keeps the bounded
  // queue from filling with doomed work.
  const double est_done = t +
                          (static_cast<double>(queue_.depth()) /
                           static_cast<double>(allowed)) *
                              bounds->first +
                          bounds->second + tenant;
  if (est_done > r.deadline_s) {
    ++report_.shed;
    log(t, ServeEventKind::kShed, subject,
        "deadline infeasible: est completion " + ms(est_done - t) + " > budget " +
            ms(r.deadline_s - t),
        est_done - r.deadline_s);
    return;
  }

  if (queue_.full()) {
    const auto victim = queue_.displace(r.priority());
    if (!victim) {
      ++report_.shed;
      log(t, ServeEventKind::kShed, subject, "queue full");
      return;
    }
    ++report_.displaced;
    log(t, ServeEventKind::kDisplaced, "request " + std::to_string(victim->id),
        "evicted by higher-priority request " + std::to_string(r.id),
        static_cast<double>(r.priority()));
  }

  queue_.push(Ticket{r.id, r.priority(), r.deadline_s, 0.0, t});
  ++report_.admitted;
  report_.max_queue_depth = std::max(report_.max_queue_depth, queue_.depth());
  log(t, ServeEventKind::kAdmitted, subject,
      std::string(priority_class_name(r.priority_class)) + ", budget " +
          ms(r.deadline_s - t),
      static_cast<double>(queue_.depth()));
}

void Server::apply_brownout(double t, int delta) {
  if (delta == 0) return;
  level_ = ladder_.level();
  report_.max_brownout_level = std::max(report_.max_brownout_level, level_);
  const BrownoutStep& step = rung();
  const ModelVariant& v = cfg_.variants[step.variant];
  if (cfg_.execute) sessions_[step.variant]->set_exec_config(step.exec);
  log(t, delta > 0 ? ServeEventKind::kBrownoutDown : ServeEventKind::kBrownoutUp, "brownout",
      "level " + std::to_string(level_) + ": variant " + v.name + ", batch cap " +
          std::to_string(step.exec.max_batch),
      static_cast<double>(level_));
}

void Server::control_tick(double t) {
  for (const platform::HealthBeat& beat : health_.tick(sim_)) {
    if (beat.recovered) {
      // Back alive: the breaker stays open until its probes succeed, so a
      // flapping module must prove itself before regaining queue share.
      log(t, ServeEventKind::kBackendUp, "backend " + beat.slot,
          "heartbeats answering again");
      continue;
    }
    if (!beat.declared_down) continue;
    log(t, ServeEventKind::kBackendDown, "backend " + beat.slot,
        "declared dead after " + std::to_string(beat.misses) + " missed heartbeats",
        static_cast<double>(beat.misses));
    if (const auto tr = breakers_.at(beat.slot).force_open(t, "heartbeat monitor: backend down")) {
      log_transition(t, beat.slot, *tr);
    }
  }

  for (auto& [slot, breaker] : breakers_) {
    if (const auto tr = breaker.tick(t)) log_transition(t, slot, *tr);
  }

  if (cfg_.store) scrub_tick(t);

  for (const Ticket& dead : queue_.expire(t)) {
    ++report_.cancelled;
    log(t, ServeEventKind::kCancelled, "request " + std::to_string(dead.id),
        "deadline passed in queue");
  }

  std::size_t open = 0;
  for (const auto& [slot, breaker] : breakers_) {
    if (breaker.state() == BreakerState::kOpen) ++open;
  }
  const double load =
      std::max(static_cast<double>(queue_.depth()) / static_cast<double>(queue_.capacity()),
               static_cast<double>(open) / static_cast<double>(cfg_.backends.size()));
  apply_brownout(t, ladder_.observe(load));

  if (cfg_.metrics) {
    cfg_.metrics->gauge("vedliot.serve.queue_depth").set(static_cast<double>(queue_.depth()));
    cfg_.metrics->gauge("vedliot.serve.brownout_level").set(static_cast<double>(level_));
    cfg_.metrics->gauge("vedliot.serve.open_breakers").set(static_cast<double>(open));
  }

  try_dispatch(t);
}

void Server::try_dispatch(double t) {
  while (!queue_.empty()) {
    // Free, breaker-allowed backends that can run the current variant.
    std::vector<std::string> free;
    for (const auto& slot : cfg_.backends) {
      if (in_flight_.count(slot)) continue;
      if (!breakers_.at(slot).allow()) continue;
      if (!std::isfinite(service_time(slot, 1))) continue;
      free.push_back(slot);
    }
    if (free.empty()) return;

    const auto ticket = queue_.pop(t);
    if (!ticket) return;  // everything dispatchable is gated by a backoff
    const Request& r = requests_.at(ticket->id);
    const std::string subject = "request " + std::to_string(ticket->id);

    // Fastest free backend (ties broken by the deterministic slot order).
    std::string best = free.front();
    double best_svc = service_time(best, r.batch);
    for (std::size_t i = 1; i < free.size(); ++i) {
      const double svc = service_time(free[i], r.batch);
      if (svc < best_svc) {
        best = free[i];
        best_svc = svc;
      }
    }
    // The tenant surcharge is backend-independent, so it never changes the
    // choice of slot — only feasibility and the modeled finish time.
    best_svc += tenant_overhead(r.client);

    if (t + best_svc > ticket->deadline_s) {
      ++report_.cancelled;
      log(t, ServeEventKind::kCancelled, subject,
          "infeasible at dispatch: fastest backend needs " + ms(best_svc) +
              ", deadline in " + ms(ticket->deadline_s - t));
      continue;
    }

    CircuitBreaker& breaker = breakers_.at(best);
    breaker.on_dispatch();
    bool ok = false;
    std::string why = "transient transfer error";
    try {
      ok = sim_.try_transfer(cfg_.ingress, best);
    } catch (const NotFound&) {
      why = "fabric partition";
    }
    if (!ok) {
      log(t, ServeEventKind::kTransientFault, subject,
          cfg_.ingress + "->" + best + " request transfer failed (" + why + ")");
      if (const auto tr = breaker.record_failure(t, why + " to " + best)) {
        log_transition(t, best, *tr);
      }
      retry_or_fail(t, *ticket, "transfer to " + best + " failed");
      continue;
    }

    in_flight_[best] = InFlight{*ticket, best, t, t + best_svc, sim_.gops_scale(best)};
    log(t, ServeEventKind::kDispatched, subject,
        best + " (" + cfg_.variants[rung().variant].name + "), service " + ms(best_svc),
        best_svc);
  }
}

void Server::retry_or_fail(double t, Ticket ticket, const std::string& reason) {
  const int attempt = ++attempts_[ticket.id];
  const Request& r = requests_.at(ticket.id);
  const std::string subject = "request " + std::to_string(ticket.id);
  double& tokens = retry_tokens_[r.client];

  if (tokens < 1.0) {
    ++report_.failed;
    log(t, ServeEventKind::kFailed, subject,
        reason + "; client " + r.client + " retry budget empty");
    return;
  }
  const double backoff = rng_.backoff_s(cfg_.backoff_base_s, cfg_.backoff_cap_s, attempt - 1,
                                        cfg_.backoff_floor_s);
  const double ready = t + backoff;
  if (ready >= r.deadline_s) {
    ++report_.failed;
    log(t, ServeEventKind::kFailed, subject, reason + "; no time left to retry");
    return;
  }
  if (queue_.full()) {
    ++report_.failed;
    log(t, ServeEventKind::kFailed, subject, reason + "; queue full on retry");
    return;
  }
  tokens -= 1.0;
  ++report_.retries;
  ticket.not_before_s = ready;
  ticket.enqueued_s = t;
  queue_.push(ticket);
  report_.max_queue_depth = std::max(report_.max_queue_depth, queue_.depth());
  log(t, ServeEventKind::kRetry, subject,
      "attempt " + std::to_string(attempt) + ", backoff " + ms(backoff), backoff);
}

void Server::execute_request(double t, const Ticket& ticket, const std::string& slot) {
  if (!cfg_.execute) return;
  const std::size_t variant = rung().variant;
  const Graph& g = *cfg_.variants[variant].graph;
  const auto inputs = g.inputs();
  VEDLIOT_CHECK(inputs.size() == 1, "execute mode needs a single-input variant graph");
  const Shape& shape = g.node(inputs.front()).out_shape;
  Rng in_rng(cfg_.seed ^ (ticket.id * 0x9E3779B97F4A7C15ull));
  const Tensor input(shape, in_rng.normal_vector(static_cast<std::size_t>(shape.numel())));
  const Tensor output = sessions_[variant]->run_single(input);
  if (!cfg_.robustness) return;
  const safety::CheckResult verdict = cfg_.robustness->submit(input, output);
  if (verdict == safety::CheckResult::kCheckedFaulty) {
    ++report_.quality_degraded;
    log(t, ServeEventKind::kQualityDegraded, "request " + std::to_string(ticket.id),
        "robustness check verdict: checked-faulty (divergence " +
            std::to_string(cfg_.robustness->last_divergence()) + ")",
        cfg_.robustness->last_divergence());
    if (cfg_.store) {
      // Don't wait for the next scrub sweep: localize now with a full scan
      // and self-heal, quarantining the backend that served the divergent
      // response while its weights rewrite.
      suspect_slot_ = slot;
      const auto hits = scrubbers_[variant]->full_scan();
      report_.scrub_hits += hits.size();
      for (const auto& h : hits) {
        log(t, ServeEventKind::kScrubHit, "variant " + cfg_.variants[variant].name,
            "node '" + h.node_name + "' tensor " + std::to_string(h.tensor) +
                " crc mismatch (full scan after checked-faulty)",
            static_cast<double>(h.tensor));
      }
      recover(t, variant, hits, probation_[variant] > 0);
    }
  }
}

void Server::submit_ota(double t, std::size_t variant, safety::OtaPackage update) {
  VEDLIOT_CHECK(!ran_, "submit all OTA pushes before run()");
  VEDLIOT_CHECK(cfg_.store != nullptr, "OTA pushes need integrity mode (ServerConfig::store)");
  VEDLIOT_CHECK(variant < cfg_.variants.size(), "OTA push names unknown variant");
  VEDLIOT_CHECK(t >= 0, "OTA time must be >= 0");
  PendingOta ota;
  ota.time_s = t;
  ota.variant = variant;
  ota.update = std::move(update);
  const auto pos = std::upper_bound(
      otas_.begin(), otas_.end(), ota.time_s,
      [](double time, const PendingOta& o) { return time < o.time_s; });
  otas_.insert(pos, std::move(ota));
}

void Server::apply_memory_fault(double t, const platform::FaultEvent& e) {
  if (!cfg_.store) return;
  if (std::find(cfg_.backends.begin(), cfg_.backends.end(), e.slot) == cfg_.backends.end()) {
    return;
  }
  const std::size_t variant = rung().variant;
  const auto bits = static_cast<std::size_t>(e.magnitude);
  safety::FaultInjector injector(fault_rng_);
  injector.flip_weight_bits(*deployed_[variant], bits, /*include_bias=*/true);
  rebuild_session(variant);
  ++report_.memory_faults;
  suspect_slot_ = e.slot;
  log(t, ServeEventKind::kMemoryFault, "backend " + e.slot,
      std::to_string(bits) + " weight bit(s) flipped in deployed " +
          cfg_.variants[variant].name,
      static_cast<double>(bits));
}

void Server::corrupt_next_ota() {
  for (std::size_t i = next_ota_; i < otas_.size(); ++i) {
    if (!otas_[i].corrupted) {
      otas_[i].corrupted = true;
      return;
    }
  }
}

void Server::rebuild_session(std::size_t variant) {
  if (!cfg_.execute) return;
  const ModelVariant& v = cfg_.variants[variant];
  runtime::RunOptions opts;
  opts.exec = rung().variant == variant ? rung().exec : cfg_.ladder.front().exec;
  sessions_[variant] = v.quantized ? runtime::make_quantized_session(*deployed_[variant], opts)
                                   : runtime::make_session(*deployed_[variant], opts);
}

void Server::quarantine(double t, const std::string& slot, const std::string& why) {
  const auto it = breakers_.find(slot);
  if (it == breakers_.end()) return;
  ++report_.quarantines;
  log(t, ServeEventKind::kQuarantine, "backend " + slot, why);
  if (const auto tr = it->second.force_open(t, why)) log_transition(t, slot, *tr);
}

void Server::recover(double t, std::size_t variant,
                     std::span<const safety::WeightScrubber::Hit> hits, bool in_probation) {
  const ModelVariant& v = cfg_.variants[variant];
  if (!suspect_slot_.empty()) {
    quarantine(t, suspect_slot_,
               "weight corruption on deployed " + v.name + "; reloading from golden store");
    suspect_slot_.clear();
  }

  if (in_probation && cfg_.store->can_rollback(v.name)) {
    // Corruption this soon after a commit means the freshly-written image
    // itself is bad — a bad push, not an SEU. Revert the whole update.
    const auto rep = cfg_.store->rollback(v.name);
    cfg_.store->restore(v.name, *deployed_[variant]);
    rebuild_session(variant);
    if (cfg_.robustness) cfg_.robustness->replace_golden(*deployed_[variant]);
    scrubbers_[variant]->rebaseline();
    probation_[variant] = 0;
    ++report_.ota_rolled_back;
    log(t, ServeEventKind::kOtaRolledBack, "ota " + v.name,
        "corruption inside probation window; " + rep.detail,
        static_cast<double>(rep.to_version));
    return;
  }

  std::size_t rewritten = 0;
  try {
    rewritten = cfg_.store->repair(v.name, *deployed_[variant], hits);
  } catch (const Error&) {
    // Localized repair did not hold (sticky storage, diverged shapes):
    // fall back to a full golden restore.
    rewritten = cfg_.store->restore(v.name, *deployed_[variant]);
  }
  rebuild_session(variant);
  scrubbers_[variant]->rebaseline();
  ++report_.model_reloads;
  log(t, ServeEventKind::kModelReloaded, "variant " + v.name,
      std::to_string(rewritten) + " tensor(s) re-materialized from golden v" +
          std::to_string(cfg_.store->version(v.name)),
      static_cast<double>(rewritten));
}

void Server::scrub_tick(double t) {
  for (std::size_t vi = 0; vi < deployed_.size(); ++vi) {
    const bool in_probation = probation_[vi] > 0;
    if (in_probation) --probation_[vi];
    const auto hits = scrubbers_[vi]->tick();
    if (hits.empty()) continue;
    report_.scrub_hits += hits.size();
    for (const auto& h : hits) {
      log(t, ServeEventKind::kScrubHit, "variant " + cfg_.variants[vi].name,
          "node '" + h.node_name + "' tensor " + std::to_string(h.tensor) +
              " crc mismatch (scrub sweep)",
          static_cast<double>(h.tensor));
    }
    recover(t, vi, hits, in_probation);
  }
}

void Server::process_ota(double t, PendingOta ota) {
  const ModelVariant& v = cfg_.variants[ota.variant];
  if (ota.corrupted) {
    // In-transit corruption (a scheduled kOtaCorrupt marker): flip a few
    // payload bytes. Silent by design — detection is the store's job.
    for (int i = 0; i < 3; ++i) {
      const auto at = static_cast<std::size_t>(fault_rng_.uniform_int(
          0, static_cast<std::int64_t>(ota.update.package.size()) - 1));
      ota.update.package[at] ^=
          static_cast<std::uint8_t>(1 + fault_rng_.uniform_int(0, 254));
    }
  }
  ++report_.ota_staged;
  log(t, ServeEventKind::kOtaStaged, "ota " + v.name,
      "payload " + std::to_string(ota.update.package.size()) + " bytes, verifying",
      static_cast<double>(ota.update.package.size()));

  const auto rep = cfg_.store->push(v.name, ota.update);
  switch (rep.outcome) {
    case safety::OtaOutcome::kCommitted:
      cfg_.store->restore(v.name, *deployed_[ota.variant]);
      rebuild_session(ota.variant);
      if (cfg_.robustness) cfg_.robustness->replace_golden(*deployed_[ota.variant]);
      scrubbers_[ota.variant]->rebaseline();
      probation_[ota.variant] =
          scrubbers_[ota.variant]->ticks_per_sweep() * cfg_.ota_probation_sweeps;
      ++report_.ota_committed;
      log(t, ServeEventKind::kOtaCommitted, "ota " + v.name,
          "v" + std::to_string(rep.from_version) + " -> v" + std::to_string(rep.to_version) +
              "; " + rep.detail,
          static_cast<double>(rep.to_version));
      break;
    case safety::OtaOutcome::kRejected:
      ++report_.ota_rejected;
      log(t, ServeEventKind::kOtaRejected, "ota " + v.name, rep.detail,
          static_cast<double>(rep.from_version));
      break;
    case safety::OtaOutcome::kRolledBack:
      throw Error("store.push must not report rolled-back");
  }
}

void Server::finish(double t, InFlight f) {
  const Request& r = requests_.at(f.ticket.id);
  const std::string subject = "request " + std::to_string(f.ticket.id);
  CircuitBreaker& breaker = breakers_.at(f.slot);

  if (!sim_.alive(f.slot)) {
    log(t, ServeEventKind::kBackendFailure, subject, f.slot + " died mid-request");
    if (const auto tr = breaker.record_failure(t, f.slot + " died mid-request")) {
      log_transition(t, f.slot, *tr);
    }
    retry_or_fail(t, f.ticket, f.slot + " died mid-request");
    return;
  }

  bool ok = false;
  std::string why = "transient transfer error";
  try {
    ok = sim_.try_transfer(f.slot, cfg_.ingress);
  } catch (const NotFound&) {
    why = "fabric partition";
  }
  if (!ok) {
    log(t, ServeEventKind::kTransientFault, subject,
        f.slot + "->" + cfg_.ingress + " response transfer failed (" + why + ")");
    if (const auto tr = breaker.record_failure(t, why + " from " + f.slot)) {
      log_transition(t, f.slot, *tr);
    }
    retry_or_fail(t, f.ticket, "response from " + f.slot + " lost");
    return;
  }

  if (const auto tr = breaker.record_success(t)) log_transition(t, f.slot, *tr);
  execute_request(t, f.ticket, f.slot);

  const double latency = t - r.arrival_s;
  if (cfg_.metrics) {
    cfg_.metrics->histogram("vedliot.serve.latency_s", 0.0, 0.5).add(latency);
    cfg_.metrics->histogram("vedliot.serve.queue_wait_s", 0.0, 0.5)
        .add(f.started_s - r.arrival_s);
  }
  if (t <= r.deadline_s) {
    ++report_.completed;
    log(t, ServeEventKind::kCompleted, subject,
        f.slot + ", latency " + ms(latency), latency);
  } else {
    ++report_.deadline_missed;
    log(t, ServeEventKind::kDeadlineMiss, subject,
        f.slot + ", " + ms(t - r.deadline_s) + " past deadline", t - r.deadline_s);
  }
}

ServeReport Server::run(double duration_s) {
  VEDLIOT_CHECK(!ran_, "a Server drives exactly one run");
  VEDLIOT_CHECK(duration_s > 0, "run duration must be positive");
  ran_ = true;

  obs::ScopedSpan run_span;
  if (cfg_.trace) {
    run_span = cfg_.trace->span("serve.run", "vedliot.serve.run");
    run_span.attr("duration_s", duration_s);
    run_span.attr("backends", static_cast<double>(cfg_.backends.size()));
    run_span.attr("offered", static_cast<double>(arrivals_.size()));
  }

  std::stable_sort(arrivals_.begin(), arrivals_.end(), [](const Request& a, const Request& b) {
    if (a.arrival_s != b.arrival_s) return a.arrival_s < b.arrival_s;
    return a.id < b.id;
  });

  long tick_idx = 1;
  while (true) {
    // Next event: completion <= control tick <= arrival on equal times.
    // Scheduled platform faults are wakeups of their own, so a throttle
    // takes effect at its scheduled time (stretching in-flight work below)
    // rather than at the next natural event. Ticks stop at the horizon;
    // the tail of in-flight work still drains.
    double t_completion = kInf;
    std::string done_slot;
    for (const auto& [slot, f] : in_flight_) {
      if (f.finish_s < t_completion) {
        t_completion = f.finish_s;
        done_slot = slot;
      }
    }
    const double tick_at = static_cast<double>(tick_idx) * cfg_.control_period_s;
    const double t_tick = tick_at <= duration_s ? tick_at : kInf;
    const double t_arrival =
        next_arrival_ < arrivals_.size() ? arrivals_[next_arrival_].arrival_s : kInf;
    const double t_ota = next_ota_ < otas_.size() ? otas_[next_ota_].time_s : kInf;
    double t_fault = kInf;
    if (t_completion < kInf || t_tick < kInf || t_arrival < kInf || t_ota < kInf) {
      // Only wake for faults while the run is still live; trailing
      // schedule entries past the last event are irrelevant.
      t_fault = sim_.next_fault_time().value_or(kInf);
    }

    const double t = std::min({t_completion, t_tick, t_arrival, t_ota, t_fault});
    if (!std::isfinite(t)) break;

    // Thermal events landing on a busy backend stretch (or compress) the
    // remaining service time of its in-flight request — the one way an
    // accepted, feasible request can still miss its deadline. A finish due
    // exactly now is past its compute and cannot stretch, so the chosen
    // next event stays valid.
    for (const platform::FaultEvent& e : sim_.advance_to(t)) {
      // Integrity markers: the damage is ours to apply (see faults.hpp).
      if (e.kind == platform::FaultKind::kMemoryFault) {
        apply_memory_fault(t, e);
        continue;
      }
      if (e.kind == platform::FaultKind::kOtaCorrupt) {
        corrupt_next_ota();
        continue;
      }
      if (e.kind != platform::FaultKind::kThermalThrottle &&
          e.kind != platform::FaultKind::kThermalRecover) {
        continue;
      }
      const auto it = in_flight_.find(e.slot);
      if (it == in_flight_.end()) continue;
      InFlight& f = it->second;
      const double new_scale = sim_.gops_scale(e.slot);
      if (f.finish_s > t && new_scale != f.gops_scale) {
        f.finish_s = t + (f.finish_s - t) * (f.gops_scale / new_scale);
        f.gops_scale = new_scale;
      }
    }

    // t is the minimum, so X <= t means X fired exactly now; a fault-only
    // wakeup falls through (its effect was applied above).
    if (t_completion <= t) {
      InFlight f = in_flight_.at(done_slot);
      in_flight_.erase(done_slot);
      finish(t, f);
      try_dispatch(t);
    } else if (t_tick <= t) {
      control_tick(t);
      ++tick_idx;
    } else if (t_arrival <= t) {
      admit(arrivals_[next_arrival_++]);
      try_dispatch(t);
    } else if (t_ota <= t) {
      process_ota(t, std::move(otas_[next_ota_]));
      ++next_ota_;
    }
  }

  // Anything still queued (gated behind a backoff past the horizon) is
  // accounted, not dropped silently.
  const double t_end = std::max(duration_s, sim_.now());
  while (const auto leftover = queue_.pop(kInf)) {
    ++report_.cancelled;
    log(t_end, ServeEventKind::kCancelled, "request " + std::to_string(leftover->id),
        "run ended with request still queued");
  }

  report_.final_brownout_level = level_;
  if (cfg_.robustness) {
    report_.integrity_checks = cfg_.robustness->checks_run();
    report_.integrity_faults = cfg_.robustness->faults_detected();
  }
  if (cfg_.store) {
    // End-state audit: a healed server leaves no corrupt tensor behind.
    for (auto& scrubber : scrubbers_) {
      report_.dirty_at_end += scrubber->full_scan().size();
    }
  }
  if (cfg_.trace) {
    run_span.attr("events", static_cast<double>(report_.events.size()));
    run_span.attr("completed", static_cast<double>(report_.completed));
    run_span.attr("shed", static_cast<double>(report_.shed));
    run_span.attr("goodput", report_.goodput());
  }
  return report_;
}

}  // namespace vedliot::serve
