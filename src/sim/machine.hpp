#pragma once
/// \file machine.hpp
/// \brief Complete simulated SoC (the Renode "machine"): CPU + RAM + UART +
/// timer, optional CFU and PMP, with load/run/introspect workflow usable
/// interactively and in CI (Sec. II-B).

#include <memory>

#include "security/pmp.hpp"
#include "sim/assembler.hpp"
#include "sim/bus.hpp"
#include "sim/cfu.hpp"
#include "sim/cpu.hpp"

namespace vedliot::sim {

/// Default memory map.
constexpr std::uint32_t kRamBase = 0x8000'0000;
constexpr std::uint32_t kRamSize = 4 * 1024 * 1024;
constexpr std::uint32_t kUartBase = 0x1000'0000;
constexpr std::uint32_t kTimerBase = 0x1001'0000;

class Machine {
 public:
  Machine();

  Bus& bus() { return bus_; }
  Cpu& cpu() { return cpu_; }
  Uart& uart() { return *uart_; }

  /// Attach a CFU to the core's custom-0 opcode.
  void attach_cfu(std::shared_ptr<Cfu> cfu) { cpu_.attach_cfu(std::move(cfu)); }

  /// Enable the PMP unit (returns it for configuration).
  security::PmpUnit& enable_pmp(std::size_t entries = 16);

  /// Load a program image at kRamBase and point the PC at it.
  void load_program(std::span<const std::uint32_t> words);

  /// Assemble-and-load convenience.
  void load_program(Assembler& assembler);

  /// Run until halt or budget; keeps the timer peripheral in sync.
  HaltReason run(std::uint64_t max_instructions = 10'000'000);

 private:
  Bus bus_;
  Cpu cpu_;
  std::shared_ptr<Uart> uart_;
  std::shared_ptr<Timer> timer_;
  std::unique_ptr<security::PmpUnit> pmp_;
};

}  // namespace vedliot::sim
