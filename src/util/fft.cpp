#include "util/fft.hpp"

#include <cmath>

#include "util/error.hpp"

namespace vedliot::dsp {

namespace {
constexpr double kPi = 3.14159265358979323846;

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  VEDLIOT_CHECK(is_pow2(n), "FFT size must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * kPi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wn(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wn;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<double> magnitude_spectrum(std::span<const float> signal, std::size_t n_fft) {
  VEDLIOT_CHECK(is_pow2(n_fft), "FFT size must be a power of two");
  std::vector<std::complex<double>> buf(n_fft, {0.0, 0.0});
  const std::size_t take = std::min(signal.size(), n_fft);
  for (std::size_t i = 0; i < take; ++i) buf[i] = {static_cast<double>(signal[i]), 0.0};
  fft(buf);
  std::vector<double> mags(n_fft / 2);
  const double norm = static_cast<double>(n_fft) / 2.0;
  for (std::size_t k = 0; k < mags.size(); ++k) mags[k] = std::abs(buf[k]) / norm;
  return mags;
}

void hann_window(std::span<double> frame) {
  const std::size_t n = frame.size();
  if (n < 2) return;
  for (std::size_t i = 0; i < n; ++i) {
    frame[i] *= 0.5 * (1.0 - std::cos(2.0 * kPi * static_cast<double>(i) /
                                      static_cast<double>(n - 1)));
  }
}

std::vector<std::vector<double>> spectrogram(std::span<const float> signal, std::size_t n_fft,
                                             std::size_t hop) {
  VEDLIOT_CHECK(is_pow2(n_fft), "FFT size must be a power of two");
  VEDLIOT_CHECK(hop > 0, "hop must be positive");
  std::vector<std::vector<double>> frames;
  for (std::size_t start = 0; start + n_fft <= signal.size(); start += hop) {
    std::vector<std::complex<double>> buf(n_fft);
    std::vector<double> windowed(n_fft);
    for (std::size_t i = 0; i < n_fft; ++i) windowed[i] = signal[start + i];
    hann_window(windowed);
    for (std::size_t i = 0; i < n_fft; ++i) buf[i] = {windowed[i], 0.0};
    fft(buf);
    std::vector<double> mags(n_fft / 2);
    const double norm = static_cast<double>(n_fft) / 4.0;  // Hann coherent gain 0.5
    for (std::size_t k = 0; k < mags.size(); ++k) mags[k] = std::abs(buf[k]) / norm;
    frames.push_back(std::move(mags));
  }
  return frames;
}

double bin_frequency_hz(std::size_t k, double sample_rate_hz, std::size_t n_fft) {
  return static_cast<double>(k) * sample_rate_hz / static_cast<double>(n_fft);
}

}  // namespace vedliot::dsp
