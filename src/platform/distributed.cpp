#include "platform/distributed.hpp"

#include <algorithm>
#include <limits>

#include "graph/cost.hpp"
#include "hw/perf_model.hpp"

namespace vedliot::platform {

namespace {

struct NodeInfo {
  NodeId id;
  double ops = 0;
  double weight_bytes = 0;
  double out_bytes = 0;
};

/// Activation bytes that are live across the cut after position `pos`
/// (produced at <= pos, consumed at > pos; the graph output of the last
/// stage is not a cut).
double boundary_bytes_after(const Graph& g, const std::vector<NodeId>& order, std::size_t pos,
                            double act_bytes_per_elem) {
  double bytes = 0;
  std::map<NodeId, std::size_t> index;
  for (std::size_t i = 0; i < order.size(); ++i) index[order[i]] = i;
  for (std::size_t i = 0; i <= pos; ++i) {
    const Node& n = g.node(order[i]);
    bool crosses = false;
    for (NodeId consumer : g.consumers(order[i])) {
      if (index.at(consumer) > pos) crosses = true;
    }
    if (crosses) bytes += static_cast<double>(n.out_shape.numel()) * act_bytes_per_elem;
  }
  return bytes;
}

}  // namespace

double best_single_module_latency(const Graph& g, const Chassis& chassis, DType dtype) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [slot, module] : chassis.installed()) {
    const hw::DeviceSpec& dev = module.device_spec();
    if (!dev.supports(dtype)) continue;
    best = std::min(best, hw::estimate(dev, g, dtype).latency_s);
  }
  if (!std::isfinite(best)) {
    throw PlatformError("no installed module supports " + std::string(dtype_name(dtype)));
  }
  return best;
}

DistributedPlan plan_distributed_inference(const Graph& g, const Chassis& chassis,
                                           const Fabric& fabric,
                                           const std::vector<std::string>& slots,
                                           std::size_t num_stages, DType dtype) {
  return plan_distributed_inference(g, chassis, fabric, slots, num_stages, dtype, PlanOptions{});
}

DistributedPlan plan_distributed_inference(const Graph& g, const Chassis& chassis,
                                           const Fabric& fabric,
                                           const std::vector<std::string>& slots,
                                           std::size_t num_stages, DType dtype,
                                           const PlanOptions& options) {
  obs::ScopedSpan span;
  if (options.trace) {
    span = options.trace->span("plan_distributed_inference", "vedliot.platform");
    span.attr("dtype", std::string(dtype_name(dtype)));
    span.attr("stages", static_cast<double>(num_stages));
    span.attr("slots", static_cast<double>(slots.size()));
  }
  if (options.metrics) options.metrics->counter("vedliot.platform.plans").inc();

  VEDLIOT_CHECK(num_stages >= 1, "need at least one stage");
  if (slots.empty()) throw PlatformError("no slots given for distributed inference");
  if (num_stages > slots.size() * 2) {
    throw PlatformError("too many stages for the available modules");
  }
  for (const auto& slot : slots) {
    if (!chassis.occupied(slot)) throw PlatformError("slot " + slot + " is empty");
  }

  const auto order = g.topo_order();
  const double act_b = dtype_bytes(dtype);

  std::vector<NodeInfo> nodes;
  double total_ops = 0;
  for (NodeId id : order) {
    NodeInfo info;
    info.id = id;
    const NodeCost c = node_cost(g, id);
    info.ops = static_cast<double>(c.ops);
    info.weight_bytes = static_cast<double>(c.params) * act_b;
    info.out_bytes = static_cast<double>(c.output_elems) * act_b;
    total_ops += info.ops;
    nodes.push_back(info);
  }

  // Choose cut positions: target equal cumulative ops per stage, then pick
  // the thinnest boundary inside a +/-4% ops window around each target.
  std::vector<std::size_t> cuts;  // last index of each stage except the final one
  {
    std::vector<double> prefix(nodes.size());
    double acc = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      acc += nodes[i].ops;
      prefix[i] = acc;
    }
    for (std::size_t s = 1; s < num_stages; ++s) {
      const double target = total_ops * static_cast<double>(s) / static_cast<double>(num_stages);
      const double window = total_ops * 0.04;
      std::size_t best_pos = 0;
      double best_score = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
        if (std::abs(prefix[i] - target) > window) continue;
        const double bytes = boundary_bytes_after(g, order, i, act_b);
        if (bytes < best_score) {
          best_score = bytes;
          best_pos = i;
        }
      }
      if (best_score == std::numeric_limits<double>::infinity()) {
        // window too narrow (e.g. one giant layer): take the closest index
        std::size_t i = 0;
        while (i + 1 < nodes.size() && prefix[i] < target) ++i;
        best_pos = i;
      }
      if (!cuts.empty() && best_pos <= cuts.back()) best_pos = cuts.back() + 1;
      cuts.push_back(std::min(best_pos, nodes.size() - 2));
    }
  }

  DistributedPlan plan;
  std::size_t start = 0;
  for (std::size_t s = 0; s < num_stages; ++s) {
    Stage stage;
    stage.first = start;
    stage.last = s < cuts.size() ? cuts[s] : nodes.size() - 1;
    stage.slot = slots[s % slots.size()];
    stage.module = chassis.module_at(stage.slot).name;

    double stage_weight = 0, stage_act = 0;
    for (std::size_t i = stage.first; i <= stage.last; ++i) {
      stage.ops += nodes[i].ops;
      stage_weight += nodes[i].weight_bytes;
      stage_act += nodes[i].out_bytes;
    }
    stage.weight_bytes = stage_weight;
    hw::DeviceSpec dev = chassis.module_at(stage.slot).device_spec();
    if (!dev.supports(dtype)) {
      throw PlatformError("module " + stage.module + " does not support " +
                          std::string(dtype_name(dtype)));
    }
    // Effective capacity: a throttled slot achieves a fraction of its peak.
    if (const auto it = options.slot_gops_scale.find(stage.slot);
        it != options.slot_gops_scale.end()) {
      VEDLIOT_CHECK(it->second > 0.0 && it->second <= 1.0,
                    "slot GOPS scale must be in (0, 1]");
      dev.peak_gops *= it->second;
    }
    if (stage.ops > 0) {
      stage.compute_s = hw::estimate_workload(dev, stage.ops, stage_weight + stage_act,
                                              stage_weight, 1, dtype)
                            .latency_s;
    }
    if (stage.last + 1 < nodes.size()) {
      stage.boundary_bytes = boundary_bytes_after(g, order, stage.last, act_b);
      const std::string& next_slot = slots[(s + 1) % slots.size()];
      try {
        stage.transfer_s = fabric.transfer_time_s(stage.slot, next_slot, stage.boundary_bytes);
      } catch (const NotFound& e) {
        throw PlatformError("fabric partition: no route to ship stage " + std::to_string(s) +
                            " boundary from " + stage.slot + " to " + next_slot + " (" +
                            e.what() + ")");
      }
    }
    start = stage.last + 1;
    plan.stages.push_back(stage);
  }

  // Steady-state interval: a slot hosting several stages time-multiplexes
  // them, so its contribution is the SUM of its stages' compute times (this
  // matters when failover packs more stages than surviving slots).
  std::map<std::string, double> slot_compute;
  for (const auto& stage : plan.stages) {
    plan.latency_s += stage.compute_s + stage.transfer_s;
    slot_compute[stage.slot] += stage.compute_s;
    plan.pipeline_interval_s = std::max(plan.pipeline_interval_s, stage.transfer_s);
  }
  for (const auto& [slot, compute] : slot_compute) {
    plan.pipeline_interval_s = std::max(plan.pipeline_interval_s, compute);
  }
  plan.throughput_fps = plan.pipeline_interval_s > 0 ? 1.0 / plan.pipeline_interval_s : 0.0;
  plan.single_device_latency_s = best_single_module_latency(g, chassis, dtype);
  if (options.trace) {
    for (std::size_t s = 0; s < plan.stages.size(); ++s) {
      const Stage& stage = plan.stages[s];
      obs::ScopedSpan child =
          options.trace->span("stage." + std::to_string(s), "vedliot.platform");
      child.attr("slot", stage.slot);
      child.attr("module", stage.module);
      child.attr("ops", stage.ops);
      child.attr("compute_s", stage.compute_s);
      child.attr("boundary_bytes", stage.boundary_bytes);
    }
    span.attr("latency_s", plan.latency_s);
    span.attr("throughput_fps", plan.throughput_fps);
  }
  return plan;
}

}  // namespace vedliot::platform
