
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/attr.cpp" "src/graph/CMakeFiles/vedliot_graph.dir/attr.cpp.o" "gcc" "src/graph/CMakeFiles/vedliot_graph.dir/attr.cpp.o.d"
  "/root/repo/src/graph/cost.cpp" "src/graph/CMakeFiles/vedliot_graph.dir/cost.cpp.o" "gcc" "src/graph/CMakeFiles/vedliot_graph.dir/cost.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/vedliot_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/vedliot_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/op.cpp" "src/graph/CMakeFiles/vedliot_graph.dir/op.cpp.o" "gcc" "src/graph/CMakeFiles/vedliot_graph.dir/op.cpp.o.d"
  "/root/repo/src/graph/package.cpp" "src/graph/CMakeFiles/vedliot_graph.dir/package.cpp.o" "gcc" "src/graph/CMakeFiles/vedliot_graph.dir/package.cpp.o.d"
  "/root/repo/src/graph/serialize.cpp" "src/graph/CMakeFiles/vedliot_graph.dir/serialize.cpp.o" "gcc" "src/graph/CMakeFiles/vedliot_graph.dir/serialize.cpp.o.d"
  "/root/repo/src/graph/zoo_common.cpp" "src/graph/CMakeFiles/vedliot_graph.dir/zoo_common.cpp.o" "gcc" "src/graph/CMakeFiles/vedliot_graph.dir/zoo_common.cpp.o.d"
  "/root/repo/src/graph/zoo_efficientnet.cpp" "src/graph/CMakeFiles/vedliot_graph.dir/zoo_efficientnet.cpp.o" "gcc" "src/graph/CMakeFiles/vedliot_graph.dir/zoo_efficientnet.cpp.o.d"
  "/root/repo/src/graph/zoo_micro.cpp" "src/graph/CMakeFiles/vedliot_graph.dir/zoo_micro.cpp.o" "gcc" "src/graph/CMakeFiles/vedliot_graph.dir/zoo_micro.cpp.o.d"
  "/root/repo/src/graph/zoo_mobilenet.cpp" "src/graph/CMakeFiles/vedliot_graph.dir/zoo_mobilenet.cpp.o" "gcc" "src/graph/CMakeFiles/vedliot_graph.dir/zoo_mobilenet.cpp.o.d"
  "/root/repo/src/graph/zoo_resnet.cpp" "src/graph/CMakeFiles/vedliot_graph.dir/zoo_resnet.cpp.o" "gcc" "src/graph/CMakeFiles/vedliot_graph.dir/zoo_resnet.cpp.o.d"
  "/root/repo/src/graph/zoo_yolo.cpp" "src/graph/CMakeFiles/vedliot_graph.dir/zoo_yolo.cpp.o" "gcc" "src/graph/CMakeFiles/vedliot_graph.dir/zoo_yolo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/vedliot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/vedliot_security.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vedliot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
