#pragma once
/// \file scrub.hpp
/// \brief Incremental weight scrubbing against a per-tensor digest table.
///
/// The RobustnessService (robustness.hpp) detects model corruption by
/// golden re-execution of sampled outputs — strong but expensive and
/// non-localizing. The WeightScrubber is its cheap complement: it keeps the
/// package digest table (graph/package.hpp) alive next to the deployed
/// weights and re-hashes a few tensors per control tick, so a silent bit
/// flip (SEU, DMA scribble, bad flash sector) is detected within one sweep
/// and localized to the exact (node, tensor) pair — which lets the
/// safety::ModelStore re-materialize just the corrupted tensors instead of
/// reloading the whole model.
///
/// Detection latency is bounded by construction: every weight tensor is
/// re-hashed at least once per ticks_per_sweep() ticks.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/package.hpp"

namespace vedliot::safety {

/// Round-robin CRC-32 re-hasher over one deployed graph's weight tensors.
/// The graph must outlive the scrubber; repairs mutate the graph in place,
/// after which rebaseline() (or a successful repair verify) re-trusts it.
class WeightScrubber {
 public:
  struct Config {
    std::size_t tensors_per_tick = 4;  ///< scrub budget per tick (>= 1)
  };

  /// One localized corruption: the deployed tensor whose bits no longer
  /// match the golden digest.
  struct Hit {
    NodeId node = -1;
    std::string node_name;
    std::size_t tensor = 0;        ///< index into Node::weights
    std::uint32_t expected = 0;    ///< golden CRC-32
    std::uint32_t actual = 0;      ///< CRC-32 of the deployed bits
  };

  /// Baseline = the graph's current bits, assumed verified golden (loaders
  /// get that guarantee from unpack_model's digest check).
  explicit WeightScrubber(const Graph& deployed);
  WeightScrubber(const Graph& deployed, Config config);

  /// Re-hash the next tensors_per_tick tensors (round-robin over the whole
  /// table); returns the corrupted ones, empty when all clean.
  std::vector<Hit> tick();

  /// Re-hash every tensor now (OTA post-swap verification, repair checks).
  std::vector<Hit> full_scan();

  /// Re-trust the graph's current bits after a repair or reload.
  void rebaseline();

  /// Number of weight tensors under scrub.
  std::size_t entries() const { return entries_.size(); }

  /// Ticks for one complete pass over the table — the guaranteed detection
  /// latency bound, in control ticks: ceil(entries / tensors_per_tick),
  /// minimum 1.
  std::size_t ticks_per_sweep() const;

  std::size_t ticks() const { return ticks_; }
  std::size_t tensors_scanned() const { return scanned_; }
  std::size_t hits() const { return hits_; }

 private:
  struct Entry {
    NodeId node = -1;
    std::size_t tensor = 0;
    std::uint32_t crc = 0;
  };

  Hit make_hit(const Entry& e, std::uint32_t actual) const;
  bool scan_one(const Entry& e, std::vector<Hit>& out);

  const Graph* graph_;
  Config cfg_;
  std::vector<Entry> entries_;
  std::size_t cursor_ = 0;
  std::size_t ticks_ = 0;
  std::size_t scanned_ = 0;
  std::size_t hits_ = 0;
};

}  // namespace vedliot::safety
