#include "reqs/framework.hpp"

#include <deque>

namespace vedliot::reqs {

std::string_view concern_name(Concern c) {
  switch (c) {
    case Concern::kLogicalBehavior: return "logical-behavior";
    case Concern::kProcessBehavior: return "process-behavior";
    case Concern::kContextConstraints: return "context-constraints";
    case Concern::kLearningSetting: return "learning-setting";
    case Concern::kDeepLearningModel: return "deep-learning-model";
    case Concern::kHardware: return "hardware";
    case Concern::kInformation: return "information";
    case Concern::kCommunication: return "communication";
    case Concern::kEthics: return "ethics";
    case Concern::kSafety: return "safety";
    case Concern::kSecurity: return "security";
    case Concern::kPrivacy: return "privacy";
    case Concern::kEnergy: return "energy";
  }
  throw InvalidArgument("unknown Concern");
}

std::string_view level_name(Level l) {
  switch (l) {
    case Level::kKnowledge: return "knowledge";
    case Level::kConceptual: return "conceptual";
    case Level::kDesign: return "design";
    case Level::kRuntime: return "runtime";
  }
  throw InvalidArgument("unknown Level");
}

ViewId ArchitecturalFramework::add_view(std::string name, Concern concern, Level level) {
  View v;
  v.id = static_cast<ViewId>(views_.size());
  v.name = std::move(name);
  v.concern = concern;
  v.level = level;
  views_.push_back(std::move(v));
  return views_.back().id;
}

const View& ArchitecturalFramework::view(ViewId id) const {
  VEDLIOT_CHECK(id >= 0 && static_cast<std::size_t>(id) < views_.size(), "view id out of range");
  return views_[static_cast<std::size_t>(id)];
}

View& ArchitecturalFramework::view(ViewId id) {
  return const_cast<View&>(static_cast<const ArchitecturalFramework*>(this)->view(id));
}

void ArchitecturalFramework::add_dependency(ViewId from, ViewId to) {
  const View& a = view(from);
  const View& b = view(to);
  if (from == to) throw FrameworkError("a view cannot depend on itself");
  const bool vertical = a.concern == b.concern;
  const bool horizontal = a.level == b.level;
  if (!vertical && !horizontal) {
    throw FrameworkError(
        "dependency violates the framework rule (neither same concern nor same level): " +
        a.name + " -> " + b.name);
  }
  deps_.insert({from, to});
}

bool ArchitecturalFramework::depends(ViewId from, ViewId to) const {
  return deps_.count({from, to}) > 0;
}

std::vector<ViewId> ArchitecturalFramework::dependencies_of(ViewId from) const {
  std::vector<ViewId> out;
  for (const auto& [a, b] : deps_) {
    if (a == from) out.push_back(b);
  }
  return out;
}

bool ArchitecturalFramework::traceable(ViewId from, ViewId to) const {
  view(from);
  view(to);
  std::set<ViewId> seen{from};
  std::deque<ViewId> queue{from};
  while (!queue.empty()) {
    const ViewId cur = queue.front();
    queue.pop_front();
    if (cur == to) return true;
    for (ViewId next : dependencies_of(cur)) {
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return false;
}

bool ArchitecturalFramework::cell_covered(Concern c, Level l) const {
  for (const auto& v : views_) {
    if (v.concern == c && v.level == l) return true;
  }
  return false;
}

std::size_t ArchitecturalFramework::covered_cells() const {
  std::set<std::pair<int, int>> cells;
  for (const auto& v : views_) {
    cells.insert({static_cast<int>(v.concern), static_cast<int>(v.level)});
  }
  return cells.size();
}

std::vector<std::pair<Concern, Level>> ArchitecturalFramework::missing_neighbors(ViewId id) const {
  const View& v = view(id);
  std::vector<std::pair<Concern, Level>> out;
  const int li = static_cast<int>(v.level);
  // Vertical neighbours: one level up and down in the same cluster.
  for (int dl : {-1, +1}) {
    const int nl = li + dl;
    if (nl < 0 || nl >= static_cast<int>(kLevelCount)) continue;
    const auto level = static_cast<Level>(nl);
    if (!cell_covered(v.concern, level)) out.emplace_back(v.concern, level);
  }
  // Horizontal neighbours: every other cluster at the same level.
  for (std::size_t c = 0; c < kConcernCount; ++c) {
    const auto concern = static_cast<Concern>(c);
    if (concern == v.concern) continue;
    if (!cell_covered(concern, v.level)) out.emplace_back(concern, v.level);
  }
  return out;
}

std::string ArchitecturalFramework::to_markdown() const {
  std::string out = "| cluster of concern |";
  for (std::size_t l = 0; l < kLevelCount; ++l) {
    out += " ";
    out += level_name(static_cast<Level>(l));
    out += " |";
  }
  out += "\n|---|";
  for (std::size_t l = 0; l < kLevelCount; ++l) out += "---|";
  out += "\n";
  for (std::size_t c = 0; c < kConcernCount; ++c) {
    out += "| ";
    out += concern_name(static_cast<Concern>(c));
    out += " |";
    for (std::size_t l = 0; l < kLevelCount; ++l) {
      std::size_t count = 0;
      for (const auto& v : views_) {
        if (v.concern == static_cast<Concern>(c) && v.level == static_cast<Level>(l)) ++count;
      }
      if (count) {
        out += " ";
        out += std::to_string(count);
        out += " |";
      } else {
        out += " — |";
      }
    }
    out += "\n";
  }
  return out;
}

void RequirementsLedger::add(Requirement r) {
  fw_.view(r.view);  // validates the id
  for (const auto& existing : reqs_) {
    if (existing.id == r.id) throw FrameworkError("duplicate requirement id: " + r.id);
  }
  reqs_.push_back(std::move(r));
}

std::vector<std::string> RequirementsLedger::unrealized() const {
  std::vector<std::string> out;
  for (const auto& r : reqs_) {
    bool realized = false;
    for (std::size_t i = 0; i < fw_.view_count() && !realized; ++i) {
      const View& candidate = fw_.view(static_cast<ViewId>(i));
      if (candidate.level != Level::kDesign && candidate.level != Level::kRuntime) continue;
      if (fw_.traceable(r.view, candidate.id)) realized = true;
    }
    if (!realized) out.push_back(r.id);
  }
  return out;
}

}  // namespace vedliot::reqs
