// T-ATTEST — distributed attestation mechanism (Sec. IV-C: "end-to-end
// trust through a distributed attestation mechanism").
//
// Reports quote generation / verification throughput and the cost of
// verifying attestation chains of increasing depth (sensor -> edge ->
// gateway -> cloud ...), the scaling that matters for fleets of AIoT nodes.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "security/attestation.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::security;

namespace {

Key root_key() {
  Key k{};
  k[0] = 0xA5;
  return k;
}

std::vector<Quote> build_chain(const AttestationAuthority& authority, std::size_t depth,
                               std::uint64_t nonce) {
  std::vector<Quote> chain;
  for (std::size_t i = 0; i < depth; ++i) {
    const std::string id = "node-" + std::to_string(i);
    DeviceAgent agent(id, authority.provision(id));
    const Digest m = sha256(std::string_view("firmware-" + std::to_string(i)));
    if (chain.empty()) {
      chain.push_back(agent.quote(m, nonce));
    } else {
      chain.push_back(agent.quote_over(chain.back(), m, nonce));
    }
  }
  return chain;
}

}  // namespace

void print_artifact() {
  bench::banner("T-ATTEST", "quote generation/verification and chain-depth scaling");

  AttestationAuthority authority(root_key());
  DeviceAgent agent("edge-0", authority.provision("edge-0"));
  const Digest m = sha256(std::string_view("enclave"));

  // single-quote throughput
  constexpr int kN = 20000;
  auto t0 = std::chrono::steady_clock::now();
  Quote q;
  for (int i = 0; i < kN; ++i) q = agent.quote(m, static_cast<std::uint64_t>(i));
  auto t1 = std::chrono::steady_clock::now();
  const double gen_rate = kN / std::chrono::duration<double>(t1 - t0).count();

  t0 = std::chrono::steady_clock::now();
  bool ok = true;
  for (int i = 0; i < kN; ++i) ok &= authority.verify(q, q.nonce);
  t1 = std::chrono::steady_clock::now();
  const double verify_rate = kN / std::chrono::duration<double>(t1 - t0).count();

  std::printf("quote generation: %s quotes/s, verification: %s verifications/s (ok=%d)\n\n",
              fmt_eng(gen_rate).c_str(), fmt_eng(verify_rate).c_str(), ok);

  Table t({"chain depth", "verify chains/s", "us/chain"});
  for (std::size_t depth : {1u, 2u, 4u, 8u, 16u}) {
    const auto chain = build_chain(authority, depth, 42);
    constexpr int kChains = 5000;
    const auto c0 = std::chrono::steady_clock::now();
    bool all = true;
    for (int i = 0; i < kChains; ++i) all &= authority.verify_chain(chain, 42);
    const auto c1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(c1 - c0).count();
    if (!all) std::printf("CHAIN VERIFY FAILED at depth %zu\n", depth);
    t.add_row({std::to_string(depth), fmt_eng(kChains / secs),
               fmt_fixed(secs / kChains * 1e6, 1)});
  }
  t.print(std::cout);
  bench::note("cost scales linearly in depth (2 HMACs + 1 hash per hop) — fleet-friendly.");
}

static void BM_QuoteGenerate(benchmark::State& state) {
  AttestationAuthority authority(root_key());
  DeviceAgent agent("edge-0", authority.provision("edge-0"));
  const Digest m = sha256(std::string_view("enclave"));
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    auto q = agent.quote(m, ++nonce);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_QuoteGenerate);

static void BM_ChainVerify(benchmark::State& state) {
  AttestationAuthority authority(root_key());
  const auto chain = build_chain(authority, static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(authority.verify_chain(chain, 42));
  }
}
BENCHMARK(BM_ChainVerify)->Arg(1)->Arg(4)->Arg(16);

static void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0x5A);
  for (auto _ : state) {
    auto d = sha256(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

VEDLIOT_BENCH_MAIN()
