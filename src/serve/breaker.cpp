#include "serve/breaker.hpp"

#include "util/error.hpp"

namespace vedliot::serve {

std::string_view breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  throw InvalidArgument("unknown breaker state");
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : cfg_(config) {
  VEDLIOT_CHECK(cfg_.failure_threshold >= 1, "breaker failure threshold must be >= 1");
  VEDLIOT_CHECK(cfg_.cooldown_s > 0, "breaker cooldown must be positive");
  VEDLIOT_CHECK(cfg_.half_open_probes >= 1, "breaker needs at least one probe");
}

BreakerTransition CircuitBreaker::to(BreakerState next, const std::string& reason) {
  BreakerTransition tr{state_, next, reason};
  state_ = next;
  failures_ = 0;
  probes_in_flight_ = 0;
  probe_successes_ = 0;
  return tr;
}

std::optional<BreakerTransition> CircuitBreaker::tick(double now) {
  if (state_ == BreakerState::kOpen && now >= opened_at_ + cfg_.cooldown_s) {
    return to(BreakerState::kHalfOpen, "cooldown expired, probing");
  }
  return std::nullopt;
}

bool CircuitBreaker::allow() const {
  switch (state_) {
    case BreakerState::kClosed: return true;
    case BreakerState::kOpen: return false;
    case BreakerState::kHalfOpen: return probes_in_flight_ < cfg_.half_open_probes;
  }
  throw InvalidArgument("unknown breaker state");
}

void CircuitBreaker::on_dispatch() {
  if (state_ == BreakerState::kHalfOpen) ++probes_in_flight_;
}

std::optional<BreakerTransition> CircuitBreaker::record_success(double now) {
  (void)now;
  switch (state_) {
    case BreakerState::kClosed:
      failures_ = 0;
      return std::nullopt;
    case BreakerState::kOpen:
      // Stale completion from before the trip: the breaker stays open.
      return std::nullopt;
    case BreakerState::kHalfOpen:
      ++probe_successes_;
      if (probe_successes_ >= cfg_.half_open_probes) {
        return to(BreakerState::kClosed,
                  std::to_string(probe_successes_) + " probe successes");
      }
      return std::nullopt;
  }
  throw InvalidArgument("unknown breaker state");
}

std::optional<BreakerTransition> CircuitBreaker::record_failure(double now,
                                                               const std::string& reason) {
  switch (state_) {
    case BreakerState::kClosed:
      ++failures_;
      if (failures_ >= cfg_.failure_threshold) {
        opened_at_ = now;
        return to(BreakerState::kOpen, std::to_string(failures_) +
                                           " consecutive failures: " + reason);
      }
      return std::nullopt;
    case BreakerState::kOpen:
      return std::nullopt;
    case BreakerState::kHalfOpen:
      opened_at_ = now;
      return to(BreakerState::kOpen, "probe failed: " + reason);
  }
  throw InvalidArgument("unknown breaker state");
}

std::optional<BreakerTransition> CircuitBreaker::force_open(double now,
                                                           const std::string& reason) {
  opened_at_ = now;
  if (state_ == BreakerState::kOpen) return std::nullopt;  // cooldown refreshed
  return to(BreakerState::kOpen, reason);
}

}  // namespace vedliot::serve
