// Resilient distributed inference (Sec. II-A "seamless switching between
// heterogeneous components" + Sec. IV-B run-time fault detection).
//
// Drives a 3-stage ResNet-50 pipeline on a RECS|Box through a scripted
// fault campaign: a transiently lossy fabric, a thermal throttle, and a
// module crash mid-run. The resilience controller detects each fault
// (heartbeats, telemetry, robustness-service verdicts), retries transfers
// with exponential backoff, fails stages over to surviving modules, and
// reports detection latency, recovery time and degraded-mode throughput
// against the healthy plan.
//
// The whole run is traced through vedliot::obs; pass a path to also dump
// the Chrome trace:  ./build/examples/resilient_pipeline trace.json
//
// Build & run:  ./build/examples/resilient_pipeline [trace.json]

#include <cstdio>

#include "graph/zoo.hpp"
#include "obs/export.hpp"
#include "platform/faults.hpp"
#include "platform/resilience.hpp"

using namespace vedliot;
using namespace vedliot::platform;

int main(int argc, char** argv) {
  std::printf("Resilient ResNet-50 pipeline on RECS|Box (INT8, 10G fabric)\n\n");

  Chassis chassis(recs_box());
  Fabric fabric = star_fabric({"come0", "come1", "come2"}, 10.0, {1.0, 10.0});
  const std::vector<std::string> slots{"come0", "come1", "come2"};
  chassis.install("come0", find_module("COMe-XavierAGX"));
  chassis.install("come1", find_module("COMe-XavierAGX"));
  chassis.install("come2", find_module("COMe-XavierAGX"));

  // The platform under fault injection: 2% of transfers fail transiently,
  // come1 throttles to 40% at t=0.2s, then crashes outright at t=0.5s.
  PlatformSimulator::Config pc;
  pc.transient_transfer_prob = 0.02;
  pc.seed = 2022;
  PlatformSimulator sim(chassis, fabric, pc);

  FaultEvent throttle;
  throttle.time_s = 0.205;
  throttle.kind = FaultKind::kThermalThrottle;
  throttle.slot = "come1";
  throttle.magnitude = 0.4;
  sim.schedule(throttle);

  FaultEvent crash;
  crash.time_s = 0.505;
  crash.kind = FaultKind::kModuleCrash;
  crash.slot = "come1";
  sim.schedule(crash);

  Graph g = zoo::resnet50();
  obs::Tracer tracer;
  ResilienceConfig cfg;
  cfg.heartbeat_period_s = 10e-3;
  cfg.heartbeat_miss_threshold = 3;
  cfg.precision_ladder = {DType::kINT8, DType::kFP16};
  cfg.seed = 7;
  cfg.trace = &tracer;
  ResilienceController controller(g, sim, slots, 3, DType::kINT8, cfg);
  const ResilienceReport r = controller.run(1.0);

  std::printf("event log (%zu events, mirrored into %zu trace spans):\n",
              controller.events().size(), tracer.spans().size());
  for (const auto& e : controller.events()) std::printf("  %s\n", format_event(e).c_str());

  std::printf("\nhealthy plan : %zu stages, %6.1f fps\n", r.healthy_plan.stages.size(),
              r.healthy_plan.throughput_fps);
  std::printf("final plan   : %zu stages, %6.1f fps (%.0f%% of healthy)\n",
              r.final_plan.stages.size(), r.final_plan.throughput_fps,
              r.degraded_throughput_ratio() * 100.0);
  std::printf("detection    : %.1f ms mean over %zu faults\n",
              r.mean_detection_latency_s() * 1e3, r.detection_latencies_s.size());
  std::printf("recovery     : %.1f ms mean over %zu recoveries (%zu failovers)\n",
              r.mean_recovery_time_s() * 1e3, r.recovery_times_s.size(), r.failovers);
  std::printf("frames       : %zu completed, %zu dropped, %zu transfer retries\n",
              r.frames_completed, r.frames_dropped, r.transfer_retries);
  std::printf("pipeline     : %s\n", r.pipeline_alive ? "alive" : "down");
  if (argc > 1) {
    obs::write_chrome_trace(argv[1], tracer.spans());
    std::printf("wrote Chrome trace to %s\n", argv[1]);
  }
  return r.pipeline_alive ? 0 : 1;
}
