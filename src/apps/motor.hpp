#pragma once
/// \file motor.hpp
/// \brief Motor Condition Classification (Sec. V-B): a battery-powered box
/// monitors a large asynchronous motor's operational, thermal and
/// mechanical condition from vibration spectra and temperature features.
///
/// The generator synthesizes physically-motivated vibration signatures per
/// condition; the classifier is a deterministic nearest-centroid model
/// fitted on generated data (no training framework needed), evaluated with
/// the Kenning confusion-matrix metrics.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace vedliot::apps {

enum class MotorCondition : std::size_t {
  kHealthy = 0,
  kImbalance = 1,      ///< mechanical: 1x RPM line grows
  kBearingFault = 2,   ///< mechanical: high-frequency characteristic tones
  kOverheat = 3,       ///< thermal: temperature features drift up
};
constexpr std::size_t kMotorConditionCount = 4;

std::string_view motor_condition_name(MotorCondition c);

/// Feature vector layout: 256 spectrum bins + 8 aggregate features
/// (temperatures, RMS, crest factor, line current...).
constexpr std::size_t kSpectrumBins = 256;
constexpr std::size_t kAggregateFeatures = 8;
constexpr std::size_t kMotorFeatureDim = kSpectrumBins + kAggregateFeatures;

using MotorFeatures = std::vector<float>;

/// Synthesizes one observation of a motor in the given condition.
class VibrationGenerator {
 public:
  struct Config {
    double rpm = 1480;            ///< 4-pole 50 Hz induction motor
    double sample_rate_hz = 8192;
    double noise_floor = 0.02;
    double severity = 1.0;        ///< fault severity multiplier
  };

  VibrationGenerator(Config config, std::uint64_t seed);

  MotorFeatures sample(MotorCondition condition);

  /// Raw sensor observation: a time-domain vibration trace plus the
  /// electrical/thermal channels the box also measures.
  struct Observation {
    std::vector<float> waveform;  ///< accelerometer samples at sample_rate_hz
    double temp_stator_c = 0;
    double temp_bearing_c = 0;
    double line_current_a = 0;
    double rpm = 0;
    double power_factor = 0;
  };

  /// Generate the raw observation (the deployed box's actual input). The
  /// trace length equals 2 * kSpectrumBins so the FFT front-end produces
  /// exactly the kSpectrumBins-bin spectrum.
  Observation sample_observation(MotorCondition condition);

  double sample_rate_hz() const { return cfg_.sample_rate_hz; }

 private:
  void add_tone(std::vector<float>& spectrum, double freq_hz, double amplitude);
  struct Signature;
  Signature signature_for(MotorCondition condition);
  Config cfg_;
  Rng rng_;
};

/// The deployed pre-processing front-end (Sec. III step 1): FFT the raw
/// waveform into the classifier's feature layout. Produces features
/// compatible with MotorClassifier::fit/classify.
MotorFeatures features_from_observation(const VibrationGenerator::Observation& obs,
                                        double sample_rate_hz);

/// Nearest-centroid classifier over standardized features.
class MotorClassifier {
 public:
  /// Fit centroids from labelled samples.
  void fit(const std::vector<std::pair<MotorFeatures, MotorCondition>>& samples);

  MotorCondition classify(const MotorFeatures& features) const;

  bool fitted() const { return fitted_; }

 private:
  std::array<std::vector<double>, kMotorConditionCount> centroids_;
  std::vector<double> mean_, scale_;
  bool fitted_ = false;
};

/// Duty-cycled energy model of the battery-powered monitoring box:
/// sleep current + periodic (sense -> features -> classify) bursts.
struct MotorBoxEnergy {
  double sleep_w = 0.0005;      ///< 0.5 mW deep sleep
  double sense_w = 0.015;       ///< accelerometer + ADC active
  double sense_s = 0.25;        ///< capture window
  double compute_w = 0.05;      ///< MCU+NPU during feature extraction + NN
  double compute_s = 0.02;

  /// Average power at a given classification interval.
  double average_power_w(double interval_s) const;

  /// Days of operation on a battery of the given capacity.
  double battery_life_days(double interval_s, double battery_wh) const;
};

}  // namespace vedliot::apps
