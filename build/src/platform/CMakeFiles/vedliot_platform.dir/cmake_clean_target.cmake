file(REMOVE_RECURSE
  "libvedliot_platform.a"
)
