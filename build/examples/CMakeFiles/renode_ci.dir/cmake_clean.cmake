file(REMOVE_RECURSE
  "CMakeFiles/renode_ci.dir/renode_ci.cpp.o"
  "CMakeFiles/renode_ci.dir/renode_ci.cpp.o.d"
  "renode_ci"
  "renode_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renode_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
