#include "graph/package.hpp"

#include <cstring>
#include <map>

#include "analysis/verifier.hpp"
#include "graph/serialize.hpp"
#include "util/error.hpp"

namespace vedliot {

namespace {

constexpr std::uint32_t kMagic = 0x4C444D56;  // "VMDL"
constexpr std::uint32_t kVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >> (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    check(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    check(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::int64_t i64() {
    check(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return static_cast<std::int64_t>(v);
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    check(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  bool done() const { return pos_ == data_.size(); }

 private:
  void check(std::size_t n) const {
    if (pos_ + n > data_.size()) throw GraphError("model package truncated");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> pack_model(const Graph& g) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);

  const std::string text = to_text(g);
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());

  // Weight records keyed by dense topo index (matching to_text's remap).
  std::vector<std::pair<std::uint32_t, const Node*>> with_weights;
  std::uint32_t dense = 0;
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    if (!n.weights.empty()) with_weights.emplace_back(dense, &n);
    ++dense;
  }
  put_u32(out, static_cast<std::uint32_t>(with_weights.size()));
  for (const auto& [index, node] : with_weights) {
    put_u32(out, index);
    out.push_back(static_cast<std::uint8_t>(node->weight_dtype));
    out.push_back(static_cast<std::uint8_t>(node->weights.size()));
    for (const Tensor& w : node->weights) {
      out.push_back(static_cast<std::uint8_t>(w.shape().rank()));
      for (std::size_t d = 0; d < w.shape().rank(); ++d) put_i64(out, w.shape().dim(d));
      const auto data = w.data();
      const auto* raw = reinterpret_cast<const std::uint8_t*>(data.data());
      out.insert(out.end(), raw, raw + data.size() * sizeof(float));
    }
  }
  return out;
}

Graph unpack_model(std::span<const std::uint8_t> package) {
  Reader r(package);
  if (r.u32() != kMagic) throw GraphError("not a model package (bad magic)");
  if (r.u32() != kVersion) throw GraphError("unsupported package version");

  const std::uint32_t text_len = r.u32();
  const auto text_bytes = r.bytes(text_len);
  Graph g = from_text(std::string(text_bytes.begin(), text_bytes.end()));

  const auto order = g.topo_order();
  const std::uint32_t records = r.u32();
  for (std::uint32_t i = 0; i < records; ++i) {
    const std::uint32_t index = r.u32();
    if (index >= order.size()) throw GraphError("weight record references unknown node");
    Node& n = g.node(order[index]);
    n.weight_dtype = static_cast<DType>(r.u8());
    const std::uint8_t tensors = r.u8();
    for (std::uint8_t t = 0; t < tensors; ++t) {
      const std::uint8_t rank = r.u8();
      std::vector<std::int64_t> dims;
      for (std::uint8_t d = 0; d < rank; ++d) dims.push_back(r.i64());
      Shape shape(std::move(dims));
      const auto n_elems = static_cast<std::size_t>(shape.numel());
      const auto raw = r.bytes(n_elems * sizeof(float));
      std::vector<float> data(n_elems);
      std::memcpy(data.data(), raw.data(), raw.size());
      n.weights.emplace_back(std::move(shape), std::move(data));
    }
  }
  if (!r.done()) throw GraphError("trailing bytes in model package");
  // from_text already verified structure; re-verify now that weight records
  // are attached so packages with wrong shapes/counts are rejected here with
  // the findings table rather than crashing an executor later.
  analysis::verify_or_throw(g);
  return g;
}

SealedModel seal_model(const Graph& g, const security::Key& device_key,
                       std::uint32_t nonce_counter) {
  const auto plain = pack_model(g);
  SealedModel out;
  out.model_measurement = security::sha256(plain);
  std::memcpy(out.nonce.data(), &nonce_counter, sizeof(nonce_counter));
  const security::Key enc_key = security::derive_key(device_key, "model-encrypt");
  const security::Key mac_key = security::derive_key(device_key, "model-mac");
  out.ciphertext = security::chacha20_xor(enc_key, out.nonce, 1, plain);

  std::vector<std::uint8_t> mac_input(out.nonce.begin(), out.nonce.end());
  mac_input.insert(mac_input.end(), out.ciphertext.begin(), out.ciphertext.end());
  out.mac = security::hmac_sha256(mac_key, mac_input);
  return out;
}

Graph unseal_model(const SealedModel& sealed, const security::Key& device_key) {
  const security::Key enc_key = security::derive_key(device_key, "model-encrypt");
  const security::Key mac_key = security::derive_key(device_key, "model-mac");

  std::vector<std::uint8_t> mac_input(sealed.nonce.begin(), sealed.nonce.end());
  mac_input.insert(mac_input.end(), sealed.ciphertext.begin(), sealed.ciphertext.end());
  const security::Digest expected = security::hmac_sha256(mac_key, mac_input);
  if (!security::digest_equal(expected, sealed.mac)) {
    throw Error("sealed model MAC mismatch (wrong device key or tampered package)");
  }
  const auto plain = security::chacha20_xor(enc_key, sealed.nonce, 1, sealed.ciphertext);
  if (!security::digest_equal(security::sha256(plain), sealed.model_measurement)) {
    throw Error("sealed model measurement mismatch");
  }
  return unpack_model(plain);
}

}  // namespace vedliot
