#pragma once
/// \file table.hpp
/// \brief Fixed-width console table used by benchmark harnesses to print the
/// rows/series corresponding to the paper's tables and figures.

#include <iosfwd>
#include <string>
#include <vector>

namespace vedliot {

/// Accumulates rows of strings and renders them with aligned columns.
///
/// Numeric cells should be pre-formatted by the caller (see fmt_* helpers);
/// the table only handles layout.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }

  /// Render with a separator under the header, columns padded to content.
  std::string to_string() const;

  /// Render as comma-separated values (no padding).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string fmt_fixed(double v, int precision = 2);

/// Format with engineering suffix (k, M, G, T) and 3 significant digits.
std::string fmt_eng(double v);

/// Format a ratio as e.g. "3.2x".
std::string fmt_ratio(double v, int precision = 1);

/// Format a fraction as a percentage, e.g. 0.031 -> "3.1%".
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace vedliot
