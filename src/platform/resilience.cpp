#include "platform/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>

#include "obs/json.hpp"
#include "platform/resource_manager.hpp"

namespace vedliot::platform {

namespace {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

std::string_view resilience_event_name(ResilienceEventKind kind) {
  switch (kind) {
    case ResilienceEventKind::kFaultInjected: return "fault-injected";
    case ResilienceEventKind::kHeartbeatMiss: return "heartbeat-miss";
    case ResilienceEventKind::kFaultDetected: return "fault-detected";
    case ResilienceEventKind::kTransientFault: return "transient-fault";
    case ResilienceEventKind::kRetry: return "retry";
    case ResilienceEventKind::kTransferTimeout: return "transfer-timeout";
    case ResilienceEventKind::kFailover: return "failover";
    case ResilienceEventKind::kDegradedPrecision: return "degraded-precision";
    case ResilienceEventKind::kDegradedStages: return "degraded-stages";
    case ResilienceEventKind::kRecovered: return "recovered";
    case ResilienceEventKind::kUnrecoverable: return "unrecoverable";
  }
  throw InvalidArgument("unknown resilience event kind");
}

std::string format_event(const ResilienceEvent& e) {
  char head[64];
  std::snprintf(head, sizeof(head), "[%8.4fs] %-18s ", e.time_s,
                std::string(resilience_event_name(e.kind)).c_str());
  std::string out(head);
  out += e.subject;
  if (!e.detail.empty()) {
    out += "  ";
    out += e.detail;
  }
  return out;
}

double ResilienceReport::mean_detection_latency_s() const { return mean(detection_latencies_s); }

double ResilienceReport::mean_recovery_time_s() const { return mean(recovery_times_s); }

double ResilienceReport::degraded_throughput_ratio() const {
  if (healthy_plan.throughput_fps <= 0) return 0.0;
  return final_plan.throughput_fps / healthy_plan.throughput_fps;
}

std::string ResilienceReport::to_json() const {
  std::string out = "{\"record\":\"resilience-report\"";
  out += ",\"pipeline_alive\":" + std::string(pipeline_alive ? "true" : "false");
  out += ",\"final_dtype\":\"" + obs::json_escape(dtype_name(final_dtype)) + "\"";
  out += ",\"final_stages\":" + obs::json_number(static_cast<double>(final_stages));
  out += ",\"frames_completed\":" + obs::json_number(static_cast<double>(frames_completed));
  out += ",\"frames_dropped\":" + obs::json_number(static_cast<double>(frames_dropped));
  out += ",\"transfer_retries\":" + obs::json_number(static_cast<double>(transfer_retries));
  out += ",\"failovers\":" + obs::json_number(static_cast<double>(failovers));
  out += ",\"degradations\":" + obs::json_number(static_cast<double>(degradations));
  out += ",\"mean_detection_latency_s\":" + obs::json_number(mean_detection_latency_s());
  out += ",\"mean_recovery_time_s\":" + obs::json_number(mean_recovery_time_s());
  out += ",\"degraded_throughput_ratio\":" + obs::json_number(degraded_throughput_ratio());
  out += ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ResilienceEvent& e = events[i];
    if (i) out += ",";
    out += "{\"time_s\":" + obs::json_number(e.time_s);
    out += ",\"kind\":\"" + obs::json_escape(resilience_event_name(e.kind)) + "\"";
    out += ",\"subject\":\"" + obs::json_escape(e.subject) + "\"";
    out += ",\"detail\":\"" + obs::json_escape(e.detail) + "\"";
    out += ",\"value\":" + obs::json_number(e.value) + "}";
  }
  out += "]}";
  return out;
}

ResilienceController::ResilienceController(const Graph& g, PlatformSimulator& sim,
                                           std::vector<std::string> slots,
                                           std::size_t num_stages, DType dtype,
                                           ResilienceConfig config)
    : graph_(g),
      sim_(sim),
      slots_(std::move(slots)),
      preferred_stages_(num_stages),
      preferred_dtype_(dtype),
      cfg_(config),
      rng_(config.seed),
      dtype_(dtype),
      stages_(num_stages),
      health_(slots_, HealthConfig{config.heartbeat_miss_threshold}) {
  VEDLIOT_CHECK(!slots_.empty(), "resilience controller needs at least one slot");
  VEDLIOT_CHECK(cfg_.heartbeat_period_s > 0, "heartbeat period must be positive");
  VEDLIOT_CHECK(cfg_.heartbeat_miss_threshold >= 1, "miss threshold must be >= 1");
  VEDLIOT_CHECK(cfg_.max_transfer_attempts >= 1, "need at least one transfer attempt");
  cfg_.max_transfer_attempts = std::min(cfg_.max_transfer_attempts, kTransferAttemptCap);
  VEDLIOT_CHECK(cfg_.latency_budget_s > 0, "latency budget must be positive");
  VEDLIOT_CHECK(cfg_.redeploy_gbps > 0, "redeploy bandwidth must be positive");
}

void ResilienceController::report_verdict(const std::string& slot,
                                          safety::CheckResult verdict, double time_s) {
  VEDLIOT_CHECK(time_s >= 0, "verdict time must be non-negative");
  if (verdict != safety::CheckResult::kCheckedFaulty) return;
  const auto pos = std::upper_bound(
      verdicts_.begin(), verdicts_.end(), time_s,
      [](double t, const PendingVerdict& v) { return t < v.time_s; });
  verdicts_.insert(pos, PendingVerdict{time_s, slot});
}

void ResilienceController::log(double t, ResilienceEventKind kind, const std::string& subject,
                               const std::string& detail, double value) {
  report_.events.push_back(ResilienceEvent{t, kind, subject, detail, value});
  if (cfg_.trace) {
    obs::Span& sp = cfg_.trace->instant(std::string(resilience_event_name(kind)),
                                        "vedliot.platform.resilience");
    sp.attrs.emplace_back("subject", subject);
    if (!detail.empty()) sp.attrs.emplace_back("detail", detail);
    sp.num_attrs.emplace_back("time_s", t);
    sp.num_attrs.emplace_back("value", value);
  }
}

void ResilienceController::note_injected(double t, const std::vector<FaultEvent>& applied) {
  for (const auto& e : applied) {
    std::string detail;
    switch (e.kind) {
      case FaultKind::kLinkDegrade:
        detail = e.magnitude < 1.0 ? "bandwidth x" + std::to_string(e.magnitude)
                                   : "bandwidth restored";
        break;
      case FaultKind::kThermalThrottle:
        detail = "effective GOPS x" + std::to_string(e.magnitude);
        break;
      default:
        break;
    }
    log(e.time_s, ResilienceEventKind::kFaultInjected, e.subject(),
        std::string(fault_kind_name(e.kind)) + (detail.empty() ? "" : ", " + detail));

    switch (e.kind) {
      case FaultKind::kModuleCrash:
      case FaultKind::kLinkDrop:
        // Silent failures: only heartbeats / failing transfers reveal them.
        undetected_.emplace(e.subject(), e.time_s);
        break;
      case FaultKind::kThermalThrottle:
      case FaultKind::kLinkDegrade: {
        // Degradations are visible through platform telemetry at the next
        // tick: detect immediately and rebalance the plan.
        log(t, ResilienceEventKind::kFaultDetected, e.subject(),
            "telemetry: " + std::string(fault_kind_name(e.kind)));
        report_.detection_latencies_s.push_back(t - e.time_s);
        if (detect_mark_ < 0) detect_mark_ = t;
        need_replan_ = true;
        replan_reason_ = std::string(fault_kind_name(e.kind)) + " on " + e.subject();
        break;
      }
      case FaultKind::kModuleRestart:
        health_.mark_up(e.slot);
        undetected_.erase(e.subject());
        need_replan_ = true;
        replan_reason_ = "capacity restored: " + e.subject();
        break;
      case FaultKind::kThermalRecover:
      case FaultKind::kLinkRestore:
        need_replan_ = true;
        replan_reason_ = "capacity restored: " + e.subject();
        break;
      case FaultKind::kLinkPartition:
        // A partition severs every link on the slot at once: silent, like a
        // link drop — heartbeats / failing transfers reveal it.
        undetected_.emplace(e.subject(), e.time_s);
        break;
      case FaultKind::kLinkHeal:
        undetected_.erase(e.subject());
        need_replan_ = true;
        replan_reason_ = "capacity restored: " + e.subject();
        break;
      case FaultKind::kMemoryFault:
      case FaultKind::kOtaCorrupt:
      case FaultKind::kPacketDup:
      case FaultKind::kPacketReorder:
        // Model-integrity / transport-layer markers owned by the serving
        // and OTA layers; platform capacity is unchanged, nothing to
        // replan around.
        break;
    }
  }
}

void ResilienceController::heartbeat_tick(double t) {
  for (const HealthBeat& beat : health_.tick(sim_)) {
    // Restarts reach the controller as module-restart fault events (which
    // mark_up the monitor before this tick), so recovered beats only occur
    // when a slot revives without one; the replan is driven by the event.
    if (beat.recovered) continue;
    log(t, ResilienceEventKind::kHeartbeatMiss, "slot " + beat.slot,
        std::to_string(beat.misses) + "/" + std::to_string(cfg_.heartbeat_miss_threshold),
        static_cast<double>(beat.misses));
    if (!beat.declared_down) continue;

    const std::string subject = "slot " + beat.slot;
    std::string detail =
        "declared dead after " + std::to_string(beat.misses) + " missed heartbeats";
    if (const auto it = undetected_.find(subject); it != undetected_.end()) {
      report_.detection_latencies_s.push_back(t - it->second);
      undetected_.erase(it);
    }
    log(t, ResilienceEventKind::kFaultDetected, subject, detail,
        static_cast<double>(beat.misses));
    if (detect_mark_ < 0) detect_mark_ = t;

    const bool in_plan =
        plan_valid_ && std::any_of(plan_.stages.begin(), plan_.stages.end(),
                                   [&](const Stage& st) { return st.slot == beat.slot; });
    if (in_plan || !plan_valid_) {
      need_replan_ = true;
      replan_reason_ = "module crash on " + beat.slot;
    }
  }
}

void ResilienceController::verdict_tick(double t) {
  while (!verdicts_.empty() && verdicts_.front().time_s <= t) {
    const PendingVerdict v = verdicts_.front();
    verdicts_.pop_front();
    if (quarantined_.count(v.slot)) continue;
    quarantined_.insert(v.slot);
    log(t, ResilienceEventKind::kFaultDetected, "slot " + v.slot,
        "robustness service verdict: checked-faulty (model corrupted), slot quarantined");
    if (detect_mark_ < 0) detect_mark_ = t;
    const bool in_plan =
        plan_valid_ && std::any_of(plan_.stages.begin(), plan_.stages.end(),
                                   [&](const Stage& st) { return st.slot == v.slot; });
    if (in_plan || !plan_valid_) {
      need_replan_ = true;
      replan_reason_ = "corrupted model on " + v.slot;
    }
  }
}

bool ResilienceController::capacity_admits(const std::vector<std::string>& avail,
                                           DType dt) const {
  if (!plan_valid_) return true;
  // Admission control reusing the workload scheduler: every stage of the
  // current plan becomes a recurring Workload at the pipeline rate; the
  // stages on failed slots must migrate onto the survivors.
  const double interval = std::max(plan_.pipeline_interval_s, 1e-9);
  std::vector<Workload> workloads;
  std::vector<Placement> placements;
  for (std::size_t i = 0; i < plan_.stages.size(); ++i) {
    const Stage& st = plan_.stages[i];
    Workload w;
    w.name = "stage" + std::to_string(i);
    w.ops = st.ops;
    w.traffic_bytes = st.weight_bytes + st.boundary_bytes;
    w.weight_bytes = st.weight_bytes;
    w.dtype = dt;
    // Half the pipeline rate and the full frame budget: a coarse gate that
    // asks "can the survivors host this at all", not "is it optimal".
    w.rate_hz = 0.5 / interval;
    w.latency_budget_s = cfg_.latency_budget_s;
    workloads.push_back(w);

    Placement p;
    p.workload = w.name;
    p.slot = st.slot;
    p.module = st.module;
    p.latency_s = st.compute_s;
    p.utilization = st.compute_s / interval;
    placements.push_back(p);
  }

  std::set<std::string> ok(avail.begin(), avail.end());
  std::vector<std::string> failed;
  for (const auto& st : plan_.stages) {
    if (!ok.count(st.slot)) failed.push_back(st.slot);
  }
  if (failed.empty()) return true;

  try {
    ResourceManager rm(sim_.chassis());
    for (const auto& [slot, scale] : sim_.gops_scales()) {
      if (ok.count(slot)) rm.set_capacity_scale(slot, scale);
    }
    std::vector<Placement> current = placements;
    for (const auto& slot : failed) {
      current = rm.migrate(current, workloads, slot);
    }
    return true;
  } catch (const Error&) {
    return false;
  }
}

void ResilienceController::recover(double t, const std::string& reason) {
  need_replan_ = false;

  std::vector<std::string> avail;
  for (const auto& slot : sim_.alive_of(slots_)) {
    if (!quarantined_.count(slot)) avail.push_back(slot);
  }
  if (avail.empty()) {
    log(t, ResilienceEventKind::kUnrecoverable, "pipeline",
        "no surviving slot left (" + reason + ")");
    plan_valid_ = false;
    report_.pipeline_alive = false;
    detect_mark_ = -1;
    return;
  }

  // Precision ladder: current dtype first, then the configured fallbacks.
  std::vector<DType> ladder{preferred_dtype_};
  for (DType dt : cfg_.precision_ladder) {
    if (std::find(ladder.begin(), ladder.end(), dt) == ladder.end()) ladder.push_back(dt);
  }

  PlanOptions opts;
  opts.slot_gops_scale = sim_.gops_scales();
  opts.trace = cfg_.trace;

  struct Choice {
    DistributedPlan plan;
    DType dtype;
    std::size_t stages;
  };
  std::optional<Choice> chosen;
  // Fallback when no plan passes admission + budget: the pipeline keeps
  // running degraded, so prefer the highest steady-state throughput.
  std::optional<Choice> best_any;

  const std::size_t stage_cap = std::min(preferred_stages_, avail.size() * 2);
  for (DType dt : ladder) {
    const bool admitted = capacity_admits(avail, dt);
    if (!admitted) {
      log(t, ResilienceEventKind::kFailover, "pipeline",
          "capacity check: survivors cannot host all stages at " +
              std::string(dtype_name(dt)));
    }
    for (std::size_t s = stage_cap; s >= 1; --s) {
      DistributedPlan p;
      try {
        p = plan_distributed_inference(graph_, sim_.chassis(), sim_.fabric(), avail, s, dt,
                                       opts);
      } catch (const Error&) {
        continue;
      }
      if (!best_any || p.throughput_fps > best_any->plan.throughput_fps) {
        best_any = Choice{p, dt, s};
      }
      if (admitted && p.latency_s <= cfg_.latency_budget_s) {
        chosen = Choice{p, dt, s};
        break;
      }
    }
    if (chosen) break;
  }

  bool budget_missed = false;
  if (!chosen) {
    if (!best_any) {
      log(t, ResilienceEventKind::kUnrecoverable, "pipeline",
          "no feasible plan on survivors (" + reason + ")");
      plan_valid_ = false;
      report_.pipeline_alive = false;
      detect_mark_ = -1;
      return;
    }
    chosen = best_any;  // degraded below budget targets: run what we can
    budget_missed = true;
  }

  // Failover bookkeeping: stages leave every failed slot of the old plan.
  if (plan_valid_) {
    std::set<std::string> ok(avail.begin(), avail.end());
    std::set<std::string> gone;
    for (const auto& st : plan_.stages) {
      if (!ok.count(st.slot)) gone.insert(st.slot);
    }
    for (const auto& slot : gone) {
      ++report_.failovers;
      log(t, ResilienceEventKind::kFailover, "slot " + slot,
          "stages moved to surviving slots (" + reason + ")");
    }
  }
  if (chosen->dtype != dtype_) {
    ++report_.degradations;
    log(t, ResilienceEventKind::kDegradedPrecision, "pipeline",
        std::string(dtype_name(dtype_)) + " -> " + std::string(dtype_name(chosen->dtype)) +
            (budget_missed ? " (admission or latency budget not met)" : ""));
  }
  if (chosen->stages != stages_) {
    if (chosen->stages < stages_) ++report_.degradations;
    log(t,
        chosen->stages < stages_ ? ResilienceEventKind::kDegradedStages
                                 : ResilienceEventKind::kRecovered,
        "pipeline",
        std::to_string(stages_) + " -> " + std::to_string(chosen->stages) + " stages" +
            (budget_missed ? " (admission or latency budget not met)" : ""));
  }

  // Redeploy cost: stage weights ship to every slot whose assignment
  // changed, over the management network, plus a restart latency each.
  double moved_bytes = 0;
  std::size_t moved = 0;
  for (std::size_t i = 0; i < chosen->plan.stages.size(); ++i) {
    // A stage only stays in place if its slot, its node range AND the
    // precision are all unchanged; otherwise its weights must redeploy.
    const bool same = plan_valid_ && i < plan_.stages.size() &&
                      plan_.stages[i].slot == chosen->plan.stages[i].slot &&
                      plan_.stages[i].first == chosen->plan.stages[i].first &&
                      plan_.stages[i].last == chosen->plan.stages[i].last &&
                      chosen->dtype == dtype_;
    if (!same) {
      moved_bytes += chosen->plan.stages[i].weight_bytes;
      ++moved;
    }
  }
  const double redeploy_s = static_cast<double>(moved) * cfg_.restart_latency_s +
                            moved_bytes * 8.0 / (cfg_.redeploy_gbps * 1e9);
  stall_until_ = std::max(stall_until_, t + redeploy_s);

  if (detect_mark_ >= 0) {
    report_.recovery_times_s.push_back(t - detect_mark_ + redeploy_s);
    detect_mark_ = -1;
  }

  plan_ = chosen->plan;
  dtype_ = chosen->dtype;
  stages_ = chosen->stages;
  plan_valid_ = true;
  report_.pipeline_alive = true;  // back from an unrecoverable period, if any

  char detail[160];
  std::snprintf(detail, sizeof(detail),
                "%zu stages on %zu slots at %s: latency %.2f ms, %.1f fps (redeploy %.1f ms)",
                chosen->stages, avail.size(), std::string(dtype_name(chosen->dtype)).c_str(),
                plan_.latency_s * 1e3, plan_.throughput_fps, redeploy_s * 1e3);
  log(t + redeploy_s, ResilienceEventKind::kRecovered, "pipeline", detail,
      plan_.throughput_fps);
}

bool ResilienceController::process_one_frame(double t) {
  for (const auto& st : plan_.stages) {
    if (!sim_.alive(st.slot)) return false;  // in-flight work on a dead module
  }
  for (std::size_t i = 0; i + 1 < plan_.stages.size(); ++i) {
    const std::string& from = plan_.stages[i].slot;
    const std::string& to = plan_.stages[i + 1].slot;
    const std::string subject = "link " + from + "<->" + to;
    int attempt = 0;
    while (true) {
      bool ok = false;
      try {
        ok = sim_.try_transfer(from, to);
      } catch (const NotFound&) {
        std::string detail = "fabric partition hit mid-frame";
        if (!undetected_.empty()) {
          // Attribute to the earliest outstanding silent link fault.
          auto best = undetected_.end();
          for (auto it = undetected_.begin(); it != undetected_.end(); ++it) {
            if (it->first.rfind("link ", 0) != 0) continue;
            if (best == undetected_.end() || it->second < best->second) best = it;
          }
          if (best != undetected_.end()) {
            report_.detection_latencies_s.push_back(t - best->second);
            undetected_.erase(best);
          }
        }
        log(t, ResilienceEventKind::kFaultDetected, subject, detail);
        if (detect_mark_ < 0) detect_mark_ = t;
        need_replan_ = true;
        replan_reason_ = "fabric partition between " + from + " and " + to;
        return false;
      }
      if (ok) break;
      ++attempt;
      ++report_.transfer_retries;
      log(t, ResilienceEventKind::kTransientFault, subject,
          "attempt " + std::to_string(attempt) + " failed");
      if (attempt >= cfg_.max_transfer_attempts) {
        log(t, ResilienceEventKind::kTransferTimeout, subject,
            "gave up after " + std::to_string(attempt) + " attempts; frame dropped");
        return false;
      }
      const double wait = rng_.backoff_s(cfg_.backoff_base_s, cfg_.backoff_cap_s, attempt - 1);
      log(t, ResilienceEventKind::kRetry, subject,
          "backing off " + std::to_string(wait * 1e3) + " ms", wait);
    }
  }
  return true;
}

void ResilienceController::process_frames(double t) {
  const double interval = plan_valid_
                              ? std::max(plan_.pipeline_interval_s, 1e-9)
                              : std::max(report_.healthy_plan.pipeline_interval_s, 1e-9);
  frame_credit_ += cfg_.heartbeat_period_s / interval;
  while (frame_credit_ >= 1.0) {
    frame_credit_ -= 1.0;
    if (!plan_valid_ || t < stall_until_) {
      ++report_.frames_dropped;  // pipeline down or still redeploying
      continue;
    }
    if (process_one_frame(t)) {
      ++report_.frames_completed;
    } else {
      ++report_.frames_dropped;
    }
  }
}

ResilienceReport ResilienceController::run(double duration_s) {
  VEDLIOT_CHECK(!ran_, "a ResilienceController drives exactly one run");
  VEDLIOT_CHECK(duration_s > 0, "run duration must be positive");
  ran_ = true;

  obs::ScopedSpan run_span;
  if (cfg_.trace) {
    run_span = cfg_.trace->span("resilience.run", "vedliot.platform.resilience");
    run_span.attr("duration_s", duration_s);
    run_span.attr("slots", static_cast<double>(slots_.size()));
  }

  // Baseline plan on the (presumably healthy) platform as it stands now.
  const auto avail = sim_.alive_of(slots_);
  if (avail.empty()) throw PlatformError("no alive slot to start the pipeline on");
  PlanOptions opts;
  opts.slot_gops_scale = sim_.gops_scales();
  opts.trace = cfg_.trace;
  plan_ = plan_distributed_inference(graph_, sim_.chassis(), sim_.fabric(), avail,
                                     std::min(preferred_stages_, avail.size() * 2),
                                     preferred_dtype_, opts);
  stages_ = plan_.stages.size();
  plan_valid_ = true;
  report_.healthy_plan = plan_;

  const long ticks = std::lround(duration_s / cfg_.heartbeat_period_s);
  for (long k = 1; k <= ticks; ++k) {
    const double t = static_cast<double>(k) * cfg_.heartbeat_period_s;
    note_injected(t, sim_.advance_to(t));
    heartbeat_tick(t);
    verdict_tick(t);
    if (need_replan_) recover(t, replan_reason_);
    process_frames(t);
  }

  report_.final_plan = plan_valid_ ? plan_ : DistributedPlan{};
  report_.final_dtype = dtype_;
  report_.final_stages = plan_valid_ ? stages_ : 0;
  if (cfg_.trace) {
    run_span.attr("events", static_cast<double>(report_.events.size()));
    run_span.attr("frames_completed", static_cast<double>(report_.frames_completed));
    run_span.attr("frames_dropped", static_cast<double>(report_.frames_dropped));
  }
  return report_;
}

}  // namespace vedliot::platform
