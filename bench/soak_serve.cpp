// Chaos soak driver for the serving layer (serve/soak.hpp): sweep the
// seeded closed-loop soak over fault rates {0, 0.05, 0.2}, check every
// serving invariant plus cross-rate goodput monotonicity, and re-run the
// first rate to prove bitwise determinism (identical to_json). Prints a
// human summary table on stderr and one JSON-lines record per rate on
// stdout (scripts/soak.sh redirects those into BENCH_serve.json).
//
// Usage: soak_serve [--seed N] [--duration S] [--arrival-hz H] [--quick]
// Exit status 1 when any invariant is violated or determinism breaks.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/soak.hpp"

namespace {

using vedliot::serve::SoakConfig;
using vedliot::serve::SoakResult;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--duration S] [--arrival-hz H] [--quick]\n", argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  SoakConfig base;
  base.seed = 0x5EEDu;
  base.duration_s = 2.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed") {
      base.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--duration") {
      base.duration_s = std::strtod(next(), nullptr);
    } else if (arg == "--arrival-hz") {
      base.arrival_hz = std::strtod(next(), nullptr);
    } else if (arg == "--quick") {
      base.duration_s = 0.8;
    } else {
      usage(argv[0]);
    }
  }

  const std::vector<double> rates = {0.0, 0.05, 0.2};
  std::vector<SoakResult> sweep;
  bool ok = true;

  std::fprintf(stderr, "chaos soak: seed=0x%llx duration=%.2fs arrival=%.0f Hz\n",
               static_cast<unsigned long long>(base.seed), base.duration_s, base.arrival_hz);
  std::fprintf(stderr, "%-6s %8s %9s %6s %7s %7s %7s %8s %8s\n", "rate", "offered",
               "completed", "shed", "missed", "failed", "retries", "goodput", "brownout");
  for (const double rate : rates) {
    SoakConfig cfg = base;
    cfg.fault_rate = rate;
    SoakResult r = vedliot::serve::run_soak(cfg);
    std::fprintf(stderr, "%-6.2f %8zu %9zu %6zu %7zu %7zu %7zu %8.4f %8d\n", rate,
                 r.report.offered, r.report.completed, r.report.shed,
                 r.report.deadline_missed, r.report.failed, r.report.retries, r.goodput(),
                 r.report.max_brownout_level);
    for (const std::string& v : r.violations) {
      std::fprintf(stderr, "  INVARIANT VIOLATION: %s\n", v.c_str());
      ok = false;
    }
    std::printf("%s\n", r.to_json().c_str());
    sweep.push_back(std::move(r));
  }

  for (const std::string& v : vedliot::serve::check_goodput_monotone(sweep)) {
    std::fprintf(stderr, "  INVARIANT VIOLATION: %s\n", v.c_str());
    ok = false;
  }

  // Determinism: the same seed must reproduce the healthy run bit for bit.
  SoakConfig again = base;
  again.fault_rate = rates.front();
  const SoakResult rerun = vedliot::serve::run_soak(again);
  if (rerun.to_json() != sweep.front().to_json()) {
    std::fprintf(stderr, "  INVARIANT VIOLATION: re-run of seed 0x%llx diverged [%s]\n",
                 static_cast<unsigned long long>(base.seed), rerun.sim_describe.c_str());
    ok = false;
  }

  std::fprintf(stderr, ok ? "soak OK: all invariants hold\n" : "soak FAILED\n");
  return ok ? 0 : 1;
}
