file(REMOVE_RECURSE
  "libvedliot_kenning.a"
)
