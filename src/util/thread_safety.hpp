#pragma once
/// \file thread_safety.hpp
/// \brief Clang Thread Safety Analysis annotations, compiled away elsewhere.
///
/// The project's concurrency protocol is lock-per-object and deliberately
/// small: a handful of classes own one mutex each and everything else is
/// single-threaded or immutable. These macros let those classes *state* the
/// protocol (which fields a mutex guards, which private helpers expect the
/// lock held) so `clang -Wthread-safety` proves it at compile time —
/// scripts/lint.sh runs that pass when clang is on PATH. Under gcc (the
/// default CI toolchain) every macro expands to nothing.
///
/// Only the attributes the codebase actually uses are wrapped; add more from
/// clang's thread-safety attribute set as callers need them.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define VEDLIOT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef VEDLIOT_THREAD_ANNOTATION
#define VEDLIOT_THREAD_ANNOTATION(x)
#endif

/// Field is protected by the given mutex: reads and writes require it held.
#define VEDLIOT_GUARDED_BY(x) VEDLIOT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given mutex.
#define VEDLIOT_PT_GUARDED_BY(x) VEDLIOT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function must be called with the mutex(es) already held.
#define VEDLIOT_REQUIRES(...) \
  VEDLIOT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires / releases the mutex(es) (lock-wrapper helpers).
#define VEDLIOT_ACQUIRE(...) \
  VEDLIOT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VEDLIOT_RELEASE(...) \
  VEDLIOT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with the mutex(es) held (deadlock guard for
/// public entry points of self-locking classes).
#define VEDLIOT_EXCLUDES(...) VEDLIOT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for code whose synchronization the analysis cannot see
/// (epoch protocols, atomics standing in for a lock). Use with a comment
/// explaining the actual protocol.
#define VEDLIOT_NO_THREAD_SAFETY_ANALYSIS \
  VEDLIOT_THREAD_ANNOTATION(no_thread_safety_analysis)
