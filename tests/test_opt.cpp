// Tests for the optimizing toolchain: fusion, pruning, clustering, Huffman,
// deep compression, quantization passes and calibration.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "opt/compress.hpp"
#include "opt/fusion.hpp"
#include "opt/huffman.hpp"
#include "opt/pass.hpp"
#include "opt/prune.hpp"
#include "opt/quantize.hpp"
#include "exec_single.hpp"
#include "runtime/executor.hpp"
#include "util/rng.hpp"

namespace vedliot::opt {
namespace {

Graph materialized_micro_cnn(std::uint64_t seed = 42) {
  Graph g = zoo::micro_cnn("m", 1, 1, 16, 4);
  Rng rng(seed);
  g.materialize_weights(rng);
  return g;
}

Tensor test_image(std::uint64_t seed = 99) {
  Rng rng(seed);
  return Tensor(Shape{1, 1, 16, 16}, rng.normal_vector(256));
}

TEST(Fusion, BatchNormFoldPreservesOutputs) {
  Graph g = materialized_micro_cnn();
  const Tensor input = test_image();
  const Tensor before = testutil::exec_single(g, input);

  FuseBatchNormPass pass;
  const auto r = pass.run(g);
  EXPECT_EQ(r.nodes_changed, 3);  // three conv-bn pairs in micro_cnn
  g.validate();

  const Tensor after = testutil::exec_single(g, input);
  EXPECT_LT(max_abs_diff(before, after), 1e-3f);
}

TEST(Fusion, BatchNormFoldRemovesNodes) {
  Graph g = materialized_micro_cnn();
  const std::size_t before = g.size();
  FuseBatchNormPass pass;
  const auto r = pass.run(g);
  EXPECT_EQ(g.size(), before - static_cast<std::size_t>(r.nodes_changed));
  for (NodeId id : g.topo_order()) EXPECT_NE(g.node(id).kind, OpKind::kBatchNorm);
}

TEST(Fusion, ActivationFusePreservesOutputs) {
  Graph g = materialized_micro_cnn();
  const Tensor input = test_image();
  const Tensor before = testutil::exec_single(g, input);

  PassManager pm;
  pm.add(std::make_unique<FuseBatchNormPass>());
  pm.add(std::make_unique<FuseActivationPass>());
  pm.run(g);

  const Tensor after = testutil::exec_single(g, input);
  EXPECT_LT(max_abs_diff(before, after), 1e-3f);
  int relus = 0;
  for (NodeId id : g.topo_order()) {
    if (g.node(id).kind == OpKind::kRelu) ++relus;
  }
  EXPECT_EQ(relus, 0);
}

TEST(Fusion, SkipsSharedProducers) {
  // A conv feeding both an activation and another consumer must not fuse.
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 2, 4, 4});
  AttrMap a;
  a.set_int("out_channels", 2);
  a.set_int("kernel", 1);
  a.set_int("stride", 1);
  a.set_int("pad", 0);
  a.set_int("groups", 1);
  a.set_int("bias", 1);
  const NodeId c = g.add(OpKind::kConv2d, "conv", {in}, a);
  const NodeId r = g.add(OpKind::kRelu, "relu", {c});
  g.add(OpKind::kAdd, "residual", {r, c});  // second consumer of conv
  FuseActivationPass pass;
  const auto res = pass.run(g);
  EXPECT_EQ(res.nodes_changed, 0);
}

TEST(Fusion, LeakyAlphaCarriedThrough) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 1, 2, 2});
  AttrMap a;
  a.set_int("out_channels", 1);
  a.set_int("kernel", 1);
  a.set_int("stride", 1);
  a.set_int("pad", 0);
  a.set_int("groups", 1);
  a.set_int("bias", 0);
  const NodeId c = g.add(OpKind::kConv2d, "conv", {in}, a);
  AttrMap la;
  la.set_float("alpha", 0.2);
  g.add(OpKind::kLeakyRelu, "leaky", {c}, la);
  g.node(c).weights = {Tensor(Shape{1, 1, 1, 1}, {1.0f})};

  FuseActivationPass pass;
  pass.run(g);
  const Tensor out = testutil::exec_single(g, Tensor(Shape{1, 1, 2, 2}, {-1, 1, -2, 2}));
  EXPECT_FLOAT_EQ(out.at(0), -0.2f);
  EXPECT_FLOAT_EQ(out.at(2), -0.4f);
}

TEST(PassManager, RunsInOrderAndValidates) {
  Graph g = materialized_micro_cnn();
  PassManager pm;
  pm.add(std::make_unique<FuseBatchNormPass>());
  pm.add(std::make_unique<FuseActivationPass>());
  pm.add(std::make_unique<EliminateIdentityPass>());
  const auto results = pm.run(g);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].pass_name, "fuse-batchnorm");
  EXPECT_EQ(results[2].pass_name, "eliminate-identity");
}

TEST(Prune, AchievesRequestedSparsity) {
  Graph g = materialized_micro_cnn();
  MagnitudePrunePass pass(0.7);
  pass.run(g);
  EXPECT_NEAR(graph_sparsity(g), 0.7, 0.05);
}

TEST(Prune, InvalidSparsityRejected) {
  EXPECT_THROW(MagnitudePrunePass(1.0), Error);
  EXPECT_THROW(MagnitudePrunePass(-0.1), Error);
}

TEST(Prune, KeepsLargestWeights) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 4});
  AttrMap a;
  a.set_int("units", 1);
  a.set_int("bias", 0);
  const NodeId fc = g.add(OpKind::kDense, "fc", {in}, a);
  g.node(fc).weights = {Tensor(Shape{1, 4}, {0.1f, -5.0f, 0.2f, 3.0f})};
  MagnitudePrunePass pass(0.5);
  pass.run(g);
  const auto& w = g.node(fc).weights[0];
  EXPECT_EQ(w.at(0), 0.0f);
  EXPECT_EQ(w.at(1), -5.0f);
  EXPECT_EQ(w.at(2), 0.0f);
  EXPECT_EQ(w.at(3), 3.0f);
}

TEST(Prune, ChannelPruneReducesEffectiveMacs) {
  Graph g = materialized_micro_cnn();
  const auto before = effective_macs(g);
  ChannelPrunePass pass(0.5);
  pass.run(g);
  const auto after = effective_macs(g);
  EXPECT_LT(after, before * 3 / 4);
  EXPECT_GT(after, 0);
}

TEST(Prune, ChannelPruneSparesOutputHeads) {
  Graph g = materialized_micro_cnn();
  ChannelPrunePass pass(0.5);
  pass.run(g);
  const Node& head = g.node(g.find("logits"));
  EXPECT_EQ(head.attrs.get_int_or("pruned_out_channels", 0), 0);
}

TEST(Huffman, RoundTripSkewedDistribution) {
  std::map<std::uint32_t, std::uint64_t> freqs{{0, 1000}, {1, 200}, {2, 50}, {3, 5}};
  HuffmanCoder coder(freqs);
  std::vector<std::uint32_t> symbols;
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) symbols.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, 3)));
  std::size_t bits = 0;
  const auto bytes = coder.encode(symbols, &bits);
  const auto decoded = coder.decode(bytes, symbols.size());
  EXPECT_EQ(decoded, symbols);
  EXPECT_LE(bits, symbols.size() * 3);
}

TEST(Huffman, SkewGivesShorterCodes) {
  std::map<std::uint32_t, std::uint64_t> freqs{{0, 10000}, {1, 1}, {2, 1}, {3, 1}};
  HuffmanCoder coder(freqs);
  EXPECT_EQ(coder.table().at(0).length, 1);
  EXPECT_LT(coder.encoded_bits(freqs), 2 * (10000 + 3));
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::map<std::uint32_t, std::uint64_t> freqs{{7, 100}};
  HuffmanCoder coder(freqs);
  const std::vector<std::uint32_t> symbols(10, 7);
  const auto bytes = coder.encode(symbols);
  EXPECT_EQ(coder.decode(bytes, 10), symbols);
}

TEST(Huffman, UnknownSymbolThrows) {
  HuffmanCoder coder({{0, 1}, {1, 1}});
  EXPECT_THROW((void)coder.encode({5}), NotFound);
}

TEST(Huffman, KraftInequalityHolds) {
  std::map<std::uint32_t, std::uint64_t> freqs;
  Rng rng(3);
  for (std::uint32_t s = 0; s < 40; ++s) {
    freqs[s] = static_cast<std::uint64_t>(rng.uniform_int(1, 1000));
  }
  HuffmanCoder coder(freqs);
  double kraft = 0;
  for (const auto& [sym, code] : coder.table()) kraft += std::pow(2.0, -code.length);
  EXPECT_LE(kraft, 1.0 + 1e-9);
}

class HuffmanAlphabetSweep : public ::testing::TestWithParam<int> {};

TEST_P(HuffmanAlphabetSweep, LosslessRoundTrip) {
  const int alphabet = GetParam();
  Rng rng(static_cast<std::uint64_t>(alphabet));
  std::vector<std::uint32_t> symbols;
  std::map<std::uint32_t, std::uint64_t> freqs;
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<std::uint32_t>(rng.uniform_int(0, alphabet - 1));
    symbols.push_back(s);
    ++freqs[s];
  }
  HuffmanCoder coder(freqs);
  EXPECT_EQ(coder.decode(coder.encode(symbols), symbols.size()), symbols);
}

INSTANTIATE_TEST_SUITE_P(Alphabets, HuffmanAlphabetSweep, ::testing::Values(2, 3, 5, 16, 33, 256));

TEST(Cluster, CodebookBoundsDistinctValues) {
  Rng rng(5);
  Tensor w(Shape{8, 4, 3, 3}, rng.normal_vector(8 * 4 * 9));
  cluster_weights(w, 4);
  std::set<float> distinct;
  for (float v : w.data()) {
    if (v != 0.0f) distinct.insert(v);
  }
  EXPECT_LE(distinct.size(), 16u);
}

TEST(Cluster, PreservesZeros) {
  Tensor w(Shape{1, 1, 2, 2}, {0.0f, 1.0f, 0.0f, -1.0f});
  cluster_weights(w, 2);
  EXPECT_EQ(w.at(0), 0.0f);
  EXPECT_EQ(w.at(2), 0.0f);
}

TEST(Cluster, ReducesQuantizationErrorVsSingleCentroid) {
  Rng rng(7);
  Tensor w(Shape{16, 8, 3, 3}, rng.normal_vector(16 * 8 * 9));
  Tensor w8 = w, w1 = w;
  cluster_weights(w8, 8);
  cluster_weights(w1, 1);
  EXPECT_LT(rmse(w8, w), rmse(w1, w));
}

TEST(DeepCompress, AchievesLargeRatioOnDenseHeavyNet) {
  // Deep Compression's 49x was on LeNet/AlexNet-class nets dominated by
  // dense layers; reproduce that regime with an MLP.
  Graph g = zoo::micro_mlp("lenet-ish", 1, 784, {300, 100}, 10);
  Rng rng(11);
  g.materialize_weights(rng);
  const auto report = deep_compress(g);
  EXPECT_GT(report.ratio(), 25.0);
  EXPECT_LT(report.ratio(), 120.0);
  EXPECT_GT(report.after_prune_bits, report.compressed_bits);  // coding helps further
}

TEST(DeepCompress, ConvNetsCompressLess) {
  Graph mlp = zoo::micro_mlp("mlp", 1, 784, {300, 100}, 10);
  Graph cnn = zoo::micro_cnn("cnn", 1, 1, 28, 10);
  Rng rng(13);
  mlp.materialize_weights(rng);
  cnn.materialize_weights(rng);
  const auto rm = deep_compress(mlp);
  const auto rc = deep_compress(cnn);
  EXPECT_GT(rm.ratio(), rc.ratio());
  EXPECT_GT(rc.ratio(), 4.0);
}

TEST(DeepCompress, PerLayerAccountingConsistent) {
  Graph g = zoo::micro_mlp("m", 1, 64, {32}, 4);
  Rng rng(17);
  g.materialize_weights(rng);
  const auto report = deep_compress(g);
  double total = 0;
  for (const auto& l : report.layers) {
    total += l.compressed_bits();
    EXPECT_GE(l.nonzeros, 0);
    EXPECT_LE(l.nonzeros, l.params);
    EXPECT_GT(l.ratio(), 1.0) << l.layer;
  }
  EXPECT_DOUBLE_EQ(total, report.compressed_bits);
}

TEST(DeepCompress, RequiresMaterializedWeights) {
  Graph g = zoo::micro_mlp("m", 1, 8, {4}, 2);
  EXPECT_THROW((void)deep_compress(g), Error);
}

TEST(QuantizePass, Int8ErrorSmallOnModelOutputs) {
  Graph g = materialized_micro_cnn();
  const Tensor input = test_image();
  const Tensor before = testutil::exec_single(g, input);

  QuantizeWeightsPass pass(DType::kINT8);
  const auto r = pass.run(g);
  EXPECT_GT(r.nodes_changed, 0);

  const Tensor after = testutil::exec_single(g, input);
  EXPECT_LT(max_abs_diff(before, after), 0.05f);
}

TEST(QuantizePass, Int4WorseThanInt8) {
  const Tensor input = test_image();
  Graph g8 = materialized_micro_cnn();
  Graph g4 = materialized_micro_cnn();
  const Tensor ref = testutil::exec_single(materialized_micro_cnn(), input);
  QuantizeWeightsPass(DType::kINT8).run(g8);
  QuantizeWeightsPass(DType::kINT4).run(g4);
  const auto e8 = rmse(testutil::exec_single(g8, input), ref);
  const auto e4 = rmse(testutil::exec_single(g4, input), ref);
  EXPECT_LT(e8, e4);
}

TEST(QuantizePass, TagsWeightDtype) {
  Graph g = materialized_micro_cnn();
  QuantizeWeightsPass(DType::kINT8).run(g);
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    if (n.kind == OpKind::kConv2d || n.kind == OpKind::kDense) {
      EXPECT_EQ(n.weight_dtype, DType::kINT8);
    }
  }
}

TEST(QuantizePass, RejectsFloatTarget) {
  EXPECT_THROW(QuantizeWeightsPass(DType::kFP16), Error);
}

TEST(Fp16Pass, NegligibleOutputChange) {
  Graph g = materialized_micro_cnn();
  const Tensor input = test_image();
  const Tensor before = testutil::exec_single(g, input);
  Fp16CastPass pass;
  pass.run(g);
  const Tensor after = testutil::exec_single(g, input);
  EXPECT_LT(max_abs_diff(before, after), 1e-2f);
}

TEST(Calibration, RecordsActScalesOnAllNodes) {
  Graph g = materialized_micro_cnn();
  std::vector<Tensor> samples;
  for (int i = 0; i < 4; ++i) samples.push_back(test_image(static_cast<std::uint64_t>(100 + i)));
  const auto ranges = calibrate_activations(g, samples);
  EXPECT_EQ(ranges.size(), g.size());
  for (NodeId id : g.topo_order()) {
    EXPECT_TRUE(g.node(id).attrs.has("act_scale")) << g.node(id).name;
  }
}

TEST(Calibration, SoftmaxScaleIsSmall) {
  Graph g = materialized_micro_cnn();
  std::vector<Tensor> samples{test_image()};
  const auto ranges = calibrate_activations(g, samples);
  EXPECT_LE(ranges.at("prob").scale, 1.0 / 127.0 + 1e-9);
}

TEST(Calibration, EmptySamplesRejected) {
  Graph g = materialized_micro_cnn();
  EXPECT_THROW((void)calibrate_activations(g, {}), Error);
}

}  // namespace
}  // namespace vedliot::opt
// appended: common-subexpression elimination
namespace vedliot::opt {
namespace {

TEST(Cse, MergesIdenticalBranches) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 4, 8, 8});
  AttrMap p;
  p.set_int("kernel", 2);
  p.set_int("stride", 2);
  p.set_int("pad", 0);
  const NodeId a = g.add(OpKind::kMaxPool, "pool_a", {in}, p);
  AttrMap p2 = p;
  const NodeId b = g.add(OpKind::kMaxPool, "pool_b", {in}, p2);  // duplicate
  const NodeId ra = g.add(OpKind::kRelu, "ra", {a});
  const NodeId rb = g.add(OpKind::kSigmoid, "rb", {b});
  g.add(OpKind::kAdd, "sum", {ra, rb});

  CsePass pass;
  const auto r = pass.run(g);
  EXPECT_EQ(r.nodes_changed, 1);
  EXPECT_TRUE(g.node(b).dead);
  EXPECT_EQ(g.node(rb).inputs.front(), a);
  g.validate();
}

TEST(Cse, PreservesExecutorOutputs) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 2, 4, 4});
  const NodeId r1 = g.add(OpKind::kRelu, "r1", {in});
  const NodeId r2 = g.add(OpKind::kRelu, "r2", {in});  // duplicate of r1
  g.add(OpKind::kAdd, "sum", {r1, r2});
  Rng rng(1);
  g.materialize_weights(rng);
  Rng data(2);
  Tensor x(Shape{1, 2, 4, 4}, data.normal_vector(32));
  const Tensor before = testutil::exec_single(g, x);
  CsePass pass;
  pass.run(g);
  const Tensor after = testutil::exec_single(g, x);
  EXPECT_FLOAT_EQ(max_abs_diff(before, after), 0.0f);
  EXPECT_EQ(g.size(), 3u);  // input, one relu, add
}

TEST(Cse, DifferentAttrsNotMerged) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 4, 8, 8});
  AttrMap k2;
  k2.set_int("kernel", 2);
  k2.set_int("stride", 2);
  k2.set_int("pad", 0);
  AttrMap k4;
  k4.set_int("kernel", 4);
  k4.set_int("stride", 4);
  k4.set_int("pad", 0);
  const NodeId a = g.add(OpKind::kMaxPool, "a", {in}, k2);
  const NodeId b = g.add(OpKind::kMaxPool, "b", {in}, k4);
  g.add(OpKind::kGlobalAvgPool, "ga", {a});
  g.add(OpKind::kGlobalAvgPool, "gb", {b});
  CsePass pass;
  EXPECT_EQ(pass.run(g).nodes_changed, 0);
}

TEST(Cse, ParametricNodesNeverMerged) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 4});
  AttrMap fc;
  fc.set_int("units", 4);
  fc.set_int("bias", 0);
  const NodeId a = g.add(OpKind::kDense, "a", {in}, fc);
  AttrMap fc2 = fc;
  const NodeId b = g.add(OpKind::kDense, "b", {in}, fc2);
  g.add(OpKind::kAdd, "sum", {a, b});
  CsePass pass;
  EXPECT_EQ(pass.run(g).nodes_changed, 0);  // distinct weights
}

TEST(Cse, GraphOutputsNeverFolded) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 4, 4, 4});
  g.add(OpKind::kRelu, "out_a", {in});
  g.add(OpKind::kRelu, "out_b", {in});  // duplicate but both are outputs
  CsePass pass;
  EXPECT_EQ(pass.run(g).nodes_changed, 0);
  EXPECT_EQ(g.outputs().size(), 2u);
}

TEST(Cse, CascadingMergesThroughChains) {
  // relu->sigmoid chains duplicated: merging the relus makes the sigmoids
  // identical too; a single pass folds both levels (topo order processing).
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 2, 4, 4});
  const NodeId r1 = g.add(OpKind::kRelu, "r1", {in});
  const NodeId r2 = g.add(OpKind::kRelu, "r2", {in});
  const NodeId s1 = g.add(OpKind::kSigmoid, "s1", {r1});
  const NodeId s2 = g.add(OpKind::kSigmoid, "s2", {r2});
  g.add(OpKind::kAdd, "sum", {s1, s2});
  CsePass pass;
  const auto r = pass.run(g);
  EXPECT_EQ(r.nodes_changed, 2);
  EXPECT_EQ(g.size(), 4u);
}

}  // namespace
}  // namespace vedliot::opt
