# Empty compiler generated dependencies file for bench_fig4_yolov4.
# This may be replaced when dependencies are built.
