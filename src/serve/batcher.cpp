#include "serve/batcher.hpp"

#include <algorithm>

#include "runtime/executor.hpp"
#include "util/error.hpp"

namespace vedliot::serve {

DynamicBatcher::DynamicBatcher(const Graph& graph, Config config)
    : cfg_(config), exec_(config.exec) {
  VEDLIOT_CHECK(cfg_.max_batch >= 1, "batcher max_batch must be >= 1");
  VEDLIOT_CHECK(graph.inputs().size() == 1 && graph.outputs().size() == 1,
                "the batcher needs a single-input single-output graph");
  const Shape& in = graph.node(graph.inputs().front()).out_shape;
  VEDLIOT_CHECK(in.rank() >= 1, "batcher input must be rank >= 1");
  std::vector<std::int64_t> lane(in.dims().begin(), in.dims().end());
  lane[0] = 1;
  lane_shape_ = Shape(lane);

  for (std::int64_t w = 1;; w *= 2) {
    widths_.push_back(w);
    graphs_.push_back(std::make_unique<Graph>(rebatched(graph, w)));
    runtime::RunOptions opts;
    opts.exec = exec_;
    opts.exec.max_batch = w;  // each bucket admits exactly its own width
    sessions_.push_back(cfg_.quantized ? runtime::make_quantized_session(*graphs_.back(), opts)
                                       : runtime::make_session(*graphs_.back(), opts));
    if (w >= cfg_.max_batch) break;
  }
  if (exec_.max_batch > 0) set_exec_config(exec_);
}

void DynamicBatcher::set_exec_config(const runtime::ExecConfig& exec) {
  exec_ = exec;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    runtime::ExecConfig e = exec;
    // A bucket at or under the cap admits its own width; a wider bucket
    // keeps the shrunken cap and thus refuses its own feed — the brownout
    // shrink stays enforceable by the Session, not by batcher bookkeeping.
    e.max_batch = exec.max_batch > 0 ? std::min(widths_[i], exec.max_batch) : widths_[i];
    sessions_[i]->set_exec_config(e);
  }
}

std::int64_t DynamicBatcher::effective_max_batch() const {
  const std::int64_t cap = exec_.max_batch;
  std::int64_t widest = 0;
  for (const std::int64_t w : widths_) {
    if (cap > 0 && w > cap) break;
    widest = w;
  }
  // A cap below the narrowest bucket still serves singletons: shedding all
  // traffic because a controller said "1" on a 2-wide ladder would be a
  // brownout that browns fully out.
  return std::max<std::int64_t>(widest, 1);
}

runtime::Session& DynamicBatcher::bucket_session(std::int64_t width) const {
  const auto it = std::find(widths_.begin(), widths_.end(), width);
  if (it == widths_.end()) {
    throw NotFound("no bucket of width " + std::to_string(width));
  }
  return *sessions_[static_cast<std::size_t>(it - widths_.begin())];
}

std::vector<Tensor> DynamicBatcher::run(std::span<const Tensor> inputs) {
  VEDLIOT_CHECK(!inputs.empty(), "batcher run needs at least one input");
  std::int64_t lanes = 0;
  for (const Tensor& t : inputs) {
    VEDLIOT_CHECK(t.shape().rank() == lane_shape_.rank(),
                  "batcher input rank mismatch: " + t.shape().to_string());
    lanes += t.shape().dim(0);
  }
  const std::int64_t cap = effective_max_batch();
  if (lanes > cap) {
    throw vedliot::ExecError("batch of " + std::to_string(lanes) + " lanes exceeds the live cap " +
                    std::to_string(cap) + " (coalesce against effective_max_batch)");
  }

  // Smallest bucket that fits (all candidates are <= cap by construction).
  std::size_t bucket = 0;
  while (widths_[bucket] < lanes) ++bucket;
  const std::int64_t width = widths_[bucket];

  std::vector<Tensor> feed(inputs.begin(), inputs.end());
  const std::int64_t pad = width - lanes;
  if (pad > 0) {
    std::vector<std::int64_t> dims(lane_shape_.dims().begin(), lane_shape_.dims().end());
    dims[0] = pad;
    feed.emplace_back(Shape(dims));  // zero lanes, discarded after the split
  }

  std::vector<Tensor> out_lanes = sessions_[bucket]->run_batch(feed);
  ++batches_run_;
  lanes_run_ += static_cast<std::uint64_t>(lanes);
  padded_lanes_ += static_cast<std::uint64_t>(pad);

  // Reassemble per-input outputs at each input's own lane width.
  std::vector<Tensor> out;
  out.reserve(inputs.size());
  std::size_t at = 0;
  for (const Tensor& t : inputs) {
    const auto n = static_cast<std::size_t>(t.shape().dim(0));
    if (n == 1) {
      out.push_back(std::move(out_lanes[at]));
    } else {
      out.push_back(stack_batch(std::span<const Tensor>(out_lanes.data() + at, n)));
    }
    at += n;
  }
  return out;
}

}  // namespace vedliot::serve
