file(REMOVE_RECURSE
  "libvedliot_safety.a"
)
