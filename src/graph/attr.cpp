#include "graph/attr.hpp"

#include "util/error.hpp"

namespace vedliot {

namespace {
const AttrValue& lookup(const std::map<std::string, AttrValue>& values, const std::string& key) {
  auto it = values.find(key);
  if (it == values.end()) throw NotFound("attribute not found: " + key);
  return it->second;
}

template <typename T>
const T& typed(const AttrValue& v, const std::string& key) {
  const T* p = std::get_if<T>(&v);
  if (!p) throw InvalidArgument("attribute has wrong type: " + key);
  return *p;
}
}  // namespace

std::int64_t AttrMap::get_int(const std::string& key) const {
  return typed<std::int64_t>(lookup(values_, key), key);
}

double AttrMap::get_float(const std::string& key) const {
  return typed<double>(lookup(values_, key), key);
}

const std::string& AttrMap::get_str(const std::string& key) const {
  return typed<std::string>(lookup(values_, key), key);
}

const std::vector<std::int64_t>& AttrMap::get_ints(const std::string& key) const {
  return typed<std::vector<std::int64_t>>(lookup(values_, key), key);
}

std::int64_t AttrMap::get_int_or(const std::string& key, std::int64_t dflt) const {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  return typed<std::int64_t>(it->second, key);
}

double AttrMap::get_float_or(const std::string& key, double dflt) const {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  return typed<double>(it->second, key);
}

std::string AttrMap::get_str_or(const std::string& key, const std::string& dflt) const {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  return typed<std::string>(it->second, key);
}

}  // namespace vedliot
