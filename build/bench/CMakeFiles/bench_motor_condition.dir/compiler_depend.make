# Empty compiler generated dependencies file for bench_motor_condition.
# This may be replaced when dependencies are built.
