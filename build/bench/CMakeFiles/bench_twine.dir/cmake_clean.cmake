file(REMOVE_RECURSE
  "CMakeFiles/bench_twine.dir/bench_twine.cpp.o"
  "CMakeFiles/bench_twine.dir/bench_twine.cpp.o.d"
  "bench_twine"
  "bench_twine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_twine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
