#!/usr/bin/env bash
# Regenerate BENCH_runtime.json — the checked-in execution-engine baseline
# (ResNet-50 sweep over dtype {f32,int8} x batch {1,8} x dispatch
# {portable,SIMD} x threads {1,2,4}, with achieved GFLOPS and
# fraction-of-roofline against the measured per-level host roof; thread
# points beyond hardware_concurrency are recorded unmeasured).
#
# Usage: scripts/bench_runtime.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target bench_runtime -j"$(nproc)"

# The sweep runs inside the artifact pass; skip the google-benchmark
# microbenchmarks (they are not part of the checked-in baseline).
VEDLIOT_BENCH_RUNTIME_JSON="$REPO_ROOT/BENCH_runtime.json" \
  "$BUILD_DIR/bench/bench_runtime" --benchmark_filter='^$'

# The roofline fields are what downstream perf tracking keys on; a bench
# binary that silently stopped emitting them must fail the regeneration.
for field in achieved_gflops fraction_of_roofline hardware_concurrency; do
  grep -q "\"$field\"" "$REPO_ROOT/BENCH_runtime.json" || {
    echo "BENCH_runtime.json is missing \"$field\"" >&2
    exit 1
  }
done

echo "baseline written to $REPO_ROOT/BENCH_runtime.json"
