// T-AUTOTUNE — hardware-aware optimization search (Sec. III: "novel
// methods for hardware-aware optimization ... Utilizing the knowledge of
// the target hardware leads to optimizations that translate to improved
// execution metrics when deployed").
//
// Runs the (precision x structured-prune) grid for the same model on two
// very different targets and shows that the best configuration is
// target-dependent — the core argument for hardware-aware (rather than
// purely model-side) optimization.

#include <iostream>

#include "bench_common.hpp"
#include "core/autotune.hpp"
#include "graph/zoo.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::core;

namespace {

Graph tuned_model() {
  Graph g = zoo::micro_cnn("edge-classifier", 1, 1, 24, 6, 24);
  Rng rng(2026);
  g.materialize_weights(rng);
  return g;
}

std::vector<Tensor> probes() {
  std::vector<Tensor> out;
  Rng rng(555);
  for (int i = 0; i < 6; ++i) out.emplace_back(Shape{1, 1, 24, 24}, rng.normal_vector(576));
  return out;
}

}  // namespace

void print_artifact() {
  bench::banner("T-AUTOTUNE", "precision x pruning grid on two different targets");

  Graph model = tuned_model();
  const auto probe_set = probes();
  TuneBudget budget;
  budget.latency_s = 0.02;
  budget.max_output_rmse = 0.05;

  for (const char* device : {"XavierNX", "ZynqZU3"}) {
    const auto& dev = hw::find_device(device);
    const auto r = autotune(model, dev, budget, probe_set);
    std::printf("\ntarget %s (budget: %.0f ms, RMSE <= %.2f):\n\n", device,
                budget.latency_s * 1e3, budget.max_output_rmse);
    Table t({"configuration", "latency ms", "energy mJ", "output RMSE", "verdict"});
    for (const auto& p : r.points) {
      std::string verdict = "ok";
      if (!p.meets_latency) verdict = "latency!";
      else if (!p.meets_quality) verdict = "quality!";
      t.add_row({p.option.name(), fmt_fixed(p.latency_s * 1e3, 3),
                 fmt_fixed(p.energy_per_inference_j * 1e3, 3), fmt_fixed(p.output_rmse, 4),
                 verdict});
    }
    t.print(std::cout);
    if (r.feasible) {
      std::printf("selected: %s (%.3f mJ/inference)\n", r.best.option.name().c_str(),
                  r.best.energy_per_inference_j * 1e3);
    } else {
      std::printf("no configuration meets the budget on %s\n", device);
    }
  }
  bench::note("shape: the winning configuration differs per target — e.g. the FPGA only");
  bench::note("supports INT8, while the eGPU can trade precision against pruning freely;");
  bench::note("the accuracy proxy (really executed) vetoes over-aggressive combinations.");
}

static void BM_AutotuneGrid(benchmark::State& state) {
  Graph model = tuned_model();
  const auto probe_set = probes();
  const auto& dev = hw::find_device("XavierNX");
  for (auto _ : state) {
    auto r = autotune(model, dev, TuneBudget{}, probe_set);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AutotuneGrid)->Unit(benchmark::kMillisecond);

VEDLIOT_BENCH_MAIN()
