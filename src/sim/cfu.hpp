#pragma once
/// \file cfu.hpp
/// \brief Custom Function Units (Sec. II-B): accelerators tightly coupled
/// with the CPU, dispatched through the RISC-V custom-0 opcode. Renode is
/// "enhanced with capabilities of simulating CFUs"; this is that mechanism.

#include <cstdint>
#include <string>

namespace vedliot::sim {

/// CFU interface: receives the funct3/funct7 fields and both source
/// registers, returns the result written to rd. State (e.g. accumulators)
/// lives in the CFU, exactly like the CFU-Playground model.
class Cfu {
 public:
  virtual ~Cfu() = default;
  virtual std::string name() const = 0;
  virtual std::uint32_t execute(std::uint32_t funct3, std::uint32_t funct7, std::uint32_t rs1,
                                std::uint32_t rs2) = 0;
  /// Extra simulated cycles the op costs beyond the base instruction.
  virtual std::uint32_t latency_cycles(std::uint32_t funct3) const {
    (void)funct3;
    return 0;
  }
};

/// Multiply-accumulate CFU for DL kernels:
///  funct3 = 0: acc += sext(rs1) * sext(rs2); returns low 32 bits of acc
///  funct3 = 1: acc = 0
///  funct3 = 2: read acc (low 32 bits)
///  funct3 = 3: ReLU(clamp(acc >> rs1, int8)) — the requantization step
///  funct3 = 4: SIMD 4x int8 dot product of rs1/rs2 bytes, accumulated
class MacCfu : public Cfu {
 public:
  std::string name() const override { return "mac-cfu"; }
  std::uint32_t execute(std::uint32_t funct3, std::uint32_t funct7, std::uint32_t rs1,
                        std::uint32_t rs2) override;
  std::int64_t accumulator() const { return acc_; }

 private:
  std::int64_t acc_ = 0;
};

}  // namespace vedliot::sim
