# Empty compiler generated dependencies file for vedliot_tensor.
# This may be replaced when dependencies are built.
