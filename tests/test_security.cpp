// Tests for the trusted-computing stack: crypto vectors, PMP unit,
// WASM-like VM, KV workload, enclave model, attestation, TrustZone.

#include <gtest/gtest.h>

#include <cstring>

#include "security/attestation.hpp"
#include "security/crypto.hpp"
#include "security/enclave.hpp"
#include "security/kvstore.hpp"
#include "security/pmp.hpp"
#include "security/trustzone.hpp"
#include "security/wasm.hpp"
#include "util/rng.hpp"

namespace vedliot::security {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

// ---------------------------------------------------------------------------
// Crypto (validated against published vectors)
// ---------------------------------------------------------------------------

TEST(Sha256, EmptyStringVector) {
  EXPECT_EQ(to_hex(sha256(std::string_view(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(to_hex(sha256(std::string_view("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  EXPECT_EQ(to_hex(sha256(std::string_view(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update(std::string_view("hello "));
  h.update(std::string_view("world"));
  EXPECT_EQ(h.finish(), sha256(std::string_view("hello world")));
}

TEST(Hmac, Rfc4231Case2) {
  // key = "Jefe", data = "what do ya want for nothing?"
  const auto key = bytes_of("Jefe");
  const auto data = bytes_of("what do ya want for nothing?");
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto data = bytes_of("Hi There");
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, LongKeyHashedFirst) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto data = bytes_of("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(ChaCha20, Rfc8439BlockKeystream) {
  // RFC 8439 2.4.2 test vector: encrypting the "sunscreen" plaintext.
  Key key;
  for (std::size_t i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 12> nonce{0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  const auto ct = chacha20_xor(key, nonce, 1, bytes_of(plaintext));
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(ct.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  Key key{};
  key[0] = 1;
  std::array<std::uint8_t, 12> nonce{};
  const auto msg = bytes_of("secret model weights");
  const auto ct = chacha20_xor(key, nonce, 0, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(chacha20_xor(key, nonce, 0, ct), msg);
}

TEST(Crypto, DeriveKeyDeterministicAndLabelled) {
  Key root{};
  root[5] = 42;
  EXPECT_EQ(derive_key(root, "a"), derive_key(root, "a"));
  EXPECT_NE(derive_key(root, "a"), derive_key(root, "b"));
}

TEST(Crypto, DigestEqualConstantTimeSemantics) {
  Digest a{}, b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

// ---------------------------------------------------------------------------
// PMP unit
// ---------------------------------------------------------------------------

TEST(Pmp, TorRegionSemantics) {
  PmpUnit pmp(4);
  PmpEntry e;
  e.mode = AddressMatch::kTor;
  e.addr = 0x1000 >> 2;  // [0, 0x1000)
  e.r = true;
  pmp.configure(0, e);
  EXPECT_TRUE(pmp.check(0x0FFC, Access::kRead, Privilege::kUser));
  EXPECT_FALSE(pmp.check(0x0FFC, Access::kWrite, Privilege::kUser));
  EXPECT_FALSE(pmp.check(0x1000, Access::kRead, Privilege::kUser));  // no match -> deny U
}

TEST(Pmp, NapotEncodeAndMatch) {
  const std::uint32_t addr = napot_encode(0x2000, 0x1000);
  PmpUnit pmp(4);
  PmpEntry e;
  e.mode = AddressMatch::kNapot;
  e.addr = addr;
  e.r = e.w = true;
  pmp.configure(0, e);
  EXPECT_TRUE(pmp.check(0x2000, Access::kRead, Privilege::kUser));
  EXPECT_TRUE(pmp.check(0x2FFC, Access::kWrite, Privilege::kUser));
  EXPECT_FALSE(pmp.check(0x1FFC, Access::kRead, Privilege::kUser));
  EXPECT_FALSE(pmp.check(0x3000, Access::kRead, Privilege::kUser));
}

TEST(Pmp, NapotEncodeValidation) {
  EXPECT_THROW((void)napot_encode(0x2000, 12), Error);     // not a power of 2
  EXPECT_THROW((void)napot_encode(0x2004, 0x1000), Error); // misaligned
  EXPECT_THROW((void)napot_encode(0, 4), Error);           // < 8 bytes
}

TEST(Pmp, LowestIndexWins) {
  PmpUnit pmp(4);
  PmpEntry deny;
  deny.mode = AddressMatch::kTor;
  deny.addr = 0x1000 >> 2;
  pmp.configure(0, deny);  // no permissions
  PmpEntry allow;
  allow.mode = AddressMatch::kTor;
  allow.addr = 0x2000 >> 2;
  allow.r = true;
  pmp.configure(1, allow);
  // 0x500 matches entry 0 first: denied even though entry 1 would allow.
  EXPECT_FALSE(pmp.check(0x500, Access::kRead, Privilege::kUser));
  EXPECT_EQ(pmp.match(0x500).value(), 0u);
  EXPECT_TRUE(pmp.check(0x1500, Access::kRead, Privilege::kUser));
}

TEST(Pmp, MachineModeBypassUnlessLocked) {
  PmpUnit pmp(2);
  PmpEntry e;
  e.mode = AddressMatch::kTor;
  e.addr = 0x1000 >> 2;
  pmp.configure(0, e);
  EXPECT_TRUE(pmp.check(0x100, Access::kWrite, Privilege::kMachine));
  PmpEntry locked = e;
  locked.locked = true;
  pmp.reset();
  pmp.configure(0, locked);
  EXPECT_FALSE(pmp.check(0x100, Access::kWrite, Privilege::kMachine));
}

TEST(Pmp, LockedEntryImmutable) {
  PmpUnit pmp(2);
  PmpEntry e;
  e.mode = AddressMatch::kTor;
  e.addr = 16;
  e.locked = true;
  pmp.configure(0, e);
  EXPECT_THROW(pmp.configure(0, PmpEntry{}), InvalidArgument);
  pmp.reset();  // hardware reset clears the lock
  EXPECT_NO_THROW(pmp.configure(0, PmpEntry{}));
}

TEST(Pmp, NoEntriesMeansMachineOnly) {
  PmpUnit pmp(4);  // all off
  EXPECT_TRUE(pmp.check(0x42, Access::kExecute, Privilege::kMachine));
  EXPECT_FALSE(pmp.check(0x42, Access::kExecute, Privilege::kUser));
}

// ---------------------------------------------------------------------------
// WASM-like VM
// ---------------------------------------------------------------------------

WModule add_module() {
  WModule m;
  m.code = {
      {WOp::kLocalGet, 0}, {WOp::kLocalGet, 1}, {WOp::kAdd, 0}, {WOp::kRet, 0},
  };
  m.functions = {{"add", 0, 2, 2, true}};
  return m;
}

TEST(Wasm, AddFunction) {
  WasmVm vm(add_module());
  EXPECT_EQ(vm.invoke("add", {2, 40}), 42);
  EXPECT_EQ(vm.invoke("add", {-5, 3}), -2);
}

TEST(Wasm, WrongArityTraps) {
  WasmVm vm(add_module());
  EXPECT_THROW((void)vm.invoke("add", {1}), WasmTrap);
  EXPECT_THROW((void)vm.invoke("bogus", {}), NotFound);
}

TEST(Wasm, DivByZeroTraps) {
  WModule m;
  m.code = {{WOp::kLocalGet, 0}, {WOp::kConst, 0}, {WOp::kDivS, 0}, {WOp::kRet, 0}};
  m.functions = {{"div0", 0, 1, 1, true}};
  WasmVm vm(std::move(m));
  EXPECT_THROW((void)vm.invoke("div0", {7}), WasmTrap);
}

TEST(Wasm, OutOfBoundsMemoryTraps) {
  WModule m;
  m.memory_bytes = 64;
  m.code = {{WOp::kLocalGet, 0}, {WOp::kLoad, 0}, {WOp::kRet, 0}};
  m.functions = {{"peek", 0, 1, 1, true}};
  WasmVm vm(std::move(m));
  EXPECT_THROW((void)vm.invoke("peek", {64}), WasmTrap);
  EXPECT_THROW((void)vm.invoke("peek", {-4}), WasmTrap);
  EXPECT_NO_THROW((void)vm.invoke("peek", {60}));
}

TEST(Wasm, FuelLimitStopsRunaway) {
  WModule m;
  m.code = {{WOp::kJmp, 0}};
  m.functions = {{"spin", 0, 0, 0, false}};
  WasmVm vm(std::move(m));
  vm.set_fuel_limit(1000);
  EXPECT_THROW((void)vm.invoke("spin", {}), WasmTrap);
  EXPECT_LE(vm.instructions_retired(), 1001u);
}

TEST(Wasm, HostCallReceivesArgsAndMemory) {
  WModule m;
  m.memory_bytes = 64;
  m.code = {{WOp::kConst, 5}, {WOp::kConst, 7}, {WOp::kHostCall, 0}, {WOp::kRet, 0}};
  m.functions = {{"go", 0, 0, 0, true}};
  WasmVm vm(std::move(m));
  vm.add_host({"mul", 2, [](HostContext& ctx, const std::vector<std::int32_t>& args) {
                 ctx.memory[0] = 0xAB;
                 return args[0] * args[1];
               }});
  EXPECT_EQ(vm.invoke("go", {}), 35);
  EXPECT_EQ(vm.memory()[0], 0xAB);
}

TEST(Wasm, CallBetweenFunctions) {
  WModule m;
  // f(x) = x+1 at entry 0; main() = f(41) at entry 4.
  m.code = {
      {WOp::kLocalGet, 0}, {WOp::kConst, 1}, {WOp::kAdd, 0}, {WOp::kRet, 0},
      {WOp::kConst, 41}, {WOp::kCall, 0}, {WOp::kRet, 0},
  };
  m.functions = {{"inc", 0, 1, 1, true}, {"main", 4, 0, 0, true}};
  WasmVm vm(std::move(m));
  EXPECT_EQ(vm.invoke("main", {}), 42);
}

TEST(Wasm, DataSegmentLoaded) {
  WModule m;
  m.memory_bytes = 64;
  m.data = {0x2A, 0, 0, 0};
  m.code = {{WOp::kConst, 0}, {WOp::kLoad, 0}, {WOp::kRet, 0}};
  m.functions = {{"first", 0, 0, 0, true}};
  WasmVm vm(std::move(m));
  EXPECT_EQ(vm.invoke("first", {}), 42);
}

TEST(Wasm, SerializeDeterministic) {
  EXPECT_EQ(add_module().serialize(), add_module().serialize());
  auto other = add_module();
  other.code[0].imm = 1;
  EXPECT_NE(other.serialize(), add_module().serialize());
}

// Exact trap-message pins: the static verifier's check-id table
// (analysis/wasm_verifier.hpp, DESIGN.md §13) cross-references these
// strings, and test_wasm_verifier's defect-class companions match on
// substrings of them — a reworded trap must show up here first.
std::string trap_what(WModule m, const std::string& fn,
                      const std::vector<std::int32_t>& args,
                      std::uint64_t fuel = 100'000'000) {
  WasmVm vm(std::move(m));
  vm.set_fuel_limit(fuel);
  try {
    (void)vm.invoke(fn, args);
  } catch (const WasmTrap& t) {
    return t.what();
  }
  return "<no trap>";
}

TEST(Wasm, TrapMessagesAreStable) {
  auto fn = [](std::vector<WInstr> code, std::uint32_t nargs, std::uint32_t nlocals,
               bool returns_value) {
    WModule m;
    m.code = std::move(code);
    m.functions = {{"f", 0, nargs, nlocals, returns_value}};
    return m;
  };

  EXPECT_EQ(trap_what(add_module(), "add", {1}), "function add expects 2 args");
  EXPECT_EQ(trap_what(fn({{WOp::kAdd, 0}, {WOp::kHalt, 0}}, 0, 0, false), "f", {}),
            "value stack underflow in f");
  EXPECT_EQ(trap_what(fn({{WOp::kJmp, 99}}, 0, 0, false), "f", {}),
            "pc out of range in f");
  EXPECT_EQ(trap_what(fn({{WOp::kConst, 70000}, {WOp::kLoad, 0}, {WOp::kHalt, 0}},
                         0, 0, false),
                      "f", {}),
            "out-of-bounds linear memory access at 70000");
  EXPECT_EQ(trap_what(fn({{WOp::kLocalGet, 9}, {WOp::kHalt, 0}}, 0, 1, false), "f", {}),
            "local index out of range");
  EXPECT_EQ(trap_what(fn({{WOp::kConst, 1}, {WOp::kConst, 0}, {WOp::kDivS, 0},
                          {WOp::kHalt, 0}},
                         0, 0, false),
                      "f", {}),
            "integer division by zero");
  EXPECT_EQ(trap_what(fn({{WOp::kConst, INT32_MIN}, {WOp::kConst, -1}, {WOp::kDivS, 0},
                          {WOp::kHalt, 0}},
                         0, 0, false),
                      "f", {}),
            "integer overflow in division");
  EXPECT_EQ(trap_what(fn({{WOp::kConst, 1}, {WOp::kConst, 0}, {WOp::kRemS, 0},
                          {WOp::kHalt, 0}},
                         0, 0, false),
                      "f", {}),
            "integer remainder by zero");
  EXPECT_EQ(trap_what(fn({{WOp::kCall, 7}, {WOp::kHalt, 0}}, 0, 0, false), "f", {}),
            "call target out of range");
  EXPECT_EQ(trap_what(fn({{WOp::kHostCall, 0}, {WOp::kHalt, 0}}, 0, 0, false), "f", {}),
            "host import out of range");
  EXPECT_EQ(trap_what(fn({{WOp::kCall, 0}, {WOp::kHalt, 0}}, 0, 0, false), "f", {}),
            "call stack exhausted");
  EXPECT_EQ(trap_what(fn({{WOp::kJmp, 0}}, 0, 0, false), "f", {}, 100),
            "fuel exhausted");
  // INT32_MIN % -1 is defined (0) on this VM — it must NOT trap, and the
  // verifier agrees by not flagging kRemS for overflow.
  EXPECT_EQ(trap_what(fn({{WOp::kConst, INT32_MIN}, {WOp::kConst, -1}, {WOp::kRemS, 0},
                          {WOp::kRet, 0}},
                         0, 0, true),
                      "f", {}),
            "<no trap>");
}

// ---------------------------------------------------------------------------
// KV store: native vs bytecode equivalence
// ---------------------------------------------------------------------------

TEST(KvStore, NativePutGetSum) {
  NativeKvStore kv(64);
  EXPECT_TRUE(kv.put(1, 10));
  EXPECT_TRUE(kv.put(65, 20));  // collides with 1 (mod 64)
  EXPECT_EQ(kv.get(1).value(), 10);
  EXPECT_EQ(kv.get(65).value(), 20);
  EXPECT_FALSE(kv.get(2).has_value());
  EXPECT_EQ(kv.sum(), 30);
  EXPECT_TRUE(kv.put(1, 11));  // update
  EXPECT_EQ(kv.get(1).value(), 11);
  EXPECT_EQ(kv.size(), 2u);
}

TEST(KvStore, NativeFullTableRejects) {
  NativeKvStore kv(4);
  for (std::uint32_t k = 0; k < 4; ++k) EXPECT_TRUE(kv.put(k, 1));
  EXPECT_FALSE(kv.put(100, 1));
}

TEST(KvStore, WasmMatchesNativeOnRandomOps) {
  constexpr std::uint32_t kCap = 128;
  NativeKvStore native(kCap);
  WasmVm vm(build_kv_module(kCap));
  Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.uniform_int(0, 200));
    if (rng.chance(0.6)) {
      const auto value = static_cast<std::int32_t>(rng.uniform_int(-1000, 1000));
      const bool native_ok = native.put(key, value);
      const bool vm_ok = vm.invoke("kv_put", {static_cast<std::int32_t>(key), value}) == 1;
      ASSERT_EQ(native_ok, vm_ok) << "op " << i;
    } else {
      const auto native_got = native.get(key);
      const auto vm_got = vm.invoke("kv_get", {static_cast<std::int32_t>(key)});
      ASSERT_EQ(native_got.value_or(-1), vm_got) << "op " << i;
    }
  }
  EXPECT_EQ(static_cast<std::int32_t>(native.sum()), vm.invoke("kv_sum", {}));
}

// ---------------------------------------------------------------------------
// Enclave
// ---------------------------------------------------------------------------

Key test_root() {
  Key k{};
  k[0] = 0x11;
  k[31] = 0x99;
  return k;
}

// These enclave unit tests exercise sealing / cost-accounting mechanics, not
// the verifier admission gate (covered in test_wasm_verifier.cpp), so they
// opt out of the default-on require_verified explicitly.
EnclaveConfig permissive() {
  EnclaveConfig c;
  c.require_verified = false;
  return c;
}

TEST(Enclave, EcallRunsModuleAndAccounts) {
  Enclave enc(permissive(), add_module(), test_root());
  EXPECT_EQ(enc.ecall("add", {20, 22}), 42);
  EXPECT_EQ(enc.ledger().ecalls, 1u);
  EXPECT_GT(enc.ledger().vm_instructions, 0u);
  EXPECT_GT(enc.ledger().simulated_ns, 0.0);
}

TEST(Enclave, OcallsAccountedViaHostImports) {
  WModule m;
  m.code = {{WOp::kHostCall, 0}, {WOp::kHostCall, 0}, {WOp::kAdd, 0}, {WOp::kRet, 0}};
  m.functions = {{"two_ocalls", 0, 0, 0, true}};
  Enclave enc(permissive(), std::move(m), test_root());
  enc.add_host({"time", 0, [](HostContext&, const std::vector<std::int32_t>&) { return 21; }});
  EXPECT_EQ(enc.ecall("two_ocalls", {}), 42);
  EXPECT_EQ(enc.ledger().ocalls, 2u);
}

TEST(Enclave, MeasurementBindsCode) {
  Enclave a(permissive(), add_module(), test_root());
  auto tampered = add_module();
  tampered.code[1].imm = 99;
  Enclave b(permissive(), std::move(tampered), test_root());
  EXPECT_FALSE(digest_equal(a.measurement(), b.measurement()));
}

TEST(Enclave, SealUnsealRoundTrip) {
  Enclave enc(permissive(), add_module(), test_root());
  const auto secret = bytes_of("api-key-123");
  const auto blob = enc.seal(secret);
  EXPECT_NE(blob.ciphertext, secret);  // actually encrypted
  EXPECT_EQ(enc.unseal(blob), secret);
}

TEST(Enclave, UnsealRejectsTamperAndWrongIdentity) {
  Enclave enc(permissive(), add_module(), test_root());
  auto blob = enc.seal(bytes_of("secret"));
  auto tampered = blob;
  tampered.ciphertext[0] ^= 1;
  EXPECT_THROW((void)enc.unseal(tampered), EnclaveError);

  // Different code -> different measurement -> cannot unseal.
  auto other_module = add_module();
  other_module.code[1].imm = 7;
  Enclave other(permissive(), std::move(other_module), test_root());
  EXPECT_THROW((void)other.unseal(blob), EnclaveError);

  // Same code, different platform root -> cannot unseal.
  Key other_root{};
  Enclave other_platform(permissive(), add_module(), other_root);
  EXPECT_THROW((void)other_platform.unseal(blob), EnclaveError);
}

TEST(Enclave, PagingPenaltyWhenExceedingEpc) {
  EnclaveConfig small = permissive();
  small.epc_kib = 1.0;  // absurdly small EPC
  auto m = add_module();
  m.memory_bytes = 256 * 1024;
  Enclave enc(small, std::move(m), test_root());
  EnclaveConfig big = permissive();
  Enclave enc_big(big, add_module(), test_root());
  enc.ecall("add", {1, 2});
  enc_big.ecall("add", {1, 2});
  EXPECT_GT(enc.ledger().simulated_ns, enc_big.ledger().simulated_ns);
}

// ---------------------------------------------------------------------------
// Attestation
// ---------------------------------------------------------------------------

TEST(Attestation, QuoteVerifies) {
  AttestationAuthority authority(test_root());
  DeviceAgent device("edge-7", authority.provision("edge-7"));
  const Digest m = sha256(std::string_view("enclave-image"));
  const Quote q = device.quote(m, 12345);
  EXPECT_TRUE(authority.verify(q, 12345));
}

TEST(Attestation, WrongNonceRejected) {
  AttestationAuthority authority(test_root());
  DeviceAgent device("edge-7", authority.provision("edge-7"));
  const Quote q = device.quote(sha256(std::string_view("x")), 1);
  EXPECT_FALSE(authority.verify(q, 2));  // replay with stale nonce
}

TEST(Attestation, TamperedMeasurementRejected) {
  AttestationAuthority authority(test_root());
  DeviceAgent device("edge-7", authority.provision("edge-7"));
  Quote q = device.quote(sha256(std::string_view("x")), 1);
  q.measurement[0] ^= 1;
  EXPECT_FALSE(authority.verify(q, 1));
}

TEST(Attestation, ImpersonationRejected) {
  AttestationAuthority authority(test_root());
  // Device provisions with the wrong root: MAC cannot verify.
  Key rogue{};
  DeviceAgent fake("edge-7", rogue);
  const Quote q = fake.quote(sha256(std::string_view("x")), 1);
  EXPECT_FALSE(authority.verify(q, 1));
}

TEST(Attestation, ChainVerifies) {
  AttestationAuthority authority(test_root());
  DeviceAgent leaf("sensor-1", authority.provision("sensor-1"));
  DeviceAgent edge("edge-7", authority.provision("edge-7"));
  DeviceAgent cloud("gw-0", authority.provision("gw-0"));

  const Quote q1 = leaf.quote(sha256(std::string_view("leaf-fw")), 7);
  const Quote q2 = edge.quote_over(q1, sha256(std::string_view("edge-fw")), 8);
  const Quote q3 = cloud.quote_over(q2, sha256(std::string_view("gw-fw")), 99);
  EXPECT_TRUE(authority.verify_chain({q1, q2, q3}, 99));
}

TEST(Attestation, BrokenChainRejected) {
  AttestationAuthority authority(test_root());
  DeviceAgent leaf("sensor-1", authority.provision("sensor-1"));
  DeviceAgent edge("edge-7", authority.provision("edge-7"));
  const Quote q1 = leaf.quote(sha256(std::string_view("leaf-fw")), 7);
  Quote q2 = edge.quote_over(q1, sha256(std::string_view("edge-fw")), 99);

  // Substitute a different leaf quote after the chain was built.
  const Quote q1_other = leaf.quote(sha256(std::string_view("malicious-fw")), 7);
  EXPECT_FALSE(authority.verify_chain({q1_other, q2}, 99));
  EXPECT_TRUE(authority.verify_chain({q1, q2}, 99));
  EXPECT_FALSE(authority.verify_chain({}, 99));
}

// ---------------------------------------------------------------------------
// TrustZone
// ---------------------------------------------------------------------------

std::vector<BootImage> good_chain(const Key& root) {
  std::vector<BootImage> chain;
  for (const char* name : {"bl1", "bl2", "optee", "linux"}) {
    BootImage img;
    img.name = name;
    img.image = bytes_of(std::string("firmware:") + name);
    img.signed_hash = sign_boot_image(root, name, img.image);
    chain.push_back(std::move(img));
  }
  return chain;
}

TEST(TrustZone, SecureBootAcceptsSignedChain) {
  TrustZoneSoC soc(test_root());
  EXPECT_FALSE(soc.booted_secure());
  soc.secure_boot(good_chain(test_root()));
  EXPECT_TRUE(soc.booted_secure());
  EXPECT_NO_THROW((void)soc.boot_measurement());
}

TEST(TrustZone, SecureBootRejectsTamperedStage) {
  TrustZoneSoC soc(test_root());
  auto chain = good_chain(test_root());
  chain[2].image.push_back(0xEE);  // modify OP-TEE after signing
  try {
    soc.secure_boot(chain);
    FAIL() << "expected TrustZoneError";
  } catch (const TrustZoneError& e) {
    EXPECT_NE(std::string(e.what()).find("optee"), std::string::npos);
  }
  EXPECT_FALSE(soc.booted_secure());
}

TEST(TrustZone, TaCallsOnlyAfterBootAndViaSmc) {
  TrustZoneSoC soc(test_root());
  EXPECT_THROW(soc.install_ta("keystore", [](const auto&) { return 0; }), TrustZoneError);
  soc.secure_boot(good_chain(test_root()));
  soc.install_ta("keystore", [](const std::vector<std::int32_t>& args) {
    return args.empty() ? 0 : args[0] * 2;
  });
  EXPECT_EQ(soc.smc("keystore", {21}), 42);
  EXPECT_EQ(soc.world_switches(), 1u);
  EXPECT_GT(soc.simulated_ns(), 0.0);
  EXPECT_THROW((void)soc.smc("missing", {}), TrustZoneError);
  EXPECT_THROW(soc.install_ta("keystore", [](const auto&) { return 0; }), TrustZoneError);
}

TEST(TrustZone, BootMeasurementChangesWithFirmware) {
  TrustZoneSoC a(test_root()), b(test_root());
  a.secure_boot(good_chain(test_root()));
  auto chain = good_chain(test_root());
  chain[3].image = bytes_of("firmware:linux-v2");
  chain[3].signed_hash = sign_boot_image(test_root(), "linux", chain[3].image);
  b.secure_boot(chain);
  EXPECT_FALSE(digest_equal(a.boot_measurement(), b.boot_measurement()));
}

}  // namespace
}  // namespace vedliot::security
