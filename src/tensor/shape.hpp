#pragma once
/// \file shape.hpp
/// \brief Tensor shape (row-major, NCHW convention for 4-D activations).

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace vedliot {

/// Immutable-ish shape: a short vector of positive extents.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  std::size_t rank() const { return dims_.size(); }
  std::int64_t dim(std::size_t i) const;
  std::span<const std::int64_t> dims() const { return dims_; }

  /// Product of all extents (1 for rank-0).
  std::int64_t numel() const;

  /// NCHW accessors; throw unless rank()==4.
  std::int64_t n() const { return dim4(0); }
  std::int64_t c() const { return dim4(1); }
  std::int64_t h() const { return dim4(2); }
  std::int64_t w() const { return dim4(3); }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// e.g. "[1, 3, 224, 224]"
  std::string to_string() const;

 private:
  std::int64_t dim4(std::size_t i) const;
  std::vector<std::int64_t> dims_;
};

}  // namespace vedliot
