// T-EXEC — toolchain substrate: the reference executor and the
// liveness-based memory planner (the "memory hierarchy study" of
// Sec. II-B applied to activation buffers).

#include <iostream>

#include "bench_common.hpp"
#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "opt/fusion.hpp"
#include "opt/quantize.hpp"
#include "runtime/memory_planner.hpp"
#include "runtime/session.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace vedliot;

void print_artifact() {
  bench::banner("T-EXEC", "memory planner: arena reuse vs naive allocation");
  bench::Section section("bench_runtime", "memory-planner");

  Table t({"model", "activations (naive)", "arena (planned)", "reuse", "weights fp32"});
  struct Entry {
    const char* name;
    Graph g;
  };
  for (auto& [name, g] : {Entry{"resnet50", zoo::resnet50()},
                          Entry{"mobilenet_v3", zoo::mobilenet_v3_large()},
                          Entry{"yolov4", zoo::yolov4()},
                          Entry{"gesture_net", zoo::gesture_net()},
                          Entry{"pedestrian_net", zoo::pedestrian_net()}}) {
    const MemoryPlan plan = plan_memory(g, DType::kFP32);
    if (!plan_is_valid(plan)) {
      std::printf("INVALID PLAN for %s!\n", name);
      continue;
    }
    t.add_row({name, fmt_fixed(static_cast<double>(plan.naive_bytes) / (1 << 20), 1) + " MiB",
               fmt_fixed(static_cast<double>(plan.arena_bytes) / (1 << 20), 1) + " MiB",
               fmt_ratio(plan.reuse_factor()),
               fmt_fixed(weight_bytes(g, DType::kFP32) / (1 << 20), 1) + " MiB"});
  }
  t.print(std::cout);

  std::printf("\nINT8 activations shrink the arena further:\n\n");
  Table q({"model", "fp32 arena", "int8 arena"});
  for (auto& [name, g] : {Entry{"mobilenet_v3", zoo::mobilenet_v3_large()},
                          Entry{"yolov4", zoo::yolov4()}}) {
    const auto p32 = plan_memory(g, DType::kFP32);
    const auto p8 = plan_memory(g, DType::kINT8);
    q.add_row({name, fmt_fixed(static_cast<double>(p32.arena_bytes) / (1 << 20), 1) + " MiB",
               fmt_fixed(static_cast<double>(p8.arena_bytes) / (1 << 20), 2) + " MiB"});
  }
  q.print(std::cout);
  bench::note("shape: liveness-based packing cuts activation memory by an order of magnitude,");
  bench::note("which is what makes MiB-class on-chip buffers viable for these models.");

  // True-integer INT8 deployment path: agreement with the float reference.
  std::printf("\nINT8 integer executor vs float reference (micro CNN, 32 samples):\n\n");
  Graph g = zoo::micro_cnn("deploy", 1, 1, 16, 4);
  Rng rng(12);
  g.materialize_weights(rng);
  opt::FuseBatchNormPass bn;
  bn.run(g);
  opt::FuseActivationPass act;
  act.run(g);
  std::vector<Tensor> calib;
  Rng data_rng(13);
  for (int i = 0; i < 16; ++i) calib.emplace_back(Shape{1, 1, 16, 16}, data_rng.normal_vector(256));
  opt::calibrate_activations(g, calib, Calibration::kMinMax);

  auto fsession = runtime::make_session(g);
  auto qsession = runtime::make_quantized_session(g);
  std::uint64_t saturations = 0;
  int agree = 0;
  double total_rmse = 0;
  for (int i = 0; i < 32; ++i) {
    Tensor x(Shape{1, 1, 16, 16}, data_rng.normal_vector(256));
    const Tensor fy = fsession->run_single(x);
    const auto qr = qsession->run({{g.node(g.inputs().front()).name, x}});
    const Tensor& qy = qr.single();
    saturations = qr.saturations;
    total_rmse += rmse(fy, qy);
    std::size_t fa = 0, qa = 0;
    for (std::int64_t j = 1; j < fy.numel(); ++j) {
      if (fy.at(static_cast<std::size_t>(j)) > fy.at(fa)) fa = static_cast<std::size_t>(j);
      if (qy.at(static_cast<std::size_t>(j)) > qy.at(qa)) qa = static_cast<std::size_t>(j);
    }
    if (fa == qa) ++agree;
  }
  std::printf("top-1 agreement %d/32, mean softmax RMSE %.4f, int8 saturations %llu\n", agree,
              total_rmse / 32.0, static_cast<unsigned long long>(saturations));
}

static void BM_PlanMemoryMobileNet(benchmark::State& state) {
  Graph g = zoo::mobilenet_v3_large();
  for (auto _ : state) {
    auto plan = plan_memory(g, DType::kINT8);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanMemoryMobileNet)->Unit(benchmark::kMillisecond);

static void BM_ExecutorMicroCnn(benchmark::State& state) {
  Graph g = zoo::micro_cnn("m", 1, 1, 32, 10);
  Rng rng(1);
  g.materialize_weights(rng);
  auto session = runtime::make_session(g);
  Rng data_rng(2);
  Tensor input(Shape{1, 1, 32, 32}, data_rng.normal_vector(1024));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->run_single(input));
  }
  const auto c = graph_cost(g);
  state.counters["MACs/s"] = benchmark::Counter(
      static_cast<double>(c.macs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecutorMicroCnn)->Unit(benchmark::kMillisecond);

static void BM_ExecutorDense(benchmark::State& state) {
  Graph g = zoo::micro_mlp("m", 1, 1024, {1024}, 256);
  Rng rng(1);
  g.materialize_weights(rng);
  auto session = runtime::make_session(g);
  Rng data_rng(2);
  Tensor input(Shape{1, 1024}, data_rng.normal_vector(1024));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->run_single(input));
  }
}
BENCHMARK(BM_ExecutorDense)->Unit(benchmark::kMicrosecond);

static void BM_GraphValidateYolo(benchmark::State& state) {
  Graph g = zoo::yolov4();
  for (auto _ : state) {
    g.validate();
  }
}
BENCHMARK(BM_GraphValidateYolo)->Unit(benchmark::kMillisecond);

VEDLIOT_BENCH_MAIN()
