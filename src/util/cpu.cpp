#include "util/cpu.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

namespace vedliot::util {

std::string_view simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto: return "auto";
    case SimdLevel::kPortable: return "portable";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kNeon: return "neon";
  }
  return "unknown";
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.fma = __builtin_cpu_supports("fma") != 0;
#endif
#if defined(__ARM_NEON) || defined(__aarch64__)
    f.neon = true;  // NEON is architecturally guaranteed on aarch64
#endif
    return f;
  }();
  return features;
}

bool simd_supported(SimdLevel level) {
  const CpuFeatures& f = cpu_features();
  switch (level) {
    case SimdLevel::kAuto:
    case SimdLevel::kPortable: return true;
    case SimdLevel::kAvx2: return f.avx2 && f.fma;
    case SimdLevel::kNeon: return f.neon;
  }
  return false;
}

namespace {

/// Best concrete level the host supports.
SimdLevel best_level() {
  if (simd_supported(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  if (simd_supported(SimdLevel::kNeon)) return SimdLevel::kNeon;
  return SimdLevel::kPortable;
}

/// Parse a VEDLIOT_SIMD value; unknown strings request portable (the safe
/// direction for a typo'd override).
SimdLevel parse_level(const char* s) {
  if (std::strcmp(s, "auto") == 0) return SimdLevel::kAuto;
  if (std::strcmp(s, "avx2") == 0) return SimdLevel::kAvx2;
  if (std::strcmp(s, "neon") == 0) return SimdLevel::kNeon;
  return SimdLevel::kPortable;
}

}  // namespace

SimdLevel resolve_simd_level(SimdLevel requested) {
  // Env overrides are read per resolution (not cached) so tests can flip
  // them between sessions within one process.
  if (const char* force = std::getenv("VEDLIOT_FORCE_PORTABLE")) {
    if (force[0] != '\0' && force[0] != '0') return SimdLevel::kPortable;
  }
  if (const char* env = std::getenv("VEDLIOT_SIMD")) {
    if (env[0] != '\0') requested = parse_level(env);
  }
  if (requested == SimdLevel::kAuto) return best_level();
  return simd_supported(requested) ? requested : SimdLevel::kPortable;
}

}  // namespace vedliot::util
