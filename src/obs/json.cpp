#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vedliot::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (BMP only; the writer never emits surrogates).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("expected 'true' or 'false'");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.substr(pos_, 4) != "null") fail("expected 'null'");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number '" + token + "'");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::at(std::string_view key) const {
  if (kind != Kind::kObject) throw JsonError("at() on a non-object JSON value");
  for (const auto& [k, v] : object) {
    if (k == key) return v;
  }
  throw NotFound("JSON object has no member '" + std::string(key) + "'");
}

bool JsonValue::has(std::string_view key) const {
  if (kind != Kind::kObject) return false;
  for (const auto& [k, v] : object) {
    if (k == key) return true;
  }
  return false;
}

double JsonValue::as_number() const {
  if (kind != Kind::kNumber) throw JsonError("JSON value is not a number");
  return number;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) throw JsonError("JSON value is not a string");
  return string;
}

JsonValue json_parse(std::string_view text) { return Parser(text).parse_document(); }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (std::isfinite(v) && v == std::nearbyint(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan; clamp
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace vedliot::obs
