# Empty compiler generated dependencies file for test_reqs.
# This may be replaced when dependencies are built.
