#pragma once
/// \file batcher.hpp
/// \brief Dynamic batcher: coalesces admitted requests into GEMM-friendly
/// batched session runs with bitwise-singleton-equal outputs.
///
/// The executor builds its plans against the graph's input shape, so one
/// session cannot serve every batch width. The batcher therefore keeps a
/// ladder of power-of-two *bucket* sessions (widths 1, 2, 4, ..., W), each
/// over its own rebatched clone of the deployment graph. A coalesced group
/// of n lanes runs on the smallest allowed bucket >= n, padded with zero
/// lanes that are discarded after the split — legal because every kernel
/// computes batch lanes independently with a fixed accumulation order, so
/// lane i of a batched run is bitwise identical to a singleton run of the
/// same input (the soak harness checks this by CRC).
///
/// `max_batch` stays the knob the brownout ladder shrinks live:
/// set_exec_config() forwards to every bucket session, capping each at
/// min(bucket width, cap). Buckets wider than the cap would then refuse
/// their own feeds through Session's admission check, so the batcher stops
/// selecting them — the shrink is visible *through the Session API*, not
/// through private batcher state (test_fleet pins this).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/session.hpp"

namespace vedliot::serve {

class DynamicBatcher {
 public:
  struct Config {
    std::int64_t max_batch = 8;   ///< widest bucket (rounded up to a power of two)
    runtime::ExecConfig exec;     ///< initial envelope; exec.max_batch 0 = max_batch
    bool quantized = false;       ///< buckets via make_quantized_session
  };

  /// Builds the bucket ladder from rebatched clones of \p graph (which must
  /// be single-input single-output with materialized weights; the clones are
  /// owned, the original only needs to live through construction).
  DynamicBatcher(const Graph& graph, Config config);

  /// Run one coalesced group. Each input tensor contributes dim-0 lanes
  /// (a batch-2 request is one tensor of batch 2); outputs align 1:1 with
  /// inputs at the same lane widths. Total lanes must be in
  /// [1, effective_max_batch()] — the caller coalesces against that cap.
  std::vector<Tensor> run(std::span<const Tensor> inputs);

  /// Forward a new envelope to every bucket session (see file comment).
  void set_exec_config(const runtime::ExecConfig& exec);
  const runtime::ExecConfig& exec_config() const { return exec_; }

  /// Widest batch run() currently accepts: the largest bucket width not
  /// above the live cap (the full ladder width when the cap is 0).
  std::int64_t effective_max_batch() const;

  /// Bucket widths, ascending (1, 2, 4, ..., W).
  const std::vector<std::int64_t>& bucket_widths() const { return widths_; }

  /// The bucket session of exactly \p width (for inspection through the
  /// Session API); throws NotFound for a width that is not a bucket.
  runtime::Session& bucket_session(std::int64_t width) const;

  std::uint64_t batches_run() const { return batches_run_; }
  std::uint64_t lanes_run() const { return lanes_run_; }    ///< real lanes
  std::uint64_t padded_lanes() const { return padded_lanes_; }

 private:
  Config cfg_;
  runtime::ExecConfig exec_;
  std::vector<std::int64_t> widths_;
  std::vector<std::unique_ptr<Graph>> graphs_;  ///< rebatched clones, per bucket
  std::vector<std::unique_ptr<runtime::Session>> sessions_;
  Shape lane_shape_;
  std::uint64_t batches_run_ = 0;
  std::uint64_t lanes_run_ = 0;
  std::uint64_t padded_lanes_ = 0;
};

}  // namespace vedliot::serve
