#pragma once
/// \file quantize.hpp
/// \brief Post-training quantization passes (Sec. III step 4).

#include <map>

#include "opt/pass.hpp"
#include "tensor/quant.hpp"

namespace vedliot::opt {

/// Fake-quantize all conv/dense weights to the given integer dtype
/// (per-output-channel symmetric scales, the industry default for INT8) and
/// tag nodes with `weight_dtype`. Accuracy impact is measured by executing
/// the mutated graph and comparing against the FP32 original.
class QuantizeWeightsPass : public Pass {
 public:
  explicit QuantizeWeightsPass(DType dtype, bool per_channel = true);
  std::string name() const override { return "quantize-weights"; }
  PassResult run(Graph& g) override;

 private:
  DType dtype_;
  bool per_channel_;
};

/// Round every weight through IEEE FP16 and tag `weight_dtype = fp16`.
class Fp16CastPass : public Pass {
 public:
  std::string name() const override { return "cast-fp16"; }
  PassResult run(Graph& g) override;
};

/// Observed activation ranges per node (by node name), collected by running
/// calibration samples through the reference executor.
using ActivationRanges = std::map<std::string, QuantParams>;

/// Run \p samples through the graph and derive symmetric INT8 activation
/// quantization parameters per node. Stores `act_scale` on each node and
/// returns the table (the Kenning-analogue embeds it in deployment reports).
ActivationRanges calibrate_activations(Graph& g, const std::vector<Tensor>& samples,
                                       Calibration cal = Calibration::kPercentile,
                                       double percentile = 0.1);

}  // namespace vedliot::opt
