// Tests for the four use cases (Sec. V): PAEB offload, motor condition,
// arc detection, smart mirror — plus the mobile network model.

#include <gtest/gtest.h>

#include "apps/arc.hpp"
#include "apps/mirror.hpp"
#include "apps/motor.hpp"
#include "apps/network.hpp"
#include "apps/paeb.hpp"
#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "kenning/metrics.hpp"
#include "platform/baseboard.hpp"

namespace vedliot::apps {
namespace {

// ---------------------------------------------------------------------------
// Mobile network
// ---------------------------------------------------------------------------

TEST(Network, NominalStatesOrdered) {
  EXPECT_GT(nominal_state(Coverage::kGood5G).bandwidth_mbps,
            nominal_state(Coverage::kUrban4G).bandwidth_mbps);
  EXPECT_GT(nominal_state(Coverage::kRural3G).rtt_ms, nominal_state(Coverage::kGood5G).rtt_ms);
  EXPECT_GT(nominal_state(Coverage::kDeadZone).loss, 0.1);
}

TEST(Network, StepStaysNearNominal) {
  MobileNetwork net(Coverage::kUrban4G, 42);
  double min_bw = 1e9, max_bw = 0;
  for (int i = 0; i < 500; ++i) {
    const auto& s = net.step(0.1);
    min_bw = std::min(min_bw, s.bandwidth_mbps);
    max_bw = std::max(max_bw, s.bandwidth_mbps);
    EXPECT_GT(s.bandwidth_mbps, 0.0);
    EXPECT_GE(s.loss, 0.0);
    EXPECT_LE(s.loss, 0.9);
  }
  const double nominal = nominal_state(Coverage::kUrban4G).bandwidth_mbps;
  EXPECT_LT(min_bw, nominal);       // fading happens
  EXPECT_LT(max_bw, nominal * 3);   // but stays bounded
}

TEST(Network, ProbeIsNoisyEstimate) {
  MobileNetwork net(Coverage::kGood5G, 7);
  net.step(0.1);
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    if (std::abs(net.probe().bandwidth_mbps - net.state().bandwidth_mbps) > 1e-9) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Network, TransferTimePhysics) {
  MobileNetwork net(Coverage::kUrban4G, 9);
  const double small = net.transfer_time_s(1e3, 100);
  const double large = net.transfer_time_s(1e6, 100);
  EXPECT_GT(large, small);
  EXPECT_GE(small, net.state().rtt_ms * 1e-3);  // at least one RTT
}

TEST(Network, CoverageNames) {
  EXPECT_EQ(coverage_name(Coverage::kDeadZone), "dead-zone");
}

// ---------------------------------------------------------------------------
// PAEB (Sec. V-A)
// ---------------------------------------------------------------------------

PaebConfig paeb_config(bool attest = true) {
  PaebConfig cfg;
  // The interesting regime: a modest on-car computer running a heavy
  // detector vs a GPU-equipped edge station.
  cfg.oncar_device = hw::find_device("JetsonTX2");
  cfg.edge_device = hw::find_device("GTX1660");
  cfg.require_attestation = attest;
  return cfg;
}

PaebWorkload paeb_workload() {
  const Graph g = zoo::yolov4();  // full-size detector for PAEB
  PaebWorkload w;
  const auto c = graph_cost(g);
  w.ops = static_cast<double>(c.ops);
  w.traffic_bytes = graph_traffic_bytes(g, DType::kFP16, DType::kFP16);
  w.weight_bytes = weight_bytes(g, DType::kFP16);
  w.dtype = DType::kFP16;  // TX2 has no INT8 path
  w.frame_bytes = 20e3;    // compressed camera frame
  return w;
}

TEST(Paeb, DecisionBudgetPhysics) {
  PaebScenario s;
  s.vehicle_speed_kmh = 50;
  s.detection_distance_m = 40;
  s.brake_decel_ms2 = 8;
  // v = 13.9 m/s, braking distance = 12.05 m, budget = 27.95/13.9 - 0.15
  EXPECT_NEAR(s.decision_budget_s(), (40 - 13.89 * 13.89 / 16.0) / 13.89 - 0.15, 0.01);
  // faster vehicle -> smaller budget
  PaebScenario fast = s;
  fast.vehicle_speed_kmh = 70;
  EXPECT_LT(fast.decision_budget_s(), s.decision_budget_s());
}

TEST(Paeb, GoodNetworkOffloadsToSaveEnergy) {
  OffloadManager manager(paeb_config(), paeb_workload());
  PaebScenario scenario;
  const auto d = manager.decide(scenario, nominal_state(Coverage::kGood5G), true);
  EXPECT_TRUE(d.offloaded);
  EXPECT_TRUE(d.deadline_met);
  EXPECT_LT(d.oncar_energy_j, manager.local_energy_j());
}

TEST(Paeb, DeadZoneForcesLocal) {
  OffloadManager manager(paeb_config(), paeb_workload());
  PaebScenario scenario;
  const auto d = manager.decide(scenario, nominal_state(Coverage::kDeadZone), true);
  EXPECT_FALSE(d.offloaded);
  EXPECT_TRUE(d.deadline_met);  // the on-car path must still make it
}

TEST(Paeb, UnattestedEdgeNeverGetsRawData) {
  OffloadManager manager(paeb_config(true), paeb_workload());
  PaebScenario scenario;
  const auto d = manager.decide(scenario, nominal_state(Coverage::kGood5G), false);
  EXPECT_FALSE(d.offloaded);
  // without the attestation requirement the same link offloads
  OffloadManager relaxed(paeb_config(false), paeb_workload());
  EXPECT_TRUE(relaxed.decide(scenario, nominal_state(Coverage::kGood5G), false).offloaded);
}

TEST(Paeb, HighSpeedShrinksOffloadWindow) {
  OffloadManager manager(paeb_config(), paeb_workload());
  // A mediocre network that's fine at 30 km/h becomes unusable at 70 km/h.
  LinkState marginal{0.25, 200.0, 0.01};
  PaebScenario slow;
  slow.vehicle_speed_kmh = 30;
  PaebScenario fast;
  fast.vehicle_speed_kmh = 70;
  const auto d_slow = manager.decide(slow, marginal, true);
  const auto d_fast = manager.decide(fast, marginal, true);
  EXPECT_TRUE(d_slow.offloaded);
  EXPECT_FALSE(d_fast.offloaded);
}

TEST(Paeb, CrossoverMovesWithBandwidth) {
  // Sweep bandwidth: offloading must win above some threshold and only
  // above it (monotone decision in link quality).
  OffloadManager manager(paeb_config(), paeb_workload());
  PaebScenario scenario;
  bool seen_local = false, seen_offload = false;
  bool last_offloaded = false;
  for (double mbps : {0.02, 0.05, 0.2, 1.0, 5.0, 10.0, 30.0, 100.0}) {
    LinkState link{mbps, 40.0, 0.005};
    const auto d = manager.decide(scenario, link, true);
    if (d.offloaded) seen_offload = true;
    else seen_local = true;
    if (last_offloaded) {
      EXPECT_TRUE(d.offloaded) << mbps;  // once on, stays on
    }
    last_offloaded = d.offloaded;
  }
  EXPECT_TRUE(seen_local);
  EXPECT_TRUE(seen_offload);
}

// ---------------------------------------------------------------------------
// Motor condition (Sec. V-B)
// ---------------------------------------------------------------------------

TEST(Motor, GeneratorProducesDistinguishableConditions) {
  VibrationGenerator gen({}, 11);
  const auto healthy = gen.sample(MotorCondition::kHealthy);
  const auto overheated = gen.sample(MotorCondition::kOverheat);
  // stator temperature feature separates overheat clearly
  EXPECT_GT(overheated[kSpectrumBins + 0], healthy[kSpectrumBins + 0] + 15.0);
}

TEST(Motor, ClassifierLearnsAllFourConditions) {
  VibrationGenerator gen({}, 21);
  std::vector<std::pair<MotorFeatures, MotorCondition>> train;
  for (std::size_t c = 0; c < kMotorConditionCount; ++c) {
    for (int i = 0; i < 40; ++i) {
      train.emplace_back(gen.sample(static_cast<MotorCondition>(c)),
                         static_cast<MotorCondition>(c));
    }
  }
  MotorClassifier clf;
  clf.fit(train);

  kenning::ConfusionMatrix cm(kMotorConditionCount);
  VibrationGenerator test_gen({}, 22);
  for (std::size_t c = 0; c < kMotorConditionCount; ++c) {
    for (int i = 0; i < 50; ++i) {
      const auto pred = clf.classify(test_gen.sample(static_cast<MotorCondition>(c)));
      cm.add(c, static_cast<std::size_t>(pred));
    }
  }
  EXPECT_GT(cm.accuracy(), 0.9);
  for (std::size_t c = 0; c < kMotorConditionCount; ++c) {
    EXPECT_GT(cm.recall(c), 0.7) << motor_condition_name(static_cast<MotorCondition>(c));
  }
}

TEST(Motor, MildFaultsHarderThanSevere) {
  VibrationGenerator::Config mild_cfg;
  mild_cfg.severity = 0.25;
  VibrationGenerator mild(mild_cfg, 31);
  VibrationGenerator severe({}, 31);
  // Imbalance signature amplitude scales with severity.
  const auto m = mild.sample(MotorCondition::kImbalance);
  const auto s = severe.sample(MotorCondition::kImbalance);
  double m_peak = 0, s_peak = 0;
  for (std::size_t i = 0; i < kSpectrumBins; ++i) {
    m_peak = std::max(m_peak, static_cast<double>(m[i]));
    s_peak = std::max(s_peak, static_cast<double>(s[i]));
  }
  EXPECT_GT(s_peak, m_peak);
}

TEST(Motor, ClassifierValidation) {
  MotorClassifier clf;
  EXPECT_THROW((void)clf.classify(MotorFeatures(kMotorFeatureDim, 0.0f)), Error);
  VibrationGenerator gen({}, 1);
  std::vector<std::pair<MotorFeatures, MotorCondition>> only_one{
      {gen.sample(MotorCondition::kHealthy), MotorCondition::kHealthy}};
  EXPECT_THROW(clf.fit(only_one), Error);  // needs every condition
}

TEST(Motor, BatteryLifeModel) {
  MotorBoxEnergy box;
  // longer interval -> lower average power -> longer life
  EXPECT_LT(box.average_power_w(600.0), box.average_power_w(10.0));
  // 10 Wh battery, 1 sample/min: multi-year operation (ultra-low energy)
  EXPECT_GT(box.battery_life_days(60.0, 10.0), 365.0);
  EXPECT_THROW((void)box.average_power_w(0.1), Error);  // shorter than burst
}

// ---------------------------------------------------------------------------
// Arc detection (Sec. V-B)
// ---------------------------------------------------------------------------

ArcDetector::Config default_detector() {
  ArcDetector::Config cfg;
  cfg.window = 64;
  cfg.threshold = 3.0;
  cfg.persistence = 2;
  return cfg;
}

TEST(Arc, DetectsArcsWithUltraLowFnr) {
  ArcWaveformGenerator gen({}, 101);
  ArcDetector detector(default_detector());
  const auto result = evaluate_arc_detector(detector, gen, 200, 200);
  EXPECT_EQ(result.arcs, 200u);
  // "ultra-low false-negative error rate"
  EXPECT_LE(result.fnr(), 0.01);
  EXPECT_LE(result.fpr(), 0.05);
}

TEST(Arc, LatencyWellUnderTenMilliseconds) {
  ArcWaveformGenerator gen({}, 102);
  ArcDetector detector(default_detector());
  const auto result = evaluate_arc_detector(detector, gen, 100, 0);
  EXPECT_GT(result.detected, 95u);
  EXPECT_LT(result.mean_latency_ms, 5.0);   // "very low latency from the first spark"
  EXPECT_LT(result.p99_latency_ms, 10.0);
}

TEST(Arc, LoadStepsDoNotTrip) {
  // The hard negative: a benign load transient has an edge but no
  // sustained broadband noise.
  ArcWaveformGenerator::Config cfg;
  cfg.load_step_prob = 1.0;  // every trace has a step
  ArcWaveformGenerator gen(cfg, 103);
  ArcDetector detector(default_detector());
  std::size_t false_alarms = 0;
  for (int i = 0; i < 100; ++i) {
    if (detector.detect(gen.normal_trace())) ++false_alarms;
  }
  EXPECT_LE(false_alarms, 5u);
}

TEST(Arc, ThresholdTradesFnrForFpr) {
  ArcWaveformGenerator gen_a({}, 104);
  ArcWaveformGenerator gen_b({}, 104);
  auto loose = default_detector();
  loose.threshold = 1.2;
  auto strict = default_detector();
  strict.threshold = 30.0;
  const auto r_loose = evaluate_arc_detector(ArcDetector(loose), gen_a, 100, 100);
  const auto r_strict = evaluate_arc_detector(ArcDetector(strict), gen_b, 100, 100);
  EXPECT_LE(r_loose.fnr(), r_strict.fnr());
  EXPECT_GE(r_loose.fpr(), r_strict.fpr());
}

TEST(Arc, LatencyRequiresLabelledOnset) {
  ArcWaveformGenerator gen({}, 105);
  ArcDetector detector(default_detector());
  const ArcTrace normal = gen.normal_trace();
  EXPECT_THROW((void)detector.latency_s(normal), Error);
}

// ---------------------------------------------------------------------------
// Smart mirror (Sec. V-C / Fig. 5)
// ---------------------------------------------------------------------------

TEST(Mirror, DefaultPipelinesMatchFig5) {
  const auto pipelines = default_pipelines();
  ASSERT_EQ(pipelines.size(), 4u);
  std::set<std::string> names;
  for (const auto& p : pipelines) names.insert(p.name);
  EXPECT_EQ(names, std::set<std::string>({"gesture", "face", "object", "speech"}));
}

TEST(Mirror, PlansOnJetsonNxWithinBudget) {
  const auto plan = plan_smart_mirror("JetsonXavierNX");
  EXPECT_TRUE(plan.realtime_ok);
  EXPECT_TRUE(plan.within_power_budget);
  EXPECT_TRUE(plan.privacy_preserved);
  EXPECT_EQ(plan.placements.size(), 4u);
  EXPECT_LT(plan.average_power_w, 15.0);
}

TEST(Mirror, PlansOnNpuModule) {
  const auto plan = plan_smart_mirror("SMARC-iMX8MPlus");
  EXPECT_TRUE(plan.realtime_ok);
  EXPECT_LT(plan.average_power_w, 10.0);
}

TEST(Mirror, RaspberryPiCannotKeepUp) {
  // A plain CPU module misses the real-time budgets for four nets.
  EXPECT_THROW((void)plan_smart_mirror("RPi-CM4"), platform::PlatformError);
}

TEST(Mirror, WorkloadMappingRejectsUnknownPipeline) {
  MirrorPipeline bogus{"telepathy", 1.0, 1.0};
  EXPECT_THROW((void)mirror_workload(bogus), InvalidArgument);
}

TEST(Mirror, TighterRatesIncreaseUtilization) {
  auto fast = default_pipelines();
  for (auto& p : fast) p.rate_hz *= 2.0;
  const auto base = plan_smart_mirror("JetsonXavierNX");
  const auto doubled = plan_smart_mirror("JetsonXavierNX", fast);
  double u_base = 0, u_fast = 0;
  for (const auto& p : base.placements) u_base += p.utilization;
  for (const auto& p : doubled.placements) u_fast += p.utilization;
  EXPECT_GT(u_fast, u_base * 1.5);
}

}  // namespace
}  // namespace vedliot::apps
