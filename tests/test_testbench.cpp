// Tests for the Renode-style CI test bench: watchpoints, run-until-UART,
// declarative expectations, plus a differential fuzz of the RV32IM
// interpreter against a host-side golden model.

#include <gtest/gtest.h>

#include "sim/testbench.hpp"
#include "util/rng.hpp"

namespace vedliot::sim {
namespace {

TEST(TestBench, RunUntilUartContains) {
  Machine m;
  Assembler a(kRamBase);
  a.li(t0, static_cast<std::int32_t>(kUartBase));
  for (char ch : std::string("BOOT OK")) {
    a.li(t1, ch);
    a.sw(t1, t0, 0);
  }
  const int spin = a.new_label();
  a.bind(spin);
  a.j(spin);  // firmware keeps running after banner (like a real main loop)
  m.load_program(a);

  TestBench bench(m);
  EXPECT_TRUE(bench.run_until_uart_contains("BOOT OK", 100'000));
  EXPECT_FALSE(bench.run_until_uart_contains("PANIC", 1'000));
}

TEST(TestBench, WatchpointsRecordStores) {
  Machine m;
  Assembler a(kRamBase);
  a.li(t0, static_cast<std::int32_t>(kRamBase + 0x4000));
  for (int i = 0; i < 3; ++i) {
    a.li(t1, 10 + i);
    a.sw(t1, t0, 4 * i);
  }
  a.li(t2, static_cast<std::int32_t>(kRamBase + 0x8000));
  a.li(t1, 99);
  a.sw(t1, t2, 0);  // outside the watched window
  a.ecall();
  m.load_program(a);

  TestBench bench(m);
  bench.watch(kRamBase + 0x4000, 0x100);
  bench.run();
  ASSERT_EQ(bench.events().size(), 3u);
  EXPECT_EQ(bench.events()[0].value, 10u);
  EXPECT_EQ(bench.events()[2].value, 12u);
  EXPECT_EQ(bench.events()[0].width, 4);
  EXPECT_LT(bench.events()[0].instret, bench.events()[2].instret);
}

TEST(TestBench, DeclarativeReportAllPass) {
  Machine m;
  Assembler a(kRamBase);
  a.li(a0, 42);
  a.li(t0, static_cast<std::int32_t>(kUartBase));
  a.li(t1, 'X');
  a.sw(t1, t0, 0);
  a.ecall();
  m.load_program(a);

  TestBench bench(m);
  bench.run();
  bench.expect_reg(a0, 42, "result register");
  bench.expect_uart("X", "status byte printed");
  bench.expect_halt(HaltReason::kEcall, "clean exit");
  bench.expect_max_cycles(100, "cycle budget");
  EXPECT_TRUE(bench.all_passed());
  EXPECT_EQ(bench.checks(), 4u);
  EXPECT_NE(bench.report().find("ALL PASSED"), std::string::npos);
}

TEST(TestBench, FailuresAreReported) {
  Machine m;
  Assembler a(kRamBase);
  a.li(a0, 1);
  a.ecall();
  m.load_program(a);

  TestBench bench(m);
  bench.run();
  bench.expect_reg(a0, 2, "wrong expectation");
  bench.expect_uart("hello", "nothing was printed");
  EXPECT_FALSE(bench.all_passed());
  EXPECT_NE(bench.report().find("[FAIL]"), std::string::npos);
  EXPECT_NE(bench.report().find("FAILURES PRESENT"), std::string::npos);
}

TEST(TestBench, ExpectStoresTo) {
  Machine m;
  Assembler a(kRamBase);
  a.li(t0, static_cast<std::int32_t>(kRamBase + 0x5000));
  for (int i = 0; i < 4; ++i) {
    a.sw(x0, t0, 4 * i);
  }
  a.ecall();
  m.load_program(a);
  TestBench bench(m);
  bench.watch(kRamBase + 0x5000, 0x100);
  bench.run();
  bench.expect_stores_to(kRamBase + 0x5000, 0x100, 4, "dma buffer filled");
  bench.expect_stores_to(kRamBase + 0x5000, 0x100, 5, "too many expected");
  EXPECT_FALSE(bench.all_passed());
}

// ---------------------------------------------------------------------------
// Differential fuzz: random arithmetic programs vs a golden host model.
// ---------------------------------------------------------------------------

struct GoldenCpu {
  std::array<std::uint32_t, 32> regs{};

  void apply(int op, std::size_t rd, std::size_t rs1, std::size_t rs2) {
    const std::uint32_t a = regs[rs1];
    const std::uint32_t b = regs[rs2];
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    std::uint32_t r = 0;
    switch (op) {
      case 0: r = a + b; break;
      case 1: r = a - b; break;
      case 2: r = a & b; break;
      case 3: r = a | b; break;
      case 4: r = a ^ b; break;
      case 5: r = a << (b & 31); break;
      case 6: r = a >> (b & 31); break;
      case 7: r = static_cast<std::uint32_t>(sa >> (b & 31)); break;
      case 8: r = sa < sb ? 1 : 0; break;
      case 9: r = a < b ? 1 : 0; break;
      case 10: r = static_cast<std::uint32_t>(sa * sb); break;
      case 11:  // div
        if (b == 0) r = 0xFFFFFFFFu;
        else if (sa == INT32_MIN && sb == -1) r = static_cast<std::uint32_t>(INT32_MIN);
        else r = static_cast<std::uint32_t>(sa / sb);
        break;
      case 12:  // rem
        if (b == 0) r = a;
        else if (sa == INT32_MIN && sb == -1) r = 0;
        else r = static_cast<std::uint32_t>(sa % sb);
        break;
      default: break;
    }
    if (rd != 0) regs[rd] = r;
  }
};

class CpuFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CpuFuzz, RandomArithmeticAgreesWithGolden) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  Machine m;
  Assembler a(kRamBase);
  GoldenCpu golden;

  // Seed registers x5..x15 with random values through li (golden mirrors).
  for (std::size_t reg = 5; reg <= 15; ++reg) {
    const auto v = static_cast<std::int32_t>(rng.uniform_int(INT32_MIN / 2, INT32_MAX / 2));
    a.li(static_cast<Reg>(reg), v);
    golden.regs[reg] = static_cast<std::uint32_t>(v);
  }

  for (int i = 0; i < 300; ++i) {
    const int op = static_cast<int>(rng.uniform_int(0, 12));
    const auto rd = static_cast<std::size_t>(rng.uniform_int(5, 15));
    const auto rs1 = static_cast<std::size_t>(rng.uniform_int(5, 15));
    const auto rs2 = static_cast<std::size_t>(rng.uniform_int(5, 15));
    const Reg rrd = static_cast<Reg>(rd);
    const Reg r1 = static_cast<Reg>(rs1);
    const Reg r2 = static_cast<Reg>(rs2);
    switch (op) {
      case 0: a.add(rrd, r1, r2); break;
      case 1: a.sub(rrd, r1, r2); break;
      case 2: a.and_(rrd, r1, r2); break;
      case 3: a.or_(rrd, r1, r2); break;
      case 4: a.xor_(rrd, r1, r2); break;
      case 5: a.sll(rrd, r1, r2); break;
      case 6: a.srl(rrd, r1, r2); break;
      case 7: a.sra(rrd, r1, r2); break;
      case 8: a.slt(rrd, r1, r2); break;
      case 9: a.sltu(rrd, r1, r2); break;
      case 10: a.mul(rrd, r1, r2); break;
      case 11: a.div(rrd, r1, r2); break;
      case 12: a.rem(rrd, r1, r2); break;
      default: break;
    }
    golden.apply(op, rd, rs1, rs2);
  }
  a.ecall();
  m.load_program(a);
  ASSERT_EQ(m.run(100'000), HaltReason::kEcall);
  for (std::size_t reg = 5; reg <= 15; ++reg) {
    EXPECT_EQ(m.cpu().reg(reg), golden.regs[reg]) << "x" << reg << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace vedliot::sim
// appended: machine-timer interrupt tests
namespace vedliot::sim {
namespace {

/// Firmware: set up a timer interrupt handler, spin; the handler bumps a0,
/// pushes mtimecmp into the future, and returns with mret.
Assembler timer_firmware(std::int32_t rearm_delta, int fires_wanted) {
  Assembler a(kRamBase);
  const int handler = a.new_label();
  const int setup = a.new_label();
  a.j(setup);
  a.bind(handler);  // at kRamBase + 4
  a.addi(a0, a0, 1);                 // count the tick
  a.li(t0, static_cast<std::int32_t>(kTimerBase));
  a.lw(t1, t0, 0);                   // mtime (lo)
  a.addi(t1, t1, rearm_delta);
  a.sw(t1, t0, 8);                   // mtimecmp lo = mtime + delta
  a.li(t2, 0);
  a.sw(t2, t0, 12);                  // mtimecmp hi = 0
  a.mret();
  a.bind(setup);
  a.li(a0, 0);
  a.li(t0, static_cast<std::int32_t>(kTimerBase));
  a.lw(t1, t0, 0);
  a.addi(t1, t1, 50);
  a.sw(t1, t0, 8);                   // first deadline: now + 50 cycles
  a.li(t2, 0);
  a.sw(t2, t0, 12);
  a.li(t1, static_cast<std::int32_t>(kRamBase + 4));
  a.csrrw(x0, 0x305, t1);            // mtvec = handler
  a.li(t1, 0x80);
  a.csrrw(x0, 0x304, t1);            // mie.MTIE
  a.li(t1, 0x8);
  a.csrrw(x0, 0x300, t1);            // mstatus.MIE
  const int spin = a.new_label();
  a.bind(spin);
  a.li(t3, fires_wanted);
  a.blt(a0, t3, spin);
  a.ecall();
  return a;
}

TEST(TimerIrq, HandlerFiresAndReturns) {
  Machine m;
  auto fw = timer_firmware(/*rearm_delta=*/2000, /*fires_wanted=*/1);
  m.load_program(fw);
  EXPECT_EQ(m.run(100'000), HaltReason::kEcall);
  EXPECT_EQ(m.cpu().reg(a0), 1u);
  EXPECT_EQ(m.cpu().csr(0x342), kCauseMachineTimerIrq);
}

TEST(TimerIrq, PeriodicTicksAccumulate) {
  Machine m;
  auto fw = timer_firmware(/*rearm_delta=*/200, /*fires_wanted=*/5);
  m.load_program(fw);
  EXPECT_EQ(m.run(1'000'000), HaltReason::kEcall);
  EXPECT_EQ(m.cpu().reg(a0), 5u);
  EXPECT_GE(m.cpu().trap_count(), 5u);
}

TEST(TimerIrq, MaskedWhenMieClear) {
  Machine m;
  Assembler a(kRamBase);
  // Arm the timer to fire immediately but never enable mstatus.MIE.
  a.li(t0, static_cast<std::int32_t>(kTimerBase));
  a.sw(x0, t0, 8);   // mtimecmp = 0 -> pending right away
  a.sw(x0, t0, 12);
  a.li(t1, static_cast<std::int32_t>(kRamBase + 4));
  a.csrrw(x0, 0x305, t1);
  a.li(t1, 0x80);
  a.csrrw(x0, 0x304, t1);  // mie.MTIE set, but mstatus.MIE stays clear
  for (int i = 0; i < 50; ++i) a.nop();
  a.li(a0, 0x0C);
  a.ecall();
  m.load_program(a);
  EXPECT_EQ(m.run(10'000), HaltReason::kEcall);
  EXPECT_EQ(m.cpu().trap_count(), 0u);
}

TEST(TimerIrq, MretRestoresInterruptEnable) {
  // After the handler mrets, MIE must be restored so a second tick can fire
  // (verified implicitly by PeriodicTicksAccumulate; here check mstatus).
  Machine m;
  auto fw = timer_firmware(2000, 1);
  m.load_program(fw);
  m.run(100'000);
  EXPECT_EQ(m.cpu().csr(0x300) & 0x8u, 0x8u);  // MIE restored by mret
}

}  // namespace
}  // namespace vedliot::sim
