// Tests for the Sec. IV-A architectural framework: the concern/level grid,
// the vertical-or-horizontal dependency rule, traceability and middle-out
// gap analysis.

#include <gtest/gtest.h>

#include "reqs/framework.hpp"

namespace vedliot::reqs {
namespace {

TEST(Framework, Names) {
  EXPECT_EQ(concern_name(Concern::kDeepLearningModel), "deep-learning-model");
  EXPECT_EQ(level_name(Level::kRuntime), "runtime");
}

TEST(Framework, VerticalDependencyAllowed) {
  ArchitecturalFramework fw;
  const ViewId a = fw.add_view("safety-goals", Concern::kSafety, Level::kKnowledge);
  const ViewId b = fw.add_view("safety-design", Concern::kSafety, Level::kDesign);
  EXPECT_NO_THROW(fw.add_dependency(a, b));
  EXPECT_TRUE(fw.depends(a, b));
  EXPECT_FALSE(fw.depends(b, a));
}

TEST(Framework, HorizontalDependencyAllowed) {
  ArchitecturalFramework fw;
  const ViewId a = fw.add_view("dl-model-design", Concern::kDeepLearningModel, Level::kDesign);
  const ViewId b = fw.add_view("hw-design", Concern::kHardware, Level::kDesign);
  EXPECT_NO_THROW(fw.add_dependency(a, b));
}

TEST(Framework, DiagonalDependencyRejected) {
  // The paper's key rule: dependencies exist ONLY vertically (same cluster)
  // or horizontally (same level). A diagonal edge is a design smell.
  ArchitecturalFramework fw;
  const ViewId a = fw.add_view("ethics-knowledge", Concern::kEthics, Level::kKnowledge);
  const ViewId b = fw.add_view("hw-design", Concern::kHardware, Level::kDesign);
  EXPECT_THROW(fw.add_dependency(a, b), FrameworkError);
  EXPECT_THROW(fw.add_dependency(a, a), FrameworkError);
}

TEST(Framework, TraceabilityThroughChain) {
  ArchitecturalFramework fw;
  const ViewId k = fw.add_view("energy-goal", Concern::kEnergy, Level::kKnowledge);
  const ViewId c = fw.add_view("energy-concept_view", Concern::kEnergy, Level::kConceptual);
  const ViewId d = fw.add_view("energy-budget-design", Concern::kEnergy, Level::kDesign);
  const ViewId hw = fw.add_view("hw-power-design", Concern::kHardware, Level::kDesign);
  fw.add_dependency(k, c);
  fw.add_dependency(c, d);
  fw.add_dependency(d, hw);  // horizontal at the design level
  EXPECT_TRUE(fw.traceable(k, hw));
  EXPECT_FALSE(fw.traceable(hw, k));  // direction matters
}

TEST(Framework, CoverageCounting) {
  ArchitecturalFramework fw;
  EXPECT_EQ(fw.covered_cells(), 0u);
  fw.add_view("a", Concern::kSafety, Level::kDesign);
  fw.add_view("b", Concern::kSafety, Level::kDesign);  // same cell
  fw.add_view("c", Concern::kSecurity, Level::kDesign);
  EXPECT_EQ(fw.covered_cells(), 2u);
  EXPECT_TRUE(fw.cell_covered(Concern::kSafety, Level::kDesign));
  EXPECT_FALSE(fw.cell_covered(Concern::kSafety, Level::kRuntime));
}

TEST(Framework, MiddleOutNeighborsListGaps) {
  // Middle-out engineering: start from a mid-level view and ask what to
  // elaborate next — the uncovered vertical and horizontal neighbours.
  ArchitecturalFramework fw;
  const ViewId v = fw.add_view("dl-concept_view", Concern::kDeepLearningModel, Level::kConceptual);
  const auto gaps = fw.missing_neighbors(v);
  // vertical: knowledge + design in the same cluster; horizontal: the other
  // 12 clusters at conceptual level -> 14 gaps total on an empty grid.
  EXPECT_EQ(gaps.size(), 2u + (kConcernCount - 1));

  fw.add_view("dl-design", Concern::kDeepLearningModel, Level::kDesign);
  const auto fewer = fw.missing_neighbors(v);
  EXPECT_EQ(fewer.size(), gaps.size() - 1);
}

TEST(Framework, MissingNeighborsRespectGridEdges) {
  ArchitecturalFramework fw;
  const ViewId v = fw.add_view("k", Concern::kSafety, Level::kKnowledge);
  // knowledge is the top level: only one vertical neighbour (conceptual)
  const auto gaps = fw.missing_neighbors(v);
  std::size_t vertical = 0;
  for (const auto& [c, l] : gaps) {
    if (c == Concern::kSafety) ++vertical;
  }
  EXPECT_EQ(vertical, 1u);
}

TEST(Requirements, UnrealizedDetection) {
  ArchitecturalFramework fw;
  const ViewId know = fw.add_view("privacy-goal", Concern::kPrivacy, Level::kKnowledge);
  const ViewId concept_view = fw.add_view("privacy-concept_view", Concern::kPrivacy, Level::kConceptual);
  const ViewId design = fw.add_view("privacy-design", Concern::kPrivacy, Level::kDesign);
  fw.add_dependency(know, concept_view);

  RequirementsLedger ledger(fw);
  ledger.add({"REQ-PRV-001", "all inference stays on-site", know});
  // know -> concept_view exists, but nothing reaches a design/runtime view yet.
  EXPECT_EQ(ledger.unrealized(), std::vector<std::string>{"REQ-PRV-001"});

  fw.add_dependency(concept_view, design);
  EXPECT_TRUE(ledger.unrealized().empty());
}

TEST(Requirements, DirectDesignRequirementIsRealized) {
  ArchitecturalFramework fw;
  const ViewId design = fw.add_view("arc-latency-design", Concern::kSafety, Level::kDesign);
  RequirementsLedger ledger(fw);
  ledger.add({"REQ-ARC-001", "detection within 5 ms of first spark", design});
  EXPECT_TRUE(ledger.unrealized().empty());  // trivially traceable to itself
}

TEST(Requirements, DuplicateIdRejected) {
  ArchitecturalFramework fw;
  const ViewId v = fw.add_view("x", Concern::kSafety, Level::kDesign);
  RequirementsLedger ledger(fw);
  ledger.add({"REQ-1", "a", v});
  EXPECT_THROW(ledger.add({"REQ-1", "b", v}), FrameworkError);
}

TEST(Requirements, UnknownViewRejected) {
  ArchitecturalFramework fw;
  RequirementsLedger ledger(fw);
  EXPECT_THROW(ledger.add({"REQ-1", "a", 99}), Error);
}

TEST(Framework, VedliotExampleGrid) {
  // Build a miniature of the paper's own concern grid for the smart mirror
  // and check traceability of the privacy requirement end-to-end.
  ArchitecturalFramework fw;
  const ViewId privacy_k = fw.add_view("residents-privacy", Concern::kPrivacy, Level::kKnowledge);
  const ViewId privacy_c = fw.add_view("onsite-processing", Concern::kPrivacy, Level::kConceptual);
  const ViewId privacy_d = fw.add_view("no-cloud-dataflow", Concern::kPrivacy, Level::kDesign);
  const ViewId comm_d = fw.add_view("local-fabric-only", Concern::kCommunication, Level::kDesign);
  const ViewId hw_d = fw.add_view("urecs-node", Concern::kHardware, Level::kDesign);
  const ViewId energy_d = fw.add_view("15w-budget", Concern::kEnergy, Level::kDesign);
  const ViewId hw_r = fw.add_view("deployed-node", Concern::kHardware, Level::kRuntime);

  fw.add_dependency(privacy_k, privacy_c);
  fw.add_dependency(privacy_c, privacy_d);
  fw.add_dependency(privacy_d, comm_d);
  fw.add_dependency(comm_d, hw_d);
  fw.add_dependency(hw_d, energy_d);
  fw.add_dependency(hw_d, hw_r);

  RequirementsLedger ledger(fw);
  ledger.add({"REQ-PRV-001", "no resident data leaves the home", privacy_k});
  ledger.add({"REQ-NRG-001", "node under 15 W", energy_d});
  EXPECT_TRUE(ledger.unrealized().empty());
  EXPECT_TRUE(fw.traceable(privacy_k, hw_r));
}

}  // namespace
}  // namespace vedliot::reqs
// appended: markdown grid rendering
namespace vedliot::reqs {
namespace {

TEST(Framework, MarkdownGridRenders) {
  ArchitecturalFramework fw;
  fw.add_view("a", Concern::kSafety, Level::kDesign);
  fw.add_view("b", Concern::kSafety, Level::kDesign);
  const std::string md = fw.to_markdown();
  EXPECT_NE(md.find("| safety |"), std::string::npos);
  EXPECT_NE(md.find(" 2 |"), std::string::npos);
  EXPECT_NE(md.find("knowledge"), std::string::npos);
  // uncovered cells render as em-dashes
  EXPECT_NE(md.find(" — |"), std::string::npos);
}

}  // namespace
}  // namespace vedliot::reqs
