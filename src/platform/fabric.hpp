#pragma once
/// \file fabric.hpp
/// \brief Communication-driven infrastructure between microservers
/// (Sec. II-A): 1G/10G Ethernet plus high-speed low-latency links,
/// reconfigurable at run time (topology and protocol parameters).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace vedliot::platform {

enum class LinkKind { kEthernet, kLowLatency };

struct Link {
  std::string a;
  std::string b;
  LinkKind kind = LinkKind::kEthernet;
  double bandwidth_gbps = 1.0;
  double latency_us = 50.0;   ///< per-hop base latency (switch + stack)
  double degradation = 1.0;   ///< health factor in (0, 1]: effective bandwidth
                              ///< is bandwidth_gbps * degradation (fault, not
                              ///< a configuration change)

  double effective_gbps() const { return bandwidth_gbps * degradation; }
};

/// Switched fabric between named endpoints. Supports run-time
/// reconfiguration: link speed changes and topology edits, with an audit
/// counter so schedulers can reason about reconfiguration churn.
class Fabric {
 public:
  /// \param allowed_ethernet_gbps the speeds the baseboard supports.
  explicit Fabric(std::vector<double> allowed_ethernet_gbps);

  void add_endpoint(const std::string& name);
  bool has_endpoint(const std::string& name) const;

  /// Add a link; endpoints must exist; Ethernet speed must be allowed.
  void add_link(Link link);

  /// Remove the link between a and b; throws NotFound if absent.
  void remove_link(const std::string& a, const std::string& b);

  /// Run-time reconfiguration of an existing Ethernet link's speed.
  void set_link_speed(const std::string& a, const std::string& b, double gbps);

  /// Mark the link as degraded to \p factor (in (0, 1]) of its configured
  /// bandwidth — a health condition (congestion, partial failure), not a
  /// reconfiguration, so it bypasses the allowed-speed list and does not
  /// count towards reconfiguration churn. Factor 1.0 restores full health.
  void set_link_degradation(const std::string& a, const std::string& b, double factor);

  /// The link between a and b, if any (either direction).
  std::optional<Link> link_between(const std::string& a, const std::string& b) const;

  /// Shortest path (fewest hops, ties by total latency); throws NotFound
  /// when no route exists.
  std::vector<std::string> route(const std::string& from, const std::string& to) const;

  /// End-to-end transfer time for a payload along route(from, to):
  /// sum of hop latencies + bytes / bottleneck bandwidth.
  double transfer_time_s(const std::string& from, const std::string& to,
                         double payload_bytes) const;

  /// Bottleneck bandwidth along the route, bytes/s.
  double path_bandwidth_bytes_s(const std::string& from, const std::string& to) const;

  std::size_t reconfiguration_count() const { return reconfigs_; }
  std::size_t link_count() const { return links_.size(); }

  /// All current links (fault injectors snapshot these to partition a node
  /// — removing every link that touches it — and heal it back later).
  const std::vector<Link>& links() const { return links_; }

 private:
  const Link* find_link(const std::string& a, const std::string& b) const;
  Link* find_link(const std::string& a, const std::string& b);

  std::vector<std::string> endpoints_;
  std::vector<Link> links_;
  std::vector<double> allowed_eth_;
  std::size_t reconfigs_ = 0;
};

/// Build the default star fabric for a set of slots: every slot connected
/// to a switch endpoint ("switch0") at the base Ethernet speed.
Fabric star_fabric(const std::vector<std::string>& slots, double gbps,
                   std::vector<double> allowed_speeds);

}  // namespace vedliot::platform
