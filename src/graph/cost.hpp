#pragma once
/// \file cost.hpp
/// \brief Analytic operation/parameter/traffic accounting per node.
///
/// The accounting follows the paper's convention: "operations" counts both
/// the multiply and the add of a MAC (ops = 2*MACs), which is how vendor
/// peak-GOPS figures in Fig. 3/4 are quoted.

#include <cstdint>

#include "graph/graph.hpp"
#include "tensor/dtype.hpp"

namespace vedliot {

/// Cost of executing one node once (for the batch size baked into the
/// graph's input shapes).
struct NodeCost {
  std::int64_t macs = 0;           ///< multiply-accumulate count
  std::int64_t ops = 0;            ///< total arithmetic ops (2*macs for conv/dense)
  std::int64_t params = 0;         ///< trainable parameter count
  std::int64_t input_elems = 0;    ///< activation elements read
  std::int64_t output_elems = 0;   ///< activation elements written
};

/// Compute the cost of one node.
NodeCost node_cost(const Graph& g, NodeId id);

/// Aggregate cost of the full (live) graph.
struct GraphCost {
  std::int64_t macs = 0;
  std::int64_t ops = 0;
  std::int64_t params = 0;
  std::int64_t activation_elems = 0;  ///< sum of all node outputs
  std::int64_t peak_single_elems = 0; ///< largest single activation tensor

  double gops() const { return static_cast<double>(ops) / 1e9; }
};
GraphCost graph_cost(const Graph& g);

/// Bytes moved to execute the graph once at the given activation/weight
/// dtypes: weights read once + every activation written and read once.
/// This is the operand traffic the roofline model (hw/perf_model) uses.
double graph_traffic_bytes(const Graph& g, DType act_dtype, DType weight_dtype);

/// Model weight storage in bytes at a given dtype.
double weight_bytes(const Graph& g, DType weight_dtype);

/// Locality-aware operand traffic: weights stream from DRAM once, but an
/// activation only costs DRAM bandwidth when it is too large to stay in the
/// on-chip buffer (a tensor is kept on chip when it fits in a quarter of
/// the buffer, leaving room for double-buffering and weights). Graph inputs
/// and outputs always cross DRAM.
double graph_traffic_bytes_with_locality(const Graph& g, DType act_dtype, DType weight_dtype,
                                         double onchip_bytes);

}  // namespace vedliot
