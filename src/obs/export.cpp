#include "obs/export.hpp"

#include <cstdio>
#include <string>

#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace vedliot::obs {

namespace {

void append_attr_members(std::string& out, const Span& s) {
  for (const auto& [k, v] : s.attrs) {
    out += ",\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
  }
  for (const auto& [k, v] : s.num_attrs) {
    out += ",\"" + json_escape(k) + "\":" + json_number(v);
  }
}

}  // namespace

std::string metrics_table(const MetricsRegistry& registry) {
  Table t({"metric", "type", "count", "value", "p50", "p95", "p99"});
  for (const auto& [name, c] : registry.counters()) {
    t.add_row({name, "counter", "", std::to_string(c.value()), "", "", ""});
  }
  for (const auto& [name, g] : registry.gauges()) {
    t.add_row({name, "gauge", "", fmt_fixed(g.value(), 3), "", "", ""});
  }
  for (const auto& [name, h] : registry.histograms()) {
    t.add_row({name, "histogram", std::to_string(h.total()), fmt_fixed(h.mean(), 3),
               fmt_fixed(h.p50(), 3), fmt_fixed(h.p95(), 3), fmt_fixed(h.p99(), 3)});
  }
  return t.to_string();
}

std::string spans_table(std::span<const Span> spans) {
  Table t({"span", "category", "start us", "dur us"});
  for (const Span& s : spans) {
    t.add_row({std::string(2 * s.depth, ' ') + s.name, s.category,
               fmt_fixed(static_cast<double>(s.start_ns) / 1e3, 1),
               fmt_fixed(s.duration_us(), 1)});
  }
  return t.to_string();
}

std::string metrics_jsonl(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, c] : registry.counters()) {
    out += "{\"record\":\"metric\",\"name\":\"" + json_escape(name) +
           "\",\"type\":\"counter\",\"value\":" + std::to_string(c.value()) + "}\n";
  }
  for (const auto& [name, g] : registry.gauges()) {
    out += "{\"record\":\"metric\",\"name\":\"" + json_escape(name) +
           "\",\"type\":\"gauge\",\"value\":" + json_number(g.value()) + "}\n";
  }
  for (const auto& [name, h] : registry.histograms()) {
    out += "{\"record\":\"metric\",\"name\":\"" + json_escape(name) +
           "\",\"type\":\"histogram\",\"count\":" + std::to_string(h.total()) +
           ",\"sum\":" + json_number(h.sum()) + ",\"mean\":" + json_number(h.mean()) +
           ",\"min\":" + json_number(h.min()) + ",\"max\":" + json_number(h.max()) +
           ",\"p50\":" + json_number(h.p50()) + ",\"p95\":" + json_number(h.p95()) +
           ",\"p99\":" + json_number(h.p99()) + "}\n";
  }
  return out;
}

std::string spans_jsonl(std::span<const Span> spans) {
  std::string out;
  for (const Span& s : spans) {
    std::string line = "{\"record\":\"span\",\"name\":\"" + json_escape(s.name) +
                       "\",\"cat\":\"" + json_escape(s.category) +
                       "\",\"ts_us\":" + json_number(static_cast<double>(s.start_ns) / 1e3) +
                       ",\"dur_us\":" + json_number(s.duration_us()) +
                       ",\"depth\":" + std::to_string(s.depth);
    if (s.parent != Span::kNoParent) {
      line += ",\"parent\":" + std::to_string(s.parent);
    }
    append_attr_members(line, s);
    line += "}\n";
    out += line;
  }
  return out;
}

std::string chrome_trace_json(std::span<const Span> spans, int pid, int tid) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"" + json_escape(s.name) + "\",\"cat\":\"" +
           json_escape(s.category.empty() ? "vedliot" : s.category) +
           "\",\"ph\":\"X\",\"ts\":" + json_number(static_cast<double>(s.start_ns) / 1e3) +
           ",\"dur\":" + json_number(s.duration_us()) + ",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(tid);
    if (!s.attrs.empty() || !s.num_attrs.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : s.attrs) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"";
        out += json_escape(k);
        out += "\":\"";
        out += json_escape(v);
        out += "\"";
      }
      for (const auto& [k, v] : s.num_attrs) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"";
        out += json_escape(k);
        out += "\":";
        out += json_number(v);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void write_chrome_trace(const std::string& path, std::span<const Span> spans, int pid,
                        int tid) {
  const std::string doc = chrome_trace_json(spans, pid, tid);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw Error("cannot open trace output file " + path);
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const int rc = std::fclose(f);
  if (written != doc.size() || rc != 0) {
    throw Error("short write to trace output file " + path);
  }
}

}  // namespace vedliot::obs
