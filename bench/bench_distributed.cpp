// T-DIST — collaborative inference across distributed systems (abstract:
// "a complete design flow for Next-Generation IoT devices required for
// collaboratively solving complex Deep Learning applications across
// distributed systems"; Sec. II-A's communication-driven infrastructure).
//
// Partitions YoloV4 into pipeline stages across RECS|Box microservers and
// reports latency/throughput against the best single module, sweeping the
// stage count and the fabric speed.

#include <iostream>

#include "bench_common.hpp"
#include "graph/zoo.hpp"
#include "platform/distributed.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::platform;

namespace {

struct Cluster {
  Chassis chassis{recs_box()};
  Fabric fabric{star_fabric({"come0", "come1", "come2", "come3"}, 10.0, {1.0, 10.0})};
  std::vector<std::string> slots;
};

Cluster make_cluster(int modules) {
  Cluster c;
  for (int i = 0; i < modules; ++i) {
    const std::string slot = "come" + std::to_string(i);
    c.chassis.install(slot, find_module("COMe-XavierAGX"));
    c.slots.push_back(slot);
  }
  return c;
}

}  // namespace

void print_artifact() {
  bench::banner("T-DIST", "YoloV4 pipelined across RECS|Box microservers (10G fabric)");

  Graph g = zoo::yolov4();

  Table t({"stages x modules", "latency ms", "interval ms", "fps", "vs single module"});
  for (int n : {1, 2, 3, 4}) {
    Cluster c = make_cluster(n);
    const auto plan =
        plan_distributed_inference(g, c.chassis, c.fabric, c.slots, static_cast<std::size_t>(n),
                                   DType::kINT8);
    t.add_row({std::to_string(n) + " x XavierAGX", fmt_fixed(plan.latency_s * 1e3, 1),
               fmt_fixed(plan.pipeline_interval_s * 1e3, 1), fmt_fixed(plan.throughput_fps, 1),
               fmt_ratio(plan.speedup_vs_single())});
  }
  t.print(std::cout);

  // Stage detail for the 3-way split.
  Cluster c3 = make_cluster(3);
  const auto plan3 =
      plan_distributed_inference(g, c3.chassis, c3.fabric, c3.slots, 3, DType::kINT8);
  std::printf("\n3-stage split detail:\n\n");
  Table d({"stage", "nodes", "GOPs", "compute ms", "boundary KiB", "transfer ms"});
  for (std::size_t i = 0; i < plan3.stages.size(); ++i) {
    const auto& st = plan3.stages[i];
    d.add_row({std::to_string(i), std::to_string(st.last - st.first + 1),
               fmt_fixed(st.ops / 1e9, 1), fmt_fixed(st.compute_s * 1e3, 2),
               fmt_fixed(st.boundary_bytes / 1024.0, 0), fmt_fixed(st.transfer_s * 1e3, 2)});
  }
  d.print(std::cout);

  // Fabric-speed sensitivity: the same 3-way split on 1G vs 10G Ethernet.
  std::printf("\nfabric sensitivity (3 stages):\n\n");
  Table f({"fabric", "interval ms", "fps", "transfer share of interval"});
  for (double gbps : {1.0, 10.0}) {
    Cluster c = make_cluster(3);
    for (const auto& slot : c.slots) c.fabric.set_link_speed("switch0", slot, gbps);
    const auto plan = plan_distributed_inference(g, c.chassis, c.fabric, c.slots, 3, DType::kINT8);
    double max_transfer = 0;
    for (const auto& st : plan.stages) max_transfer = std::max(max_transfer, st.transfer_s);
    f.add_row({fmt_fixed(gbps, 0) + "G Ethernet", fmt_fixed(plan.pipeline_interval_s * 1e3, 1),
               fmt_fixed(plan.throughput_fps, 1),
               fmt_percent(max_transfer / plan.pipeline_interval_s)});
  }
  f.print(std::cout);
  bench::note("shape: throughput scales with the pipeline depth while single-frame latency");
  bench::note("grows only slightly (transfers). At 1G the boundary transfers nearly fill the");
  bench::note("pipeline interval (no headroom for bigger batches); the runtime-reconfigurable");
  bench::note("10G fabric leaves ~10x communication headroom.");
}

static void BM_PlanDistributed(benchmark::State& state) {
  Cluster c = make_cluster(3);
  Graph g = zoo::yolov4();
  for (auto _ : state) {
    auto plan = plan_distributed_inference(g, c.chassis, c.fabric, c.slots, 3, DType::kINT8);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanDistributed)->Unit(benchmark::kMillisecond);

VEDLIOT_BENCH_MAIN()
