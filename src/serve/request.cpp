#include "serve/request.hpp"

#include "util/error.hpp"

namespace vedliot::serve {

std::string_view priority_class_name(PriorityClass p) {
  switch (p) {
    case PriorityClass::kBatch: return "batch";
    case PriorityClass::kStandard: return "standard";
    case PriorityClass::kInteractive: return "interactive";
  }
  throw InvalidArgument("unknown priority class");
}

std::string_view response_status_name(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kLate: return "late";
    case ResponseStatus::kShed: return "shed";
    case ResponseStatus::kCancelled: return "cancelled";
    case ResponseStatus::kFailed: return "failed";
  }
  throw InvalidArgument("unknown response status");
}

}  // namespace vedliot::serve
