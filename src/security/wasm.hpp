#pragma once
/// \file wasm.hpp
/// \brief WebAssembly-style sandboxed bytecode VM — the Twine analogue
/// (Sec. IV-C / [17]): a stack machine with its own linear memory and a
/// WASI-like host interface, runnable either natively or inside the enclave
/// model (enclave.hpp) to reproduce the native / VM / VM+enclave overhead
/// comparison.
///
/// The instruction set is a flat-bytecode subset of wasm's integer core
/// (i32 arithmetic, locals, linear-memory loads/stores, conditional jumps,
/// calls, host calls); structured control flow is lowered to jumps by the
/// module builder, as a real wasm compiler would.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace vedliot::security {

class WasmTrap : public Error {
 public:
  explicit WasmTrap(const std::string& message) : Error(message) {}
};

enum class WOp : std::uint8_t {
  kConst,     ///< push imm
  kLocalGet,  ///< push locals[imm]
  kLocalSet,  ///< locals[imm] = pop
  kAdd, kSub, kMul, kDivS, kRemS,
  kAnd, kOr, kXor, kShl, kShrS,
  kEq, kNe, kLtS, kGtS, kLeS, kGeS,
  kLoad,      ///< addr = pop; push mem[addr+imm]
  kStore,     ///< value = pop; addr = pop; mem[addr+imm] = value
  kJmp,       ///< pc = imm
  kJmpIfZ,    ///< if (pop == 0) pc = imm
  kCall,      ///< call function imm
  kHostCall,  ///< call host function imm; pops per its signature
  kRet,       ///< return (top of stack is the value if the fn returns one)
  kDrop,
  kHalt,
};

struct WInstr {
  WOp op;
  std::int32_t imm = 0;
};

struct WFunction {
  std::string name;
  std::uint32_t entry = 0;   ///< index into the module code
  std::uint32_t nargs = 0;
  std::uint32_t nlocals = 0; ///< including args
  bool returns_value = true;
};

struct WModule {
  std::vector<WInstr> code;
  std::vector<WFunction> functions;
  std::uint32_t memory_bytes = 64 * 1024;
  std::vector<std::uint8_t> data;   ///< initial memory image (data segment)

  /// Deterministic module measurement (code + data), for attestation.
  std::vector<std::uint8_t> serialize() const;

  /// Find a function index by name; throws NotFound.
  std::uint32_t find_function(const std::string& name) const;
};

/// Host function: receives arg values and VM memory access.
struct HostContext {
  std::vector<std::uint8_t>& memory;
};
using HostFn = std::function<std::int32_t(HostContext&, const std::vector<std::int32_t>&)>;

struct HostImport {
  std::string name;
  std::uint32_t nargs = 0;
  HostFn fn;
};

/// Interpreter instance with gas metering (instruction count) so the
/// enclave model can convert work into simulated time.
class WasmVm {
 public:
  explicit WasmVm(WModule module);

  /// Register a host import at index `imports().size()`.
  void add_host(HostImport import);

  /// Invoke a function by name; returns the result (0 for void functions).
  std::int32_t invoke(const std::string& fn, const std::vector<std::int32_t>& args);

  std::uint64_t instructions_retired() const { return retired_; }
  std::vector<std::uint8_t>& memory() { return memory_; }
  const WModule& module() const { return module_; }

  /// Hard cap on instructions per invoke (runaway protection).
  void set_fuel_limit(std::uint64_t fuel) { fuel_limit_ = fuel; }

 private:
  std::int32_t call(std::uint32_t fn_index, const std::vector<std::int32_t>& args, int depth);

  WModule module_;
  std::vector<HostImport> hosts_;
  std::vector<std::uint8_t> memory_;
  std::uint64_t retired_ = 0;
  std::uint64_t fuel_limit_ = 100'000'000;
};

}  // namespace vedliot::security
