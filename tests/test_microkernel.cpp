// Tests for the SIMD microkernel GEMM layer: edge-tail correctness against
// the scalar reference, the per-level determinism contract (int8 bitwise,
// f32 tight tolerance, parallel-vs-serial bitwise, batch-lane bitwise),
// packed-weight cache lifecycle (steady-state reuse, version/tile
// invalidation, OTA-repair self-heal), env-override dispatch, and the
// roofline probes.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "exec_single.hpp"
#include "graph/zoo.hpp"
#include "hw/roofline.hpp"
#include "opt/fusion.hpp"
#include "opt/quantize.hpp"
#include "runtime/executor.hpp"
#include "runtime/kernels.hpp"
#include "runtime/microkernel.hpp"
#include "runtime/packed_cache.hpp"
#include "runtime/qexecutor.hpp"
#include "runtime/session.hpp"
#include "safety/model_store.hpp"
#include "safety/scrub.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"

namespace vedliot {
namespace {

using runtime_kernels::GemmMicrokernels;
using runtime_kernels::MicrokernelTile;
using runtime_kernels::panel_count;

/// Set an environment variable for one scope and restore the prior state on
/// exit, so dispatch-override tests cannot leak into other tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

/// The best SIMD table this binary actually has, ignoring env overrides —
/// nullptr on a pure-portable build/host (tests then skip the SIMD half).
const GemmMicrokernels* best_simd_table() {
  for (auto level : {util::SimdLevel::kAvx2, util::SimdLevel::kNeon}) {
    if (util::simd_supported(level)) {
      if (const auto* t = runtime_kernels::gemm_microkernels(level)) return t;
    }
  }
  return nullptr;
}

/// The table the executor will actually dispatch to right now — honors the
/// env overrides, unlike best_simd_table(). Null under a forced-portable run.
const GemmMicrokernels* resolved_table() {
  return runtime_kernels::gemm_microkernels(
      util::resolve_simd_level(util::SimdLevel::kAuto));
}

// Edge-tail grid: values straddling the register tiles (mr ∈ {4, 6},
// nr ∈ {8, 16}) plus degenerate extents.
const std::int64_t kMs[] = {1, 5, 6, 7, 13};
const std::int64_t kNs[] = {1, 15, 16, 17, 33};
const std::int64_t kKs[] = {1, 2, 3, 64, 65};

std::vector<float> rand_f32(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return rng.normal_vector(n);
}

std::vector<std::int8_t> rand_s8(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int8_t> v(n);
  for (auto& x : v) {
    x = static_cast<std::int8_t>(static_cast<std::int32_t>(rng.uniform(-128.0, 128.0)));
  }
  return v;
}

/// Full-range microkernel f32 GEMM over freshly packed operands.
void mk_gemm_f32(const GemmMicrokernels& t, const float* a, const float* b, float* c,
                 std::int64_t m, std::int64_t n, std::int64_t k, const float* bias,
                 OpKind act, double alpha, bool col_major = false, std::int64_t ldc = -1) {
  std::vector<float> pa(runtime_kernels::packed_a_f32_elems(m, k, t.f32));
  std::vector<float> pb(runtime_kernels::packed_b_f32_elems(k, n, t.f32));
  runtime_kernels::pack_a_f32(a, m, k, t.f32, pa.data());
  runtime_kernels::pack_b_f32(b, k, n, t.f32, 0, panel_count(n, t.f32.nr), pb.data());
  if (ldc < 0) ldc = col_major ? m : n;
  t.gemm_f32(pa.data(), pb.data(), c, m, n, k, ldc, col_major, 0,
             panel_count(m, t.f32.mr), bias, act, alpha);
}

/// Full-range microkernel int8 GEMM; returns the saturation count.
std::uint64_t mk_gemm_s8(const GemmMicrokernels& t, const std::int8_t* a,
                         const std::int8_t* b, std::int8_t* c, std::int64_t m,
                         std::int64_t n, std::int64_t k, const std::int32_t* bias,
                         const double* mult, std::int32_t q_lo, std::int32_t q_hi,
                         bool col_major = false, std::int64_t ldc = -1) {
  std::vector<std::int32_t> pa(runtime_kernels::packed_a_s8_words(m, k, t.s8));
  std::vector<std::int8_t> pb(runtime_kernels::packed_b_s8_bytes(k, n, t.s8));
  runtime_kernels::pack_a_s8(a, m, k, t.s8, pa.data());
  runtime_kernels::pack_b_s8(b, k, n, t.s8, 0, panel_count(n, t.s8.nr), pb.data());
  if (ldc < 0) ldc = col_major ? m : n;
  return t.gemm_s8(pa.data(), pb.data(), c, m, n, k, ldc, col_major, 0,
                   panel_count(m, t.s8.mr), bias, mult, q_lo, q_hi);
}

// ---------------------------------------------------------------------------
// Edge tails vs the scalar reference
// ---------------------------------------------------------------------------

TEST(Microkernel, F32EdgeTailsMatchScalarReference) {
  const auto* t = best_simd_table();
  if (t == nullptr || t->gemm_f32 == nullptr) GTEST_SKIP() << "no SIMD f32 microkernel";
  std::uint64_t seed = 100;
  for (std::int64_t m : kMs) {
    for (std::int64_t n : kNs) {
      for (std::int64_t k : kKs) {
        const auto a = rand_f32(static_cast<std::size_t>(m * k), seed++);
        const auto b = rand_f32(static_cast<std::size_t>(k * n), seed++);
        const auto bias = rand_f32(static_cast<std::size_t>(m), seed++);
        // Exercise the fused-activation epilogue on half the grid.
        const OpKind act = ((m + n + k) % 2 == 0) ? OpKind::kRelu : OpKind::kIdentity;
        std::vector<float> ref(static_cast<std::size_t>(m * n));
        runtime_kernels::gemm_rows_f32(a.data(), b.data(), ref.data(), 0, m, n, k,
                                       bias.data(), act, 0.0);
        std::vector<float> got(ref.size(), -777.0f);
        mk_gemm_f32(*t, a.data(), b.data(), got.data(), m, n, k, bias.data(), act, 0.0);
        for (std::size_t i = 0; i < ref.size(); ++i) {
          // FMA contraction changes rounding per product; with |a|,|b| ~ N(0,1)
          // and K <= 65 the divergence stays far below this bound.
          ASSERT_NEAR(got[i], ref[i], 1e-4)
              << "m=" << m << " n=" << n << " k=" << k << " i=" << i;
        }
      }
    }
  }
}

TEST(Microkernel, S8EdgeTailsBitwiseEqualScalarReference) {
  const auto* t = best_simd_table();
  if (t == nullptr || t->gemm_s8 == nullptr) GTEST_SKIP() << "no SIMD int8 microkernel";
  std::uint64_t seed = 500;
  for (std::int64_t m : kMs) {
    for (std::int64_t n : kNs) {
      for (std::int64_t k : kKs) {
        const auto a = rand_s8(static_cast<std::size_t>(m * k), seed++);
        const auto b = rand_s8(static_cast<std::size_t>(k * n), seed++);
        Rng rng(seed++);
        std::vector<std::int32_t> bias(static_cast<std::size_t>(m));
        std::vector<double> mult(static_cast<std::size_t>(m));
        for (std::size_t r = 0; r < bias.size(); ++r) {
          bias[r] = static_cast<std::int32_t>(rng.uniform(-500.0, 500.0));
          // Multiplier chosen so a fair share of outputs saturate — the
          // counts must match exactly, not just the clamped bytes.
          mult[r] = rng.uniform(0.0005, 0.02);
        }
        const std::int32_t q_lo = ((m + n) % 2 == 0) ? 0 : -128;
        std::vector<std::int8_t> ref(static_cast<std::size_t>(m * n));
        const std::uint64_t sat_ref = runtime_kernels::gemm_rows_s8(
            a.data(), b.data(), ref.data(), 0, m, n, k, bias.data(), mult.data(), q_lo, 127);
        std::vector<std::int8_t> got(ref.size(), 99);
        const std::uint64_t sat_got = mk_gemm_s8(*t, a.data(), b.data(), got.data(), m, n,
                                                 k, bias.data(), mult.data(), q_lo, 127);
        ASSERT_EQ(sat_got, sat_ref) << "m=" << m << " n=" << n << " k=" << k;
        for (std::size_t i = 0; i < ref.size(); ++i) {
          ASSERT_EQ(got[i], ref[i]) << "m=" << m << " n=" << n << " k=" << k << " i=" << i;
        }
      }
    }
  }
}

TEST(Microkernel, ColMajorStoreIsBitwiseTransposeOfRowMajor) {
  const auto* t = best_simd_table();
  if (t == nullptr) GTEST_SKIP() << "no SIMD microkernels";
  const std::int64_t m = 7, n = 17, k = 33;
  const auto a = rand_f32(static_cast<std::size_t>(m * k), 1);
  const auto b = rand_f32(static_cast<std::size_t>(k * n), 2);
  std::vector<float> row(static_cast<std::size_t>(m * n)), col(row.size());
  mk_gemm_f32(*t, a.data(), b.data(), row.data(), m, n, k, nullptr, OpKind::kIdentity, 0.0);
  mk_gemm_f32(*t, a.data(), b.data(), col.data(), m, n, k, nullptr, OpKind::kIdentity, 0.0,
              /*col_major=*/true);
  // Same arithmetic, different store address: transposed layouts are bitwise.
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t j = 0; j < n; ++j) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(row[static_cast<std::size_t>(r * n + j)]),
                std::bit_cast<std::uint32_t>(col[static_cast<std::size_t>(j * m + r)]));
    }
  }

  if (t->gemm_s8 == nullptr) return;
  const auto a8 = rand_s8(static_cast<std::size_t>(m * k), 3);
  const auto b8 = rand_s8(static_cast<std::size_t>(k * n), 4);
  std::vector<std::int32_t> bias(static_cast<std::size_t>(m), 11);
  std::vector<double> mult(static_cast<std::size_t>(m), 0.003);
  std::vector<std::int8_t> row8(static_cast<std::size_t>(m * n)), col8(row8.size());
  const auto s1 = mk_gemm_s8(*t, a8.data(), b8.data(), row8.data(), m, n, k, bias.data(),
                             mult.data(), -128, 127);
  const auto s2 = mk_gemm_s8(*t, a8.data(), b8.data(), col8.data(), m, n, k, bias.data(),
                             mult.data(), -128, 127, /*col_major=*/true);
  EXPECT_EQ(s1, s2);
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t j = 0; j < n; ++j) {
      ASSERT_EQ(row8[static_cast<std::size_t>(r * n + j)],
                col8[static_cast<std::size_t>(j * m + r)]);
    }
  }
}

TEST(Microkernel, PanelPartitionIsBitwiseInvariant) {
  // The pfor over row panels may split anywhere; every split must produce
  // the same bits as one full-range call (the parallel-vs-serial contract
  // at the microkernel layer).
  const auto* t = best_simd_table();
  if (t == nullptr) GTEST_SKIP() << "no SIMD microkernels";
  const std::int64_t m = 13, n = 33, k = 65;
  const auto a = rand_f32(static_cast<std::size_t>(m * k), 10);
  const auto b = rand_f32(static_cast<std::size_t>(k * n), 11);

  std::vector<float> pa(runtime_kernels::packed_a_f32_elems(m, k, t->f32));
  std::vector<float> pb(runtime_kernels::packed_b_f32_elems(k, n, t->f32));
  runtime_kernels::pack_a_f32(a.data(), m, k, t->f32, pa.data());
  runtime_kernels::pack_b_f32(b.data(), k, n, t->f32, 0, panel_count(n, t->f32.nr),
                              pb.data());
  const std::int64_t panels = panel_count(m, t->f32.mr);
  std::vector<float> whole(static_cast<std::size_t>(m * n));
  t->gemm_f32(pa.data(), pb.data(), whole.data(), m, n, k, n, false, 0, panels, nullptr,
              OpKind::kIdentity, 0.0);
  for (std::int64_t split = 1; split < panels; ++split) {
    std::vector<float> parts(whole.size(), -1.0f);
    t->gemm_f32(pa.data(), pb.data(), parts.data(), m, n, k, n, false, 0, split, nullptr,
                OpKind::kIdentity, 0.0);
    t->gemm_f32(pa.data(), pb.data(), parts.data(), m, n, k, n, false, split, panels,
                nullptr, OpKind::kIdentity, 0.0);
    for (std::size_t i = 0; i < whole.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(parts[i]),
                std::bit_cast<std::uint32_t>(whole[i]))
          << "split=" << split << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch resolution and env overrides
// ---------------------------------------------------------------------------

TEST(Dispatch, ForcePortableEnvWinsOverEverything) {
  ScopedEnv force("VEDLIOT_FORCE_PORTABLE", "1");
  EXPECT_EQ(util::resolve_simd_level(util::SimdLevel::kAuto), util::SimdLevel::kPortable);
  EXPECT_EQ(util::resolve_simd_level(util::SimdLevel::kAvx2), util::SimdLevel::kPortable);
}

TEST(Dispatch, ForcePortableZeroIsOff) {
  ScopedEnv force("VEDLIOT_FORCE_PORTABLE", "0");
  const auto resolved = util::resolve_simd_level(util::SimdLevel::kAuto);
  // "0" disables the kill switch: kAuto resolves to the host's best level.
  const auto* t = best_simd_table();
  if (t != nullptr) {
    EXPECT_EQ(resolved, t->level);
  } else {
    EXPECT_EQ(resolved, util::SimdLevel::kPortable);
  }
}

TEST(Dispatch, SimdEnvSelectsLevel) {
  // Neutralize an ambient kill switch (tier1 runs this suite with
  // VEDLIOT_FORCE_PORTABLE=1); "0" means off.
  ScopedEnv off("VEDLIOT_FORCE_PORTABLE", "0");
  {
    ScopedEnv sel("VEDLIOT_SIMD", "portable");
    EXPECT_EQ(util::resolve_simd_level(util::SimdLevel::kAuto),
              util::SimdLevel::kPortable);
  }
  {
    ScopedEnv sel("VEDLIOT_SIMD", "avx2");
    const auto resolved = util::resolve_simd_level(util::SimdLevel::kAuto);
    if (util::simd_supported(util::SimdLevel::kAvx2)) {
      EXPECT_EQ(resolved, util::SimdLevel::kAvx2);
    } else {
      // Unsupported request degrades to portable rather than crashing.
      EXPECT_EQ(resolved, util::SimdLevel::kPortable);
    }
  }
}

TEST(Dispatch, PortableLevelHasNoTable) {
  EXPECT_EQ(runtime_kernels::gemm_microkernels(util::SimdLevel::kPortable), nullptr);
}

TEST(Dispatch, ExecutorReportsActiveLevel) {
  ScopedEnv off("VEDLIOT_FORCE_PORTABLE", "0");
  Graph g = zoo::micro_mlp("m", 1, 16, {24, 12}, 4);
  Rng rng(3);
  g.materialize_weights(rng);
  const Tensor in(Shape{1, 16}, rand_f32(16, 42));

  Executor exec(g);
  exec.set_simd(util::SimdLevel::kPortable);
  (void)testutil::exec_single(exec, g, in);
  EXPECT_EQ(exec.active_simd(), util::SimdLevel::kPortable);

  exec.set_simd(util::SimdLevel::kAuto);
  (void)testutil::exec_single(exec, g, in);
  const auto* t = best_simd_table();
  EXPECT_EQ(exec.active_simd(), t != nullptr ? t->level : util::SimdLevel::kPortable);

  // The kill switch overrides the per-run resolution too.
  ScopedEnv force("VEDLIOT_FORCE_PORTABLE", "1");  // shadows `off` until scope end
  (void)testutil::exec_single(exec, g, in);
  EXPECT_EQ(exec.active_simd(), util::SimdLevel::kPortable);
}

// ---------------------------------------------------------------------------
// Session-level agreement across dispatch levels
// ---------------------------------------------------------------------------

/// micro_cnn with grouped and depthwise convolutions spliced in, so one
/// graph covers the standard, grouped, and depthwise conv paths.
Graph conv_variants_graph(std::int64_t batch = 1) {
  Graph g("convs");
  const NodeId in = g.add_input("x", Shape{batch, 4, 10, 10});
  AttrMap a1;
  a1.set_int("out_channels", 8);
  a1.set_int("kernel", 3);
  a1.set_int("stride", 1);
  a1.set_int("pad", 1);
  a1.set_int("groups", 1);
  a1.set_int("bias", 1);
  const NodeId c1 = g.add(OpKind::kConv2d, "c1", {in}, std::move(a1));
  const NodeId r1 = g.add(OpKind::kRelu, "r1", {c1});
  AttrMap a2;  // grouped: 8 -> 8 with 2 groups
  a2.set_int("out_channels", 8);
  a2.set_int("kernel", 3);
  a2.set_int("stride", 1);
  a2.set_int("pad", 1);
  a2.set_int("groups", 2);
  a2.set_int("bias", 1);
  const NodeId c2 = g.add(OpKind::kConv2d, "c2_grouped", {r1}, std::move(a2));
  AttrMap a3;  // depthwise: groups == channels
  a3.set_int("out_channels", 8);
  a3.set_int("kernel", 3);
  a3.set_int("stride", 1);
  a3.set_int("pad", 1);
  a3.set_int("groups", 8);
  a3.set_int("bias", 1);
  const NodeId c3 = g.add(OpKind::kConv2d, "c3_dw", {c2}, std::move(a3));
  const NodeId r3 = g.add(OpKind::kRelu, "r3", {c3});
  const NodeId flat = g.add(OpKind::kFlatten, "flat", {r3});
  AttrMap ad;
  ad.set_int("units", 5);
  ad.set_int("bias", 1);
  g.add(OpKind::kDense, "head", {flat}, std::move(ad));
  return g;
}

Tensor run_at_level(const Graph& g, const Tensor& in, util::SimdLevel level,
                    unsigned threads = 1) {
  Executor exec(g);
  exec.set_simd(level);
  exec.set_threads(threads);
  return testutil::exec_single(exec, g, in);
}

TEST(SessionDispatch, F32ConvVariantsAgreeAcrossLevels) {
  Graph g = conv_variants_graph();
  Rng rng(5);
  g.materialize_weights(rng);
  const Tensor in(Shape{1, 4, 10, 10}, rand_f32(400, 77));
  const Tensor portable = run_at_level(g, in, util::SimdLevel::kPortable);
  const Tensor simd = run_at_level(g, in, util::SimdLevel::kAuto);
  // Standard + grouped convs ride the f32 microkernel (FMA contraction →
  // tight tolerance); depthwise stays on the direct kernel at every level.
  EXPECT_LT(max_abs_diff(portable, simd), 1e-4f);
}

/// Full int8 pre-deployment pipeline (mirrors test_qruntime's helper).
Graph deploy_ready_q(Graph g, std::uint64_t seed, const Shape& input_shape) {
  Rng rng(seed);
  g.materialize_weights(rng);
  opt::FuseBatchNormPass bn;
  bn.run(g);
  opt::FuseActivationPass act;
  act.run(g);
  std::vector<Tensor> samples;
  Rng data_rng(seed + 1);
  for (int i = 0; i < 8; ++i) {
    samples.emplace_back(input_shape,
                         data_rng.normal_vector(static_cast<std::size_t>(input_shape.numel())));
  }
  opt::calibrate_activations(g, samples, Calibration::kMinMax);
  return g;
}

TEST(SessionDispatch, Int8ConvVariantsBitwiseAcrossLevels) {
  const Shape in_shape{1, 4, 10, 10};
  Graph g = deploy_ready_q(conv_variants_graph(), 9, in_shape);
  const Tensor in(in_shape, rand_f32(400, 78));

  QuantizedExecutor portable(g);
  portable.set_simd(util::SimdLevel::kPortable);
  const QTensor qp = portable.run_single(in);

  QuantizedExecutor simd(g);
  simd.set_simd(util::SimdLevel::kAuto);
  const QTensor qs = simd.run_single(in);

  // Exact int32 arithmetic at every level: bytes and saturation counters
  // must be identical, not merely close.
  ASSERT_EQ(qp.data.size(), qs.data.size());
  for (std::size_t i = 0; i < qp.data.size(); ++i) ASSERT_EQ(qp.data[i], qs.data[i]);
  EXPECT_EQ(portable.saturations(), simd.saturations());
}

TEST(SessionDispatch, Int8DenseBatchedBitwiseAcrossLevels) {
  const Shape in_shape{4, 16};
  Graph g = deploy_ready_q(zoo::micro_mlp("m", 4, 16, {24, 12}, 4), 13, in_shape);
  const Tensor in(in_shape, rand_f32(64, 80));
  QuantizedExecutor portable(g);
  portable.set_simd(util::SimdLevel::kPortable);
  QuantizedExecutor simd(g);
  simd.set_simd(util::SimdLevel::kAuto);
  const QTensor qp = portable.run_single(in);
  const QTensor qs = simd.run_single(in);
  for (std::size_t i = 0; i < qp.data.size(); ++i) ASSERT_EQ(qp.data[i], qs.data[i]);
}

// ---------------------------------------------------------------------------
// Parallel-vs-serial and batch-lane determinism at the SIMD level
// ---------------------------------------------------------------------------

TEST(Determinism, ParallelVsSerialBitwiseAtSimdLevel) {
  Graph g = conv_variants_graph();
  Rng rng(21);
  g.materialize_weights(rng);
  const Tensor in(Shape{1, 4, 10, 10}, rand_f32(400, 90));
  const Tensor serial = run_at_level(g, in, util::SimdLevel::kAuto, 1);
  const Tensor parallel = run_at_level(g, in, util::SimdLevel::kAuto, 4);
  EXPECT_FLOAT_EQ(max_abs_diff(serial, parallel), 0.0f);

  const Tensor pserial = run_at_level(g, in, util::SimdLevel::kPortable, 1);
  const Tensor pparallel = run_at_level(g, in, util::SimdLevel::kPortable, 4);
  EXPECT_FLOAT_EQ(max_abs_diff(pserial, pparallel), 0.0f);
}

TEST(Determinism, Int8ParallelVsSerialBitwiseAtSimdLevel) {
  const Shape in_shape{1, 4, 10, 10};
  Graph g = deploy_ready_q(conv_variants_graph(), 31, in_shape);
  const Tensor in(in_shape, rand_f32(400, 91));
  QuantizedExecutor serial(g);
  serial.set_simd(util::SimdLevel::kAuto);
  serial.set_threads(1);
  QuantizedExecutor parallel(g);
  parallel.set_simd(util::SimdLevel::kAuto);
  parallel.set_threads(4);
  const QTensor a = serial.run_single(in);
  const QTensor b = parallel.run_single(in);
  for (std::size_t i = 0; i < a.data.size(); ++i) ASSERT_EQ(a.data[i], b.data[i]);
  EXPECT_EQ(serial.saturations(), parallel.saturations());
}

/// Two independent conv branches joined by an add: the shape inter-op wave
/// scheduling parallelizes.
Graph branchy_graph(std::int64_t batch = 1) {
  Graph g("branchy");
  const NodeId in = g.add_input("x", Shape{batch, 4, 8, 8});
  auto conv = [](std::int64_t oc) {
    AttrMap a;
    a.set_int("out_channels", oc);
    a.set_int("kernel", 3);
    a.set_int("stride", 1);
    a.set_int("pad", 1);
    a.set_int("groups", 1);
    a.set_int("bias", 1);
    return a;
  };
  const NodeId left = g.add(OpKind::kConv2d, "left", {in}, conv(8));
  const NodeId right = g.add(OpKind::kConv2d, "right", {in}, conv(8));
  const NodeId sum = g.add(OpKind::kAdd, "sum", {left, right});
  const NodeId relu = g.add(OpKind::kRelu, "relu", {sum});
  const NodeId flat = g.add(OpKind::kFlatten, "flat", {relu});
  AttrMap d;
  d.set_int("units", 6);
  d.set_int("bias", 1);
  g.add(OpKind::kDense, "head", {flat}, std::move(d));
  return g;
}

TEST(Determinism, InterOpWavesBitwiseVsSerial) {
  Graph g = branchy_graph();
  Rng rng(41);
  g.materialize_weights(rng);
  const Tensor in(Shape{1, 4, 8, 8}, rand_f32(256, 92));
  for (auto level : {util::SimdLevel::kPortable, util::SimdLevel::kAuto}) {
    Executor serial(g);
    serial.set_simd(level);
    const Tensor a = testutil::exec_single(serial, g, in);
    Executor waves(g);
    waves.set_simd(level);
    waves.set_inter_op(2);
    const Tensor b = testutil::exec_single(waves, g, in);
    EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.0f) << util::simd_level_name(level);
  }
}

TEST(Determinism, BatchLanesBitwiseEqualAtSimdLevel) {
  // Zero-padded panel tails mean every lane of a batched dense executes the
  // identical FMA sequence: 8 copies of one sample must produce 8 bitwise
  // identical output rows (the fleet CRC contract at SIMD dispatch).
  Graph g = zoo::micro_mlp("m", 8, 16, {24, 12}, 4);
  Rng rng(51);
  g.materialize_weights(rng);
  const auto one = rand_f32(16, 93);
  std::vector<float> stacked;
  for (int i = 0; i < 8; ++i) stacked.insert(stacked.end(), one.begin(), one.end());
  Executor exec(g);
  exec.set_simd(util::SimdLevel::kAuto);
  const Tensor out = testutil::exec_single(exec, g, Tensor(Shape{8, 16}, stacked));
  const auto d = out.data();
  const std::size_t row = static_cast<std::size_t>(out.shape().dim(1));
  for (std::size_t lane = 1; lane < 8; ++lane) {
    for (std::size_t j = 0; j < row; ++j) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(d[lane * row + j]),
                std::bit_cast<std::uint32_t>(d[j]))
          << "lane=" << lane << " j=" << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Packed-weight cache lifecycle
// ---------------------------------------------------------------------------

TEST(PackedWeightCache, SteadyStateReusesAndInvalidatesOnVersionOrTile) {
  runtime_kernels::PackedWeightCache cache;
  const MicrokernelTile tile{6, 16};
  std::size_t fills = 0;
  auto pack = [&](std::vector<float>& buf) {
    buf.assign(8, static_cast<float>(++fills));
  };
  (void)cache.get_f32(3, 0, /*graph_version=*/1, tile, pack);
  (void)cache.get_f32(3, 0, 1, tile, pack);  // steady state: no repack
  EXPECT_EQ(cache.packs(), 1u);
  (void)cache.get_f32(3, 1, 1, tile, pack);  // different group: own entry
  EXPECT_EQ(cache.packs(), 2u);
  (void)cache.get_f32(3, 0, /*graph_version=*/2, tile, pack);  // touch() moved
  EXPECT_EQ(cache.packs(), 3u);
  const MicrokernelTile other{4, 8};
  (void)cache.get_f32(3, 0, 2, other, pack);  // dispatch-level change
  EXPECT_EQ(cache.packs(), 4u);
  (void)cache.get_f32(3, 0, 2, other, pack);
  EXPECT_EQ(cache.packs(), 4u);
  cache.clear();
  (void)cache.get_f32(3, 0, 2, other, pack);
  EXPECT_EQ(cache.packs(), 5u);
}

TEST(PackedWeightCache, ExecutorReusesPacksAcrossRuns) {
  const auto* t = resolved_table();
  if (t == nullptr) GTEST_SKIP() << "no SIMD microkernels at the resolved level";
  Graph g = conv_variants_graph();
  Rng rng(61);
  g.materialize_weights(rng);
  const Tensor in(Shape{1, 4, 10, 10}, rand_f32(400, 94));
  Executor exec(g);
  (void)testutil::exec_single(exec, g, in);
  const std::size_t after_first = exec.weight_packs();
  EXPECT_GT(after_first, 0u);
  (void)testutil::exec_single(exec, g, in);
  (void)testutil::exec_single(exec, g, in);
  EXPECT_EQ(exec.weight_packs(), after_first);  // steady state: cache hits only
}

// ---------------------------------------------------------------------------
// OTA-repair self-heal: corrupt → scrub → repair → bitwise-clean rerun
// ---------------------------------------------------------------------------

/// Flip one mantissa bit of the first parametric node's first weight tensor.
void flip_weight_bit(Graph& g) {
  for (NodeId id : g.topo_order()) {
    Node& n = g.node(id);
    if (n.weights.empty()) continue;
    float& w = n.weights.front().at(0);
    w = std::bit_cast<float>(std::bit_cast<std::uint32_t>(w) ^ (1u << 22));
    g.touch();
    return;
  }
  FAIL() << "graph has no parametric node";
}

TEST(SelfHeal, F32RepairInvalidatesPackedPanels) {
  const auto* t = resolved_table();
  if (t == nullptr) GTEST_SKIP() << "no SIMD microkernels at the resolved level";
  Graph live = conv_variants_graph();
  Rng rng(71);
  live.materialize_weights(rng);
  safety::ModelStore store;
  store.install("net", live);
  const Tensor in(Shape{1, 4, 10, 10}, rand_f32(400, 95));

  Executor exec(live);
  const Tensor clean = testutil::exec_single(exec, live, in);
  const std::size_t packs0 = exec.weight_packs();

  safety::WeightScrubber scrub(live, {64});  // baselines the clean bits
  flip_weight_bit(live);
  (void)testutil::exec_single(exec, live, in);  // runs on corrupt weights
  EXPECT_GT(exec.weight_packs(), packs0);       // version bump → repack

  const auto hits = scrub.full_scan();
  ASSERT_FALSE(hits.empty());
  EXPECT_GE(store.repair("net", live, hits), 1u);

  const Tensor healed = testutil::exec_single(exec, live, in);
  // Healed weights + invalidated panels: output is bitwise the clean run.
  EXPECT_FLOAT_EQ(max_abs_diff(healed, clean), 0.0f);
}

TEST(SelfHeal, Int8RepairTriggersRepreparationAndBitwiseCleanRerun) {
  const Shape in_shape{1, 4, 10, 10};
  Graph live = deploy_ready_q(conv_variants_graph(), 81, in_shape);
  safety::ModelStore store;
  store.install("net", live);
  const Tensor in(in_shape, rand_f32(400, 96));

  QuantizedExecutor exec(live);
  EXPECT_EQ(exec.preparations(), 1u);
  const QTensor clean = exec.run_single(in);

  safety::WeightScrubber scrub(live, {64});  // baselines the clean bits
  flip_weight_bit(live);
  (void)exec.run_single(in);  // self-heal re-quantizes from the corrupt bits
  EXPECT_EQ(exec.preparations(), 2u);

  const auto hits = scrub.full_scan();
  ASSERT_FALSE(hits.empty());
  EXPECT_GE(store.repair("net", live, hits), 1u);

  const QTensor healed = exec.run_single(in);
  EXPECT_EQ(exec.preparations(), 3u);  // repair touched the graph again
  ASSERT_EQ(healed.data.size(), clean.data.size());
  for (std::size_t i = 0; i < clean.data.size(); ++i) {
    ASSERT_EQ(healed.data[i], clean.data[i]);
  }
}

// ---------------------------------------------------------------------------
// Roofline probes
// ---------------------------------------------------------------------------

TEST(Roofline, ProbesMeasurePositiveRoofs) {
  const auto roof = hw::measure_host_roofline(util::SimdLevel::kPortable, 0.005);
  EXPECT_EQ(roof.level, util::SimdLevel::kPortable);
  EXPECT_GT(roof.f32_gflops, 0.0);
  EXPECT_GT(roof.s8_gops, 0.0);
}

TEST(Roofline, FractionClampsAndDivides) {
  EXPECT_DOUBLE_EQ(hw::fraction_of_roofline(5.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(hw::fraction_of_roofline(0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(hw::fraction_of_roofline(5.0, 0.0), 0.0);
}

}  // namespace
}  // namespace vedliot
