#include "security/kvstore.hpp"

#include <map>

#include "util/error.hpp"

namespace vedliot::security {

NativeKvStore::NativeKvStore(std::uint32_t capacity) : capacity_(capacity), slots_(capacity) {
  VEDLIOT_CHECK(capacity > 0, "KV store capacity must be positive");
}

bool NativeKvStore::put(std::uint32_t key, std::int32_t value) {
  std::uint32_t idx = key % capacity_;
  for (std::uint32_t probes = 0; probes < capacity_; ++probes) {
    Slot& s = slots_[idx];
    if (s.state == 0) {
      s.state = 1;
      s.key = key;
      s.value = value;
      ++size_;
      return true;
    }
    if (s.key == key) {
      s.value = value;
      return true;
    }
    idx = (idx + 1) % capacity_;
  }
  return false;
}

std::optional<std::int32_t> NativeKvStore::get(std::uint32_t key) const {
  std::uint32_t idx = key % capacity_;
  for (std::uint32_t probes = 0; probes < capacity_; ++probes) {
    const Slot& s = slots_[idx];
    if (s.state == 0) return std::nullopt;
    if (s.key == key) return s.value;
    idx = (idx + 1) % capacity_;
  }
  return std::nullopt;
}

std::int64_t NativeKvStore::sum() const {
  std::int64_t acc = 0;
  for (const Slot& s : slots_) {
    if (s.state != 0) acc += s.value;
  }
  return acc;
}

namespace {

/// Tiny flat-bytecode assembler with label patching.
class Asm {
 public:
  std::uint32_t here() const { return static_cast<std::uint32_t>(code_.size()); }

  void emit(WOp op, std::int32_t imm = 0) { code_.push_back({op, imm}); }

  int new_label() {
    labels_.push_back(-1);
    return static_cast<int>(labels_.size() - 1);
  }

  void bind(int label) { labels_[static_cast<std::size_t>(label)] = static_cast<std::int32_t>(here()); }

  void emit_jump(WOp op, int label) {
    fixups_.emplace_back(here(), label);
    code_.push_back({op, -1});
  }

  std::vector<WInstr> finish() {
    for (const auto& [at, label] : fixups_) {
      const std::int32_t target = labels_[static_cast<std::size_t>(label)];
      VEDLIOT_ASSERT(target >= 0);
      code_[at].imm = target;
    }
    return std::move(code_);
  }

 private:
  std::vector<WInstr> code_;
  std::vector<std::int32_t> labels_;
  std::vector<std::pair<std::size_t, int>> fixups_;
};

}  // namespace

WModule build_kv_module(std::uint32_t capacity) {
  VEDLIOT_CHECK(capacity > 0, "KV module capacity must be positive");
  const auto cap = static_cast<std::int32_t>(capacity);
  WModule m;
  m.memory_bytes = capacity * 12 + 64;

  Asm a;

  // ---- kv_put(key, value): locals 0=key 1=value 2=idx 3=probes 4=addr ----
  const std::uint32_t put_entry = a.here();
  {
    const int loop = a.new_label(), fail = a.new_label(), write_new = a.new_label(),
              write_val = a.new_label(), next = a.new_label();
    a.emit(WOp::kLocalGet, 0);
    a.emit(WOp::kConst, cap);
    a.emit(WOp::kRemS);
    a.emit(WOp::kLocalSet, 2);
    a.emit(WOp::kConst, 0);
    a.emit(WOp::kLocalSet, 3);
    a.bind(loop);
    a.emit(WOp::kLocalGet, 3);
    a.emit(WOp::kConst, cap);
    a.emit(WOp::kLtS);
    a.emit_jump(WOp::kJmpIfZ, fail);
    a.emit(WOp::kLocalGet, 2);
    a.emit(WOp::kConst, 12);
    a.emit(WOp::kMul);
    a.emit(WOp::kLocalSet, 4);
    a.emit(WOp::kLocalGet, 4);
    a.emit(WOp::kLoad, 0);                 // state
    a.emit_jump(WOp::kJmpIfZ, write_new);  // empty -> claim
    a.emit(WOp::kLocalGet, 4);
    a.emit(WOp::kLoad, 4);                 // stored key
    a.emit(WOp::kLocalGet, 0);
    a.emit(WOp::kEq);
    a.emit_jump(WOp::kJmpIfZ, next);       // different key -> probe on
    a.emit_jump(WOp::kJmp, write_val);     // match -> update value
    a.bind(write_new);
    a.emit(WOp::kLocalGet, 4);
    a.emit(WOp::kConst, 1);
    a.emit(WOp::kStore, 0);                // state = 1
    a.emit(WOp::kLocalGet, 4);
    a.emit(WOp::kLocalGet, 0);
    a.emit(WOp::kStore, 4);                // key
    a.bind(write_val);
    a.emit(WOp::kLocalGet, 4);
    a.emit(WOp::kLocalGet, 1);
    a.emit(WOp::kStore, 8);                // value
    a.emit(WOp::kConst, 1);
    a.emit(WOp::kRet);
    a.bind(next);
    a.emit(WOp::kLocalGet, 2);
    a.emit(WOp::kConst, 1);
    a.emit(WOp::kAdd);
    a.emit(WOp::kConst, cap);
    a.emit(WOp::kRemS);
    a.emit(WOp::kLocalSet, 2);
    a.emit(WOp::kLocalGet, 3);
    a.emit(WOp::kConst, 1);
    a.emit(WOp::kAdd);
    a.emit(WOp::kLocalSet, 3);
    a.emit_jump(WOp::kJmp, loop);
    a.bind(fail);
    a.emit(WOp::kConst, 0);
    a.emit(WOp::kRet);
  }

  // ---- kv_get(key): locals 0=key 2=idx 3=probes 4=addr ----
  const std::uint32_t get_entry = a.here();
  {
    const int loop = a.new_label(), absent = a.new_label(), next = a.new_label();
    a.emit(WOp::kLocalGet, 0);
    a.emit(WOp::kConst, cap);
    a.emit(WOp::kRemS);
    a.emit(WOp::kLocalSet, 2);
    a.emit(WOp::kConst, 0);
    a.emit(WOp::kLocalSet, 3);
    a.bind(loop);
    a.emit(WOp::kLocalGet, 3);
    a.emit(WOp::kConst, cap);
    a.emit(WOp::kLtS);
    a.emit_jump(WOp::kJmpIfZ, absent);
    a.emit(WOp::kLocalGet, 2);
    a.emit(WOp::kConst, 12);
    a.emit(WOp::kMul);
    a.emit(WOp::kLocalSet, 4);
    a.emit(WOp::kLocalGet, 4);
    a.emit(WOp::kLoad, 0);
    a.emit_jump(WOp::kJmpIfZ, absent);    // empty slot: key cannot be later
    a.emit(WOp::kLocalGet, 4);
    a.emit(WOp::kLoad, 4);
    a.emit(WOp::kLocalGet, 0);
    a.emit(WOp::kEq);
    a.emit_jump(WOp::kJmpIfZ, next);
    a.emit(WOp::kLocalGet, 4);
    a.emit(WOp::kLoad, 8);
    a.emit(WOp::kRet);
    a.bind(next);
    a.emit(WOp::kLocalGet, 2);
    a.emit(WOp::kConst, 1);
    a.emit(WOp::kAdd);
    a.emit(WOp::kConst, cap);
    a.emit(WOp::kRemS);
    a.emit(WOp::kLocalSet, 2);
    a.emit(WOp::kLocalGet, 3);
    a.emit(WOp::kConst, 1);
    a.emit(WOp::kAdd);
    a.emit(WOp::kLocalSet, 3);
    a.emit_jump(WOp::kJmp, loop);
    a.bind(absent);
    a.emit(WOp::kConst, -1);
    a.emit(WOp::kRet);
  }

  // ---- kv_sum(): locals 0=i 1=acc 2=addr ----
  const std::uint32_t sum_entry = a.here();
  {
    const int loop = a.new_label(), done = a.new_label(), skip = a.new_label();
    a.emit(WOp::kConst, 0);
    a.emit(WOp::kLocalSet, 0);
    a.emit(WOp::kConst, 0);
    a.emit(WOp::kLocalSet, 1);
    a.bind(loop);
    a.emit(WOp::kLocalGet, 0);
    a.emit(WOp::kConst, cap);
    a.emit(WOp::kLtS);
    a.emit_jump(WOp::kJmpIfZ, done);
    a.emit(WOp::kLocalGet, 0);
    a.emit(WOp::kConst, 12);
    a.emit(WOp::kMul);
    a.emit(WOp::kLocalSet, 2);
    a.emit(WOp::kLocalGet, 2);
    a.emit(WOp::kLoad, 0);
    a.emit_jump(WOp::kJmpIfZ, skip);
    a.emit(WOp::kLocalGet, 1);
    a.emit(WOp::kLocalGet, 2);
    a.emit(WOp::kLoad, 8);
    a.emit(WOp::kAdd);
    a.emit(WOp::kLocalSet, 1);
    a.bind(skip);
    a.emit(WOp::kLocalGet, 0);
    a.emit(WOp::kConst, 1);
    a.emit(WOp::kAdd);
    a.emit(WOp::kLocalSet, 0);
    a.emit_jump(WOp::kJmp, loop);
    a.bind(done);
    a.emit(WOp::kLocalGet, 1);
    a.emit(WOp::kRet);
  }

  m.code = a.finish();
  m.functions = {
      {"kv_put", put_entry, 2, 5, true},
      {"kv_get", get_entry, 1, 5, true},
      {"kv_sum", sum_entry, 0, 3, true},
  };
  return m;
}

}  // namespace vedliot::security
