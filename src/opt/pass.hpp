#pragma once
/// \file pass.hpp
/// \brief Optimization pass framework (Sec. III "model surgery").
///
/// Passes mutate a Graph in place and report what they changed. The
/// PassManager runs a pipeline and collects a per-pass log, mirroring how
/// the paper's toolchain applies operator fusion, quantization and pruning
/// between the ONNX import and target compilation stages.

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace vedliot::opt {

struct PassResult {
  std::string pass_name;
  int nodes_changed = 0;     ///< nodes fused/rewritten/eliminated
  std::string detail;        ///< human-readable summary
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  /// Apply the pass; must leave the graph valid (validate() passes).
  virtual PassResult run(Graph& g) = 0;
};

class PassManager {
 public:
  PassManager& add(std::unique_ptr<Pass> pass);

  /// Run all passes in order; validates the graph after each one.
  std::vector<PassResult> run(Graph& g);

  std::size_t size() const { return passes_.size(); }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace vedliot::opt
