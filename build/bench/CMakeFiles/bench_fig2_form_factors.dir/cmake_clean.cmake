file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_form_factors.dir/bench_fig2_form_factors.cpp.o"
  "CMakeFiles/bench_fig2_form_factors.dir/bench_fig2_form_factors.cpp.o.d"
  "bench_fig2_form_factors"
  "bench_fig2_form_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_form_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
