// T-MIRROR — Smart Mirror demonstrator (Sec. V-C / Fig. 5: four neural
// networks — gesture, face, object, speech — all on-site for privacy on a
// low-power uRECS node).
//
// Plans the four pipelines onto every uRECS-compatible module and reports
// feasibility, utilization and average power against the < 15 W budget.

#include <iostream>

#include "bench_common.hpp"
#include "apps/mirror.hpp"
#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::apps;

void print_artifact() {
  bench::banner("T-MIRROR", "smart mirror: 4 NNs on uRECS candidate modules");

  // The per-network workloads (Fig. 5's four models).
  Table nets({"network", "input", "MACs", "params", "rate Hz"});
  const auto pipelines = default_pipelines();
  for (const auto& p : pipelines) {
    Graph g = p.name == "gesture"  ? zoo::gesture_net()
              : p.name == "face"   ? zoo::face_net()
              : p.name == "object" ? zoo::object_det_net()
                                   : zoo::speech_net();
    const auto c = graph_cost(g);
    nets.add_row({p.name, g.node(g.inputs().front()).out_shape.to_string(), fmt_eng(static_cast<double>(c.macs)),
                  fmt_eng(static_cast<double>(c.params)), fmt_fixed(p.rate_hz, 0)});
  }
  nets.print(std::cout);
  std::printf("\n");

  Table t({"module", "feasible", "avg power W", "within 15 W", "peak module util"});
  for (const char* module : {"JetsonXavierNX", "SMARC-iMX8MPlus", "SMARC-ZU3", "Kria-K26",
                             "JetsonTX2", "RPi-CM4"}) {
    try {
      const auto plan = plan_smart_mirror(module);
      double max_util = 0;
      for (const auto& p : plan.placements) max_util += p.utilization;
      t.add_row({module, "yes", fmt_fixed(plan.average_power_w, 2),
                 plan.within_power_budget ? "yes" : "NO", fmt_percent(max_util)});
    } catch (const Error& e) {
      t.add_row({module, "no", "-", "-", "-"});
    }
  }
  t.print(std::cout);
  bench::note("privacy: every feasible plan keeps all sensing on-site by construction.");
  bench::note("shape: NPU/FPGA/eGPU modules host all four nets under 15 W; a plain CPU");
  bench::note("module cannot (no supported low-precision path).");

  // Headroom experiment: how far do rates scale on the best module?
  std::printf("\nrate scaling on JetsonXavierNX:\n\n");
  Table s({"rate multiplier", "feasible", "total utilization"});
  for (double mult : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    auto scaled = default_pipelines();
    for (auto& p : scaled) p.rate_hz *= mult;
    try {
      const auto plan = plan_smart_mirror("JetsonXavierNX", scaled);
      double util = 0;
      for (const auto& p : plan.placements) util += p.utilization;
      s.add_row({fmt_ratio(mult, 0), "yes", fmt_percent(util)});
    } catch (const Error&) {
      s.add_row({fmt_ratio(mult, 0), "no", "-"});
    }
  }
  s.print(std::cout);
}

static void BM_PlanMirror(benchmark::State& state) {
  for (auto _ : state) {
    auto plan = plan_smart_mirror("JetsonXavierNX");
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanMirror)->Unit(benchmark::kMillisecond);

VEDLIOT_BENCH_MAIN()
