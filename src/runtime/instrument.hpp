#pragma once
/// \file instrument.hpp
/// \brief Shared observability conventions of the runtime executors: both
/// the float reference and the integer executor report through the same
/// metric names so dashboards and tests can compare backends directly.

#include <string>

#include "graph/op.hpp"
#include "obs/metrics.hpp"

namespace vedliot::runtime_detail {

/// Per-op-class node latency histogram, microseconds over [0, 10 ms).
/// One sample is added per executed (non-input) node, so the sample counts
/// across all op-class histograms sum to nodes_executed.
inline obs::Histogram& op_histogram(obs::MetricsRegistry& registry, OpKind kind) {
  return registry.histogram("vedliot.runtime.op." + std::string(op_name(kind)),
                            /*lo=*/0.0, /*hi=*/1e4, /*buckets=*/50);
}

/// Fraction of the configured thread budget a kernel dispatch actually used
/// (chunks issued / threads). One sample per parallel dispatch; a mass near
/// 1.0 means the partitioning keeps every worker busy, a mass near 1/threads
/// means the op was too small to split.
inline obs::Histogram& pool_utilization_histogram(obs::MetricsRegistry& registry) {
  return registry.histogram("vedliot.runtime.pool.utilization",
                            /*lo=*/0.0, /*hi=*/1.0 + 1e-9, /*buckets=*/20);
}

inline constexpr const char* kRunsCounter = "vedliot.runtime.runs";
inline constexpr const char* kNodesCounter = "vedliot.runtime.nodes_executed";
inline constexpr const char* kSaturationsGauge = "vedliot.runtime.saturations";
inline constexpr const char* kThreadsGauge = "vedliot.runtime.threads";
/// Sustained GEMM throughput of the last run (conv + dense kernels only).
inline constexpr const char* kGemmGflopsGauge = "vedliot.runtime.gemm.gflops";
/// Packed arena slab size and bytes saved vs per-node allocation.
inline constexpr const char* kArenaBytesGauge = "vedliot.runtime.arena.bytes";
inline constexpr const char* kArenaSavedGauge = "vedliot.runtime.arena.saved_bytes";

}  // namespace vedliot::runtime_detail
