#include "serve/ring.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace vedliot::serve {
namespace {

/// FNV-1a feeds its final byte through a single multiply, so strings that
/// differ only in a short suffix — exactly the "<member>/vnode-<k>" point
/// names — land with nearly identical high bits, and the high bits are what
/// order the circle. A splitmix64-style finalizer restores full avalanche
/// before a hash becomes a ring position.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

std::uint64_t ring_point(const std::string& name) { return mix64(util::fnv1a64(name)); }

}  // namespace

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes) {
  VEDLIOT_CHECK(vnodes_ >= 1, "hash ring needs at least one vnode per member");
}

void HashRing::add(const std::string& member, double weight) {
  if (member.empty()) {
    throw InvalidArgument("ring member name must be non-empty");
  }
  if (contains(member)) {
    throw InvalidArgument("ring already contains member " + member);
  }
  if (!(weight > 0.0)) {
    throw InvalidArgument("ring member weight must be positive");
  }
  const auto points = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(static_cast<double>(vnodes_) * weight)));
  members_.insert(std::lower_bound(members_.begin(), members_.end(), member), member);
  for (std::size_t v = 0; v < points; ++v) {
    const std::uint64_t point = ring_point(member + "/vnode-" + std::to_string(v));
    // A 64-bit collision between distinct (member, vnode) points would make
    // placement depend on insertion order; treat it as the config error it is.
    const auto [it, inserted] = circle_.emplace(point, member);
    VEDLIOT_CHECK(inserted || it->second == member,
                  "hash-ring point collision between " + it->second + " and " + member);
  }
}

void HashRing::remove(const std::string& member) {
  const auto it = std::lower_bound(members_.begin(), members_.end(), member);
  if (it == members_.end() || *it != member) {
    throw NotFound("ring has no member " + member);
  }
  members_.erase(it);
  for (auto c = circle_.begin(); c != circle_.end();) {
    c = c->second == member ? circle_.erase(c) : std::next(c);
  }
}

bool HashRing::contains(const std::string& member) const {
  return std::binary_search(members_.begin(), members_.end(), member);
}

std::vector<std::string> HashRing::members() const { return members_; }

const std::string& HashRing::route(const std::string& key) const {
  VEDLIOT_CHECK(!circle_.empty(), "routing on an empty ring");
  const std::uint64_t point = ring_point(key);
  const auto it = circle_.lower_bound(point);
  return it == circle_.end() ? circle_.begin()->second : it->second;
}

std::map<std::string, double> HashRing::load_fractions(std::size_t probes) const {
  VEDLIOT_CHECK(probes >= 1, "load probe count must be >= 1");
  std::map<std::string, double> out;
  for (const auto& m : members_) out.emplace(m, 0.0);
  for (std::size_t i = 0; i < probes; ++i) {
    out[route("probe-" + std::to_string(i))] += 1.0 / static_cast<double>(probes);
  }
  return out;
}

}  // namespace vedliot::serve
