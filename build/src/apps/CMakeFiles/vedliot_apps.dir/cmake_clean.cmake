file(REMOVE_RECURSE
  "CMakeFiles/vedliot_apps.dir/arc.cpp.o"
  "CMakeFiles/vedliot_apps.dir/arc.cpp.o.d"
  "CMakeFiles/vedliot_apps.dir/detection.cpp.o"
  "CMakeFiles/vedliot_apps.dir/detection.cpp.o.d"
  "CMakeFiles/vedliot_apps.dir/mirror.cpp.o"
  "CMakeFiles/vedliot_apps.dir/mirror.cpp.o.d"
  "CMakeFiles/vedliot_apps.dir/motor.cpp.o"
  "CMakeFiles/vedliot_apps.dir/motor.cpp.o.d"
  "CMakeFiles/vedliot_apps.dir/network.cpp.o"
  "CMakeFiles/vedliot_apps.dir/network.cpp.o.d"
  "CMakeFiles/vedliot_apps.dir/paeb.cpp.o"
  "CMakeFiles/vedliot_apps.dir/paeb.cpp.o.d"
  "libvedliot_apps.a"
  "libvedliot_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
