#pragma once
/// \file qexecutor.hpp
/// \brief True integer INT8 executor (Sec. III steps 5-6: the kernels a
/// deployment target actually runs after quantization).
///
/// Unlike the fake-quant modelling in opt/quantize.hpp (which measures
/// accuracy impact in float), this executor performs integer arithmetic:
/// int8 operands, int32 accumulation, per-output-channel weight scales and
/// fixed activation scales from calibration, with requantization between
/// layers — the TFLite-style reference semantics.
///
/// Requirements on the graph:
///  - weights materialized (fp32 masters; quantization happens here),
///  - BatchNorm folded away (run opt::FuseBatchNormPass first),
///  - `act_scale` attributes present on every node (run
///    opt::calibrate_activations first).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/kernels.hpp"
#include "runtime/microkernel.hpp"
#include "runtime/packed_cache.hpp"
#include "tensor/tensor.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

namespace vedliot {

/// Quantized activation tensor: symmetric int8 with one scale.
struct QTensor {
  Shape shape;
  std::vector<std::int8_t> data;
  double scale = 1.0;

  /// Dequantize to float for inspection / the final output.
  Tensor dequantize() const;
};

/// Quantize a float tensor at a fixed scale (round-to-nearest, saturate).
QTensor quantize_fixed(const Tensor& t, double scale);

class QuantizedExecutor {
 public:
  explicit QuantizedExecutor(const Graph& graph);

  /// Run on a float input (quantized at the input node's calibrated scale);
  /// returns the quantized graph output.
  ///
  /// This is the engine entry runtime::Session wraps; application code goes
  /// through Session (which also dequantizes the output). Direct
  /// construction is reserved for integer-domain introspection (QTensor
  /// scales, saturation accounting) the session API does not expose.
  QTensor run_single(const Tensor& input);

  /// Attach observability sinks (either may be null); same span/metric
  /// taxonomy as Executor::instrument, with backend "int8". The sinks must
  /// outlive the executor.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Intra-op parallelism (including the calling thread); 0 selects the
  /// hardware concurrency, default 1. Integer kernels partition output
  /// channels/rows only and sum per-chunk saturation counts, so both the
  /// output bits and saturations() are independent of this value.
  void set_threads(unsigned threads);

  /// Execute Conv2D as im2col + int8 GEMM (default) or the direct loop.
  void set_use_gemm_conv(bool on) { use_gemm_ = on; }

  /// Requested kernel dispatch level (default kAuto); resolved per run with
  /// the env overrides applied. The int8 microkernel performs the exact
  /// int32 arithmetic of the scalar reference, so outputs are bitwise
  /// identical at every level.
  void set_simd(util::SimdLevel level) { simd_req_ = level; }
  /// The concrete dispatch level the last run_single() executed at.
  util::SimdLevel active_simd() const { return active_simd_; }

  /// Total weight-pack operations of the packed-panel cache (test hook;
  /// see Executor::weight_packs).
  std::size_t weight_packs() const { return packed_.packs(); }

  /// Times the quantize-and-pack preparation has run: once at construction,
  /// plus once per detected Graph::version() change (OTA swap / scrubber
  /// repair self-heal).
  std::size_t preparations() const { return preparations_; }

  /// After run_single(): number of non-input nodes executed.
  std::size_t nodes_executed() const { return nodes_executed_; }

  /// Accumulated int8 saturation events across all runs (requantization
  /// clamps) — a deployment health metric.
  std::uint64_t saturations() const { return saturations_; }

 private:
  struct PreparedLayer {
    std::vector<std::int8_t> weights;       ///< quantized at per-channel scales
    std::vector<double> weight_scales;      ///< one per output channel
    std::vector<std::int32_t> bias;         ///< at in_scale * w_scale[c]
    std::vector<double> mult;               ///< in_scale * w_scale[c] / out_scale
  };

  /// Per-node integer-domain constants resolved once at construction (the
  /// fused-activation clamp window used to be re-parsed from string attrs on
  /// every node execution).
  struct QNodePlan {
    std::int32_t q_lo = -128, q_hi = 127;   ///< fused Relu/Relu6 output clamp
    bool fused_unsupported = false;         ///< fused act the int path can't run
    std::string fused_name;                 ///< for the error message only
    runtime_kernels::Conv2dGeometry conv;   ///< valid for kConv2d nodes
  };

  QTensor execute_node(const Node& n, const std::vector<const QTensor*>& ins);
  /// Dispatch [begin, end) over the pool; each chunk accumulates saturation
  /// events into its own slot of \p sat (size >= threads).
  void pfor(std::int64_t begin, std::int64_t end, std::int64_t grain,
            const util::ThreadPool::ChunkFn& fn);
  /// (Re)quantize every parametric layer from the graph's current fp32
  /// weights and stamp prepared_version_. Run again whenever the live graph
  /// mutates (Graph::version() moved): the quantized copies and packed
  /// panels would otherwise serve stale — possibly corrupt — weights after
  /// a ModelStore repair/restore or OTA swap.
  void prepare();

  const Graph& graph_;
  std::map<NodeId, PreparedLayer> prepared_;
  std::map<NodeId, double> out_scale_;
  std::vector<QNodePlan> qplans_;           ///< indexed by NodeId over all slots
  std::uint64_t prepared_version_ = 0;      ///< Graph::version() at prepare()
  std::size_t preparations_ = 0;
  std::uint64_t saturations_ = 0;
  std::size_t nodes_executed_ = 0;
  unsigned threads_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;
  bool use_gemm_ = true;
  std::vector<std::int8_t> scratch_;        ///< im2col column matrix
  std::vector<std::int8_t> packed_b_;       ///< microkernel B panels
  util::SimdLevel simd_req_ = util::SimdLevel::kAuto;
  util::SimdLevel active_simd_ = util::SimdLevel::kPortable;
  const runtime_kernels::GemmMicrokernels* mk_ = nullptr;  ///< s8-capable table or null
  runtime_kernels::PackedWeightCache packed_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace vedliot
