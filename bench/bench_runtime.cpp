// T-EXEC — toolchain substrate: the execution engine (thread-pool
// parallelism, im2col/GEMM convolution, activation arena) and the
// liveness-based memory planner (the "memory hierarchy study" of
// Sec. II-B applied to activation buffers).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "opt/fusion.hpp"
#include "opt/quantize.hpp"
#include "runtime/memory_planner.hpp"
#include "runtime/session.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace vedliot;

namespace {

/// One configuration of the ResNet-50 execution-engine sweep.
struct SweepPoint {
  std::int64_t batch = 1;
  unsigned threads = 1;
  bool gemm = true;
  double seconds = 0;   ///< median wall-clock of the timed runs
  double speedup = 1;   ///< vs the serial seed path (direct conv, 1 thread)
};

double median_run_seconds(runtime::Session& session, const std::string& feed,
                          const Tensor& x, int repeats) {
  (void)session.run({{feed, x}});  // warm-up: arena + scratch allocation
  std::vector<double> times;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)session.run({{feed, x}});
    const auto t1 = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// ResNet-50 engine sweep (batch x threads x conv algorithm). Writes the
/// machine-readable baseline to $VEDLIOT_BENCH_RUNTIME_JSON when set — the
/// file checked in as BENCH_runtime.json.
void engine_sweep() {
  constexpr std::int64_t kImage = 64;  // full 224 is impractical for the direct baseline
  constexpr int kRepeats = 3;

  std::printf("\nExecution engine: ResNet-50 (image %lld), direct-serial seed vs GEMM+threads:\n\n",
              static_cast<long long>(kImage));
  Table t({"batch", "conv", "threads", "median run", "speedup vs seed"});

  std::vector<SweepPoint> points;
  for (std::int64_t batch : {std::int64_t{1}, std::int64_t{8}}) {
    Graph g = zoo::resnet50(batch, 10, kImage);
    Rng rng(7);
    g.materialize_weights(rng);
    const std::string feed = g.node(g.inputs().front()).name;
    Rng data_rng(8);
    Tensor x(Shape{batch, 3, kImage, kImage},
             data_rng.normal_vector(static_cast<std::size_t>(batch * 3 * kImage * kImage)));

    // Seed baseline: the pre-engine executor semantics (direct conv, serial).
    SweepPoint base{batch, 1, false};
    {
      auto s = runtime::make_session(g, {.exec = {.threads = 1}, .use_gemm_conv = false});
      base.seconds = median_run_seconds(*s, feed, x, kRepeats);
    }
    points.push_back(base);
    t.add_row({std::to_string(batch), "direct", "1", fmt_fixed(base.seconds * 1e3, 1) + " ms",
               fmt_ratio(1.0)});

    for (unsigned threads : {1u, 2u, 4u}) {
      SweepPoint p{batch, threads, true};
      auto s = runtime::make_session(g, {.exec = {.threads = threads}, .use_gemm_conv = true});
      p.seconds = median_run_seconds(*s, feed, x, kRepeats);
      p.speedup = base.seconds / p.seconds;
      points.push_back(p);
      t.add_row({std::to_string(batch), "gemm", std::to_string(threads),
                 fmt_fixed(p.seconds * 1e3, 1) + " ms", fmt_ratio(p.speedup)});
    }
  }
  t.print(std::cout);
  bench::note("speedups on a single-core host come from the GEMM restructuring;");
  bench::note("thread scaling needs hardware_concurrency > 1 (recorded in the JSON).");

  if (const char* path = std::getenv("VEDLIOT_BENCH_RUNTIME_JSON")) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", path);
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_runtime\",\n  \"model\": \"resnet50\",\n");
    std::fprintf(f, "  \"image\": %lld,\n  \"repeats\": %d,\n", static_cast<long long>(kImage),
                 kRepeats);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", util::ThreadPool::hardware_threads());
    std::fprintf(f, "  \"baseline\": \"direct conv, threads=1 (seed executor semantics)\",\n");
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      std::fprintf(f,
                   "    {\"batch\": %lld, \"conv\": \"%s\", \"threads\": %u, "
                   "\"median_seconds\": %s, \"speedup_vs_seed\": %s}%s\n",
                   static_cast<long long>(p.batch), p.gemm ? "gemm" : "direct", p.threads,
                   obs::json_number(p.seconds).c_str(), obs::json_number(p.speedup).c_str(),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
  }
}

}  // namespace

void print_artifact() {
  bench::banner("T-EXEC", "memory planner: arena reuse vs naive allocation");
  bench::Section section("bench_runtime", "memory-planner");

  Table t({"model", "activations (naive)", "arena (planned)", "reuse", "weights fp32"});
  struct Entry {
    const char* name;
    Graph g;
  };
  for (auto& [name, g] : {Entry{"resnet50", zoo::resnet50()},
                          Entry{"mobilenet_v3", zoo::mobilenet_v3_large()},
                          Entry{"yolov4", zoo::yolov4()},
                          Entry{"gesture_net", zoo::gesture_net()},
                          Entry{"pedestrian_net", zoo::pedestrian_net()}}) {
    const MemoryPlan plan = plan_memory(g, DType::kFP32);
    if (!plan_is_valid(plan)) {
      std::printf("INVALID PLAN for %s!\n", name);
      continue;
    }
    t.add_row({name, fmt_fixed(static_cast<double>(plan.naive_bytes) / (1 << 20), 1) + " MiB",
               fmt_fixed(static_cast<double>(plan.arena_bytes) / (1 << 20), 1) + " MiB",
               fmt_ratio(plan.reuse_factor()),
               fmt_fixed(weight_bytes(g, DType::kFP32) / (1 << 20), 1) + " MiB"});
  }
  t.print(std::cout);

  std::printf("\nINT8 activations shrink the arena further:\n\n");
  Table q({"model", "fp32 arena", "int8 arena"});
  for (auto& [name, g] : {Entry{"mobilenet_v3", zoo::mobilenet_v3_large()},
                          Entry{"yolov4", zoo::yolov4()}}) {
    const auto p32 = plan_memory(g, DType::kFP32);
    const auto p8 = plan_memory(g, DType::kINT8);
    q.add_row({name, fmt_fixed(static_cast<double>(p32.arena_bytes) / (1 << 20), 1) + " MiB",
               fmt_fixed(static_cast<double>(p8.arena_bytes) / (1 << 20), 2) + " MiB"});
  }
  q.print(std::cout);
  bench::note("shape: liveness-based packing cuts activation memory by an order of magnitude,");
  bench::note("which is what makes MiB-class on-chip buffers viable for these models.");

  // True-integer INT8 deployment path: agreement with the float reference.
  std::printf("\nINT8 integer executor vs float reference (micro CNN, 32 samples):\n\n");
  Graph g = zoo::micro_cnn("deploy", 1, 1, 16, 4);
  Rng rng(12);
  g.materialize_weights(rng);
  opt::FuseBatchNormPass bn;
  bn.run(g);
  opt::FuseActivationPass act;
  act.run(g);
  std::vector<Tensor> calib;
  Rng data_rng(13);
  for (int i = 0; i < 16; ++i) calib.emplace_back(Shape{1, 1, 16, 16}, data_rng.normal_vector(256));
  opt::calibrate_activations(g, calib, Calibration::kMinMax);

  auto fsession = runtime::make_session(g);
  auto qsession = runtime::make_quantized_session(g);
  std::uint64_t saturations = 0;
  int agree = 0;
  double total_rmse = 0;
  for (int i = 0; i < 32; ++i) {
    Tensor x(Shape{1, 1, 16, 16}, data_rng.normal_vector(256));
    const Tensor fy = fsession->run_single(x);
    const auto qr = qsession->run({{g.node(g.inputs().front()).name, x}});
    const Tensor& qy = qr.single();
    saturations = qr.saturations;
    total_rmse += rmse(fy, qy);
    std::size_t fa = 0, qa = 0;
    for (std::int64_t j = 1; j < fy.numel(); ++j) {
      if (fy.at(static_cast<std::size_t>(j)) > fy.at(fa)) fa = static_cast<std::size_t>(j);
      if (qy.at(static_cast<std::size_t>(j)) > qy.at(qa)) qa = static_cast<std::size_t>(j);
    }
    if (fa == qa) ++agree;
  }
  std::printf("top-1 agreement %d/32, mean softmax RMSE %.4f, int8 saturations %llu\n", agree,
              total_rmse / 32.0, static_cast<unsigned long long>(saturations));

  engine_sweep();
}

static void BM_PlanMemoryMobileNet(benchmark::State& state) {
  Graph g = zoo::mobilenet_v3_large();
  for (auto _ : state) {
    auto plan = plan_memory(g, DType::kINT8);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanMemoryMobileNet)->Unit(benchmark::kMillisecond);

static void BM_ExecutorMicroCnn(benchmark::State& state) {
  Graph g = zoo::micro_cnn("m", 1, 1, 32, 10);
  Rng rng(1);
  g.materialize_weights(rng);
  auto session = runtime::make_session(g);
  Rng data_rng(2);
  Tensor input(Shape{1, 1, 32, 32}, data_rng.normal_vector(1024));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->run_single(input));
  }
  const auto c = graph_cost(g);
  state.counters["MACs/s"] = benchmark::Counter(
      static_cast<double>(c.macs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecutorMicroCnn)->Unit(benchmark::kMillisecond);

static void BM_ExecutorDense(benchmark::State& state) {
  Graph g = zoo::micro_mlp("m", 1, 1024, {1024}, 256);
  Rng rng(1);
  g.materialize_weights(rng);
  auto session = runtime::make_session(g);
  Rng data_rng(2);
  Tensor input(Shape{1, 1024}, data_rng.normal_vector(1024));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->run_single(input));
  }
}
BENCHMARK(BM_ExecutorDense)->Unit(benchmark::kMicrosecond);

static void BM_GraphValidateYolo(benchmark::State& state) {
  Graph g = zoo::yolov4();
  for (auto _ : state) {
    g.validate();
  }
}
BENCHMARK(BM_GraphValidateYolo)->Unit(benchmark::kMillisecond);

VEDLIOT_BENCH_MAIN()
