file(REMOVE_RECURSE
  "CMakeFiles/vedliot_safety.dir/hybrid.cpp.o"
  "CMakeFiles/vedliot_safety.dir/hybrid.cpp.o.d"
  "CMakeFiles/vedliot_safety.dir/monitors.cpp.o"
  "CMakeFiles/vedliot_safety.dir/monitors.cpp.o.d"
  "CMakeFiles/vedliot_safety.dir/robustness.cpp.o"
  "CMakeFiles/vedliot_safety.dir/robustness.cpp.o.d"
  "libvedliot_safety.a"
  "libvedliot_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
