#pragma once
/// \file hash.hpp
/// \brief Non-cryptographic integrity hashes.
///
/// CRC-32 (the ISO-HDLC / zlib polynomial, reflected) is the per-tensor
/// weight digest used by the model-package format and the runtime weight
/// scrubber: cheap enough to re-hash deployed weights a few tensors per
/// control tick, and any single bit flip is guaranteed to change the
/// digest. For tamper-resistance against an *adversary* the packages are
/// additionally sealed (security/crypto.hpp); CRC-32 targets silent data
/// corruption, not attacks.

#include <cstdint>
#include <span>
#include <string_view>

namespace vedliot::util {

/// CRC-32 of a byte span. \p seed chains incremental computation: pass the
/// previous result to continue a digest across fragments (crc32 of the
/// concatenation equals the chained value). check value: crc32("123456789")
/// == 0xCBF43926.
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

/// CRC-32 over the raw IEEE-754 bytes of a float span (the weight-tensor
/// digest: bit flips below float equality tolerance still change it).
std::uint32_t crc32(std::span<const float> data, std::uint32_t seed = 0);

/// FNV-1a 64-bit over a string: the placement hash behind the consistent
/// ring (serve/ring.hpp), idempotency-cache keys, and the soak harnesses'
/// event-log digests. \p seed chains incremental computation (pass the
/// previous result to continue across fragments); the default is the FNV
/// offset basis.
std::uint64_t fnv1a64(std::string_view s, std::uint64_t seed = 0xCBF29CE484222325ull);

}  // namespace vedliot::util
