#include "graph/serialize.hpp"

#include <map>
#include <sstream>

#include "analysis/verifier.hpp"
#include "util/error.hpp"

namespace vedliot {

namespace {

void emit_attrs(std::ostringstream& os, const AttrMap& attrs) {
  os << "attrs{";
  bool first = true;
  for (const auto& [key, value] : attrs.raw()) {
    if (!first) os << ' ';
    first = false;
    os << key << '=';
    if (const auto* i = std::get_if<std::int64_t>(&value)) {
      os << "int:" << *i;
    } else if (const auto* d = std::get_if<double>(&value)) {
      os << "float:" << *d;
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      os << "str:" << *s;
    } else if (const auto* v = std::get_if<std::vector<std::int64_t>>(&value)) {
      os << "ints:";
      for (std::size_t i = 0; i < v->size(); ++i) {
        if (i) os << ',';
        os << (*v)[i];
      }
    }
  }
  os << '}';
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

AttrMap parse_attrs(const std::string& body) {
  AttrMap attrs;
  if (body.empty()) return attrs;
  for (const auto& item : split(body, ' ')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) throw GraphError("malformed attribute: " + item);
    const std::string key = item.substr(0, eq);
    const std::string rest = item.substr(eq + 1);
    const auto colon = rest.find(':');
    if (colon == std::string::npos) throw GraphError("malformed attribute value: " + item);
    const std::string type = rest.substr(0, colon);
    const std::string value = rest.substr(colon + 1);
    if (type == "int") {
      attrs.set_int(key, std::stoll(value));
    } else if (type == "float") {
      attrs.set_float(key, std::stod(value));
    } else if (type == "str") {
      attrs.set_str(key, value);
    } else if (type == "ints") {
      std::vector<std::int64_t> v;
      if (!value.empty()) {
        for (const auto& piece : split(value, ',')) v.push_back(std::stoll(piece));
      }
      attrs.set_ints(key, std::move(v));
    } else {
      throw GraphError("unknown attribute type: " + type);
    }
  }
  return attrs;
}

}  // namespace

std::string to_text(const Graph& g) {
  std::ostringstream os;
  os << "graph " << g.name() << '\n';
  // Dead nodes are compacted away, so emit dense indexes.
  std::map<NodeId, NodeId> dense;
  for (NodeId id : g.topo_order()) dense[id] = static_cast<NodeId>(dense.size());
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    os << "node " << op_name(n.kind) << " \"" << n.name << "\" in=";
    for (std::size_t i = 0; i < n.inputs.size(); ++i) {
      if (i) os << ',';
      os << dense.at(n.inputs[i]);
    }
    os << ' ';
    emit_attrs(os, n.attrs);
    if (n.kind == OpKind::kInput) {
      os << " shape=";
      for (std::size_t i = 0; i < n.out_shape.rank(); ++i) {
        if (i) os << ',';
        os << n.out_shape.dim(i);
      }
    }
    os << '\n';
  }
  return os.str();
}

Graph from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  VEDLIOT_CHECK(std::getline(is, line), "empty graph text");
  if (line.rfind("graph ", 0) != 0) throw GraphError("expected 'graph <name>' header");
  Graph g(line.substr(6));

  // ids in the file refer to the live-only order; remap onto new ids.
  std::map<NodeId, NodeId> remap;
  NodeId file_id = 0;

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.rfind("node ", 0) != 0) throw GraphError("expected 'node' line, got: " + line);
    std::string rest = line.substr(5);

    const auto sp = rest.find(' ');
    if (sp == std::string::npos) throw GraphError("malformed node line: " + line);
    const OpKind kind = parse_op(rest.substr(0, sp));
    rest = rest.substr(sp + 1);

    if (rest.empty() || rest[0] != '"') throw GraphError("expected quoted name: " + line);
    const auto endq = rest.find('"', 1);
    if (endq == std::string::npos) throw GraphError("unterminated name: " + line);
    const std::string name = rest.substr(1, endq - 1);
    rest = rest.substr(endq + 1);
    if (!rest.empty() && rest[0] == ' ') rest = rest.substr(1);

    if (rest.rfind("in=", 0) != 0) throw GraphError("expected in= list: " + line);
    const auto in_end = rest.find(' ');
    const std::string in_body = rest.substr(3, in_end == std::string::npos ? std::string::npos : in_end - 3);
    rest = in_end == std::string::npos ? std::string() : rest.substr(in_end + 1);

    std::vector<NodeId> inputs;
    if (!in_body.empty()) {
      for (const auto& piece : split(in_body, ',')) {
        const NodeId orig = static_cast<NodeId>(std::stol(piece));
        auto it = remap.find(orig);
        if (it == remap.end()) throw GraphError("node references unknown input id: " + line);
        inputs.push_back(it->second);
      }
    }

    AttrMap attrs;
    if (rest.rfind("attrs{", 0) == 0) {
      const auto close = rest.find('}');
      if (close == std::string::npos) throw GraphError("unterminated attrs: " + line);
      attrs = parse_attrs(rest.substr(6, close - 6));
      rest = rest.substr(close + 1);
      if (!rest.empty() && rest[0] == ' ') rest = rest.substr(1);
    }

    NodeId new_id;
    if (kind == OpKind::kInput) {
      if (rest.rfind("shape=", 0) != 0) throw GraphError("Input node missing shape=: " + line);
      std::vector<std::int64_t> dims;
      for (const auto& piece : split(rest.substr(6), ',')) dims.push_back(std::stoll(piece));
      new_id = g.add_input(name, Shape{std::move(dims)});
      // Inputs carry attrs too (e.g. act_scale after calibration); dropping
      // them here used to silently de-calibrate round-tripped graphs.
      if (!attrs.raw().empty()) {
        g.node(new_id).attrs = std::move(attrs);
        g.touch();
      }
    } else {
      new_id = g.add(kind, name, std::move(inputs), std::move(attrs));
    }
    remap[file_id++] = new_id;
  }
  // Full IR verification (not just Graph::validate): hand-edited or corrupt
  // text is rejected with the complete findings table in the error message.
  analysis::verify_or_throw(g);
  return g;
}

}  // namespace vedliot
