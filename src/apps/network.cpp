#include "apps/network.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vedliot::apps {

std::string_view coverage_name(Coverage c) {
  switch (c) {
    case Coverage::kGood5G: return "5G";
    case Coverage::kUrban4G: return "urban-4G";
    case Coverage::kSuburban4G: return "suburban-4G";
    case Coverage::kRural3G: return "rural-3G";
    case Coverage::kDeadZone: return "dead-zone";
  }
  throw InvalidArgument("unknown Coverage");
}

LinkState nominal_state(Coverage c) {
  switch (c) {
    case Coverage::kGood5G: return {120.0, 12.0, 0.001};
    case Coverage::kUrban4G: return {35.0, 35.0, 0.005};
    case Coverage::kSuburban4G: return {12.0, 55.0, 0.01};
    case Coverage::kRural3G: return {2.0, 140.0, 0.03};
    case Coverage::kDeadZone: return {0.05, 800.0, 0.3};
  }
  throw InvalidArgument("unknown Coverage");
}

MobileNetwork::MobileNetwork(Coverage coverage, std::uint64_t seed)
    : coverage_(coverage), state_(nominal_state(coverage)), rng_(seed) {}

const LinkState& MobileNetwork::step(double dt_s) {
  const LinkState nominal = nominal_state(coverage_);
  // Mean-reverting random walk (fading), with occasional deep fades.
  const double revert = std::min(1.0, dt_s / 2.0);
  auto wander = [&](double cur, double nom, double rel_noise, double lo) {
    double next = cur + (nom - cur) * revert + rng_.normal(0.0, nom * rel_noise * dt_s);
    if (rng_.chance(0.02 * dt_s)) next *= 0.3;  // shadowing event
    return std::max(lo, next);
  };
  state_.bandwidth_mbps = wander(state_.bandwidth_mbps, nominal.bandwidth_mbps, 0.15, 0.01);
  state_.rtt_ms = std::max(1.0, state_.rtt_ms + (nominal.rtt_ms - state_.rtt_ms) * revert +
                                    rng_.normal(0.0, nominal.rtt_ms * 0.1 * dt_s));
  state_.loss = std::clamp(nominal.loss + rng_.normal(0.0, nominal.loss * 0.2), 0.0, 0.9);
  return state_;
}

LinkState MobileNetwork::probe() {
  LinkState est = state_;
  est.bandwidth_mbps = std::max(0.01, est.bandwidth_mbps * (1.0 + rng_.normal(0.0, 0.1)));
  est.rtt_ms = std::max(1.0, est.rtt_ms * (1.0 + rng_.normal(0.0, 0.08)));
  return est;
}

double MobileNetwork::transfer_time_s(double payload_bytes, double response_bytes) const {
  const double up = payload_bytes * 8.0 / (state_.bandwidth_mbps * 1e6);
  // Downlink assumed 4x the uplink (typical asymmetry).
  const double down = response_bytes * 8.0 / (state_.bandwidth_mbps * 4.0 * 1e6);
  const double rtt = state_.rtt_ms * 1e-3;
  // Expected retransmission inflation under iid loss.
  const double inflation = 1.0 / std::max(1e-6, 1.0 - state_.loss);
  return (up + down) * inflation + rtt;
}

}  // namespace vedliot::apps
