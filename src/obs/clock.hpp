#pragma once
/// \file clock.hpp
/// \brief Monotonic time sources for the observability subsystem.
///
/// Every obs component that stamps time goes through the Clock interface so
/// that tests can inject a FakeClock and get bit-identical traces run after
/// run (the determinism requirement the resilience tests already impose on
/// the event log).

#include <chrono>
#include <cstdint>

namespace vedliot::obs {

/// Nanosecond monotonic clock interface.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual std::uint64_t now_ns() = 0;
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Deterministic clock for tests: time only moves when told to, plus an
/// optional fixed auto-tick per reading so nested spans get distinct,
/// reproducible timestamps without manual advancing between every call.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::uint64_t start_ns = 0) : now_(start_ns) {}

  std::uint64_t now_ns() override {
    const std::uint64_t t = now_;
    now_ += auto_tick_ns_;
    return t;
  }

  void advance_ns(std::uint64_t delta) { now_ += delta; }
  void advance_us(std::uint64_t delta) { now_ += delta * 1000; }
  void advance_ms(std::uint64_t delta) { now_ += delta * 1000000; }

  /// Every now_ns() call advances time by \p tick after reading.
  void set_auto_tick_ns(std::uint64_t tick) { auto_tick_ns_ = tick; }

 private:
  std::uint64_t now_ = 0;
  std::uint64_t auto_tick_ns_ = 0;
};

}  // namespace vedliot::obs
