#include "security/enclave.hpp"

#include <cstring>

namespace vedliot::security {

Enclave::Enclave(EnclaveConfig config, WModule module, Key platform_root,
                 ModuleAdmission admission)
    : config_(config),
      measurement_(sha256(module.serialize())),
      admission_(admission),
      platform_root_(platform_root),
      vm_(std::move(module)) {
  if (config_.require_verified) {
    if (!admission_.verified) {
      throw EnclaveError("enclave refuses unverified module: no verifier admission");
    }
    if (!digest_equal(admission_.module_digest, measurement_)) {
      throw EnclaveError(
          "enclave refuses module: admission digest does not match measurement");
    }
  }
  if (config_.require_cost_bound && !admission_.cost_bounded) {
    throw EnclaveError("enclave refuses module without a static fuel bound");
  }
}

void Enclave::add_host(HostImport import) {
  // Wrap the import so every invocation is accounted as an OCALL.
  HostFn inner = std::move(import.fn);
  import.fn = [this, inner](HostContext& ctx, const std::vector<std::int32_t>& args) {
    ++ledger_.ocalls;
    ledger_.simulated_ns += config_.ocall_ns;
    return inner(ctx, args);
  };
  vm_.add_host(std::move(import));
}

std::int32_t Enclave::ecall(const std::string& fn, const std::vector<std::int32_t>& args) {
  ++ledger_.ecalls;
  ledger_.simulated_ns += config_.ecall_ns;
  const std::uint64_t before = vm_.instructions_retired();
  if (config_.require_cost_bound && admission_.cost_bounded) {
    // The static worst-case bound doubles as a per-invoke fuel cap: a module
    // that exceeds its own proof is misbehaving and traps immediately.
    // Fuel accounting is cumulative across invokes, so re-anchor each ecall.
    vm_.set_fuel_limit(before + admission_.fuel_bound);
  }
  const std::int32_t result = vm_.invoke(fn, args);
  const std::uint64_t executed = vm_.instructions_retired() - before;
  ledger_.vm_instructions += executed;
  ledger_.simulated_ns += static_cast<double>(executed) * config_.vm_ns_per_instr;

  // EPC paging: if the module's linear memory exceeds the usable EPC, every
  // ecall pays eviction traffic proportional to the overflow.
  const double mem_kib = static_cast<double>(vm_.memory().size()) / 1024.0;
  if (mem_kib > config_.epc_kib) {
    ledger_.simulated_ns += (mem_kib - config_.epc_kib) * config_.paging_ns_per_kib;
  }
  return result;
}

Key Enclave::sealing_key() const {
  // KDF over the hardware root and MRENCLAVE, as in SGX's EGETKEY with the
  // MRENCLAVE policy.
  Key k = derive_key(platform_root_, "vedliot-seal");
  Digest d = hmac_sha256(k, measurement_);
  Key out;
  std::memcpy(out.data(), d.data(), out.size());
  return out;
}

SealedBlob Enclave::seal(std::span<const std::uint8_t> data) {
  SealedBlob blob;
  // Deterministic per-enclave nonce counter (a real implementation uses a
  // hardware RNG; a counter keeps tests reproducible and is still unique).
  ++seal_counter_;
  std::memcpy(blob.nonce.data(), &seal_counter_, sizeof(seal_counter_));
  const Key k = sealing_key();
  blob.ciphertext = chacha20_xor(k, blob.nonce, 1, data);

  std::vector<std::uint8_t> mac_input(blob.nonce.begin(), blob.nonce.end());
  mac_input.insert(mac_input.end(), blob.ciphertext.begin(), blob.ciphertext.end());
  blob.mac = hmac_sha256(k, mac_input);
  return blob;
}

std::vector<std::uint8_t> Enclave::unseal(const SealedBlob& blob) {
  const Key k = sealing_key();
  std::vector<std::uint8_t> mac_input(blob.nonce.begin(), blob.nonce.end());
  mac_input.insert(mac_input.end(), blob.ciphertext.begin(), blob.ciphertext.end());
  const Digest expected = hmac_sha256(k, mac_input);
  if (!digest_equal(expected, blob.mac)) {
    throw EnclaveError("sealed blob MAC mismatch (tampered or wrong enclave identity)");
  }
  return chacha20_xor(k, blob.nonce, 1, blob.ciphertext);
}

}  // namespace vedliot::security
