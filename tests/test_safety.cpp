// Tests for the safety stack: input monitors, output robustness service,
// fault injection, architectural hybridization kernel.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "exec_single.hpp"
#include "graph/package.hpp"
#include "graph/zoo.hpp"
#include "obs/metrics.hpp"
#include "runtime/executor.hpp"
#include "runtime/session.hpp"
#include "safety/hybrid.hpp"
#include "safety/model_store.hpp"
#include "safety/monitors.hpp"
#include "safety/robustness.hpp"
#include "safety/scrub.hpp"
#include "util/rng.hpp"

namespace vedliot::safety {
namespace {

TimeSeriesMonitor::Config default_ts_config() {
  TimeSeriesMonitor::Config cfg;
  cfg.window = 32;
  cfg.range_lo = -100.0;
  cfg.range_hi = 100.0;
  return cfg;
}

TEST(TimeSeriesMonitor, CleanSignalPasses) {
  TimeSeriesMonitor mon(default_ts_config());
  Rng rng(1);
  std::size_t bad = 0;
  for (int i = 0; i < 500; ++i) {
    if (mon.check(std::sin(i * 0.1) + rng.normal(0.0, 0.1)) != DataVerdict::kOk) ++bad;
  }
  // a robust monitor tolerates a noisy sine with near-zero false alarms
  EXPECT_LE(bad, 5u);
}

TEST(TimeSeriesMonitor, DetectsSpikeOutlier) {
  TimeSeriesMonitor mon(default_ts_config());
  Rng rng(2);
  for (int i = 0; i < 100; ++i) mon.check(rng.normal(0.0, 0.5));
  EXPECT_EQ(mon.check(50.0), DataVerdict::kOutlier);
  // the corrected value is the last known-good sample, not the spike
  EXPECT_LT(std::abs(mon.corrected()), 5.0);
}

TEST(TimeSeriesMonitor, OutlierDoesNotPoisonWindow) {
  // After one spike, normal samples must keep passing (median/MAD, not
  // mean/stddev, and rejected samples stay out of the window).
  TimeSeriesMonitor mon(default_ts_config());
  Rng rng(3);
  for (int i = 0; i < 100; ++i) mon.check(rng.normal(0.0, 0.5));
  mon.check(80.0);
  std::size_t bad = 0;
  for (int i = 0; i < 100; ++i) {
    if (mon.check(rng.normal(0.0, 0.5)) != DataVerdict::kOk) ++bad;
  }
  EXPECT_LE(bad, 2u);
}

TEST(TimeSeriesMonitor, DetectsStuckSensor) {
  auto cfg = default_ts_config();
  cfg.stuck_run = 5;
  TimeSeriesMonitor mon(cfg);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) mon.check(rng.normal(0.0, 1.0));
  DataVerdict v = DataVerdict::kOk;
  for (int i = 0; i < 10; ++i) v = mon.check(3.25);
  EXPECT_EQ(v, DataVerdict::kStuckAt);
}

TEST(TimeSeriesMonitor, DetectsMissingAndRange) {
  TimeSeriesMonitor mon(default_ts_config());
  EXPECT_EQ(mon.check(std::numeric_limits<double>::quiet_NaN()), DataVerdict::kMissing);
  EXPECT_EQ(mon.check(std::numeric_limits<double>::infinity()), DataVerdict::kMissing);
  EXPECT_EQ(mon.check(1000.0), DataVerdict::kOutOfRange);
  EXPECT_EQ(mon.check(-101.0), DataVerdict::kOutOfRange);
}

TEST(TimeSeriesMonitor, CountsAnomalies) {
  TimeSeriesMonitor mon(default_ts_config());
  Rng rng(5);
  for (int i = 0; i < 64; ++i) mon.check(rng.normal(0.0, 1.0));
  mon.check(1e6);
  mon.check(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(mon.anomalies(), 2u);
  EXPECT_EQ(mon.samples_seen(), 66u);
}

Tensor synthetic_frame(double mean, double noise, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(Shape{1, 1, 24, 24});
  for (float& v : t.data()) {
    v = static_cast<float>(std::clamp(mean + rng.normal(0.0, noise), 0.0, 1.0));
  }
  return t;
}

TEST(ImageMonitor, GoodFramePasses) {
  ImageMonitor mon;
  EXPECT_EQ(mon.check(synthetic_frame(0.5, 0.02, 1)), DataVerdict::kOk);
}

TEST(ImageMonitor, DetectsExposureProblems) {
  ImageMonitor mon;
  EXPECT_EQ(mon.check(synthetic_frame(0.005, 0.001, 2)), DataVerdict::kOutOfRange);  // dark
  Tensor bright(Shape{1, 1, 24, 24});
  bright.fill(0.999f);
  EXPECT_EQ(mon.check(bright), DataVerdict::kOutOfRange);
}

TEST(ImageMonitor, DetectsCoveredLens) {
  ImageMonitor mon;
  Tensor flat(Shape{1, 1, 24, 24});
  flat.fill(0.5f);
  EXPECT_EQ(mon.check(flat), DataVerdict::kStuckAt);
}

TEST(ImageMonitor, DetectsHeavyNoise) {
  ImageMonitor mon;
  EXPECT_EQ(mon.check(synthetic_frame(0.5, 0.5, 3)), DataVerdict::kNoisy);
}

TEST(ImageMonitor, DetectsNanPixels) {
  ImageMonitor mon;
  Tensor t = synthetic_frame(0.5, 0.02, 4);
  t.at(10) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(mon.check(t), DataVerdict::kMissing);
}

TEST(ImageMonitor, NoiseEstimatorOrdersFrames) {
  const double clean = ImageMonitor::noise_level(synthetic_frame(0.5, 0.01, 5));
  const double noisy = ImageMonitor::noise_level(synthetic_frame(0.5, 0.3, 6));
  EXPECT_LT(clean, noisy);
}

TEST(Correction, PolicyMapping) {
  EXPECT_EQ(correction_for(DataVerdict::kOk), CorrectionAction::kPass);
  EXPECT_EQ(correction_for(DataVerdict::kOutlier), CorrectionAction::kReplace);
  EXPECT_EQ(correction_for(DataVerdict::kMissing), CorrectionAction::kReplace);
  EXPECT_EQ(correction_for(DataVerdict::kNoisy), CorrectionAction::kDrop);
  EXPECT_EQ(correction_for(DataVerdict::kStuckAt), CorrectionAction::kDrop);
}

// ---------------------------------------------------------------------------
// Robustness service
// ---------------------------------------------------------------------------

struct Deployment {
  Graph graph;
  std::unique_ptr<runtime::Session> exec;
};

Deployment deploy_micro(std::uint64_t seed = 7) {
  Deployment d{zoo::micro_mlp("m", 1, 16, {24, 16}, 4), nullptr};
  Rng rng(seed);
  d.graph.materialize_weights(rng);
  d.exec = runtime::make_session(d.graph);
  return d;
}

Tensor sample_input(std::uint64_t seed) {
  Rng rng(seed);
  return Tensor(Shape{1, 16}, rng.normal_vector(16));
}

TEST(Robustness, HealthyDeploymentProducesNoFaults) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {4, 1e-4});
  for (int i = 0; i < 32; ++i) {
    const Tensor in = sample_input(static_cast<std::uint64_t>(i));
    service.submit(in, d.exec->run_single(in));
  }
  EXPECT_EQ(service.faults_detected(), 0u);
  EXPECT_EQ(service.checks_run(), 8u);  // every 4th of 32
}

TEST(Robustness, DetectsBitFlippedModel) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {1, 1e-5});  // check everything

  Rng rng(55);
  FaultInjector injector(rng);
  injector.flip_weight_bits(d.graph, 16);
  Executor faulty(d.graph);

  std::size_t detected = 0;
  for (int i = 0; i < 16; ++i) {
    const Tensor in = sample_input(static_cast<std::uint64_t>(i));
    if (service.submit(in, testutil::exec_single(faulty, d.graph, in)) == CheckResult::kCheckedFaulty) ++detected;
  }
  EXPECT_GT(detected, 0u);
}

TEST(Robustness, DetectsZeroedChannel) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {1, 1e-5});
  Rng rng(56);
  FaultInjector injector(rng);
  injector.zero_random_channel(d.graph);
  Executor faulty(d.graph);
  std::size_t detected = 0;
  for (int i = 0; i < 16; ++i) {
    const Tensor in = sample_input(static_cast<std::uint64_t>(i));
    if (service.submit(in, testutil::exec_single(faulty, d.graph, in)) == CheckResult::kCheckedFaulty) ++detected;
  }
  EXPECT_GT(detected, 0u);
}

TEST(Robustness, DetectsScaledLayerAttack) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {1, 1e-5});
  Rng rng(57);
  FaultInjector injector(rng);
  injector.scale_random_layer(d.graph, 1.5f);
  Executor faulty(d.graph);
  std::size_t detected = 0;
  for (int i = 0; i < 16; ++i) {
    const Tensor in = sample_input(static_cast<std::uint64_t>(i));
    if (service.submit(in, testutil::exec_single(faulty, d.graph, in)) == CheckResult::kCheckedFaulty) ++detected;
  }
  EXPECT_GT(detected, 0u);
}

TEST(Robustness, PeriodSamplingSkipsChecks) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {8, 1e-4});
  for (int i = 0; i < 16; ++i) {
    const Tensor in = sample_input(static_cast<std::uint64_t>(i));
    service.submit(in, d.exec->run_single(in));
  }
  EXPECT_EQ(service.submissions(), 16u);
  EXPECT_EQ(service.checks_run(), 2u);
}

TEST(Robustness, GoldenCopyIndependentOfDeployedGraph) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {1, 1e-5});
  const Tensor in = sample_input(0);
  const Tensor good = d.exec->run_single(in);
  // Corrupt the deployed graph AFTER the service took its copy.
  Rng rng(58);
  FaultInjector(rng).scale_random_layer(d.graph, 10.0f);
  // The service still validates against the original behaviour.
  EXPECT_EQ(service.submit(in, good), CheckResult::kCheckedOk);
}

TEST(Robustness, SubmitDistinguishesSkippedFromVerified) {
  // The conflated bool return used to make "skipped by sampling" look like
  // "verified clean"; the CheckResult enum keeps the three outcomes apart.
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {2, 1e-4});
  const Tensor in = sample_input(0);
  const Tensor good = d.exec->run_single(in);
  EXPECT_EQ(service.submit(in, good), CheckResult::kNotChecked);  // 1st of period 2
  EXPECT_EQ(service.submit(in, good), CheckResult::kCheckedOk);

  Tensor bad = good;
  bad.at(0) += 1.0f;
  EXPECT_EQ(service.submit(in, bad), CheckResult::kNotChecked);
  EXPECT_EQ(service.submit(in, bad), CheckResult::kCheckedFaulty);
  EXPECT_EQ(service.faults_detected(), 1u);

  EXPECT_EQ(check_result_name(CheckResult::kNotChecked), "not-checked");
  EXPECT_EQ(check_result_name(CheckResult::kCheckedOk), "checked-ok");
  EXPECT_EQ(check_result_name(CheckResult::kCheckedFaulty), "checked-faulty");
}

// ---------------------------------------------------------------------------
// Fault injector structure: each fault class does exactly what it claims,
// deterministically under a fixed seed, and the golden-model service flags
// it (beyond the detection-rate tests above).
// ---------------------------------------------------------------------------

std::vector<Tensor> snapshot_weights(const Graph& g) {
  std::vector<Tensor> out;
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    if (!n.weights.empty()) out.push_back(n.weights[0]);
  }
  return out;
}

TEST(FaultInjector, ZeroRandomChannelZeroesExactlyOneChannel) {
  Deployment d = deploy_micro();
  const auto before = snapshot_weights(d.graph);
  Rng rng(77);
  FaultInjector(rng).zero_random_channel(d.graph);
  const auto after = snapshot_weights(d.graph);
  ASSERT_EQ(before.size(), after.size());

  std::size_t changed_layers = 0;
  for (std::size_t l = 0; l < before.size(); ++l) {
    if (std::equal(before[l].data().begin(), before[l].data().end(),
                   after[l].data().begin())) {
      continue;
    }
    ++changed_layers;
    // Exactly one output channel went to zero; the rest are untouched.
    const auto oc = after[l].shape().dim(0);
    const auto per = static_cast<std::size_t>(after[l].numel() / oc);
    std::size_t zeroed = 0;
    for (std::int64_t c = 0; c < oc; ++c) {
      const auto chan = after[l].data().subspan(static_cast<std::size_t>(c) * per, per);
      const bool all_zero =
          std::all_of(chan.begin(), chan.end(), [](float v) { return v == 0.0f; });
      const auto prev = before[l].data().subspan(static_cast<std::size_t>(c) * per, per);
      if (all_zero) {
        ++zeroed;
      } else {
        EXPECT_TRUE(std::equal(prev.begin(), prev.end(), chan.begin()));
      }
    }
    EXPECT_EQ(zeroed, 1u);
  }
  EXPECT_EQ(changed_layers, 1u);
}

TEST(FaultInjector, ScaleRandomLayerScalesExactlyOneLayer) {
  Deployment d = deploy_micro();
  const auto before = snapshot_weights(d.graph);
  Rng rng(78);
  FaultInjector(rng).scale_random_layer(d.graph, 2.0f);
  const auto after = snapshot_weights(d.graph);
  ASSERT_EQ(before.size(), after.size());

  std::size_t changed_layers = 0;
  for (std::size_t l = 0; l < before.size(); ++l) {
    bool same = true, scaled = true;
    for (std::int64_t i = 0; i < before[l].numel(); ++i) {
      const float b = before[l].at(static_cast<std::size_t>(i));
      const float a = after[l].at(static_cast<std::size_t>(i));
      if (a != b) same = false;
      if (a != 2.0f * b) scaled = false;
    }
    if (!same) {
      ++changed_layers;
      EXPECT_TRUE(scaled) << "layer " << l << " changed but not by the gain factor";
    }
  }
  EXPECT_EQ(changed_layers, 1u);
}

TEST(FaultInjector, DeterministicUnderFixedSeed) {
  Deployment a = deploy_micro();
  Deployment b = deploy_micro();
  Rng ra(99), rb(99);
  FaultInjector(ra).zero_random_channel(a.graph);
  FaultInjector(rb).zero_random_channel(b.graph);
  const auto wa = snapshot_weights(a.graph);
  const auto wb = snapshot_weights(b.graph);
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t l = 0; l < wa.size(); ++l) {
    EXPECT_TRUE(std::equal(wa[l].data().begin(), wa[l].data().end(), wb[l].data().begin()));
  }
}

TEST(FaultInjector, RequiresParametricNodes) {
  Graph g("no-params");
  const NodeId in = g.add_input("x", Shape{1, 8});
  g.add(OpKind::kRelu, "relu", {in});
  Rng rng(5);
  FaultInjector injector(rng);
  EXPECT_THROW(injector.zero_random_channel(g), Error);
  EXPECT_THROW(injector.scale_random_layer(g, 2.0f), Error);
  EXPECT_THROW(injector.flip_weight_bits(g, 1), Error);
}

TEST(FaultInjector, ServiceFlagsEachFaultClass) {
  // The golden-model service must flag every injected fault class on at
  // least one probe input (period 1, tight tolerance).
  const auto detect = [](void (*inject)(Graph&, Rng&)) {
    Deployment d = deploy_micro();
    RobustnessService service(d.graph, {1, 1e-5});
    Rng rng(101);
    inject(d.graph, rng);
    Executor faulty(d.graph);
    std::size_t hits = 0;
    for (int i = 0; i < 24; ++i) {
      const Tensor in = sample_input(static_cast<std::uint64_t>(1000 + i));
      if (service.submit(in, testutil::exec_single(faulty, d.graph, in)) == CheckResult::kCheckedFaulty) ++hits;
    }
    return hits;
  };
  EXPECT_GT(detect([](Graph& g, Rng& r) { FaultInjector(r).zero_random_channel(g); }), 0u);
  EXPECT_GT(detect([](Graph& g, Rng& r) { FaultInjector(r).scale_random_layer(g, 1.5f); }), 0u);
  EXPECT_GT(detect([](Graph& g, Rng& r) { FaultInjector(r).flip_weight_bits(g, 16); }), 0u);
}

// ---------------------------------------------------------------------------
// Hybridization kernel
// ---------------------------------------------------------------------------

PayloadTask perception_task() {
  PayloadTask t;
  t.name = "perception";
  t.period_s = 0.1;
  t.deadline_s = 0.15;
  t.misses_to_degrade = 1;
  t.misses_to_stop = 3;
  return t;
}

TEST(Hybrid, StaysNormalWithTimelyHeartbeats) {
  SafetyKernel kernel;
  kernel.register_task(perception_task());
  double now = 0;
  for (int i = 0; i < 50; ++i) {
    now += 0.1;
    kernel.heartbeat("perception", now);
    EXPECT_EQ(kernel.tick(now), SystemState::kNormal);
  }
  EXPECT_EQ(kernel.missed_deadlines("perception"), 0u);
}

TEST(Hybrid, DegradesOnMissedDeadline) {
  SafetyKernel kernel;
  kernel.register_task(perception_task());
  bool degraded_cb = false;
  kernel.on_degraded([&] { degraded_cb = true; });
  kernel.heartbeat("perception", 0.1);
  EXPECT_EQ(kernel.tick(0.3), SystemState::kDegraded);  // >0.15 gap
  EXPECT_TRUE(degraded_cb);
}

TEST(Hybrid, SafeStopLatchesAfterRepeatedMisses) {
  SafetyKernel kernel;
  kernel.register_task(perception_task());
  bool stopped = false;
  kernel.on_safe_stop([&] { stopped = true; });
  kernel.heartbeat("perception", 0.1);
  double now = 0.3;
  SystemState s = SystemState::kNormal;
  for (int i = 0; i < 5; ++i) {
    s = kernel.tick(now);
    now += 0.2;
  }
  EXPECT_EQ(s, SystemState::kSafeStop);
  EXPECT_TRUE(stopped);
  // latched: even a resumed heartbeat cannot clear SafeStop
  kernel.heartbeat("perception", now);
  kernel.try_recover(now);
  EXPECT_EQ(kernel.tick(now), SystemState::kSafeStop);
}

TEST(Hybrid, RecoversFromDegraded) {
  SafetyKernel kernel;
  kernel.register_task(perception_task());
  kernel.heartbeat("perception", 0.1);
  EXPECT_EQ(kernel.tick(0.3), SystemState::kDegraded);
  // heartbeats resume within deadline
  kernel.heartbeat("perception", 0.35);
  kernel.heartbeat("perception", 0.45);
  kernel.try_recover(0.5);
  EXPECT_EQ(kernel.tick(0.5), SystemState::kNormal);
}

TEST(Hybrid, MultipleTasksWorstCaseGoverns) {
  SafetyKernel kernel;
  kernel.register_task(perception_task());
  PayloadTask planner = perception_task();
  planner.name = "planner";
  kernel.register_task(planner);
  double now = 0.1;
  kernel.heartbeat("perception", now);
  kernel.heartbeat("planner", now);
  // only the planner stalls
  for (int i = 0; i < 5; ++i) {
    now += 0.1;
    kernel.heartbeat("perception", now);
    kernel.tick(now);
  }
  EXPECT_GT(kernel.missed_deadlines("planner"), 0u);
  EXPECT_EQ(kernel.missed_deadlines("perception"), 0u);
  EXPECT_NE(kernel.state(), SystemState::kNormal);
}

TEST(Hybrid, ValidationErrors) {
  SafetyKernel kernel;
  PayloadTask bad = perception_task();
  bad.deadline_s = 0.01;  // < period
  EXPECT_THROW(kernel.register_task(bad), Error);
  kernel.register_task(perception_task());
  EXPECT_THROW(kernel.register_task(perception_task()), Error);
  EXPECT_THROW(kernel.heartbeat("ghost", 0.0), NotFound);
  EXPECT_THROW((void)kernel.missed_deadlines("ghost"), NotFound);
}

// ---------------------------------------------------------------------------
// Weight scrubber
// ---------------------------------------------------------------------------

/// Flip one mantissa bit of weights[tensor][elem] on the n-th parametric
/// node — a surgical, known-location SEU for localization tests.
void flip_at(Graph& g, std::size_t nth_parametric, std::size_t tensor, std::size_t elem) {
  std::size_t seen = 0;
  for (NodeId id : g.topo_order()) {
    Node& n = g.node(id);
    if (n.weights.empty()) continue;
    if (seen++ != nth_parametric) continue;
    float& w = n.weights.at(tensor).at(static_cast<std::int64_t>(elem));
    auto u = std::bit_cast<std::uint32_t>(w);
    w = std::bit_cast<float>(u ^ (1u << 22));
    return;
  }
  FAIL() << "graph has no parametric node " << nth_parametric;
}

TEST(WeightScrubber, CleanGraphScansWithoutHits) {
  Deployment d = deploy_micro();
  WeightScrubber scrub(d.graph, {2});
  EXPECT_EQ(scrub.entries(), digest_weights(d.graph).size());
  for (std::size_t i = 0; i < 3 * scrub.ticks_per_sweep(); ++i) {
    EXPECT_TRUE(scrub.tick().empty());
  }
  EXPECT_EQ(scrub.hits(), 0u);
  EXPECT_GE(scrub.tensors_scanned(), scrub.entries());
}

TEST(WeightScrubber, SweepBoundIsCeilOfEntriesOverBudget) {
  Deployment d = deploy_micro();
  const std::size_t entries = digest_weights(d.graph).size();
  WeightScrubber one(d.graph, {1});
  EXPECT_EQ(one.ticks_per_sweep(), entries);
  WeightScrubber big(d.graph, {entries + 5});
  EXPECT_EQ(big.ticks_per_sweep(), 1u);
  WeightScrubber two(d.graph, {2});
  EXPECT_EQ(two.ticks_per_sweep(), (entries + 1) / 2);
}

TEST(WeightScrubber, LocalizesBitFlipWithinOneSweep) {
  Deployment d = deploy_micro();
  WeightScrubber scrub(d.graph, {2});
  flip_at(d.graph, 1, 0, 3);

  std::vector<WeightScrubber::Hit> hits;
  for (std::size_t i = 0; i < scrub.ticks_per_sweep(); ++i) {
    auto h = scrub.tick();
    hits.insert(hits.end(), h.begin(), h.end());
  }
  ASSERT_EQ(hits.size(), 1u);  // localized to exactly one (node, tensor)
  EXPECT_EQ(hits[0].tensor, 0u);
  EXPECT_NE(hits[0].expected, hits[0].actual);
  EXPECT_FALSE(hits[0].node_name.empty());
  // the hit names the node we corrupted
  std::size_t seen = 0;
  for (NodeId id : d.graph.topo_order()) {
    const Node& n = d.graph.node(id);
    if (n.weights.empty()) continue;
    if (seen++ == 1) {
      EXPECT_EQ(hits[0].node, id);
    }
  }
}

TEST(WeightScrubber, RebaselineTrustsCurrentBits) {
  Deployment d = deploy_micro();
  WeightScrubber scrub(d.graph, {64});
  flip_at(d.graph, 0, 0, 0);
  EXPECT_FALSE(scrub.full_scan().empty());
  scrub.rebaseline();  // e.g. an intentional in-place update
  EXPECT_TRUE(scrub.full_scan().empty());
}

TEST(WeightScrubber, FullScanFindsEveryCorruptTensor) {
  Deployment d = deploy_micro();
  WeightScrubber scrub(d.graph, {1});
  flip_at(d.graph, 0, 0, 1);
  flip_at(d.graph, 2, 0, 0);
  EXPECT_EQ(scrub.full_scan().size(), 2u);
}

// ---------------------------------------------------------------------------
// Model store: install / repair / restore / OTA push / rollback
// ---------------------------------------------------------------------------

Tensor probe_input(std::uint64_t seed = 42) { return sample_input(seed); }

TEST(ModelStore, InstallAndMaterializeRoundTrip) {
  Deployment d = deploy_micro();
  ModelStore store;
  EXPECT_EQ(store.install("kws", d.graph), 1u);
  EXPECT_TRUE(store.has("kws"));
  EXPECT_EQ(store.version("kws"), 1u);
  EXPECT_FALSE(store.can_rollback("kws"));
  EXPECT_THROW((void)store.install("kws", d.graph), InvalidArgument);

  Graph fresh = store.materialize("kws");
  const Tensor in = probe_input();
  EXPECT_FLOAT_EQ(
      max_abs_diff(d.exec->run_single(in), testutil::exec_single(fresh, in)), 0.0f);
}

TEST(ModelStore, RepairRewritesOnlyTheHitTensors) {
  Deployment d = deploy_micro();
  ModelStore store;
  store.install("kws", d.graph);

  Graph live = store.materialize("kws");
  WeightScrubber scrub(live, {64});
  flip_at(live, 1, 0, 5);
  const auto hits = scrub.full_scan();
  ASSERT_EQ(hits.size(), 1u);

  EXPECT_EQ(store.repair("kws", live, hits), 1u);
  EXPECT_TRUE(scrub.full_scan().empty());  // repaired bits re-match golden
  const Tensor in = probe_input();
  EXPECT_FLOAT_EQ(
      max_abs_diff(d.exec->run_single(in), testutil::exec_single(live, in)), 0.0f);
}

TEST(ModelStore, RestoreRewritesEveryTensor) {
  Deployment d = deploy_micro();
  ModelStore store;
  store.install("kws", d.graph);

  Graph live = store.materialize("kws");
  flip_at(live, 0, 0, 0);
  flip_at(live, 1, 0, 1);
  flip_at(live, 2, 0, 2);
  EXPECT_EQ(store.restore("kws", live), digest_weights(d.graph).size());
  WeightScrubber scrub(live, {64});
  EXPECT_TRUE(scrub.full_scan().empty());
}

TEST(ModelStore, PushCommitsVerifiedUpdate) {
  Deployment d = deploy_micro();
  ModelStore store;
  store.install("kws", d.graph);

  Graph v2 = d.graph.clone();
  for (NodeId id : v2.topo_order()) {
    Node& n = v2.node(id);
    if (!n.weights.empty()) {
      for (float& w : n.weights[0].data()) w *= 1.01f;
    }
  }
  v2.touch();
  const auto report = store.push("kws", make_ota_package(v2));
  EXPECT_EQ(report.outcome, OtaOutcome::kCommitted);
  EXPECT_EQ(report.from_version, 1u);
  EXPECT_EQ(report.to_version, 2u);
  EXPECT_EQ(store.version("kws"), 2u);
  EXPECT_TRUE(store.can_rollback("kws"));

  const Tensor in = probe_input();
  EXPECT_FLOAT_EQ(
      max_abs_diff(testutil::exec_single(v2, in), testutil::exec_single(store.materialize("kws"), in)),
      0.0f);
}

TEST(ModelStore, PushRejectsCorruptedPayload) {
  Deployment d = deploy_micro();
  ModelStore store;
  store.install("kws", d.graph);

  OtaPackage update = make_ota_package(d.graph);
  update.package.at(update.package.size() / 2) ^= 0x08;  // one flipped bit in transit
  const auto report = store.push("kws", update);
  EXPECT_EQ(report.outcome, OtaOutcome::kRejected);
  EXPECT_NE(report.detail.find("staging failed"), std::string::npos);
  EXPECT_EQ(store.version("kws"), 1u);  // old version still serving
  EXPECT_FALSE(store.can_rollback("kws"));
}

TEST(ModelStore, PushRejectsCanaryDivergence) {
  // The package itself is intact, but the publisher-declared outputs don't
  // match what the model produces — a wrong-weights / wrong-toolchain push.
  Deployment d = deploy_micro();
  ModelStore store;
  store.install("kws", d.graph);

  OtaPackage update = make_ota_package(d.graph);
  for (float& v : update.canary_output) v += 0.5f;
  const auto report = store.push("kws", update);
  EXPECT_EQ(report.outcome, OtaOutcome::kRejected);
  EXPECT_NE(report.detail.find("canary"), std::string::npos);
  EXPECT_EQ(store.version("kws"), 1u);
}

TEST(ModelStore, RollbackRestoresPreviousVersion) {
  Deployment d = deploy_micro();
  ModelStore store;
  store.install("kws", d.graph);

  Graph v2 = d.graph.clone();
  for (NodeId id : v2.topo_order()) {
    Node& n = v2.node(id);
    if (!n.weights.empty()) {
      for (float& w : n.weights[0].data()) w *= 0.9f;
    }
  }
  v2.touch();
  ASSERT_EQ(store.push("kws", make_ota_package(v2)).outcome, OtaOutcome::kCommitted);

  const auto rb = store.rollback("kws");
  EXPECT_EQ(rb.outcome, OtaOutcome::kRolledBack);
  EXPECT_EQ(rb.from_version, 2u);
  EXPECT_EQ(rb.to_version, 1u);
  EXPECT_EQ(store.version("kws"), 1u);
  EXPECT_FALSE(store.can_rollback("kws"));  // retention is one level deep

  const Tensor in = probe_input();
  EXPECT_FLOAT_EQ(
      max_abs_diff(d.exec->run_single(in), testutil::exec_single(store.materialize("kws"), in)),
      0.0f);

  const auto again = store.rollback("kws");
  EXPECT_EQ(again.outcome, OtaOutcome::kRejected);
  EXPECT_EQ(ota_outcome_name(OtaOutcome::kCommitted), "committed");
  EXPECT_EQ(ota_outcome_name(OtaOutcome::kRejected), "rejected");
  EXPECT_EQ(ota_outcome_name(OtaOutcome::kRolledBack), "rolled-back");
}

TEST(ModelStore, UnknownNameThrows) {
  ModelStore store;
  EXPECT_FALSE(store.has("ghost"));
  EXPECT_THROW((void)store.current("ghost"), NotFound);
  EXPECT_THROW((void)store.materialize("ghost"), NotFound);
  EXPECT_THROW((void)store.rollback("ghost"), NotFound);
}

// ---------------------------------------------------------------------------
// Fault injector: int8 / bias awareness + determinism (satellite b)
// ---------------------------------------------------------------------------

std::vector<Tensor> snapshot_all_weights(const Graph& g) {
  std::vector<Tensor> out;
  for (NodeId id : g.topo_order()) {
    for (const Tensor& w : g.node(id).weights) out.push_back(w);
  }
  return out;
}

TEST(FaultInjector, SameSeedSameFlipsIncludingBias) {
  Deployment a = deploy_micro();
  Deployment b = deploy_micro();
  Rng ra(321), rb(321);
  FaultInjector(ra).flip_weight_bits(a.graph, 24, /*include_bias=*/true);
  FaultInjector(rb).flip_weight_bits(b.graph, 24, /*include_bias=*/true);
  const auto wa = snapshot_all_weights(a.graph);
  const auto wb = snapshot_all_weights(b.graph);
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t l = 0; l < wa.size(); ++l) {
    EXPECT_TRUE(std::equal(wa[l].data().begin(), wa[l].data().end(), wb[l].data().begin()))
        << "tensor " << l << " diverged under the same seed";
  }
}

TEST(FaultInjector, BiasTensorsFaultedWhenRequested) {
  // With enough flips and include_bias, at least one bias tensor
  // (weights[1]) must change; without the flag, none may.
  const auto bias_changed = [](bool include_bias) {
    Deployment d = deploy_micro();
    const auto before = snapshot_all_weights(d.graph);
    Rng rng(17);
    FaultInjector(rng).flip_weight_bits(d.graph, 64, include_bias);
    const auto after = snapshot_all_weights(d.graph);
    bool changed = false;
    std::size_t l = 0;
    for (NodeId id : d.graph.topo_order()) {
      const Node& n = d.graph.node(id);
      for (std::size_t t = 0; t < n.weights.size(); ++t, ++l) {
        if (t >= 1 && !std::equal(before[l].data().begin(), before[l].data().end(),
                                  after[l].data().begin())) {
          changed = true;
        }
      }
    }
    return changed;
  };
  EXPECT_TRUE(bias_changed(true));
  EXPECT_FALSE(bias_changed(false));
}

TEST(FaultInjector, Int8FlipsStayOnTheQuantizedGrid) {
  // On an int8-tagged node the flip must act on the quantized code: the
  // changed kernel value is still an exact multiple of its channel scale.
  // One flip per fresh graph — a second flip in the same channel would see
  // a scale already moved by the first.
  std::size_t changed = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Deployment d = deploy_micro();
    for (NodeId id : d.graph.topo_order()) {
      Node& n = d.graph.node(id);
      if (!n.weights.empty()) n.weight_dtype = DType::kINT8;
    }
    const auto before = snapshot_all_weights(d.graph);
    Rng rng(seed);
    FaultInjector(rng).flip_weight_bits(d.graph, 1);

    std::size_t l = 0;
    for (NodeId id : d.graph.topo_order()) {
      const Node& n = d.graph.node(id);
      for (std::size_t t = 0; t < n.weights.size(); ++t, ++l) {
        const Tensor& old = before[l];
        const Tensor& now = n.weights[t];
        for (std::int64_t i = 0; i < now.numel(); ++i) {
          if (old.at(i) == now.at(i)) continue;
          ++changed;
          // recover this element's channel scale from the pre-flip tensor
          const auto oc = old.shape().dim(0);
          const auto per = old.numel() / oc;
          const auto chan = i / per;
          double amax = 0;
          for (std::int64_t j = chan * per; j < (chan + 1) * per; ++j) {
            amax = std::max(amax, std::abs(static_cast<double>(old.at(j))));
          }
          const double ws = amax > 0 ? amax / 127.0 : 1.0;
          const double code = static_cast<double>(now.at(i)) / ws;
          EXPECT_NEAR(code, std::round(code), 1e-3) << "off-grid int8 flip";
          EXPECT_LE(std::abs(code), 255.0);
        }
      }
    }
  }
  EXPECT_GT(changed, 0u);
}

// ---------------------------------------------------------------------------
// Robustness service: obs export + golden replacement (satellite c)
// ---------------------------------------------------------------------------

TEST(Robustness, MetricsMirrorChecksFaultsAndDivergence) {
  Deployment d = deploy_micro();
  obs::MetricsRegistry metrics;
  RobustnessService::Config cfg;
  cfg.check_period = 1;
  cfg.tolerance = 1e-5;
  cfg.metrics = &metrics;
  RobustnessService service(d.graph, cfg);

  const Tensor in = sample_input(0);
  const Tensor good = d.exec->run_single(in);
  Tensor bad = good;
  bad.at(0) += 1.0f;
  service.submit(in, good);
  service.submit(in, bad);
  service.submit(in, good);

  ASSERT_TRUE(metrics.has_counter("vedliot.safety.checks"));
  ASSERT_TRUE(metrics.has_counter("vedliot.safety.faults"));
  ASSERT_TRUE(metrics.has_gauge("vedliot.safety.last_divergence"));
  EXPECT_EQ(metrics.counters().at("vedliot.safety.checks").value(), service.checks_run());
  EXPECT_EQ(metrics.counters().at("vedliot.safety.faults").value(),
            service.faults_detected());
  EXPECT_EQ(service.checks_run(), 3u);
  EXPECT_EQ(service.faults_detected(), 1u);
  EXPECT_DOUBLE_EQ(metrics.gauges().at("vedliot.safety.last_divergence").value(),
                   service.last_divergence());
}

TEST(Robustness, ReplaceGoldenRedefinesCorrectness) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {1, 1e-5});

  Graph v2 = d.graph.clone();
  for (NodeId id : v2.topo_order()) {
    Node& n = v2.node(id);
    if (!n.weights.empty()) {
      for (float& w : n.weights[0].data()) w *= 1.05f;
    }
  }
  v2.touch();
  const Tensor in = sample_input(3);
  const Tensor v2_out = testutil::exec_single(v2, in);

  EXPECT_EQ(service.submit(in, v2_out), CheckResult::kCheckedFaulty);
  service.replace_golden(v2);  // OTA moved the deployment to v2
  EXPECT_EQ(service.submit(in, v2_out), CheckResult::kCheckedOk);
  EXPECT_EQ(service.submissions(), 2u);  // counters keep running
}

}  // namespace
}  // namespace vedliot::safety
