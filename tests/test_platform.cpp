// Tests for the RECS platform layer: modules, baseboards, fabric,
// resource management.

#include <gtest/gtest.h>

#include "graph/zoo.hpp"
#include "platform/baseboard.hpp"
#include "platform/fabric.hpp"
#include "platform/microserver.hpp"
#include "platform/resource_manager.hpp"

namespace vedliot::platform {
namespace {

TEST(Modules, CatalogResolvesDevices) {
  for (const auto& m : module_catalog()) {
    EXPECT_NO_THROW((void)m.device_spec()) << m.name;
    EXPECT_GT(m.max_power_w, 0) << m.name;
  }
  EXPECT_THROW((void)find_module("COMe-Pentium3"), NotFound);
}

TEST(Modules, FormFactorNames) {
  EXPECT_EQ(form_factor_name(FormFactor::kSMARC), "SMARC");
  EXPECT_EQ(form_factor_name(FormFactor::kCOMHPCServer), "COM-HPC Server");
}

TEST(Baseboard, SpecsMatchPaper) {
  // uRECS: < 15 W total (Sec. II-A).
  EXPECT_LE(u_recs().total_power_budget_w, 15.0);
  // t.RECS accepts COM-HPC, RECS|Box accepts COM Express.
  EXPECT_TRUE(t_recs().slots.front().accepts_form(FormFactor::kCOMHPCServer));
  EXPECT_TRUE(recs_box().slots.front().accepts_form(FormFactor::kCOMExpress));
  // uRECS natively supports SMARC and Jetson NX plus adaptor PCBs.
  const auto urecs = u_recs();
  const auto& main_slot = urecs.slots.front();
  for (auto f : {FormFactor::kSMARC, FormFactor::kJetsonNX, FormFactor::kKriaSOM,
                 FormFactor::kRPiCM}) {
    EXPECT_TRUE(main_slot.accepts_form(f));
  }
}

TEST(Chassis, InstallAndRemove) {
  Chassis c(u_recs());
  c.install("main", find_module("SMARC-iMX8MPlus"));
  EXPECT_TRUE(c.occupied("main"));
  EXPECT_EQ(c.module_at("main").name, "SMARC-iMX8MPlus");
  const auto removed = c.remove("main");
  EXPECT_EQ(removed.name, "SMARC-iMX8MPlus");
  EXPECT_FALSE(c.occupied("main"));
  EXPECT_THROW((void)c.remove("main"), PlatformError);
}

TEST(Chassis, RejectsWrongFormFactor) {
  Chassis c(u_recs());
  EXPECT_THROW(c.install("main", find_module("COMe-D1577")), PlatformError);
  EXPECT_THROW(c.install("m2", find_module("USB-MyriadX")), PlatformError);
}

TEST(Chassis, RejectsUnknownSlotAndDoubleInstall) {
  Chassis c(u_recs());
  EXPECT_THROW(c.install("slot9", find_module("SMARC-ZU3")), NotFound);
  c.install("main", find_module("SMARC-ZU3"));
  EXPECT_THROW(c.install("main", find_module("SMARC-iMX8MPlus")), PlatformError);
}

TEST(Chassis, EnforcesBoardPowerBudget) {
  // Jetson NX (15 W) fills the whole uRECS budget: adding a USB accelerator
  // afterwards must fail on the board budget.
  Chassis c(u_recs());
  c.install("main", find_module("JetsonXavierNX"));
  EXPECT_NEAR(c.power_headroom_w(), 0.0, 1e-9);
  EXPECT_THROW(c.install("usb", find_module("USB-MyriadX")), PlatformError);
}

TEST(Chassis, LowPowerComboFitsUrecs) {
  Chassis c(u_recs());
  c.install("main", find_module("SMARC-iMX8MPlus"));  // 6 W
  c.install("usb", find_module("USB-MyriadX"));       // 3 W
  c.install("m2", find_module("M2-EdgeTPU"));         // 2 W
  EXPECT_LE(c.provisioned_power_w(), 15.0);
  EXPECT_EQ(c.installed().size(), 3u);
}

TEST(Chassis, TRecsHostsBigModules) {
  Chassis c(t_recs());
  c.install("comhpc0", find_module("COMh-Epyc3451"));
  c.install("comhpc1", find_module("COMh-AlveoDPU"));
  c.install("pcie0", find_module("PCIe-GTX1660"));
  EXPECT_EQ(c.installed().size(), 3u);
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

TEST(Fabric, StarTopologyRoutes) {
  Fabric f = star_fabric({"a", "b", "c"}, 1.0, {1.0, 10.0});
  const auto path = f.route("a", "c");
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], "switch0");
}

TEST(Fabric, TransferTimeScalesWithPayloadAndBandwidth) {
  Fabric f = star_fabric({"a", "b"}, 1.0, {1.0, 10.0});
  const double t1 = f.transfer_time_s("a", "b", 1e6);
  f.set_link_speed("switch0", "a", 10.0);
  f.set_link_speed("switch0", "b", 10.0);
  const double t10 = f.transfer_time_s("a", "b", 1e6);
  EXPECT_GT(t1, t10);
  // 1 MB over 1 Gb/s through 2 hops: ~8 ms serialization + 100 us latency
  EXPECT_NEAR(t1, 8e-3 + 100e-6, 1e-3);
}

TEST(Fabric, RuntimeReconfigurationTracked) {
  Fabric f = star_fabric({"a", "b"}, 1.0, {1.0, 10.0});
  const auto before = f.reconfiguration_count();
  f.set_link_speed("switch0", "a", 10.0);
  Link extra;
  extra.a = "a";
  extra.b = "b";
  extra.kind = LinkKind::kLowLatency;
  extra.bandwidth_gbps = 40.0;
  extra.latency_us = 2.0;
  f.add_link(extra);
  EXPECT_EQ(f.reconfiguration_count(), before + 2);
}

TEST(Fabric, LowLatencyLinkPreferredViaLatencyTieBreak) {
  Fabric f({1.0, 10.0});
  for (const char* e : {"a", "b"}) f.add_endpoint(e);
  Link eth{"a", "b", LinkKind::kEthernet, 1.0, 50.0};
  f.add_link(eth);
  // direct link exists -> single-hop route
  const auto path = f.route("a", "b");
  EXPECT_EQ(path.size(), 2u);
  EXPECT_NEAR(f.transfer_time_s("a", "b", 0.0), 50e-6, 1e-9);
}

TEST(Fabric, DisallowedEthernetSpeedRejected) {
  Fabric f({1.0, 10.0});
  f.add_endpoint("a");
  f.add_endpoint("b");
  Link l{"a", "b", LinkKind::kEthernet, 25.0, 10.0};
  EXPECT_THROW(f.add_link(l), InvalidArgument);
  Link ok{"a", "b", LinkKind::kEthernet, 10.0, 10.0};
  f.add_link(ok);
  EXPECT_THROW(f.set_link_speed("a", "b", 2.5), InvalidArgument);
}

TEST(Fabric, NoRouteThrows) {
  Fabric f({1.0});
  f.add_endpoint("a");
  f.add_endpoint("b");
  EXPECT_THROW((void)f.route("a", "b"), NotFound);
}

TEST(Fabric, RemoveLinkPartitions) {
  Fabric f = star_fabric({"a", "b"}, 1.0, {1.0});
  f.remove_link("switch0", "b");
  EXPECT_THROW((void)f.route("a", "b"), NotFound);
  EXPECT_THROW((void)f.transfer_time_s("a", "b", 4096.0), NotFound);
  EXPECT_THROW((void)f.path_bandwidth_bytes_s("a", "b"), NotFound);
  EXPECT_THROW(f.remove_link("switch0", "b"), NotFound);
  // The other leg of the star is unaffected.
  EXPECT_EQ(f.route("a", "switch0").size(), 2u);
}

TEST(Fabric, LinkDegradationScalesEffectiveBandwidthOnly) {
  Fabric f = star_fabric({"a", "b"}, 10.0, {1.0, 10.0});
  const double healthy = f.transfer_time_s("a", "b", 1e6);
  const std::size_t reconfigs = f.reconfiguration_count();

  f.set_link_degradation("switch0", "b", 0.25);
  const auto link = f.link_between("switch0", "b");
  ASSERT_TRUE(link.has_value());
  EXPECT_DOUBLE_EQ(link->bandwidth_gbps, 10.0);      // configured speed intact
  EXPECT_DOUBLE_EQ(link->effective_gbps(), 2.5);
  EXPECT_GT(f.transfer_time_s("a", "b", 1e6), healthy);
  // A health condition, not a reconfiguration.
  EXPECT_EQ(f.reconfiguration_count(), reconfigs);

  // Factor 1.0 restores full health.
  f.set_link_degradation("switch0", "b", 1.0);
  EXPECT_DOUBLE_EQ(f.transfer_time_s("a", "b", 1e6), healthy);

  EXPECT_THROW(f.set_link_degradation("switch0", "b", 0.0), Error);
  EXPECT_THROW(f.set_link_degradation("switch0", "b", 1.5), Error);
  EXPECT_THROW(f.set_link_degradation("a", "b", 0.5), NotFound);
}

// ---------------------------------------------------------------------------
// Resource manager
// ---------------------------------------------------------------------------

Chassis mirror_chassis() {
  Chassis c(u_recs());
  c.install("main", find_module("JetsonXavierNX"));
  return c;
}

std::vector<Workload> small_workloads() {
  return {
      Workload::from_graph("gesture", zoo::gesture_net(), DType::kINT8, 15.0, 0.1),
      Workload::from_graph("speech", zoo::speech_net(), DType::kINT8, 20.0, 0.08),
  };
}

TEST(ResourceManager, PlacesFeasibleWorkloads) {
  Chassis c = mirror_chassis();
  ResourceManager rm(c);
  const auto placements = rm.place(small_workloads());
  EXPECT_EQ(placements.size(), 2u);
  for (const auto& p : placements) {
    EXPECT_EQ(p.slot, "main");
    EXPECT_GT(p.utilization, 0.0);
    EXPECT_LE(p.utilization, 1.0);
  }
}

TEST(ResourceManager, RejectsImpossibleLatency) {
  Chassis c(u_recs());
  c.install("main", find_module("RPi-CM4"));
  ResourceManager rm(c);
  // YoloV4 at 30 fps on a Raspberry Pi CM4: no chance.
  const auto w = Workload::from_graph("yolo", zoo::yolov4(), DType::kINT8, 30.0, 0.033);
  EXPECT_THROW((void)rm.place({w}), PlatformError);
}

TEST(ResourceManager, RespectsUtilizationCapacity) {
  Chassis c(u_recs());
  c.install("main", find_module("SMARC-iMX8MPlus"));
  ResourceManager rm(c);
  // Pile on heavy detectors at high rate until capacity must burst.
  std::vector<Workload> many;
  const Graph heavy = zoo::resnet50();
  for (int i = 0; i < 40; ++i) {
    std::string name = "p";
    name += std::to_string(i);
    many.push_back(Workload::from_graph(name, heavy, DType::kINT8, 20.0, 0.5));
  }
  EXPECT_THROW((void)rm.place(many), PlatformError);
}

TEST(ResourceManager, MigrationMovesDisplacedOnly) {
  Chassis c(u_recs());
  c.install("main", find_module("SMARC-iMX8MPlus"));
  c.install("usb", find_module("USB-MyriadX"));
  ResourceManager rm(c);
  const auto workloads = small_workloads();
  const auto placements = rm.place(workloads);

  // Fail whichever slot holds the first workload; it must move to the other.
  const std::string failed = placements.front().slot;
  const auto after = rm.migrate(placements, workloads, failed);
  EXPECT_EQ(after.size(), workloads.size());
  for (const auto& p : after) EXPECT_NE(p.slot, failed);
}

TEST(ResourceManager, PowerAccountingPositive) {
  Chassis c = mirror_chassis();
  ResourceManager rm(c);
  const auto placements = rm.place(small_workloads());
  const double power = ResourceManager::total_average_power_w(placements);
  EXPECT_GT(power, 0.0);
  EXPECT_LT(power, 15.0);
}

TEST(ResourceManager, CapacityScaleShrinksWhatFits) {
  // At full capacity the workload places; at a heavy thermal throttle the
  // same workload no longer meets its latency budget.
  const auto w = Workload::from_graph("det", zoo::resnet50(), DType::kINT8, 10.0, 0.04);
  Chassis c = mirror_chassis();
  {
    ResourceManager rm(c);
    EXPECT_DOUBLE_EQ(rm.capacity_scale("main"), 1.0);
    EXPECT_EQ(rm.place({w}).size(), 1u);
  }
  {
    ResourceManager rm(c);
    rm.set_capacity_scale("main", 0.05);
    EXPECT_DOUBLE_EQ(rm.capacity_scale("main"), 0.05);
    EXPECT_THROW((void)rm.place({w}), PlatformError);
  }
  ResourceManager rm(c);
  EXPECT_THROW(rm.set_capacity_scale("nope", 0.5), NotFound);
  EXPECT_THROW(rm.set_capacity_scale("main", 0.0), Error);
  EXPECT_THROW((void)rm.capacity_scale("nope"), NotFound);
}

TEST(ResourceManager, HeadroomDropsAsWorkIsPlaced) {
  Chassis c = mirror_chassis();
  ResourceManager rm(c);
  EXPECT_DOUBLE_EQ(rm.utilization_headroom("main"), 1.0);
  (void)rm.place(small_workloads());
  const double after = rm.utilization_headroom("main");
  EXPECT_LT(after, 1.0);
  EXPECT_GE(after, 0.0);
  EXPECT_EQ(rm.slots(), std::vector<std::string>{"main"});
}

TEST(Workload, FromGraphFillsNumbers) {
  const auto w = Workload::from_graph("g", zoo::gesture_net(), DType::kINT8, 10.0, 0.1);
  EXPECT_GT(w.ops, 0);
  EXPECT_GT(w.traffic_bytes, 0);
  EXPECT_GT(w.weight_bytes, 0);
  EXPECT_EQ(w.rate_hz, 10.0);
}

}  // namespace
}  // namespace vedliot::platform
