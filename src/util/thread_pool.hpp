#pragma once
/// \file thread_pool.hpp
/// \brief Small fixed-size thread pool with a deterministic parallel_for.
///
/// The execution engine's only parallel primitive. Design constraints, in
/// order of importance:
///
///  1. **Determinism.** parallel_for splits [begin, end) into contiguous
///     chunks whose boundaries depend only on (range, threads, grain) —
///     never on scheduling. Each index is processed by exactly one chunk,
///     and kernels keep a fixed accumulation order *within* an index, so
///     output bits are identical for any thread count (the property the
///     distributed/resilience determinism guarantees rely on).
///  2. **No work stealing.** Chunks are handed out through a single atomic
///     cursor; workers never touch each other's state. This keeps the pool
///     ~100 lines and trivially TSan-clean.
///  3. **Caller participation.** The calling thread executes chunks too, so
///     ThreadPool(1) degenerates to an inline loop and a pool of N spawns
///     only N-1 OS threads.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_safety.hpp"

namespace vedliot::util {

class ThreadPool {
 public:
  /// Chunk body: [lo, hi) index range plus the chunk ordinal (0-based,
  /// < chunk count). The ordinal indexes per-chunk scratch/accumulator
  /// state so workers never share mutable memory.
  using ChunkFn = std::function<void(std::int64_t lo, std::int64_t hi, std::size_t chunk)>;

  /// \p threads is the total parallelism including the caller; values < 1
  /// are clamped to 1. A pool of 1 spawns no OS threads.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (worker threads + caller).
  unsigned threads() const { return threads_; }

  /// Run \p fn over [begin, end) split into at most threads() contiguous
  /// chunks of at least \p grain indices each. Blocks until every chunk has
  /// finished; rethrows the first exception a chunk threw. Returns the
  /// number of chunks dispatched (0 for an empty range) — callers use
  /// chunks/threads as the pool-utilization sample.
  std::size_t parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                           const ChunkFn& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardware_threads();

 private:
  void worker_loop();
  // Reads the dispatch geometry without the lock: those fields are frozen
  // for the whole epoch (written under mutex_ before the epoch bump that
  // releases the workers, next read only after the wake-up acquires the
  // same mutex), and the chunk cursor is the atomic. The analysis cannot
  // see the epoch protocol, hence the opt-out.
  void run_chunks(const ChunkFn& fn) VEDLIOT_NO_THREAD_SAFETY_ANALYSIS;

  const unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ VEDLIOT_GUARDED_BY(mutex_) = false;
  /// Bumped per dispatch; workers wake on change.
  std::uint64_t epoch_ VEDLIOT_GUARDED_BY(mutex_) = 0;

  // Dispatch state, valid while a parallel_for is in flight (frozen per
  // epoch — see run_chunks).
  const ChunkFn* fn_ VEDLIOT_GUARDED_BY(mutex_) = nullptr;
  std::int64_t begin_ VEDLIOT_GUARDED_BY(mutex_) = 0;
  std::int64_t end_ VEDLIOT_GUARDED_BY(mutex_) = 0;
  std::int64_t chunk_len_ VEDLIOT_GUARDED_BY(mutex_) = 0;
  std::size_t chunk_count_ VEDLIOT_GUARDED_BY(mutex_) = 0;
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t workers_done_ VEDLIOT_GUARDED_BY(mutex_) = 0;
  std::exception_ptr first_error_ VEDLIOT_GUARDED_BY(mutex_);
};

}  // namespace vedliot::util
