#include "opt/fusion.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace vedliot::opt {

PassResult FuseBatchNormPass::run(Graph& g) {
  PassResult r;
  r.pass_name = name();
  for (NodeId id : g.topo_order()) {
    Node& bn = g.node(id);
    if (bn.dead || bn.kind != OpKind::kBatchNorm) continue;
    const NodeId prod_id = bn.inputs.at(0);
    Node& prod = g.node(prod_id);
    if (prod.kind != OpKind::kConv2d && prod.kind != OpKind::kDense) continue;
    // Only safe if the producer feeds nothing else (otherwise the un-normalized
    // value is still needed).
    if (g.consumers(prod_id).size() != 1) continue;
    if (prod.attrs.get_int_or("fused_bn", 0)) continue;

    if (!prod.weights.empty() && bn.weights.size() == 4) {
      // Numeric fold.
      const auto& gamma = bn.weights[0];
      const auto& beta = bn.weights[1];
      const auto& mean = bn.weights[2];
      const auto& var = bn.weights[3];
      const double eps = bn.attrs.get_float_or("epsilon", 1e-5);
      const auto oc = prod.weights[0].shape().dim(0);
      const auto per = static_cast<std::size_t>(prod.weights[0].numel() / oc);

      // Ensure a bias tensor exists to absorb the shift. Take the weight
      // reference only afterwards: emplace_back may reallocate the vector.
      if (prod.weights.size() == 1) {
        prod.weights.emplace_back(Shape{oc});
        prod.attrs.set_int("bias", 1);
      }
      Tensor& w = prod.weights[0];
      Tensor& b = prod.weights[1];

      for (std::int64_t c = 0; c < oc; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const float scale = static_cast<float>(gamma.at(ci) / std::sqrt(var.at(ci) + eps));
        const float shift = static_cast<float>(beta.at(ci) - mean.at(ci) * scale);
        auto chan = w.data().subspan(ci * per, per);
        for (float& v : chan) v *= scale;
        b.at(ci) = b.at(ci) * scale + shift;
      }
    }
    // The fold (numeric now, or at materialization for analytic graphs)
    // always needs a bias tensor to absorb the BatchNorm shift.
    prod.attrs.set_int("bias", 1);
    prod.attrs.set_int("fused_bn", 1);
    g.bypass(id);
    ++r.nodes_changed;
  }
  r.detail = std::to_string(r.nodes_changed) + " BatchNorm nodes folded";
  return r;
}

PassResult FuseActivationPass::run(Graph& g) {
  PassResult r;
  r.pass_name = name();
  for (NodeId id : g.topo_order()) {
    Node& act = g.node(id);
    if (act.dead || !op_is_activation(act.kind)) continue;
    const NodeId prod_id = act.inputs.at(0);
    Node& prod = g.node(prod_id);
    if (prod.kind != OpKind::kConv2d && prod.kind != OpKind::kDense) continue;
    if (g.consumers(prod_id).size() != 1) continue;
    if (!prod.attrs.get_str_or("fused_act", "").empty()) continue;

    prod.attrs.set_str("fused_act", std::string(op_name(act.kind)));
    if (act.kind == OpKind::kLeakyRelu) {
      prod.attrs.set_float("fused_alpha", act.attrs.get_float_or("alpha", 0.01));
    }
    g.bypass(id);
    ++r.nodes_changed;
  }
  r.detail = std::to_string(r.nodes_changed) + " activations fused into producers";
  return r;
}

namespace {
/// Structural key for CSE: kind + input ids + attributes (weight-free only).
std::string cse_key(const Node& n) {
  std::string key(op_name(n.kind));
  key += '(';
  for (NodeId in : n.inputs) {
    key += std::to_string(in);
    key += ',';
  }
  key += ')';
  for (const auto& [name, value] : n.attrs.raw()) {
    key += name;
    key += '=';
    if (const auto* i = std::get_if<std::int64_t>(&value)) {
      key += std::to_string(*i);
    } else if (const auto* d = std::get_if<double>(&value)) {
      key += std::to_string(*d);
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      key += *s;
    } else if (const auto* v = std::get_if<std::vector<std::int64_t>>(&value)) {
      for (auto x : *v) {
        key += std::to_string(x);
        key += ',';
      }
    }
    key += ';';
  }
  return key;
}
}  // namespace

PassResult CsePass::run(Graph& g) {
  PassResult r;
  r.pass_name = name();
  std::map<std::string, NodeId> seen;
  const auto outputs = g.outputs();
  for (NodeId id : g.topo_order()) {
    Node& n = g.node(id);
    if (n.dead || n.kind == OpKind::kInput) continue;
    // Graph outputs are the model's API: never fold one away.
    if (std::find(outputs.begin(), outputs.end(), id) != outputs.end()) continue;
    // Parametric nodes own distinct weights: never merge them.
    if (op_has_weights(n.kind) || !n.weights.empty()) continue;
    const std::string key = cse_key(n);
    auto [it, inserted] = seen.emplace(key, id);
    if (inserted) continue;
    // Duplicate: rewire every consumer to the canonical node, then kill it.
    for (NodeId consumer : g.consumers(id)) {
      g.replace_input(consumer, id, it->second);
    }
    if (g.consumers(id).empty()) {
      n.dead = true;
      ++r.nodes_changed;
    }
  }
  r.detail = std::to_string(r.nodes_changed) + " duplicate nodes merged";
  return r;
}

PassResult EliminateIdentityPass::run(Graph& g) {
  PassResult r;
  r.pass_name = name();
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    if (n.dead || n.kind != OpKind::kIdentity) continue;
    // Keep identities that are graph outputs (bypassing would drop the name).
    const auto outs = g.outputs();
    if (std::find(outs.begin(), outs.end(), id) != outs.end()) continue;
    g.bypass(id);
    ++r.nodes_changed;
  }
  r.detail = std::to_string(r.nodes_changed) + " Identity nodes removed";
  return r;
}

}  // namespace vedliot::opt
