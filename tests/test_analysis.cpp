// Tests for the static-analysis subsystem: the strict IR verifier (one
// corrupt-graph case per defect class, asserting the exact check id), the
// dataflow framework (liveness cross-checked against the memory planner,
// use-def facts, version-keyed caching) and PassManager integration
// (per-pass attribution, structural diffs, strict rejection).

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/dataflow.hpp"
#include "analysis/verifier.hpp"
#include "graph/package.hpp"
#include "graph/serialize.hpp"
#include "graph/zoo.hpp"
#include "hw/accel.hpp"
#include "opt/fusion.hpp"
#include "opt/prune.hpp"
#include "opt/quantize.hpp"
#include "runtime/memory_planner.hpp"
#include "util/rng.hpp"

namespace vedliot {
namespace {

using analysis::Report;
using analysis::Severity;
using analysis::VerifyOptions;
using analysis::verify_graph;

Graph materialized(Graph g, std::uint64_t seed = 5) {
  Rng rng(seed);
  g.materialize_weights(rng);
  return g;
}

Graph calibrated(Graph g) {
  Rng rng(11);
  std::vector<Tensor> samples;
  const Shape& in = g.node(g.inputs().front()).out_shape;
  samples.emplace_back(in, rng.normal_vector(static_cast<std::size_t>(in.numel())));
  opt::calibrate_activations(g, samples);
  return g;
}

// ---------------------------------------------------------------------------
// Verifier: clean graphs
// ---------------------------------------------------------------------------

TEST(Verifier, CleanZooModelsHaveNoFindingsOfErrorSeverity) {
  for (Graph g : {zoo::resnet50(), zoo::mobilenet_v3_large(), zoo::efficientnet_lite0(),
                  zoo::yolov4(), zoo::gesture_net(), zoo::face_net(), zoo::object_det_net(),
                  zoo::speech_net(), zoo::motor_net(), zoo::arc_net(), zoo::pedestrian_net()}) {
    const Report rep = verify_graph(g);
    EXPECT_TRUE(rep.ok()) << g.name() << ":\n" << rep.to_table();
    EXPECT_EQ(rep.warnings(), 0u) << g.name() << ":\n" << rep.to_table();
  }
}

TEST(Verifier, MaterializedGraphStaysClean) {
  const Report rep = verify_graph(materialized(zoo::micro_cnn("m", 1, 1, 16, 4)));
  EXPECT_TRUE(rep.ok()) << rep.to_table();
}

// ---------------------------------------------------------------------------
// Verifier: one corrupt graph per defect class, exact check id
// ---------------------------------------------------------------------------

TEST(Verifier, BadArityReportsIrArity) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  Node& relu = g.node(g.find("relu0"));
  relu.inputs.push_back(relu.inputs.front());
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has("ir.arity")) << rep.to_table();
}

TEST(Verifier, DanglingInputReportsIrInputDead) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  g.node(g.find("fc0")).dead = true;
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has("ir.input.dead")) << rep.to_table();
}

TEST(Verifier, MissingRequiredAttrReportsIrAttrMissing) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  g.node(g.find("fc0")).attrs.erase("units");
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_TRUE(rep.has("ir.attr.missing")) << rep.to_table();
}

TEST(Verifier, WrongAttrTypeReportsIrAttrType) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  g.node(g.find("logits")).attrs.set_float("units", 4.5);
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_TRUE(rep.has("ir.attr.type")) << rep.to_table();
}

TEST(Verifier, OutOfDomainAttrReportsIrAttrValue) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  g.node(g.find("fc0")).attrs.set_int("units", -3);
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_TRUE(rep.has("ir.attr.value")) << rep.to_table();
}

TEST(Verifier, UnknownAttrIsAWarningNotAnError) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  g.node(g.find("fc0")).attrs.set_int("favourite_prime", 7);
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.has("ir.attr.unknown")) << rep.to_table();
}

TEST(Verifier, StaleShapeReportsIrShapeStale) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  // Widen fc0 without re-running inference: stored shapes go stale.
  g.node(g.find("fc0")).attrs.set_int("units", 32);
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has("ir.shape.stale")) << rep.to_table();
}

TEST(Verifier, UnusedGraphInputIsWarned) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  g.add_input("orphan", Shape{1, 3});
  const Report rep = verify_graph(g);
  EXPECT_TRUE(rep.has("ir.input.unused")) << rep.to_table();
}

TEST(Verifier, WrongWeightShapeReportsWeightShape) {
  Graph g = materialized(zoo::micro_mlp("m", 1, 8, {16}, 4));
  g.node(g.find("fc0")).weights[0] = Tensor(Shape{3, 3});
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has("weight.shape")) << rep.to_table();
}

TEST(Verifier, WeightsOnWeightFreeOpReportWeightUnexpected) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  g.node(g.find("relu0")).weights.emplace_back(Shape{4});
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_TRUE(rep.has("weight.unexpected")) << rep.to_table();
}

TEST(Verifier, BiasAttrTensorMismatchReportsWeightBias) {
  Graph g = materialized(zoo::micro_mlp("m", 1, 8, {16}, 4));
  g.node(g.find("fc0")).attrs.set_int("bias", 0);  // tensor still present
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_TRUE(rep.has("weight.bias")) << rep.to_table();
}

TEST(Verifier, NonFiniteWeightsReportWeightNonfinite) {
  Graph g = materialized(zoo::micro_mlp("m", 1, 8, {16}, 4));
  g.node(g.find("fc0")).weights[0].at(0) = std::numeric_limits<float>::quiet_NaN();
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_TRUE(rep.has("weight.nonfinite")) << rep.to_table();
}

TEST(Verifier, Int8NodeMissingActScaleReportsQuantMissing) {
  Graph g = calibrated(materialized(zoo::micro_mlp("m", 1, 8, {16}, 4)));
  g.node(g.find("fc0")).attrs.erase("act_scale");
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has("quant.act_scale.missing")) << rep.to_table();
}

TEST(Verifier, NonPositiveActScaleReportsQuantValue) {
  Graph g = calibrated(materialized(zoo::micro_mlp("m", 1, 8, {16}, 4)));
  g.node(g.find("fc0")).attrs.set_float("act_scale", -1.0);
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_TRUE(rep.has("quant.act_scale.value")) << rep.to_table();
}

TEST(Verifier, DanglingWeightDtypeIsWarned) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  g.node(g.find("relu0")).weight_dtype = DType::kINT8;
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_TRUE(rep.has("quant.weight_dtype.dangling")) << rep.to_table();
}

TEST(Verifier, InvalidFusedActStringReportsFusionInvalid) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  g.node(g.find("fc0")).attrs.set_str("fused_act", "Gelu6");
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.has("fusion.fused_act.invalid")) << rep.to_table();
}

TEST(Verifier, FusedActOnNonFusableOpReportsMisplaced) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  g.node(g.find("prob")).attrs.set_str("fused_act", "Relu");
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_TRUE(rep.has("fusion.fused_act.misplaced")) << rep.to_table();
}

TEST(Verifier, FusedBnWithoutBiasReportsFusionBias) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  Node& fc = g.node(g.find("fc0"));
  fc.attrs.set_int("fused_bn", 1);
  fc.attrs.set_int("bias", 0);
  g.touch();
  const Report rep = verify_graph(g);
  EXPECT_TRUE(rep.has("fusion.fused_bn.bias")) << rep.to_table();
}

TEST(Verifier, CheckGroupsAreIndependentlyToggleable) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  g.node(g.find("fc0")).attrs.set_str("fused_act", "Gelu6");
  g.touch();
  const Report fusion_only = verify_graph(g, analysis::parse_check_groups("fusion"));
  EXPECT_TRUE(fusion_only.has("fusion.fused_act.invalid"));
  const Report ir_only = verify_graph(g, analysis::parse_check_groups("ir"));
  EXPECT_FALSE(ir_only.has("fusion.fused_act.invalid"));
  EXPECT_THROW(analysis::parse_check_groups("ir,bogus"), InvalidArgument);
}

TEST(Verifier, VerifyOrThrowEmbedsFindingsTable) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  g.node(g.find("fc0")).attrs.erase("units");
  g.touch();
  try {
    analysis::verify_or_throw(g);
    FAIL() << "expected GraphError";
  } catch (const GraphError& e) {
    EXPECT_NE(std::string(e.what()).find("ir.attr.missing"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Verifier-backed loading
// ---------------------------------------------------------------------------

TEST(Verifier, CorruptTextGraphIsRejectedWithFindings) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  // A defect that shape inference cannot see: only the load-path verifier
  // stands between this file and the runtime.
  g.node(g.find("fc0")).attrs.set_str("fused_act", "Gelu6");
  g.touch();
  const std::string text = to_text(g);
  try {
    from_text(text);
    FAIL() << "expected GraphError";
  } catch (const GraphError& e) {
    EXPECT_NE(std::string(e.what()).find("fusion.fused_act.invalid"), std::string::npos)
        << e.what();
  }
}

TEST(Verifier, PackageWithWrongWeightShapesIsRejected) {
  Graph g = materialized(zoo::micro_mlp("m", 1, 8, {16}, 4));
  g.node(g.find("fc0")).weights[0] = Tensor(Shape{2, 2});
  g.touch();
  const auto blob = pack_model(g);
  try {
    unpack_model(blob);
    FAIL() << "expected GraphError";
  } catch (const GraphError& e) {
    EXPECT_NE(std::string(e.what()).find("weight.shape"), std::string::npos) << e.what();
  }
}

// ---------------------------------------------------------------------------
// Dataflow framework
// ---------------------------------------------------------------------------

TEST(Dataflow, LivenessMatchesMemoryPlanner) {
  const Graph g = zoo::gesture_net();
  const auto order = memory_aware_order(g, DType::kFP32);
  const auto df = analysis::Dataflow::compute_with_order(g, order);
  const MemoryPlan plan = plan_memory_with_order(g, order, DType::kFP32, /*alignment=*/1);

  ASSERT_EQ(plan.buffers.size(), df.intervals().size());
  for (const BufferPlan& b : plan.buffers) {
    const analysis::LiveInterval& iv = df.interval(b.node);
    EXPECT_EQ(b.first_use, iv.def_step);
    EXPECT_EQ(b.last_use, iv.last_use);
    EXPECT_EQ(b.size, iv.bytes);
  }
  // The liveness peak is the information-theoretic floor of any packing.
  EXPECT_GE(plan.arena_bytes, df.peak_live_bytes());
  EXPECT_LE(plan.arena_bytes, plan.naive_bytes);
}

TEST(Dataflow, UseDefChainsMatchGraphStructure) {
  const Graph g = zoo::micro_cnn("m", 1, 1, 16, 4);
  const auto df = analysis::Dataflow::compute(g);
  for (NodeId id : g.topo_order()) {
    EXPECT_EQ(df.producers(id), g.node(id).inputs);
    EXPECT_EQ(df.consumers(id), g.consumers(id));
  }
  const NodeId gap = g.find("gap");
  EXPECT_TRUE(df.single_consumer(gap));
  // logits reads gap through the flatten pass-through.
  EXPECT_EQ(df.reaching_producer(g.find("logits"), 0), gap);
}

TEST(Dataflow, GraphOutputsLivePastTheFinalStep) {
  const Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  const auto df = analysis::Dataflow::compute(g);
  const auto outs = g.outputs();
  for (NodeId id : outs) {
    EXPECT_EQ(df.interval(id).last_use, df.order().size());
    EXPECT_TRUE(df.interval(id).is_output);
  }
}

TEST(Dataflow, RejectsBrokenOrdersLikeThePlanner) {
  const Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  auto order = g.topo_order();
  std::reverse(order.begin(), order.end());
  EXPECT_THROW(analysis::Dataflow::compute_with_order(g, order), Error);
  auto dup = g.topo_order();
  dup.back() = dup.front();
  EXPECT_THROW(analysis::Dataflow::compute_with_order(g, dup), Error);
}

TEST(Dataflow, CacheInvalidatesOnGraphMutation) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  analysis::DataflowCache cache;
  const auto v0 = cache.get(g).graph_version();
  cache.get(g);
  EXPECT_EQ(cache.recomputations(), 1u);  // second get was a hit
  g.add(OpKind::kIdentity, "tap", {g.find("prob")});
  EXPECT_TRUE(cache.get(g).graph_version() > v0);
  EXPECT_EQ(cache.recomputations(), 2u);
  // Direct node surgery is invisible to the counter unless touch() is called.
  g.node(g.find("tap")).name = "tap2";
  g.touch();
  cache.get(g);
  EXPECT_EQ(cache.recomputations(), 3u);
}

// ---------------------------------------------------------------------------
// PassManager integration
// ---------------------------------------------------------------------------

/// A deliberately buggy pass: tags a Dense node with a bogus fused_act.
class VandalPass : public opt::Pass {
 public:
  std::string name() const override { return "vandal"; }
  opt::PassResult run(Graph& g) override {
    opt::PassResult r;
    r.pass_name = name();
    for (NodeId id : g.topo_order()) {
      Node& n = g.node(id);
      if (n.kind == OpKind::kDense) {
        n.attrs.set_str("fused_act", "NotAnOp");
        g.touch();
        ++r.nodes_changed;
        break;
      }
    }
    return r;
  }
};

TEST(PassManager, StrictModeAttributesFindingsToTheOffendingPass) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  opt::PassManager pm;
  pm.add(std::make_unique<opt::EliminateIdentityPass>());
  pm.add(std::make_unique<VandalPass>());
  try {
    pm.run(g);
    FAIL() << "expected PassError";
  } catch (const opt::PassError& e) {
    EXPECT_EQ(e.pass_name(), "vandal");
    EXPECT_TRUE(e.findings().has("fusion.fused_act.invalid")) << e.what();
  }
}

TEST(PassManager, NonStrictModeCollectsFindingsPerPass) {
  Graph g = zoo::micro_mlp("m", 1, 8, {16}, 4);
  opt::PassManager pm;
  pm.add(std::make_unique<VandalPass>());
  opt::PassOptions opts;
  opts.strict = false;
  const auto results = pm.run(g, opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].findings.ok());
  EXPECT_TRUE(results[0].findings.has("fusion.fused_act.invalid"));
}

TEST(PassManager, StructuralDiffCountsKilledAndRewiredNodes) {
  Graph g = materialized(zoo::micro_cnn("m", 1, 1, 16, 4));
  opt::PassManager pm;
  pm.add(std::make_unique<opt::FuseBatchNormPass>());
  const auto results = pm.run(g);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].nodes_killed, results[0].nodes_changed);  // one BN dies per fold
  EXPECT_GT(results[0].nodes_rewired, 0);                        // consumers rewired past BN
  EXPECT_EQ(results[0].nodes_added, 0);
  EXPECT_TRUE(results[0].findings.ok());
}

TEST(PassManager, FullOptPipelineOnResNet50IsVerifierClean) {
  Graph g = materialized(zoo::resnet50(), 3);
  opt::PassManager pm;
  pm.add(std::make_unique<opt::FuseBatchNormPass>());
  pm.add(std::make_unique<opt::FuseActivationPass>());
  pm.add(std::make_unique<opt::QuantizeWeightsPass>(DType::kINT8));
  pm.add(std::make_unique<opt::MagnitudePrunePass>(0.5));
  pm.run(g);  // strict: throws on any error finding
  EXPECT_TRUE(verify_graph(g).ok());
}

TEST(PassManager, FullOptPipelineOnMobileNetV3IsVerifierClean) {
  Graph g = materialized(zoo::mobilenet_v3_large(), 4);
  opt::PassManager pm;
  pm.add(std::make_unique<opt::FuseBatchNormPass>());
  pm.add(std::make_unique<opt::FuseActivationPass>());
  pm.add(std::make_unique<opt::QuantizeWeightsPass>(DType::kINT8));
  pm.add(std::make_unique<opt::MagnitudePrunePass>(0.5));
  pm.run(g);
  EXPECT_TRUE(verify_graph(g).ok());
}

// ---------------------------------------------------------------------------
// Regression tests for latent bugs the verifier surfaced
// ---------------------------------------------------------------------------

// FuseBatchNormPass used to set fused_bn=1 on analytic (weight-free) graphs
// without forcing bias=1, so materialization built a conv with no bias tensor
// to absorb the folded shift.
TEST(Regression, AnalyticBatchNormFusionForcesBias) {
  Graph g = zoo::micro_cnn("m", 1, 1, 16, 4);  // analytic: no weights yet
  opt::FuseBatchNormPass pass;
  pass.run(g);
  const NodeId conv = g.find("conv_0");
  EXPECT_EQ(g.node(conv).attrs.get_int_or("bias", 1), 1);
  Graph m = materialized(std::move(g));
  EXPECT_EQ(m.node(conv).weights.size(), 2u);  // weight + bias
  EXPECT_TRUE(verify_graph(m).ok()) << verify_graph(m).to_table();
}

// from_text used to rebuild Input nodes from name+shape only, silently
// dropping their attrs — so a calibrated graph came back from a package
// round-trip with act_scale missing on the input (and the int8 executor
// refused the otherwise-valid model).
TEST(Regression, RoundTripPreservesInputNodeAttrs) {
  Graph g = calibrated(materialized(zoo::micro_mlp("m", 1, 8, {16}, 4)));
  const NodeId in = g.inputs().front();
  ASSERT_TRUE(g.node(in).attrs.has("act_scale"));
  const Graph back = unpack_model(pack_model(g));  // load path runs the verifier
  EXPECT_TRUE(back.node(back.inputs().front()).attrs.has("act_scale"));
  EXPECT_TRUE(verify_graph(back).ok()) << verify_graph(back).to_table();
}

// apply_channel_rounding used to leave stale weights on consumers whose
// input-channel count changed (e.g. the dense head after its producer conv
// was widened).
TEST(Regression, ChannelRoundingDropsStaleConsumerWeights) {
  Graph g = materialized(zoo::micro_cnn("m", 1, 1, 16, 4, /*width=*/10));
  const Graph rounded = hw::apply_channel_rounding(g, /*multiple=*/8);
  const Report rep = verify_graph(rounded);
  EXPECT_FALSE(rep.has("weight.shape")) << rep.to_table();
  EXPECT_TRUE(rep.ok()) << rep.to_table();
}

}  // namespace
}  // namespace vedliot
