#include "runtime/qexecutor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "runtime/executor.hpp"
#include "runtime/instrument.hpp"
#include "util/error.hpp"

namespace vedliot {

using runtime_kernels::Conv2dGeometry;

namespace {

std::int8_t saturate_i8(double v, std::uint64_t& saturations) {
  const double r = std::nearbyint(v);
  if (r > 127.0) {
    ++saturations;
    return 127;
  }
  if (r < -128.0) {
    ++saturations;
    return -128;
  }
  return static_cast<std::int8_t>(r);
}

/// Requantize + apply the fused clamp window; counts requant saturations
/// only (the activation clamp is semantics, not information loss).
std::int8_t requant_clamped(double scaled, std::int32_t q_lo, std::int32_t q_hi,
                            std::uint64_t& saturations) {
  std::int8_t q = saturate_i8(scaled, saturations);
  if (q < q_lo) q = static_cast<std::int8_t>(q_lo);
  if (q > q_hi) q = static_cast<std::int8_t>(q_hi);
  return q;
}

double act_scale_of(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  if (!n.attrs.has("act_scale")) {
    throw Unsupported("node " + n.name +
                      " has no act_scale — run opt::calibrate_activations first");
  }
  const double s = n.attrs.get_float("act_scale");
  return s > 0 ? s : 1e-9;
}

}  // namespace

Tensor QTensor::dequantize() const {
  Tensor t(shape);
  auto out = t.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = static_cast<float>(static_cast<double>(data[i]) * scale);
  }
  return t;
}

QTensor quantize_fixed(const Tensor& t, double scale) {
  QTensor q;
  q.shape = t.shape();
  q.scale = scale;
  q.data.resize(static_cast<std::size_t>(t.numel()));
  std::uint64_t dummy = 0;
  for (std::size_t i = 0; i < q.data.size(); ++i) {
    q.data[i] = saturate_i8(static_cast<double>(t.data()[i]) / scale, dummy);
  }
  return q;
}

QuantizedExecutor::QuantizedExecutor(const Graph& graph) : graph_(graph) {
  VEDLIOT_CHECK(graph_.weights_materialized(),
                "QuantizedExecutor requires materialized weights");
  prepare();
}

void QuantizedExecutor::prepare() {
  prepared_.clear();
  out_scale_.clear();
  packed_.clear();
  qplans_.assign(graph_.total_nodes(), QNodePlan{});
  for (NodeId id : graph_.topo_order()) {
    const Node& n = graph_.node(id);
    if (n.kind == OpKind::kBatchNorm) {
      throw Unsupported("fold BatchNorm (opt::FuseBatchNormPass) before integer execution");
    }
    out_scale_[id] = act_scale_of(graph_, id);
    const double so = out_scale_[id];

    // Fused activation bounds in the *output* integer domain. Symmetric
    // quantization keeps zero at q=0, so ReLU is max(q, 0). Resolved here,
    // once, instead of per node execution.
    QNodePlan& plan = qplans_[static_cast<std::size_t>(id)];
    const std::string fused = n.attrs.get_str_or("fused_act", "");
    if (fused == "Relu" || n.kind == OpKind::kRelu) plan.q_lo = 0;
    if (fused == "Relu6" || n.kind == OpKind::kRelu6) {
      plan.q_lo = 0;
      plan.q_hi = std::min<std::int32_t>(127, static_cast<std::int32_t>(std::nearbyint(6.0 / so)));
    }
    if (!fused.empty() && fused != "Relu" && fused != "Relu6") {
      plan.fused_unsupported = true;  // reported when the node actually runs
      plan.fused_name = fused;
    }
    if (n.kind == OpKind::kConv2d) {
      const Shape& in = graph_.node(n.inputs.at(0)).out_shape;
      Conv2dGeometry& geo = plan.conv;
      geo.batch = n.out_shape.n();
      geo.in_c = in.c();
      geo.in_h = in.h();
      geo.in_w = in.w();
      geo.out_c = n.out_shape.c();
      geo.out_h = n.out_shape.h();
      geo.out_w = n.out_shape.w();
      geo.kernel = n.attrs.get_int("kernel");
      geo.stride = n.attrs.get_int_or("stride", 1);
      geo.pad = n.attrs.get_int_or("pad", 0);
      geo.groups = n.attrs.get_int_or("groups", 1);
    }

    if ((n.kind != OpKind::kConv2d && n.kind != OpKind::kDense) || n.weights.empty()) continue;

    const double in_scale = out_scale_.at(n.inputs.at(0));
    const Tensor& w = n.weights[0];
    const auto oc = w.shape().dim(0);
    const auto per = static_cast<std::size_t>(w.numel() / oc);

    PreparedLayer layer;
    layer.weights.resize(static_cast<std::size_t>(w.numel()));
    layer.weight_scales.resize(static_cast<std::size_t>(oc));
    layer.bias.assign(static_cast<std::size_t>(oc), 0);
    layer.mult.resize(static_cast<std::size_t>(oc));

    for (std::int64_t c = 0; c < oc; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      auto chan = w.data().subspan(ci * per, per);
      double amax = 0;
      for (float v : chan) amax = std::max(amax, std::abs(static_cast<double>(v)));
      const double ws = amax > 0 ? amax / 127.0 : 1.0;
      layer.weight_scales[ci] = ws;
      layer.mult[ci] = in_scale * ws / so;
      std::uint64_t dummy = 0;
      for (std::size_t i = 0; i < per; ++i) {
        layer.weights[ci * per + i] = saturate_i8(chan[i] / ws, dummy);
      }
      if (n.weights.size() > 1) {
        layer.bias[ci] = static_cast<std::int32_t>(
            std::nearbyint(static_cast<double>(n.weights[1].at(ci)) / (in_scale * ws)));
      }
    }
    prepared_[id] = std::move(layer);
  }
  prepared_version_ = graph_.version();
  ++preparations_;
}

void QuantizedExecutor::instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

void QuantizedExecutor::set_threads(unsigned threads) {
  if (threads == 0) threads = util::ThreadPool::hardware_threads();
  if (threads == threads_) return;
  threads_ = threads;
  pool_ = threads_ > 1 ? std::make_unique<util::ThreadPool>(threads_) : nullptr;
}

void QuantizedExecutor::pfor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                             const util::ThreadPool::ChunkFn& fn) {
  if (pool_ == nullptr) {
    if (end > begin) fn(begin, end, 0);
    return;
  }
  const std::size_t chunks = pool_->parallel_for(begin, end, grain, fn);
  if (metrics_ != nullptr && chunks > 0) {
    runtime_detail::pool_utilization_histogram(*metrics_)
        .add(static_cast<double>(chunks) / static_cast<double>(threads_));
  }
}

QTensor QuantizedExecutor::run_single(const Tensor& input) {
  const auto ins = graph_.inputs();
  VEDLIOT_CHECK(ins.size() == 1, "run_single requires exactly one graph input");
  const auto outs = graph_.outputs();
  VEDLIOT_CHECK(outs.size() == 1, "run_single requires exactly one graph output");
  nodes_executed_ = 0;
  // Self-heal contract with the safety layer: ModelStore repair()/restore()
  // and OTA swaps touch() the live graph, so a version mismatch means our
  // quantized weights were derived from bits that no longer exist —
  // requantize and repack before serving.
  if (prepared_version_ != graph_.version()) prepare();
  active_simd_ = util::resolve_simd_level(simd_req_);
  const runtime_kernels::GemmMicrokernels* table =
      runtime_kernels::gemm_microkernels(active_simd_);
  // Levels without an int8 kernel (e.g. NEON ships f32 only) fall back to
  // the scalar reference — which is bitwise-identical anyway.
  mk_ = (table != nullptr && table->gemm_s8 != nullptr && table->s8.available() && use_gemm_)
            ? table
            : nullptr;

  obs::ScopedSpan run_span;
  if (tracer_ != nullptr) {
    run_span = tracer_->span("session.run", "vedliot.runtime");
    run_span.attr("graph", graph_.name());
    run_span.attr("backend", "int8");
    run_span.attr("threads", static_cast<double>(threads_));
  }

  std::map<NodeId, QTensor> values;
  for (NodeId id : graph_.topo_order()) {
    const Node& n = graph_.node(id);
    if (n.kind == OpKind::kInput) {
      VEDLIOT_CHECK(input.shape() == n.out_shape, "input shape mismatch");
      values[id] = quantize_fixed(input, out_scale_.at(id));
      continue;
    }
    std::vector<const QTensor*> node_ins;
    for (NodeId in : n.inputs) node_ins.push_back(&values.at(in));

    obs::ScopedSpan node_span;
    if (tracer_ != nullptr) {
      node_span = tracer_->span(n.name, std::string(op_name(n.kind)));
    }
    if (metrics_ != nullptr) {
      const auto t0 = std::chrono::steady_clock::now();
      values[id] = execute_node(n, node_ins);
      const auto t1 = std::chrono::steady_clock::now();
      runtime_detail::op_histogram(*metrics_, n.kind)
          .add(std::chrono::duration<double>(t1 - t0).count() * 1e6);
    } else {
      values[id] = execute_node(n, node_ins);
    }
    if (tracer_ != nullptr) {
      node_span.attr("out_elems", static_cast<double>(n.out_shape.numel()));
      node_span.close();
    }
    ++nodes_executed_;
  }

  if (metrics_ != nullptr) {
    metrics_->counter(runtime_detail::kRunsCounter).inc();
    metrics_->counter(runtime_detail::kNodesCounter).inc(nodes_executed_);
    metrics_->gauge(runtime_detail::kSaturationsGauge)
        .set(static_cast<double>(saturations_));
  }
  if (tracer_ != nullptr) {
    run_span.attr("nodes_executed", static_cast<double>(nodes_executed_));
    run_span.close();
  }
  return values.at(outs.front());
}

QTensor QuantizedExecutor::execute_node(const Node& n, const std::vector<const QTensor*>& ins) {
  const double so = out_scale_.at(n.id);
  const QNodePlan& plan = qplans_[static_cast<std::size_t>(n.id)];
  if (plan.fused_unsupported) {
    throw Unsupported("integer executor supports fused Relu/Relu6 only, got " + plan.fused_name);
  }
  const std::int32_t q_lo = plan.q_lo, q_hi = plan.q_hi;

  QTensor out;
  out.shape = n.out_shape;
  out.scale = so;
  out.data.resize(static_cast<std::size_t>(n.out_shape.numel()));

  // Every parallel region accumulates saturation events into a per-chunk
  // slot; the post-dispatch sum is order-independent, so saturations() is
  // identical for any thread count.
  std::vector<std::uint64_t> sat(std::max(1u, threads_), 0);

  switch (n.kind) {
    case OpKind::kConv2d: {
      const QTensor& x = *ins.at(0);
      const PreparedLayer& layer = prepared_.at(n.id);
      const Conv2dGeometry& geo = plan.conv;
      const std::int8_t* px = x.data.data();
      std::int8_t* py = out.data.data();

      if (use_gemm_ && geo.depthwise()) {
        for (std::int64_t b = 0; b < geo.batch; ++b) {
          pfor(0, geo.out_c, 1, [&](std::int64_t lo, std::int64_t hi, std::size_t chunk) {
            sat[chunk] += runtime_kernels::depthwise_s8(
                px, layer.weights.data(), layer.bias.data(), py, geo, b, lo, hi,
                layer.mult.data(), q_lo, q_hi);
          });
        }
      } else if (use_gemm_ && mk_ != nullptr) {
        using namespace runtime_kernels;
        const std::int64_t patch = geo.patch();
        const std::int64_t cols = geo.cols();
        const std::int64_t m = geo.ocg();
        const std::size_t need = static_cast<std::size_t>(patch * cols);
        if (scratch_.size() < need) scratch_.resize(need);
        std::int8_t* col = scratch_.data();
        const std::size_t pb_need = packed_b_s8_bytes(patch, cols, mk_->s8);
        if (packed_b_.size() < pb_need) packed_b_.resize(pb_need);
        for (std::int64_t b = 0; b < geo.batch; ++b) {
          for (std::int64_t g = 0; g < geo.groups; ++g) {
            pfor(0, patch, 4, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
              im2col_s8(px, geo, b, g, lo, hi, col);
            });
            pfor(0, panel_count(cols, mk_->s8.nr), 1,
                 [&](std::int64_t lo, std::int64_t hi, std::size_t) {
                   pack_b_s8(col, patch, cols, mk_->s8, lo, hi, packed_b_.data());
                 });
            const std::int64_t base = g * m;
            const std::vector<std::int32_t>& pa = packed_.get_s8(
                n.id, g, prepared_version_, mk_->s8, [&](std::vector<std::int32_t>& v) {
                  v.resize(packed_a_s8_words(m, patch, mk_->s8));
                  pack_a_s8(layer.weights.data() + base * patch, m, patch, mk_->s8, v.data());
                });
            std::int8_t* c = py + ((b * geo.out_c + base) * cols);
            pfor(0, panel_count(m, mk_->s8.mr), 1,
                 [&](std::int64_t lo, std::int64_t hi, std::size_t chunk) {
                   sat[chunk] += mk_->gemm_s8(pa.data(), packed_b_.data(), c, m, cols, patch,
                                              cols, /*col_major_store=*/false, lo, hi,
                                              layer.bias.data() + base,
                                              layer.mult.data() + base, q_lo, q_hi);
                 });
          }
        }
      } else if (use_gemm_) {
        const std::int64_t patch = geo.patch();
        const std::int64_t cols = geo.cols();
        const std::size_t need = static_cast<std::size_t>(patch * cols);
        if (scratch_.size() < need) scratch_.resize(need);
        std::int8_t* col = scratch_.data();
        for (std::int64_t b = 0; b < geo.batch; ++b) {
          for (std::int64_t g = 0; g < geo.groups; ++g) {
            pfor(0, patch, 4, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
              runtime_kernels::im2col_s8(px, geo, b, g, lo, hi, col);
            });
            const std::int64_t base = g * geo.ocg();
            const std::int8_t* a = layer.weights.data() + base * patch;
            std::int8_t* c = py + ((b * geo.out_c + base) * cols);
            pfor(0, geo.ocg(), 1, [&](std::int64_t lo, std::int64_t hi, std::size_t chunk) {
              sat[chunk] += runtime_kernels::gemm_rows_s8(
                  a, col, c, lo, hi, cols, patch, layer.bias.data() + base,
                  layer.mult.data() + base, q_lo, q_hi);
            });
          }
        }
      } else {
        // Direct reference loop, partitioned over output channels.
        const std::int64_t icg = geo.icg(), ocg = geo.ocg(), k = geo.kernel;
        const std::size_t per = static_cast<std::size_t>(icg * k * k);
        for (std::int64_t b = 0; b < geo.batch; ++b) {
          pfor(0, geo.out_c, 1, [&](std::int64_t oc_lo, std::int64_t oc_hi, std::size_t chunk) {
            for (std::int64_t oc = oc_lo; oc < oc_hi; ++oc) {
              const auto g = oc / ocg;
              const double mult = layer.mult[static_cast<std::size_t>(oc)];
              const std::int8_t* wrow = layer.weights.data() + static_cast<std::size_t>(oc) * per;
              for (std::int64_t oh = 0; oh < geo.out_h; ++oh) {
                for (std::int64_t ow = 0; ow < geo.out_w; ++ow) {
                  std::int32_t acc = layer.bias[static_cast<std::size_t>(oc)];
                  for (std::int64_t ic = 0; ic < icg; ++ic) {
                    const auto in_c = g * icg + ic;
                    for (std::int64_t kh = 0; kh < k; ++kh) {
                      const auto ih = oh * geo.stride - geo.pad + kh;
                      if (ih < 0 || ih >= geo.in_h) continue;
                      for (std::int64_t kw = 0; kw < k; ++kw) {
                        const auto iw = ow * geo.stride - geo.pad + kw;
                        if (iw < 0 || iw >= geo.in_w) continue;
                        const auto xi = static_cast<std::size_t>(
                            ((b * geo.in_c + in_c) * geo.in_h + ih) * geo.in_w + iw);
                        const auto wi = static_cast<std::size_t>((ic * k + kh) * k + kw);
                        acc += static_cast<std::int32_t>(px[xi]) *
                               static_cast<std::int32_t>(wrow[wi]);
                      }
                    }
                  }
                  const auto oi = static_cast<std::size_t>(
                      ((b * geo.out_c + oc) * geo.out_h + oh) * geo.out_w + ow);
                  py[oi] = requant_clamped(static_cast<double>(acc) * mult, q_lo, q_hi, sat[chunk]);
                }
              }
            }
          });
        }
      }
      break;
    }

    case OpKind::kDense: {
      const QTensor& x = *ins.at(0);
      const PreparedLayer& layer = prepared_.at(n.id);
      const Shape& in_shape = graph_.node(n.inputs[0]).out_shape;
      const auto N = in_shape.dim(0), F = in_shape.dim(1);
      const auto U = n.out_shape.dim(1);
      if (mk_ != nullptr) {
        // Microkernel over (m=U, n=N, k=F) with the column-major store
        // writing the [N x U] activation layout directly — no transposed
        // product to scatter back. int32 accumulation is exact, so these
        // bits match the scalar paths below for any N.
        using namespace runtime_kernels;
        std::vector<std::int8_t> xt;
        const std::int8_t* bsrc = x.data.data();
        if (N > 1) {
          xt.resize(static_cast<std::size_t>(F * N));
          for (std::int64_t b = 0; b < N; ++b) {
            for (std::int64_t f = 0; f < F; ++f) {
              xt[static_cast<std::size_t>(f * N + b)] = x.data[static_cast<std::size_t>(b * F + f)];
            }
          }
          bsrc = xt.data();
        }
        std::vector<std::int8_t> pb(packed_b_s8_bytes(F, N, mk_->s8));
        pfor(0, panel_count(N, mk_->s8.nr), 1, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          pack_b_s8(bsrc, F, N, mk_->s8, lo, hi, pb.data());
        });
        const std::vector<std::int32_t>& pa = packed_.get_s8(
            n.id, 0, prepared_version_, mk_->s8, [&](std::vector<std::int32_t>& v) {
              v.resize(packed_a_s8_words(U, F, mk_->s8));
              pack_a_s8(layer.weights.data(), U, F, mk_->s8, v.data());
            });
        pfor(0, panel_count(U, mk_->s8.mr), 1,
             [&](std::int64_t lo, std::int64_t hi, std::size_t chunk) {
               sat[chunk] += mk_->gemm_s8(pa.data(), pb.data(), out.data.data(), U, N, F,
                                          /*ldc=*/U, /*col_major_store=*/true, lo, hi,
                                          layer.bias.data(), layer.mult.data(), q_lo, q_hi);
             });
        break;
      }
      if (N == 1) {
        // [1 x F] is its own transpose; write straight into the output row.
        pfor(0, U, 8, [&](std::int64_t u_lo, std::int64_t u_hi, std::size_t chunk) {
          sat[chunk] += runtime_kernels::gemm_rows_s8(layer.weights.data(), x.data.data(),
                                                      out.data.data(), u_lo, u_hi, /*n=*/1, F,
                                                      layer.bias.data(), layer.mult.data(),
                                                      q_lo, q_hi);
        });
        break;
      }
      // Batched: one GEMM over all lanes (weights read once per layer, not
      // once per sample), then scatter the [U x N] product back to the
      // [N x U] activation layout. int32 accumulation is exact, so lane
      // results match the per-sample path bit for bit.
      std::vector<std::int8_t> xt(static_cast<std::size_t>(F * N));
      for (std::int64_t b = 0; b < N; ++b) {
        for (std::int64_t f = 0; f < F; ++f) {
          xt[static_cast<std::size_t>(f * N + b)] = x.data[static_cast<std::size_t>(b * F + f)];
        }
      }
      std::vector<std::int8_t> yt(static_cast<std::size_t>(U * N));
      pfor(0, U, 8, [&](std::int64_t u_lo, std::int64_t u_hi, std::size_t chunk) {
        sat[chunk] += runtime_kernels::gemm_rows_s8(layer.weights.data(), xt.data(), yt.data(),
                                                    u_lo, u_hi, N, F, layer.bias.data(),
                                                    layer.mult.data(), q_lo, q_hi);
      });
      for (std::int64_t b = 0; b < N; ++b) {
        for (std::int64_t u = 0; u < U; ++u) {
          out.data[static_cast<std::size_t>(b * U + u)] = yt[static_cast<std::size_t>(u * N + b)];
        }
      }
      break;
    }

    case OpKind::kRelu:
    case OpKind::kRelu6:
    case OpKind::kIdentity:
    case OpKind::kFlatten: {
      const QTensor& x = *ins.at(0);
      const double rescale = x.scale / so;
      const std::int8_t* px = x.data.data();
      std::int8_t* py = out.data.data();
      pfor(0, static_cast<std::int64_t>(out.data.size()), 4096,
           [&](std::int64_t lo, std::int64_t hi, std::size_t chunk) {
             for (std::int64_t i = lo; i < hi; ++i) {
               py[i] = requant_clamped(static_cast<double>(px[i]) * rescale, q_lo, q_hi,
                                       sat[chunk]);
             }
           });
      break;
    }

    case OpKind::kMaxPool: {
      const QTensor& x = *ins.at(0);
      const auto k = n.attrs.get_int("kernel");
      const auto stride = n.attrs.get_int_or("stride", k);
      const auto pad = n.attrs.get_int_or("pad", 0);
      const Shape& s = graph_.node(n.inputs[0]).out_shape;
      const std::int64_t IH = s.h(), IW = s.w();
      const std::int64_t OC = n.out_shape.c(), OH = n.out_shape.h(), OW = n.out_shape.w();
      const double rescale = x.scale / so;
      const std::int8_t* px = x.data.data();
      std::int8_t* py = out.data.data();
      pfor(0, n.out_shape.n() * OC, 1, [&](std::int64_t lo, std::int64_t hi, std::size_t chunk) {
        for (std::int64_t bc = lo; bc < hi; ++bc) {
          const std::int8_t* plane = px + bc * IH * IW;
          std::int8_t* oplane = py + bc * OH * OW;
          for (std::int64_t oh = 0; oh < OH; ++oh) {
            for (std::int64_t ow = 0; ow < OW; ++ow) {
              std::int32_t best = std::numeric_limits<std::int32_t>::min();
              for (std::int64_t kh = 0; kh < k; ++kh) {
                const auto ih = oh * stride - pad + kh;
                if (ih < 0 || ih >= IH) continue;
                for (std::int64_t kw = 0; kw < k; ++kw) {
                  const auto iw = ow * stride - pad + kw;
                  if (iw < 0 || iw >= IW) continue;
                  best = std::max(best, static_cast<std::int32_t>(plane[ih * IW + iw]));
                }
              }
              oplane[oh * OW + ow] =
                  requant_clamped(static_cast<double>(best) * rescale, q_lo, q_hi, sat[chunk]);
            }
          }
        }
      });
      break;
    }

    case OpKind::kAvgPool:
    case OpKind::kGlobalAvgPool: {
      const QTensor& x = *ins.at(0);
      const Shape& s = graph_.node(n.inputs[0]).out_shape;
      const bool global = n.kind == OpKind::kGlobalAvgPool;
      const auto k = global ? std::max(s.h(), s.w()) : n.attrs.get_int("kernel");
      const auto stride = global ? 1 : n.attrs.get_int_or("stride", k);
      const auto pad = global ? 0 : n.attrs.get_int_or("pad", 0);
      const std::int64_t IH = s.h(), IW = s.w();
      const std::int64_t OC = n.out_shape.c(), OH = n.out_shape.h(), OW = n.out_shape.w();
      const double rescale = x.scale / so;
      const std::int8_t* px = x.data.data();
      std::int8_t* py = out.data.data();
      pfor(0, n.out_shape.n() * OC, 1, [&](std::int64_t lo, std::int64_t hi, std::size_t chunk) {
        for (std::int64_t bc = lo; bc < hi; ++bc) {
          const std::int8_t* plane = px + bc * IH * IW;
          std::int8_t* oplane = py + bc * OH * OW;
          for (std::int64_t oh = 0; oh < OH; ++oh) {
            for (std::int64_t ow = 0; ow < OW; ++ow) {
              std::int64_t acc = 0;
              std::int64_t count = 0;
              for (std::int64_t kh = 0; kh < (global ? IH : k); ++kh) {
                const auto ih = oh * stride - pad + kh;
                if (ih < 0 || ih >= IH) continue;
                for (std::int64_t kw = 0; kw < (global ? IW : k); ++kw) {
                  const auto iw = ow * stride - pad + kw;
                  if (iw < 0 || iw >= IW) continue;
                  acc += plane[ih * IW + iw];
                  ++count;
                }
              }
              const double mean =
                  count > 0 ? static_cast<double>(acc) / static_cast<double>(count) : 0.0;
              oplane[oh * OW + ow] = requant_clamped(mean * rescale, q_lo, q_hi, sat[chunk]);
            }
          }
        }
      });
      break;
    }

    case OpKind::kAdd: {
      const QTensor& a = *ins.at(0);
      const QTensor& b = *ins.at(1);
      VEDLIOT_CHECK(a.shape == b.shape, "integer Add supports equal shapes only");
      const std::int8_t* pa = a.data.data();
      const std::int8_t* pb = b.data.data();
      std::int8_t* py = out.data.data();
      const double sa = a.scale, sb = b.scale;
      pfor(0, static_cast<std::int64_t>(out.data.size()), 4096,
           [&](std::int64_t lo, std::int64_t hi, std::size_t chunk) {
             for (std::int64_t i = lo; i < hi; ++i) {
               const double v = static_cast<double>(pa[i]) * sa + static_cast<double>(pb[i]) * sb;
               py[i] = requant_clamped(v / so, q_lo, q_hi, sat[chunk]);
             }
           });
      break;
    }

    case OpKind::kConcat: {
      std::size_t off = 0;
      // channel-major layouts append contiguously only for axis 0 of the
      // flattened [N=1,...] case; restrict to batch 1 (deployment case).
      VEDLIOT_CHECK(n.out_shape.dim(0) == 1, "integer Concat supports batch 1");
      for (const QTensor* x : ins) {
        const double rescale = x->scale / so;
        for (std::size_t i = 0; i < x->data.size(); ++i) {
          out.data[off + i] =
              requant_clamped(static_cast<double>(x->data[i]) * rescale, q_lo, q_hi, sat[0]);
        }
        off += x->data.size();
      }
      break;
    }

    case OpKind::kSoftmax: {
      // Dequantize, float softmax, requantize: how int8 runtimes typically
      // treat the final softmax (TFLite uses a LUT; float is the reference).
      const Tensor f = ins.at(0)->dequantize();
      Tensor sm(f.shape());
      const auto N = f.shape().dim(0);
      const auto F = f.numel() / N;
      for (std::int64_t b = 0; b < N; ++b) {
        float mx = -std::numeric_limits<float>::infinity();
        for (std::int64_t i = 0; i < F; ++i) mx = std::max(mx, f.at(static_cast<std::size_t>(b * F + i)));
        double sum = 0;
        for (std::int64_t i = 0; i < F; ++i) {
          const double e = std::exp(static_cast<double>(f.at(static_cast<std::size_t>(b * F + i)) - mx));
          sm.at(static_cast<std::size_t>(b * F + i)) = static_cast<float>(e);
          sum += e;
        }
        for (std::int64_t i = 0; i < F; ++i) {
          auto& v = sm.at(static_cast<std::size_t>(b * F + i));
          v = static_cast<float>(v / sum);
        }
      }
      for (std::size_t i = 0; i < out.data.size(); ++i) {
        out.data[i] = requant_clamped(static_cast<double>(sm.at(i)) / so, q_lo, q_hi, sat[0]);
      }
      break;
    }

    default:
      throw Unsupported("integer executor does not support op " + std::string(op_name(n.kind)));
  }

  for (std::uint64_t s : sat) saturations_ += s;
  return out;
}

}  // namespace vedliot
