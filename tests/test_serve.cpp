// Tests for the overload-safe serving layer: the circuit breaker, the
// bounded priority/EDF admission queue and the hysteretic brownout ladder
// as units, the Server end-to-end over a fault-injecting
// PlatformSimulator (shedding, displacement, breaker cycles, thermal
// deadline misses, retry budgets, obs mirroring, determinism, robustness
// wiring in execute mode), and the chaos-soak invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "graph/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/baseboard.hpp"
#include "platform/fabric.hpp"
#include "platform/faults.hpp"
#include "platform/microserver.hpp"
#include "graph/package.hpp"
#include "safety/model_store.hpp"
#include "safety/robustness.hpp"
#include "serve/breaker.hpp"
#include "serve/brownout.hpp"
#include "serve/integrity_soak.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/soak.hpp"
#include "util/rng.hpp"

namespace vedliot::serve {
namespace {

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

TEST(CircuitBreaker, TripsOpenAfterConsecutiveFailures) {
  CircuitBreaker b(BreakerConfig{3, 50e-3, 2});
  EXPECT_TRUE(b.allow());
  EXPECT_FALSE(b.record_failure(0.01, "boom"));
  EXPECT_FALSE(b.record_failure(0.02, "boom"));
  // A success in between resets the consecutive count.
  EXPECT_FALSE(b.record_success(0.03));
  EXPECT_EQ(b.consecutive_failures(), 0);
  EXPECT_FALSE(b.record_failure(0.04, "boom"));
  EXPECT_FALSE(b.record_failure(0.05, "boom"));
  const auto tripped = b.record_failure(0.06, "boom");
  ASSERT_TRUE(tripped.has_value());
  EXPECT_EQ(tripped->from, BreakerState::kClosed);
  EXPECT_EQ(tripped->to, BreakerState::kOpen);
  EXPECT_FALSE(b.allow());
}

TEST(CircuitBreaker, HalfOpenProbeCycleClosesOnSuccesses) {
  CircuitBreaker b(BreakerConfig{1, 50e-3, 2});
  ASSERT_TRUE(b.record_failure(0.0, "boom"));
  // Cooldown not yet expired: still open.
  EXPECT_FALSE(b.tick(0.04));
  EXPECT_FALSE(b.allow());
  const auto probing = b.tick(0.051);
  ASSERT_TRUE(probing.has_value());
  EXPECT_EQ(probing->to, BreakerState::kHalfOpen);

  // Two probe slots, then the door shuts until a result comes back.
  EXPECT_TRUE(b.allow());
  b.on_dispatch();
  EXPECT_TRUE(b.allow());
  b.on_dispatch();
  EXPECT_FALSE(b.allow());

  EXPECT_FALSE(b.record_success(0.06));
  const auto closed = b.record_success(0.07);
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(closed->to, BreakerState::kClosed);
  EXPECT_TRUE(b.allow());
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopens) {
  CircuitBreaker b(BreakerConfig{1, 50e-3, 2});
  ASSERT_TRUE(b.record_failure(0.0, "boom"));
  ASSERT_TRUE(b.tick(0.06));
  b.on_dispatch();
  const auto reopened = b.record_failure(0.07, "probe failed");
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened->from, BreakerState::kHalfOpen);
  EXPECT_EQ(reopened->to, BreakerState::kOpen);
  // The new cooldown anchors at the reopen time, not the original trip.
  EXPECT_FALSE(b.tick(0.11));
  EXPECT_TRUE(b.tick(0.13));
}

TEST(CircuitBreaker, ForceOpenKillsAnyStateAndRefreshesCooldown) {
  CircuitBreaker b(BreakerConfig{3, 50e-3, 2});
  const auto killed = b.force_open(0.0, "heartbeat down");
  ASSERT_TRUE(killed.has_value());
  EXPECT_EQ(killed->to, BreakerState::kOpen);
  // Re-arming while already open is not a transition but pushes the
  // cooldown out, so a flapping backend cannot shorten its penalty.
  EXPECT_FALSE(b.force_open(0.04, "still down"));
  EXPECT_FALSE(b.tick(0.06));  // 50 ms from the *second* force_open
  EXPECT_TRUE(b.tick(0.091));
  // A stale success from before the kill must not close an open breaker.
  CircuitBreaker c(BreakerConfig{3, 50e-3, 2});
  c.force_open(0.0, "down");
  EXPECT_FALSE(c.record_success(0.01));
  EXPECT_EQ(c.state(), BreakerState::kOpen);
}

// ---------------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------------

Ticket ticket(std::uint64_t id, int priority, double deadline, double enqueued = 0,
              double not_before = 0) {
  return Ticket{id, priority, deadline, not_before, enqueued};
}

TEST(AdmissionQueue, PopServesPriorityThenEarliestDeadline) {
  AdmissionQueue q(QueueConfig{8});
  q.push(ticket(1, 0, 0.9));
  q.push(ticket(2, 0, 0.3));
  q.push(ticket(3, 1, 0.8));
  q.push(ticket(4, 1, 0.5));
  std::vector<std::uint64_t> order;
  while (const auto t = q.pop(0.0)) order.push_back(t->id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{4, 3, 2, 1}));
}

TEST(AdmissionQueue, FifoThenIdBreakRemainingTies) {
  AdmissionQueue q(QueueConfig{8});
  q.push(ticket(7, 0, 0.5, 0.2));
  q.push(ticket(5, 0, 0.5, 0.1));
  q.push(ticket(6, 0, 0.5, 0.1));
  std::vector<std::uint64_t> order;
  while (const auto t = q.pop(0.0)) order.push_back(t->id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{5, 6, 7}));
}

TEST(AdmissionQueue, NotBeforeGatesDispatchUntilBackoffPasses) {
  AdmissionQueue q(QueueConfig{8});
  q.push(ticket(1, 0, 1.0, 0.0, 0.5));  // backing off until t=0.5
  q.push(ticket(2, 0, 2.0));
  const auto first = q.pop(0.1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 2u);  // 1 has the earlier deadline but is gated
  EXPECT_FALSE(q.pop(0.1).has_value());
  const auto second = q.pop(0.5);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, 1u);
}

TEST(AdmissionQueue, ExpireRemovesOnlyPastDeadlineTickets) {
  AdmissionQueue q(QueueConfig{8});
  q.push(ticket(1, 0, 0.2));
  q.push(ticket(2, 0, 0.8));
  q.push(ticket(3, 1, 0.1));
  const auto dead = q.expire(0.5);
  ASSERT_EQ(dead.size(), 2u);
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.pop(0.5)->id, 2u);
}

TEST(AdmissionQueue, DisplaceEvictsWorstStrictlyLowerPriority) {
  AdmissionQueue q(QueueConfig{3});
  q.push(ticket(1, 0, 0.3));
  q.push(ticket(2, 0, 0.9));  // lowest class, latest deadline -> the victim
  q.push(ticket(3, 1, 0.5));
  EXPECT_TRUE(q.full());
  EXPECT_THROW(q.push(ticket(9, 2, 1.0)), Error);
  EXPECT_FALSE(q.displace(0).has_value());  // nothing strictly below 0
  const auto victim = q.displace(1);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->id, 2u);
  EXPECT_EQ(q.depth(), 2u);
}

// ---------------------------------------------------------------------------
// BrownoutLadder
// ---------------------------------------------------------------------------

TEST(BrownoutLadder, HystereticStepDownAndRecovery) {
  BrownoutLadder l(BrownoutConfig{0.75, 0.25, 3, 4, 2});
  // Two hot observations are not enough; the mid-band resets the streak.
  EXPECT_EQ(l.observe(0.9), 0);
  EXPECT_EQ(l.observe(0.9), 0);
  EXPECT_EQ(l.observe(0.5), 0);
  EXPECT_EQ(l.observe(0.9), 0);
  EXPECT_EQ(l.observe(0.9), 0);
  EXPECT_EQ(l.observe(0.9), 1);
  EXPECT_EQ(l.level(), 1);
  // Recovery needs the (longer) calm streak, also reset by the mid-band.
  EXPECT_EQ(l.observe(0.1), 0);
  EXPECT_EQ(l.observe(0.1), 0);
  EXPECT_EQ(l.observe(0.1), 0);
  EXPECT_EQ(l.observe(0.5), 0);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(l.observe(0.1), 0);
  EXPECT_EQ(l.observe(0.1), -1);
  EXPECT_EQ(l.level(), 0);
}

TEST(BrownoutLadder, ClampsAtBothEnds) {
  BrownoutLadder l(BrownoutConfig{0.75, 0.25, 1, 1, 1});
  EXPECT_EQ(l.observe(0.9), 1);
  EXPECT_EQ(l.observe(0.9), 0);  // already at max_level
  EXPECT_EQ(l.level(), 1);
  EXPECT_EQ(l.observe(0.1), -1);
  EXPECT_EQ(l.observe(0.1), 0);  // already at full quality
  EXPECT_EQ(l.level(), 0);
}

// ---------------------------------------------------------------------------
// Server end-to-end (analytic timing over a PlatformSimulator)
// ---------------------------------------------------------------------------

struct Rig {
  platform::Chassis chassis;
  platform::Fabric fabric;
  std::vector<std::string> slots;
};

Rig make_rig(int count) {
  Rig r{platform::Chassis(platform::recs_box()),
        platform::star_fabric({"come0", "come1", "come2", "come3"}, 10.0, {1.0, 10.0}),
        {}};
  for (int i = 0; i < count; ++i) {
    const std::string slot = "come" + std::to_string(i);
    // All Xavier AGX: resnet50(1,100,64) fp32 serves in ~1 ms per module,
    // so the timing arithmetic below stays easy to reason about.
    r.chassis.install(slot, platform::find_module("COMe-XavierAGX"));
    r.slots.push_back(slot);
  }
  return r;
}

const Graph& resnet_graph() {
  static const Graph g = zoo::resnet50(1, 100, 64);
  return g;
}

ServerConfig base_config(const Rig& rig) {
  ServerConfig cfg;
  cfg.backends = rig.slots;
  cfg.variants = {{"resnet50-fp32", &resnet_graph(), DType::kFP32, false}};
  cfg.ladder = {{0, 0}};
  return cfg;
}

Request req(double arrival_s, double budget_s, int priority = 0,
            const std::string& client = "c0") {
  Request r;
  r.client = client;
  r.priority_class = static_cast<PriorityClass>(priority);
  r.arrival_s = arrival_s;
  r.deadline_s = arrival_s + budget_s;
  return r;
}

platform::FaultEvent crash(double t, const std::string& slot) {
  platform::FaultEvent e;
  e.time_s = t;
  e.kind = platform::FaultKind::kModuleCrash;
  e.slot = slot;
  return e;
}

platform::FaultEvent restart(double t, const std::string& slot) {
  platform::FaultEvent e;
  e.time_s = t;
  e.kind = platform::FaultKind::kModuleRestart;
  e.slot = slot;
  return e;
}

platform::FaultEvent throttle(double t, const std::string& slot, double magnitude) {
  platform::FaultEvent e;
  e.time_s = t;
  e.kind = platform::FaultKind::kThermalThrottle;
  e.slot = slot;
  e.magnitude = magnitude;
  return e;
}

std::size_t count_kind(const ServeReport& r, ServeEventKind k) {
  return static_cast<std::size_t>(std::count_if(
      r.events.begin(), r.events.end(), [&](const ServeEvent& e) { return e.kind == k; }));
}

const ServeEvent* first_of(const ServeReport& r, ServeEventKind k) {
  const auto it = std::find_if(r.events.begin(), r.events.end(),
                               [&](const ServeEvent& e) { return e.kind == k; });
  return it == r.events.end() ? nullptr : &*it;
}

std::ptrdiff_t first_index(const ServeReport& r, ServeEventKind k) {
  const auto it = std::find_if(r.events.begin(), r.events.end(),
                               [&](const ServeEvent& e) { return e.kind == k; });
  return it == r.events.end() ? -1 : it - r.events.begin();
}

TEST(Server, CompletesHealthyLoadWithinDeadlines) {
  Rig rig = make_rig(2);
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  Server server(sim, base_config(rig));
  for (int i = 0; i < 6; ++i) server.submit(req(1e-3 * (i + 1), 50e-3));
  const ServeReport r = server.run(0.1);

  EXPECT_EQ(r.offered, 6u);
  EXPECT_EQ(r.admitted, 6u);
  EXPECT_EQ(r.completed, 6u);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.deadline_missed, 0u);
  EXPECT_DOUBLE_EQ(r.goodput(), 1.0);

  // Per-request lifecycle order: admitted -> dispatched -> completed.
  EXPECT_LT(first_index(r, ServeEventKind::kAdmitted),
            first_index(r, ServeEventKind::kDispatched));
  EXPECT_LT(first_index(r, ServeEventKind::kDispatched),
            first_index(r, ServeEventKind::kCompleted));
}

TEST(Server, ShedsInfeasibleDeadlineAtAdmission) {
  Rig rig = make_rig(1);
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  Server server(sim, base_config(rig));
  server.submit(req(1e-3, 0.5e-3));  // budget well under the ~1 ms service
  const ServeReport r = server.run(0.05);

  EXPECT_EQ(r.shed, 1u);
  EXPECT_EQ(r.admitted, 0u);
  const ServeEvent* shed = first_of(r, ServeEventKind::kShed);
  ASSERT_NE(shed, nullptr);
  EXPECT_NE(shed->detail.find("deadline infeasible"), std::string::npos);
}

TEST(Server, FullQueueShedsEqualPriorityAndDisplacesForHigher) {
  Rig rig = make_rig(1);
  ServerConfig cfg = base_config(rig);
  cfg.queue.capacity = 1;
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  Server server(sim, cfg);
  const auto id1 = server.submit(req(1.0e-3, 50e-3));      // dispatched at once
  const auto id2 = server.submit(req(1.2e-3, 50e-3));      // fills the queue
  server.submit(req(1.4e-3, 50e-3));                       // same class: shed
  const auto id4 = server.submit(req(1.6e-3, 50e-3, 1));   // displaces id2
  const ServeReport r = server.run(0.1);

  EXPECT_EQ(r.shed, 1u);
  EXPECT_EQ(r.displaced, 1u);
  EXPECT_EQ(r.completed, 2u);
  EXPECT_LE(r.max_queue_depth, cfg.queue.capacity);

  const ServeEvent* shed = first_of(r, ServeEventKind::kShed);
  ASSERT_NE(shed, nullptr);
  EXPECT_NE(shed->detail.find("queue full"), std::string::npos);
  const ServeEvent* displaced = first_of(r, ServeEventKind::kDisplaced);
  ASSERT_NE(displaced, nullptr);
  EXPECT_EQ(displaced->subject, "request " + std::to_string(id2));
  EXPECT_NE(displaced->detail.find("request " + std::to_string(id4)), std::string::npos);

  // The displaced request never completes; the displacing one does.
  for (const ServeEvent& e : r.events) {
    if (e.kind == ServeEventKind::kCompleted) {
      EXPECT_NE(e.subject, "request " + std::to_string(id2));
    }
  }
  (void)id1;
}

/// Shared crash/restart scenario: steady load on two backends, come1 dies
/// mid-run and comes back, with a little transient-transfer noise. Used by
/// the breaker-cycle, determinism and obs-mirror tests.
ServeReport run_crash_cycle(obs::Tracer* trace = nullptr,
                            obs::MetricsRegistry* metrics = nullptr) {
  Rig rig = make_rig(2);
  platform::PlatformSimulator::Config pc;
  pc.transient_transfer_prob = 0.05;
  pc.seed = 77;
  platform::PlatformSimulator sim(rig.chassis, rig.fabric, pc);
  sim.schedule(crash(0.050, "come1"));
  sim.schedule(restart(0.150, "come1"));

  ServerConfig cfg = base_config(rig);
  cfg.trace = trace;
  cfg.metrics = metrics;
  Server server(sim, cfg);
  for (int i = 0; i < 300; ++i) {
    std::string client = "c";
    client += std::to_string(i % 3);
    server.submit(req(1e-3 * (i + 1), 50e-3, 0, client));
  }
  return server.run(0.4);
}

TEST(Server, BreakerCycleFollowsCrashAndRestart) {
  const ServeReport r = run_crash_cycle();

  // Heartbeats declare come1 dead (3 misses at the 10 ms control period),
  // which force-opens its breaker; the cooldown half-opens it; once the
  // module restarts, probes close it again.
  ASSERT_GE(count_kind(r, ServeEventKind::kBackendDown), 1u);
  ASSERT_GE(count_kind(r, ServeEventKind::kBreakerOpen), 1u);
  ASSERT_GE(count_kind(r, ServeEventKind::kBackendUp), 1u);
  ASSERT_GE(count_kind(r, ServeEventKind::kBreakerHalfOpen), 1u);
  ASSERT_GE(count_kind(r, ServeEventKind::kBreakerClosed), 1u);

  const ServeEvent* down = first_of(r, ServeEventKind::kBackendDown);
  EXPECT_EQ(down->subject, "backend come1");
  // Detection latency: crash at 50 ms, threshold 3 at 10 ms cadence.
  EXPECT_GE(down->time_s, 0.050);
  EXPECT_LE(down->time_s, 0.090);

  EXPECT_LT(first_index(r, ServeEventKind::kBackendDown),
            first_index(r, ServeEventKind::kBreakerOpen));
  EXPECT_LT(first_index(r, ServeEventKind::kBreakerOpen),
            first_index(r, ServeEventKind::kBreakerHalfOpen));
  EXPECT_LT(first_index(r, ServeEventKind::kBreakerHalfOpen),
            first_index(r, ServeEventKind::kBreakerClosed));
  const ServeEvent* closed = first_of(r, ServeEventKind::kBreakerClosed);
  const ServeEvent* up = first_of(r, ServeEventKind::kBackendUp);
  EXPECT_GE(up->time_s, 0.150);
  EXPECT_LE(up->time_s, closed->time_s);

  // come1 takes traffic again after its breaker closes.
  const bool redispatched = std::any_of(
      r.events.begin(), r.events.end(), [&](const ServeEvent& e) {
        return e.kind == ServeEventKind::kDispatched && e.time_s > closed->time_s &&
               e.detail.find("come1") != std::string::npos;
      });
  EXPECT_TRUE(redispatched);

  // The surviving backend kept most of the goodput flowing.
  EXPECT_GT(r.completed, 200u);
}

TEST(Server, ReportsAreBitwiseDeterministic) {
  EXPECT_EQ(run_crash_cycle().to_json(), run_crash_cycle().to_json());
}

TEST(Server, MirrorsEveryEventIntoTracerAndMetrics) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const ServeReport r = run_crash_cycle(&tracer, &metrics);

  // Invariant 4: the structured event log appears 1:1, in order, as
  // instant spans under the "vedliot.serve" category...
  std::vector<const obs::Span*> mirrored;
  for (const obs::Span& sp : tracer.spans()) {
    if (sp.category == "vedliot.serve") mirrored.push_back(&sp);
  }
  ASSERT_EQ(mirrored.size(), r.events.size());
  for (std::size_t i = 0; i < r.events.size(); ++i) {
    EXPECT_EQ(mirrored[i]->name, serve_event_name(r.events[i].kind));
  }

  // ...and every per-kind counter equals its event count exactly.
  for (const auto& [name, counter] : metrics.counters()) {
    if (name.rfind("vedliot.serve.", 0) != 0) continue;
    const std::string kind = name.substr(std::string("vedliot.serve.").size());
    const auto n = static_cast<std::size_t>(
        std::count_if(r.events.begin(), r.events.end(), [&](const ServeEvent& e) {
          return serve_event_name(e.kind) == kind;
        }));
    EXPECT_EQ(counter.value(), n) << name;
  }
}

TEST(Server, ThermalThrottleStretchesInFlightWorkIntoDeadlineMiss) {
  Rig rig = make_rig(1);
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  // The request is feasible when dispatched (~1 ms service, 1.6 ms budget)
  // but the backend throttles to 25% capacity mid-flight, so the remaining
  // work stretches past the deadline. The response is still delivered.
  sim.schedule(throttle(1.5e-3, "come0", 0.25));
  Server server(sim, base_config(rig));
  server.submit(req(1e-3, 1.6e-3));
  const ServeReport r = server.run(0.05);

  EXPECT_EQ(r.admitted, 1u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.cancelled, 0u);
  EXPECT_EQ(r.deadline_missed, 1u);
  const ServeEvent* miss = first_of(r, ServeEventKind::kDeadlineMiss);
  ASSERT_NE(miss, nullptr);
  // finish = 1.5 ms + 4x the remaining ~0.52 ms, well past the 2.6 ms
  // deadline but before the 5 ms it would take to restart from scratch.
  EXPECT_GT(miss->time_s, 2.6e-3);
  EXPECT_LT(miss->time_s, 5e-3);
}

TEST(Server, PartitionWithEmptyRetryBudgetFailsImmediately) {
  Rig rig = make_rig(1);
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  platform::FaultEvent drop;
  drop.time_s = 0.5e-3;
  drop.kind = platform::FaultKind::kLinkDrop;
  drop.a = "come0";
  drop.b = "switch0";
  sim.schedule(drop);

  ServerConfig cfg = base_config(rig);
  cfg.retry_tokens_per_request = 0.0;  // no budget is ever earned
  Server server(sim, cfg);
  server.submit(req(1e-3, 50e-3));
  const ServeReport r = server.run(0.05);

  EXPECT_EQ(r.failed, 1u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.retries, 0u);
  const ServeEvent* fault = first_of(r, ServeEventKind::kTransientFault);
  ASSERT_NE(fault, nullptr);
  EXPECT_NE(fault->detail.find("fabric partition"), std::string::npos);
  const ServeEvent* failed = first_of(r, ServeEventKind::kFailed);
  ASSERT_NE(failed, nullptr);
  EXPECT_NE(failed->detail.find("retry budget empty"), std::string::npos);
}

TEST(Server, RetriesWithBackoffUntilBudgetOrDeadlineRunsOut) {
  Rig rig = make_rig(1);
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  platform::FaultEvent drop;
  drop.time_s = 0.5e-3;
  drop.kind = platform::FaultKind::kLinkDrop;
  drop.a = "come0";
  drop.b = "switch0";
  sim.schedule(drop);

  ServerConfig cfg = base_config(rig);
  cfg.retry_tokens_per_request = 8.0;       // plenty of budget
  cfg.breaker.failure_threshold = 100;      // keep the breaker out of the way
  Server server(sim, cfg);
  server.submit(req(1e-3, 30e-3));
  const ServeReport r = server.run(0.05);

  EXPECT_EQ(r.completed, 0u);
  EXPECT_GE(r.retries, 1u);
  // The request ends in exactly one terminal event: it either burns its
  // whole budget / runs out of deadline (failed) or its last backoff gate
  // outlives the queue (cancelled) — never both, never neither.
  EXPECT_EQ(r.failed + r.cancelled, 1u);
  // Backoff gates are respected: each retry's next dispatch attempt comes
  // at or after not_before (observable as strictly increasing fault times).
  double last = 0;
  for (const ServeEvent& e : r.events) {
    if (e.kind != ServeEventKind::kTransientFault) continue;
    EXPECT_GE(e.time_s, last);
    last = e.time_s;
  }
}

TEST(Server, BrownoutLadderDegradesUnderOverloadAndRecovers) {
  Rig rig = make_rig(1);
  ServerConfig cfg = base_config(rig);
  cfg.variants.push_back({"resnet50-int8", &resnet_graph(), DType::kINT8, false});
  cfg.ladder = {{0, 0}, {1, 0}};
  cfg.queue.capacity = 8;
  cfg.control_period_s = 2e-3;  // sample the ~12 ms burst several times
  cfg.brownout.step_down_after = 2;
  cfg.brownout.step_up_after = 3;
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  Server server(sim, cfg);
  // Burst far beyond one fp32 backend (~1 ms/req), then silence: the
  // ladder must step down to int8 under the backlog and step back up
  // once the queue drains.
  for (int i = 0; i < 60; ++i) server.submit(req(1e-3 + 0.2e-3 * i, 60e-3));
  const ServeReport r = server.run(0.3);

  EXPECT_GE(count_kind(r, ServeEventKind::kBrownoutDown), 1u);
  EXPECT_GE(count_kind(r, ServeEventKind::kBrownoutUp), 1u);
  EXPECT_EQ(r.max_brownout_level, 1);
  EXPECT_EQ(r.final_brownout_level, 0);
  EXPECT_LT(first_index(r, ServeEventKind::kBrownoutDown),
            first_index(r, ServeEventKind::kBrownoutUp));
  // Requests served on the degraded rung name the int8 variant.
  const ServeEvent* down = first_of(r, ServeEventKind::kBrownoutDown);
  const bool int8_dispatch = std::any_of(
      r.events.begin(), r.events.end(), [&](const ServeEvent& e) {
        return e.kind == ServeEventKind::kDispatched && e.time_s >= down->time_s &&
               e.detail.find("resnet50-int8") != std::string::npos;
      });
  EXPECT_TRUE(int8_dispatch);
}

// ---------------------------------------------------------------------------
// Execute mode: real tensors + robustness service wiring
// ---------------------------------------------------------------------------

TEST(Server, ExecuteModeFlagsCorruptedModelAsQualityDegraded) {
  // The deployed variant carries a systematic fault (one layer scaled 8x);
  // the robustness service holds the clean golden copy, so every checked
  // response comes back divergent — delivered, but marked degraded.
  Graph clean = zoo::micro_mlp("m", 1, 16, {24, 12}, 4);
  Rng weights(7);
  clean.materialize_weights(weights);
  Graph corrupted = clean;
  Rng faults(9);
  safety::FaultInjector injector(faults);
  injector.scale_random_layer(corrupted, 8.0f);

  safety::RobustnessService::Config rc;
  rc.check_period = 1;
  rc.tolerance = 1e-3;
  safety::RobustnessService service(clean, rc);

  Rig rig = make_rig(1);
  ServerConfig cfg = base_config(rig);
  cfg.variants = {{"mlp-corrupted", &corrupted, DType::kFP32, false}};
  cfg.robustness = &service;
  cfg.execute = true;
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  Server server(sim, cfg);
  for (int i = 0; i < 4; ++i) server.submit(req(1e-3 * (i + 1), 50e-3));
  const ServeReport r = server.run(0.1);

  EXPECT_EQ(r.completed, 4u);  // degraded quality still ships
  EXPECT_EQ(r.quality_degraded, 4u);
  EXPECT_EQ(count_kind(r, ServeEventKind::kQualityDegraded), 4u);
  EXPECT_EQ(service.checks_run(), 4u);
  EXPECT_EQ(service.faults_detected(), 4u);
  const ServeEvent* degraded = first_of(r, ServeEventKind::kQualityDegraded);
  ASSERT_NE(degraded, nullptr);
  EXPECT_GT(degraded->value, 1e-3);  // carries the measured divergence

  // A clean deployment through the same path raises no degradation.
  safety::RobustnessService clean_service(clean, rc);
  Rig rig2 = make_rig(1);
  ServerConfig cfg2 = base_config(rig2);
  cfg2.variants = {{"mlp-clean", &clean, DType::kFP32, false}};
  cfg2.robustness = &clean_service;
  cfg2.execute = true;
  platform::PlatformSimulator sim2(rig2.chassis, rig2.fabric);
  Server server2(sim2, cfg2);
  for (int i = 0; i < 4; ++i) server2.submit(req(1e-3 * (i + 1), 50e-3));
  const ServeReport r2 = server2.run(0.1);
  EXPECT_EQ(r2.completed, 4u);
  EXPECT_EQ(r2.quality_degraded, 0u);
}

// ---------------------------------------------------------------------------
// Chaos soak: the four serving invariants under seeded fault campaigns
// ---------------------------------------------------------------------------

TEST(SoakServe, InvariantsHoldAcrossFaultRates) {
  std::vector<SoakResult> sweep;
  for (const double rate : {0.0, 0.05, 0.2}) {
    SoakConfig sc;
    sc.duration_s = 0.8;
    sc.fault_rate = rate;
    sweep.push_back(run_soak(sc));
    const SoakResult& res = sweep.back();
    std::string why;
    for (const auto& v : res.violations) why += v + "\n";
    EXPECT_TRUE(res.ok()) << "fault_rate=" << rate << ":\n" << why;
    // Invariant 3 directly: the queue bound held.
    EXPECT_LE(res.report.max_queue_depth, sc.queue_capacity);
    EXPECT_GT(res.report.completed, 0u);
  }
  // Invariant 2 across the sweep.
  EXPECT_TRUE(check_goodput_monotone(sweep).empty());
  EXPECT_GT(sweep.front().goodput(), sweep.back().goodput());
}

TEST(SoakServe, HealthyRunNeverMissesADeadline) {
  SoakConfig sc;
  sc.duration_s = 0.8;
  sc.fault_rate = 0.0;
  const SoakResult res = run_soak(sc);
  EXPECT_TRUE(res.ok());
  // Invariant 1 at fault rate zero is unconditional.
  EXPECT_EQ(res.report.deadline_missed, 0u);
}

TEST(SoakServe, SameSeedIsBitwiseIdentical) {
  SoakConfig sc;
  sc.duration_s = 0.5;
  sc.fault_rate = 0.2;
  EXPECT_EQ(run_soak(sc).to_json(), run_soak(sc).to_json());
}

TEST(SoakServe, DifferentSeedsDiffer) {
  SoakConfig a;
  a.duration_s = 0.5;
  a.fault_rate = 0.2;
  SoakConfig b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(run_soak(a).to_json(), run_soak(b).to_json());
}

TEST(SoakServe, ViolationMessagesCarryTheReproSeed) {
  SoakConfig sc;
  sc.duration_s = 0.5;
  sc.fault_rate = 0.2;
  const SoakResult res = run_soak(sc);
  // The record embeds the simulator identity (seed + fault counters) so a
  // failing CI log is reproducible from the message alone.
  EXPECT_NE(res.sim_describe.find("seed=0x"), std::string::npos);
  EXPECT_NE(res.to_json().find(res.sim_describe.substr(0, 30)), std::string::npos);
}

// ---------------------------------------------------------------------------
// Integrity mode: scrubbing, self-healing reload, OTA lifecycle
// ---------------------------------------------------------------------------

struct IntegrityRig {
  Rig rig;
  Graph model;
  safety::RobustnessService robustness;
  safety::ModelStore store;

  explicit IntegrityRig(int backends)
      : rig(make_rig(backends)),
        model(materialized_mlp()),
        robustness(model, robustness_config()) {}

  static Graph materialized_mlp() {
    Graph g = zoo::micro_mlp("m", 1, 16, {24, 12}, 4);
    Rng weights(7);
    g.materialize_weights(weights);
    return g;
  }

  static safety::RobustnessService::Config robustness_config() {
    safety::RobustnessService::Config rc;
    rc.check_period = 1;
    rc.tolerance = 1e-3;
    return rc;
  }

  ServerConfig config() {
    ServerConfig cfg = base_config(rig);
    cfg.variants = {{"mlp", &model, DType::kFP32, false}};
    cfg.execute = true;
    cfg.robustness = &robustness;
    cfg.store = &store;
    cfg.scrub.tensors_per_tick = 2;
    return cfg;
  }
};

platform::FaultEvent memory_fault(double t, const std::string& slot) {
  platform::FaultEvent e;
  e.time_s = t;
  e.kind = platform::FaultKind::kMemoryFault;
  e.slot = slot;
  e.magnitude = 1.0;
  return e;
}

TEST(Server, IntegrityModeHealsMemoryFault) {
  IntegrityRig ir(1);
  const ServerConfig cfg = ir.config();
  platform::PlatformSimulator sim(ir.rig.chassis, ir.rig.fabric);
  sim.schedule(memory_fault(0.030, "come0"));
  Server server(sim, cfg);
  for (int i = 0; i < 20; ++i) server.submit(req(2e-3 + 5e-3 * i, 80e-3));
  const ServeReport r = server.run(0.3);

  EXPECT_EQ(r.memory_faults, 1u);
  EXPECT_GE(r.scrub_hits, 1u);
  EXPECT_GE(r.quarantines, 1u);
  EXPECT_GE(r.model_reloads, 1u);
  EXPECT_EQ(r.dirty_at_end, 0u);  // healed by end of run
  // fault -> detection -> reload, in that order
  EXPECT_LT(first_index(r, ServeEventKind::kMemoryFault),
            first_index(r, ServeEventKind::kScrubHit));
  EXPECT_LT(first_index(r, ServeEventKind::kScrubHit),
            first_index(r, ServeEventKind::kModelReloaded));
  // detection within one scrub sweep (+2 ticks slack) of the flip
  const std::size_t entries = digest_weights(ir.model).size();
  const std::size_t sweep = (entries + cfg.scrub.tensors_per_tick - 1) /
                            cfg.scrub.tensors_per_tick;
  const ServeEvent* hit = first_of(r, ServeEventKind::kScrubHit);
  ASSERT_NE(hit, nullptr);
  EXPECT_LE(hit->time_s - 0.030,
            static_cast<double>(sweep + 2) * cfg.control_period_s + 1e-9);
  // the hit names the corrupted (node, tensor) pair
  EXPECT_NE(hit->detail.find("tensor"), std::string::npos);
  // requests delivered after the reload verify clean again
  const ServeEvent* reload = first_of(r, ServeEventKind::kModelReloaded);
  ASSERT_NE(reload, nullptr);
  for (const ServeEvent& e : r.events) {
    if (e.kind == ServeEventKind::kQualityDegraded) {
      EXPECT_LE(e.time_s, reload->time_s + 1e-9);
    }
  }
}

TEST(Server, IntegrityModeOtaCommitAndReject) {
  IntegrityRig ir(1);
  platform::PlatformSimulator sim(ir.rig.chassis, ir.rig.fabric);
  Server server(sim, ir.config());

  // v2: genuinely different weights, correctly declared canary outputs.
  Graph v2 = ir.model.clone();
  for (NodeId id : v2.topo_order()) {
    Node& n = v2.node(id);
    if (!n.weights.empty()) {
      for (float& w : n.weights[0].data()) w *= 1.03f;
    }
  }
  v2.touch();
  server.submit_ota(0.020, 0, safety::make_ota_package(v2));

  // Then a payload corrupted in transit: must be rejected at staging.
  safety::OtaPackage damaged = safety::make_ota_package(v2);
  damaged.package.at(damaged.package.size() / 3) ^= 0x20;
  server.submit_ota(0.060, 0, damaged);

  for (int i = 0; i < 20; ++i) server.submit(req(2e-3 + 5e-3 * i, 80e-3));
  const ServeReport r = server.run(0.3);

  EXPECT_EQ(r.ota_staged, 2u);
  EXPECT_EQ(r.ota_committed, 1u);
  EXPECT_EQ(r.ota_rejected, 1u);
  EXPECT_EQ(r.ota_rolled_back, 0u);
  EXPECT_EQ(ir.store.version("mlp"), 2u);  // the good push is live
  EXPECT_EQ(r.dirty_at_end, 0u);
  // The rejected push names why.
  const ServeEvent* rejected = first_of(r, ServeEventKind::kOtaRejected);
  ASSERT_NE(rejected, nullptr);
  EXPECT_NE(rejected->detail.find("staging failed"), std::string::npos);
  // After the commit the robustness golden follows the new weights: no
  // degradation storm from a healthy v2 deployment.
  EXPECT_EQ(r.quality_degraded, 0u);
}

TEST(Server, IntegrityModeBadPushRollsBackInProbation) {
  IntegrityRig ir(1);
  ServerConfig cfg = ir.config();
  cfg.ota_probation_sweeps = 3;
  platform::PlatformSimulator sim(ir.rig.chassis, ir.rig.fabric);

  Graph v2 = ir.model.clone();
  for (NodeId id : v2.topo_order()) {
    Node& n = v2.node(id);
    if (!n.weights.empty()) {
      for (float& w : n.weights[0].data()) w *= 0.95f;
    }
  }
  v2.touch();
  // The push verifies clean and commits — then its freshly written image
  // takes a flip inside the probation window: policy is rollback, not
  // surgical repair.
  sim.schedule(memory_fault(0.050 + 1.5 * cfg.control_period_s, "come0"));
  Server server(sim, cfg);
  server.submit_ota(0.050, 0, safety::make_ota_package(v2));
  for (int i = 0; i < 20; ++i) server.submit(req(2e-3 + 5e-3 * i, 80e-3));
  const ServeReport r = server.run(0.3);

  EXPECT_EQ(r.ota_committed, 1u);
  EXPECT_EQ(r.ota_rolled_back, 1u);
  EXPECT_LT(first_index(r, ServeEventKind::kOtaCommitted),
            first_index(r, ServeEventKind::kOtaRolledBack));
  EXPECT_EQ(ir.store.version("mlp"), 1u);  // v1 serving again
  EXPECT_FALSE(ir.store.can_rollback("mlp"));
  EXPECT_EQ(r.dirty_at_end, 0u);
}

// ---------------------------------------------------------------------------
// Integrity soak: the four corruption invariants under seeded SEU campaigns
// ---------------------------------------------------------------------------

TEST(SoakIntegrity, InvariantsHoldAcrossFlipRates) {
  for (const double rate : {0.0, 6.0}) {
    IntegritySoakConfig sc;
    sc.duration_s = 0.6;
    sc.arrival_hz = 150.0;
    sc.flip_rate_hz = rate;
    const IntegritySoakResult res = run_integrity_soak(sc);
    std::string why;
    for (const auto& v : res.violations) why += v + "\n";
    EXPECT_TRUE(res.ok()) << "flip_rate=" << rate << ":\n" << why;
    EXPECT_GT(res.report.completed, 0u);
    EXPECT_EQ(res.report.dirty_at_end, 0u);
    if (rate > 0) {
      EXPECT_GT(res.report.memory_faults, 0u);
      EXPECT_LE(res.max_detection_s, res.detection_bound_s + 1e-9);
    }
  }
}

TEST(SoakIntegrity, SameSeedIsBitwiseIdentical) {
  IntegritySoakConfig sc;
  sc.duration_s = 0.5;
  sc.arrival_hz = 150.0;
  sc.flip_rate_hz = 8.0;
  EXPECT_EQ(run_integrity_soak(sc).to_json(), run_integrity_soak(sc).to_json());
}

TEST(SoakIntegrity, DifferentSeedsDiffer) {
  IntegritySoakConfig a;
  a.duration_s = 0.5;
  a.arrival_hz = 150.0;
  a.flip_rate_hz = 8.0;
  IntegritySoakConfig b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(run_integrity_soak(a).to_json(), run_integrity_soak(b).to_json());
}

}  // namespace
}  // namespace vedliot::serve
