#pragma once
/// \file designflow.hpp
/// \brief The VEDLIoT design flow façade (Fig. 1): given a model and the
/// application's requirements, run the complete bottom-up pipeline —
/// optimize the network (Sec. III), select an accelerator (Sec. II),
/// place it on a RECS platform (Sec. II-A), wire in safety monitoring
/// (Sec. IV-B) and attestation-backed security (Sec. IV-C) — and emit a
/// single report. This is the "complete design flow for Next-Generation
/// IoT devices" the abstract promises, as one API call.

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "hw/device.hpp"
#include "hw/perf_model.hpp"
#include "opt/pass.hpp"
#include "platform/baseboard.hpp"

namespace vedliot::core {

/// What the application needs from the deployment.
struct DesignSpec {
  std::string application;          ///< for the report
  double latency_budget_s = 0.1;    ///< per inference
  double power_budget_w = 15.0;     ///< whole node (uRECS default)
  double rate_hz = 10.0;            ///< sustained inference rate
  bool quantize_int8 = true;        ///< allow INT8 when the target supports it
  bool fuse_operators = true;
  bool require_attestation = false; ///< Sec. IV-C
  bool enable_robustness_monitor = false;  ///< Sec. IV-B
  std::string platform = "uRECS";   ///< "uRECS" | "t.RECS" | "RECS|Box"
};

/// One candidate evaluated during device selection.
struct CandidateResult {
  std::string device;
  DType dtype = DType::kFP32;
  double latency_s = 0;
  double power_w = 0;
  double energy_per_inference_j = 0;
  bool feasible = false;
  std::string rejection;            ///< why it was rejected, if it was
};

/// The flow's output.
struct FlowReport {
  std::string application;
  std::string model;
  std::vector<opt::PassResult> optimization_log;
  std::vector<CandidateResult> candidates;
  std::string selected_device;
  std::string selected_module;
  std::string platform;
  hw::PerfEstimate estimate;
  double duty_cycled_power_w = 0;   ///< power at the requested rate
  bool attestation_configured = false;
  bool robustness_monitor_configured = false;

  std::string to_markdown() const;
};

class DesignFlowError : public Error {
 public:
  explicit DesignFlowError(const std::string& message) : Error(message) {}
};

/// Run the flow. The graph is optimized in place (fusion/quantization).
/// Throws DesignFlowError when no module on the chosen platform meets the
/// latency and power budgets.
FlowReport run_design_flow(Graph& model, const DesignSpec& spec);

}  // namespace vedliot::core
