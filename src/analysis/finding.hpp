#pragma once
/// \file finding.hpp
/// \brief Structured static-analysis findings (the IR verifier's output).
///
/// Instead of throwing on the first structural problem (Graph::validate's
/// behaviour), the verifier accumulates Finding records — one per violated
/// check — so a pass pipeline, a CI lint job or a package loader can report
/// everything that is wrong at once and decide severity policy itself.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace vedliot::analysis {

enum class Severity {
  kNote,     ///< informational (statistics, reuse factors)
  kWarning,  ///< suspicious but executable (unknown attr, dangling tag)
  kError,    ///< the graph violates an IR contract; executors may misbehave
};

std::string_view severity_name(Severity s);

/// One violated (or informational) check on one node or on the whole graph.
struct Finding {
  Severity severity = Severity::kError;
  std::string check_id;     ///< stable dotted id, e.g. "ir.arity", "quant.act_scale.missing"
  NodeId node = -1;         ///< -1 for graph-level findings
  std::string node_name;    ///< empty for graph-level findings
  std::string message;
};

/// An ordered collection of findings with severity accounting.
class Report {
 public:
  void add(Severity severity, std::string check_id, const std::string& message);
  void add(Severity severity, std::string check_id, const Node& node, const std::string& message);
  /// Generic site-addressed finding (e.g. a bytecode pc instead of a graph
  /// node); \p site lands in Finding::node and \p site_name in node_name.
  void add(Severity severity, std::string check_id, std::int32_t site, std::string site_name,
           const std::string& message);
  void merge(Report other);

  const std::vector<Finding>& findings() const { return findings_; }
  bool empty() const { return findings_.empty(); }
  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarning); }

  /// True when no error-severity finding is present.
  bool ok() const { return errors() == 0; }

  /// True if any finding carries the given check id.
  bool has(std::string_view check_id) const;

  /// All findings with the given check id.
  std::vector<Finding> by_check(std::string_view check_id) const;

  /// Fixed-width human table (severity, check, node, message).
  std::string to_table() const;

  /// One JSON object per line: {"severity":...,"check":...,"node":...,"message":...}.
  std::string to_json_lines() const;

  /// Compact single-line summary, e.g. "2 errors, 1 warning, 3 notes".
  std::string summary() const;

 private:
  std::vector<Finding> findings_;
};

}  // namespace vedliot::analysis
