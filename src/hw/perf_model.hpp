#pragma once
/// \file perf_model.hpp
/// \brief Roofline + utilization performance/power/energy model.
///
/// Substitutes for the physical measurements behind Fig. 4: inference time
/// is the max of the compute roof (peak * utilization at the batch size and
/// precision) and the memory roof (operand traffic / DRAM bandwidth, with
/// weight re-streaming when the model exceeds the on-chip buffer). Power
/// interpolates between idle and TDP with the achieved compute utilization.

#include <string>

#include "graph/graph.hpp"
#include "hw/device.hpp"

namespace vedliot::hw {

enum class Bound { kCompute, kMemory };

struct PerfEstimate {
  std::string device;
  std::string model;
  int batch = 1;
  DType dtype = DType::kFP32;

  double latency_s = 0;        ///< one full batch
  double compute_time_s = 0;
  double memory_time_s = 0;
  Bound bound = Bound::kCompute;

  double achieved_gops = 0;    ///< ops / latency
  double power_w = 0;          ///< average board power while running
  double energy_j = 0;         ///< per batch
  double energy_per_inference_j = 0;
  double fps = 0;              ///< inferences (not batches) per second
  double efficiency_gops_w = 0;

  double arena_mib = 0;        ///< activation arena (from the memory planner)
  double weight_mib = 0;
};

/// Estimate executing \p g (whose input shapes already encode the batch
/// size) on \p dev at precision \p dt. Throws Unsupported when the device
/// cannot run the precision.
PerfEstimate estimate(const DeviceSpec& dev, const Graph& g, DType dt);

/// Low-level variant for callers that already know the op/traffic counts
/// (used by the platform-level schedulers).
PerfEstimate estimate_workload(const DeviceSpec& dev, double ops, double traffic_bytes,
                               double weight_bytes, int batch, DType dt);

}  // namespace vedliot::hw
