#include "analysis/wasm_verifier.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>

namespace vedliot::analysis {

namespace {

using security::WFunction;
using security::WInstr;
using security::WModule;
using security::WOp;

constexpr std::uint8_t kMaxOpcode = static_cast<std::uint8_t>(WOp::kHalt);

bool decodable(const WInstr& ins) {
  return static_cast<std::uint8_t>(ins.op) <= kMaxOpcode;
}

/// Abstract machine state at one program point: the operand stack (depth is
/// exact — the VM is depth-deterministic or the module is rejected) and the
/// function's locals, both over the signed-interval domain.
struct AbsState {
  std::vector<Interval> stack;
  std::vector<Interval> locals;
};

/// Everything one function's fixpoint run leaves behind for the cost layer.
struct FnFlow {
  std::map<std::uint32_t, std::vector<std::uint32_t>> succs;  ///< intra-fn CFG
  std::set<std::uint32_t> reachable;
  std::set<std::uint32_t> callees;
  bool has_exit = false;   ///< a kRet/kHalt is reachable
  bool aborted = false;    ///< step budget exceeded; all proofs void
};

enum class CostStatus { kPending, kBounded, kUnbounded };

class Verifier {
 public:
  Verifier(const WModule& m, std::span<const WasmHostSig> hosts, const WasmVerifyOptions& opts)
      : m_(m), hosts_(hosts), opts_(opts) {}

  WasmVerifyResult run() {
    structural_pass();
    flows_.resize(m_.functions.size());
    for (std::uint32_t f = 0; f < m_.functions.size(); ++f) analyze_function(f);
    cost_pass();
    finish_flags();
    return std::move(result_);
  }

 private:
  // -- reporting ------------------------------------------------------------

  std::string site(std::uint32_t fn, std::uint32_t pc) const {
    return m_.functions[fn].name + "@" + std::to_string(pc);
  }

  void add(Severity sev, const char* check, std::uint32_t pc, std::string site_name,
           const std::string& message) {
    result_.report.add(sev, check, static_cast<std::int32_t>(pc), std::move(site_name), message);
  }

  /// Per-(pc, check) dedup: a fixpoint visits program points many times.
  bool emit_once(Severity sev, const char* check, std::uint32_t fn, std::uint32_t pc,
                 const std::string& message) {
    if (!emitted_.insert({pc, check}).second) return false;
    add(sev, check, pc, site(fn, pc), message);
    return true;
  }

  // -- layer 1: structural validation --------------------------------------

  void structural_pass() {
    const auto code_size = static_cast<std::int64_t>(m_.code.size());
    if (m_.data.size() > m_.memory_bytes) {
      result_.report.add(Severity::kError, "wasm.struct.data.overflow",
                         "data segment (" + std::to_string(m_.data.size()) +
                             " bytes) exceeds linear memory (" +
                             std::to_string(m_.memory_bytes) + " bytes)");
    }
    std::set<std::string> names;
    for (const WFunction& f : m_.functions) {
      if (!names.insert(f.name).second) {
        result_.report.add(Severity::kWarning, "wasm.struct.fn.dup",
                           "duplicate function name '" + f.name +
                               "': find_function resolves to the first");
      }
      if (f.entry >= m_.code.size()) {
        result_.report.add(Severity::kError, "wasm.struct.entry",
                           "function '" + f.name + "' entry " + std::to_string(f.entry) +
                               " is outside the code (" + std::to_string(code_size) +
                               " instructions)");
      }
      if (f.nargs > f.nlocals) {
        result_.report.add(Severity::kWarning, "wasm.struct.local.count",
                           "function '" + f.name + "' declares nlocals " +
                               std::to_string(f.nlocals) + " < nargs " +
                               std::to_string(f.nargs));
      }
    }
    for (std::uint32_t pc = 0; pc < m_.code.size(); ++pc) {
      const WInstr& ins = m_.code[pc];
      const std::string at = "code@" + std::to_string(pc);
      if (!decodable(ins)) {
        add(Severity::kError, "wasm.struct.opcode", pc, at,
            "undecodable opcode " + std::to_string(static_cast<int>(ins.op)));
        continue;
      }
      switch (ins.op) {
        case WOp::kJmp:
        case WOp::kJmpIfZ:
          if (ins.imm < 0 || ins.imm >= code_size) {
            add(Severity::kError, "wasm.struct.jump.target", pc, at,
                "jump target " + std::to_string(ins.imm) + " is outside the code");
          }
          break;
        case WOp::kCall:
          if (ins.imm < 0 || ins.imm >= static_cast<std::int64_t>(m_.functions.size())) {
            add(Severity::kError, "wasm.struct.call.target", pc, at,
                "call target " + std::to_string(ins.imm) + " is not a function index");
          }
          break;
        case WOp::kHostCall:
          if (ins.imm < 0 || ins.imm >= static_cast<std::int64_t>(hosts_.size())) {
            add(Severity::kError, "wasm.struct.host.target", pc, at,
                "host import " + std::to_string(ins.imm) + " is not registered (" +
                    std::to_string(hosts_.size()) + " imports)");
          }
          break;
        default:
          break;
      }
    }
  }

  // -- layer 2: abstract interpretation ------------------------------------

  bool jump_target_ok(const WInstr& ins) const {
    return ins.imm >= 0 && ins.imm < static_cast<std::int64_t>(m_.code.size());
  }

  /// Propagate \p state along an edge from \p from to \p to. Returns false
  /// when the edge leaves the code (fallthrough off the end).
  void propagate(std::uint32_t fn, std::uint32_t from, std::uint32_t to, AbsState state,
                 std::map<std::uint32_t, AbsState>& states,
                 std::map<std::uint32_t, std::size_t>& joins,
                 std::deque<std::uint32_t>& work) {
    FnFlow& flow = flows_[fn];
    if (to >= m_.code.size()) {
      emit_once(Severity::kError, "wasm.flow.fallthrough", fn, from,
                "execution can run off the end of the code (VM traps 'pc out of range')");
      return;
    }
    auto& edge = flow.succs[from];
    if (std::find(edge.begin(), edge.end(), to) == edge.end()) edge.push_back(to);

    auto it = states.find(to);
    if (it == states.end()) {
      states.emplace(to, std::move(state));
      work.push_back(to);
      return;
    }
    AbsState& have = it->second;
    if (have.stack.size() != state.stack.size()) {
      emit_once(Severity::kError, "wasm.stack.depth.mismatch", fn, to,
                "operand stack depth differs at merge point: " +
                    std::to_string(have.stack.size()) + " vs " +
                    std::to_string(state.stack.size()));
      return;  // keep the first depth; the module is rejected anyway
    }
    const bool widen = joins[to] >= opts_.widen_after;
    bool changed = false;
    auto merge = [&](Interval& old_iv, const Interval& new_iv) {
      Interval j = interval_join(old_iv, new_iv);
      // Bounds still moving after widen_after joins (a loop counter creeping
      // toward an extreme): jump the moved bound straight to the i32 extreme
      // so the fixpoint terminates instead of iterating 2^31 times.
      if (widen) j = interval_widen(old_iv, j);
      if (!(j == old_iv)) {
        old_iv = j;
        changed = true;
      }
    };
    for (std::size_t i = 0; i < have.stack.size(); ++i) merge(have.stack[i], state.stack[i]);
    for (std::size_t i = 0; i < have.locals.size(); ++i) merge(have.locals[i], state.locals[i]);
    if (!changed) return;
    ++joins[to];
    work.push_back(to);
  }

  void analyze_function(std::uint32_t fn_index) {
    const WFunction& fn = m_.functions[fn_index];
    FnFlow& flow = flows_[fn_index];
    WasmFunctionSummary summary;
    summary.index = fn_index;
    summary.name = fn.name;

    if (fn.entry >= m_.code.size()) {
      // wasm.struct.entry already reported; nothing to interpret.
      result_.functions.push_back(std::move(summary));
      return;
    }

    const std::size_t nlocals = std::max<std::size_t>(fn.nlocals, fn.nargs);
    AbsState entry;
    entry.locals.assign(nlocals, Interval{0, 0});  // VM zero-initializes locals
    for (std::size_t i = 0; i < fn.nargs && i < nlocals; ++i) {
      entry.locals[i] = Interval::top();  // arguments are attacker-controlled
    }

    std::map<std::uint32_t, AbsState> states;
    std::map<std::uint32_t, std::size_t> joins;
    std::deque<std::uint32_t> work;
    states.emplace(fn.entry, std::move(entry));
    work.push_back(fn.entry);

    std::size_t steps = 0;
    while (!work.empty()) {
      if (++steps > opts_.max_steps) {
        flow.aborted = true;
        emit_once(Severity::kWarning, "wasm.verify.budget", fn_index, fn.entry,
                  "fixpoint step budget exceeded; function left unproven");
        break;
      }
      const std::uint32_t pc = work.front();
      work.pop_front();
      step(fn_index, pc, states, joins, work);
    }

    flow.has_exit = has_exit_.count(fn_index) != 0;
    for (const auto& [pc, st] : states) {
      flow.reachable.insert(pc);
      summary.max_stack_depth = std::max(summary.max_stack_depth, st.stack.size());
    }
    summary.reachable_instrs = flow.reachable.size();
    summary.mem_accesses = mem_accesses_;
    summary.mem_proven = mem_proven_;
    mem_accesses_ = mem_proven_ = 0;

    if (!flow.has_exit && !flow.aborted) {
      emit_once(Severity::kWarning, "wasm.flow.no_exit", fn_index, fn.entry,
                "no reachable kRet/kHalt: the function can only loop or trap");
    }
    for (std::uint32_t other = 0; other < m_.functions.size(); ++other) {
      if (other == fn_index) continue;
      if (m_.functions[other].entry != m_.functions[fn_index].entry &&
          flow.reachable.count(m_.functions[other].entry) != 0) {
        emit_once(Severity::kWarning, "wasm.flow.cross_function", fn_index,
                  m_.functions[other].entry,
                  "control flow of '" + fn.name + "' reaches the entry of '" +
                      m_.functions[other].name + "'");
      }
    }
    report_unreachable(fn_index, flow);
    result_.functions.push_back(std::move(summary));
  }

  /// Dead code inside the function's own code segment (entry up to the next
  /// function entry) is worth a note: tenants do not ship dead bytes.
  void report_unreachable(std::uint32_t fn_index, const FnFlow& flow) {
    if (flow.aborted || flow.reachable.empty()) return;
    std::uint32_t end = static_cast<std::uint32_t>(m_.code.size());
    const std::uint32_t entry = m_.functions[fn_index].entry;
    for (const WFunction& other : m_.functions) {
      if (other.entry > entry) end = std::min(end, other.entry);
    }
    std::size_t dead = 0;
    for (std::uint32_t pc = entry; pc < end; ++pc) {
      if (flow.reachable.count(pc) == 0) ++dead;
    }
    if (dead > 0) {
      emit_once(Severity::kNote, "wasm.flow.unreachable", fn_index, entry,
                std::to_string(dead) + " unreachable instruction(s) in segment of '" +
                    m_.functions[fn_index].name + "'");
    }
  }

  void step(std::uint32_t fn_index, std::uint32_t pc, std::map<std::uint32_t, AbsState>& states,
            std::map<std::uint32_t, std::size_t>& joins, std::deque<std::uint32_t>& work) {
    const WFunction& fn = m_.functions[fn_index];
    AbsState st = states.at(pc);  // copy: transfer mutates
    const WInstr ins = m_.code[pc];

    if (!decodable(ins)) return;  // wasm.struct.opcode reported; path traps here

    auto pop = [&]() {
      const Interval v = st.stack.back();
      st.stack.pop_back();
      return v;
    };
    auto underflow = [&](std::size_t need, const char* check, const std::string& what) {
      if (st.stack.size() >= need) return false;
      emit_once(Severity::kError, check, fn_index, pc,
                what + ": needs " + std::to_string(need) + " value(s), stack has " +
                    std::to_string(st.stack.size()));
      return true;  // the VM traps here; the path ends
    };
    auto fallthrough = [&]() {
      propagate(fn_index, pc, pc + 1, std::move(st), states, joins, work);
    };

    switch (ins.op) {
      case WOp::kConst:
        st.stack.push_back(Interval::constant(ins.imm));
        fallthrough();
        break;
      case WOp::kLocalGet:
      case WOp::kLocalSet: {
        const bool is_set = ins.op == WOp::kLocalSet;
        if (ins.imm < 0 || static_cast<std::size_t>(ins.imm) >= st.locals.size()) {
          emit_once(Severity::kError, "wasm.struct.local.index", fn_index, pc,
                    "local index " + std::to_string(ins.imm) + " out of range (" +
                        std::to_string(st.locals.size()) + " locals in '" + fn.name + "')");
          break;
        }
        if (is_set) {
          if (underflow(1, "wasm.stack.underflow", "kLocalSet")) break;
          st.locals[static_cast<std::size_t>(ins.imm)] = pop();
        } else {
          st.stack.push_back(st.locals[static_cast<std::size_t>(ins.imm)]);
        }
        fallthrough();
        break;
      }
      case WOp::kDivS:
      case WOp::kRemS: {
        const bool is_div = ins.op == WOp::kDivS;
        if (underflow(2, "wasm.stack.underflow", is_div ? "kDivS" : "kRemS")) break;
        Interval b = pop();
        const Interval a = pop();
        if (b.is_constant() && b.lo == 0) {
          emit_once(Severity::kError, is_div ? "wasm.div.zero" : "wasm.rem.zero", fn_index, pc,
                    "divisor is provably zero");
          break;
        }
        if (b.contains(0)) {
          emit_once(Severity::kWarning, is_div ? "wasm.div.maybe_zero" : "wasm.rem.maybe_zero",
                    fn_index, pc, "divisor may be zero (interval [" + std::to_string(b.lo) +
                                      ", " + std::to_string(b.hi) + "])");
          // Continue under the non-trapping assumption; shave 0 off an
          // endpoint when it sits there so the result stays precise.
          if (b.lo == 0) b.lo = 1;
          else if (b.hi == 0) b.hi = -1;
        }
        if (is_div && a.contains(Interval::kMin) && b.contains(-1)) {
          if (a.is_constant() && b.is_constant()) {
            emit_once(Severity::kError, "wasm.div.overflow", fn_index, pc,
                      "INT32_MIN / -1 overflows (VM traps)");
            break;
          }
          emit_once(Severity::kWarning, "wasm.div.maybe_overflow", fn_index, pc,
                    "INT32_MIN / -1 overflow is possible");
        }
        if (is_div) {
          if (b.lo > 0 || b.hi < 0) {
            st.stack.push_back(interval_div_s(a, b));
          } else {
            // Mixed-sign divisor we could not refine: |q| <= |a| since |b| >= 1.
            const std::int64_t amax = std::max(std::abs(a.lo), std::abs(a.hi));
            st.stack.push_back(Interval::range(-amax, amax));
          }
        } else {
          st.stack.push_back(interval_rem_s(a, b));
        }
        fallthrough();
        break;
      }
      case WOp::kAdd: case WOp::kSub: case WOp::kMul:
      case WOp::kAnd: case WOp::kOr: case WOp::kXor:
      case WOp::kShl: case WOp::kShrS:
      case WOp::kEq: case WOp::kNe: case WOp::kLtS:
      case WOp::kGtS: case WOp::kLeS: case WOp::kGeS: {
        if (underflow(2, "wasm.stack.underflow", "binary operator")) break;
        const Interval b = pop();
        const Interval a = pop();
        Interval r = interval_bool();
        switch (ins.op) {
          case WOp::kAdd: r = interval_add(a, b); break;
          case WOp::kSub: r = interval_sub(a, b); break;
          case WOp::kMul: r = interval_mul(a, b); break;
          case WOp::kAnd: r = interval_and(a, b); break;
          case WOp::kOr: r = interval_or(a, b); break;
          case WOp::kXor: r = interval_xor(a, b); break;
          case WOp::kShl: r = interval_shl(a, b); break;
          case WOp::kShrS: r = interval_shr_s(a, b); break;
          default: break;  // comparisons: {0, 1}
        }
        st.stack.push_back(r);
        fallthrough();
        break;
      }
      case WOp::kLoad:
      case WOp::kStore: {
        const bool is_store = ins.op == WOp::kStore;
        if (underflow(is_store ? 2 : 1, "wasm.stack.underflow", is_store ? "kStore" : "kLoad")) {
          break;
        }
        if (is_store) pop();  // value
        const Interval addr = pop();
        const std::int64_t lo = addr.lo + ins.imm;
        const std::int64_t hi = addr.hi + ins.imm;
        const auto mem = static_cast<std::int64_t>(m_.memory_bytes);
        ++mem_accesses_;
        if (lo >= 0 && hi + 4 <= mem) {
          ++mem_proven_;
        } else if (hi < 0 || lo + 4 > mem) {
          emit_once(Severity::kError, "wasm.mem.oob", fn_index, pc,
                    "effective address [" + std::to_string(lo) + ", " + std::to_string(hi) +
                        "] is provably outside linear memory (" + std::to_string(mem) +
                        " bytes)");
          break;  // every execution reaching here traps
        } else {
          emit_once(Severity::kWarning, "wasm.mem.unproven", fn_index, pc,
                    "effective address [" + std::to_string(lo) + ", " + std::to_string(hi) +
                        "] cannot be proven inside linear memory (" + std::to_string(mem) +
                        " bytes)");
        }
        if (!is_store) st.stack.push_back(Interval::top());
        fallthrough();
        break;
      }
      case WOp::kJmp:
        if (!jump_target_ok(ins)) break;  // wasm.struct.jump.target reported
        propagate(fn_index, pc, static_cast<std::uint32_t>(ins.imm), std::move(st), states,
                  joins, work);
        break;
      case WOp::kJmpIfZ: {
        if (underflow(1, "wasm.stack.underflow", "kJmpIfZ")) break;
        const Interval cond = pop();
        if (!jump_target_ok(ins)) break;
        const bool can_be_zero = cond.contains(0);
        const bool can_be_nonzero = !(cond.is_constant() && cond.lo == 0);
        if (can_be_zero) {
          propagate(fn_index, pc, static_cast<std::uint32_t>(ins.imm), st, states, joins, work);
        }
        if (can_be_nonzero) {
          propagate(fn_index, pc, pc + 1, std::move(st), states, joins, work);
        }
        break;
      }
      case WOp::kCall: {
        if (ins.imm < 0 || static_cast<std::size_t>(ins.imm) >= m_.functions.size()) break;
        const WFunction& callee = m_.functions[static_cast<std::size_t>(ins.imm)];
        if (underflow(callee.nargs, "wasm.stack.underflow",
                      "kCall '" + callee.name + "'")) {
          break;
        }
        for (std::uint32_t i = 0; i < callee.nargs; ++i) pop();
        if (callee.returns_value) st.stack.push_back(Interval::top());
        flows_[fn_index].callees.insert(static_cast<std::uint32_t>(ins.imm));
        fallthrough();
        break;
      }
      case WOp::kHostCall: {
        if (ins.imm < 0 || static_cast<std::size_t>(ins.imm) >= hosts_.size()) break;
        const WasmHostSig& sig = hosts_[static_cast<std::size_t>(ins.imm)];
        if (st.stack.size() < sig.nargs) {
          emit_once(Severity::kError, "wasm.host.arity", fn_index, pc,
                    "host import '" + sig.name + "' pops " + std::to_string(sig.nargs) +
                        " arg(s), stack has " + std::to_string(st.stack.size()));
          break;
        }
        for (std::uint32_t i = 0; i < sig.nargs; ++i) pop();
        st.stack.push_back(Interval::top());
        fallthrough();
        break;
      }
      case WOp::kRet: {
        if (fn.returns_value && st.stack.empty()) {
          emit_once(Severity::kError, "wasm.stack.ret.missing", fn_index, pc,
                    "'" + fn.name + "' returns a value but the stack is empty at kRet");
          break;
        }
        const std::size_t expected = fn.returns_value ? 1 : 0;
        if (st.stack.size() > expected) {
          emit_once(Severity::kWarning, "wasm.stack.ret.extra", fn_index, pc,
                    "kRet discards " + std::to_string(st.stack.size() - expected) +
                        " leftover stack value(s)");
        }
        has_exit_.insert(fn_index);
        break;
      }
      case WOp::kDrop:
        if (underflow(1, "wasm.stack.underflow", "kDrop")) break;
        pop();
        fallthrough();
        break;
      case WOp::kHalt:
        has_exit_.insert(fn_index);
        break;
    }
  }

  // -- layer 3: static cost bounds ------------------------------------------

  bool has_cycle(const FnFlow& flow, std::uint32_t entry) const {
    // Iterative DFS with colors; any back edge within the reachable CFG.
    std::map<std::uint32_t, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{entry, 0}};
    if (flow.reachable.count(entry) == 0) return false;
    color[entry] = 1;
    while (!stack.empty()) {
      auto& [pc, next] = stack.back();
      const auto it = flow.succs.find(pc);
      const auto& succs =
          it == flow.succs.end() ? std::vector<std::uint32_t>{} : it->second;
      if (next < succs.size()) {
        const std::uint32_t s = succs[next++];
        const int c = color[s];
        if (c == 1) return true;
        if (c == 0) {
          color[s] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        color[pc] = 2;
        stack.pop_back();
      }
    }
    return false;
  }

  /// Longest path (in retired instructions) from entry through the acyclic
  /// reachable CFG; call sites are charged 1 + the callee's bound.
  std::uint64_t longest_path(const FnFlow& flow, std::uint32_t entry,
                             const std::vector<std::uint64_t>& fn_bounds) const {
    // Kahn topological order over the reachable subgraph.
    std::map<std::uint32_t, std::size_t> indeg;
    for (const std::uint32_t pc : flow.reachable) indeg[pc];
    for (const auto& [from, succs] : flow.succs) {
      for (const std::uint32_t to : succs) ++indeg[to];
    }
    // The entry can carry incoming back... no: acyclic, but entry may have
    // incoming forward edges only if something jumps back to it — that would
    // be a cycle. Seed with all zero-indegree nodes (entry included).
    std::deque<std::uint32_t> queue;
    for (const auto& [pc, d] : indeg) {
      if (d == 0) queue.push_back(pc);
    }
    std::vector<std::uint32_t> order;
    std::map<std::uint32_t, std::size_t> deg = indeg;
    while (!queue.empty()) {
      const std::uint32_t pc = queue.front();
      queue.pop_front();
      order.push_back(pc);
      const auto it = flow.succs.find(pc);
      if (it == flow.succs.end()) continue;
      for (const std::uint32_t to : it->second) {
        if (--deg[to] == 0) queue.push_back(to);
      }
    }
    // DP in reverse topological order: cost(pc) = w(pc) + max over succs.
    std::map<std::uint32_t, std::uint64_t> cost;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::uint32_t pc = *it;
      std::uint64_t w = 1;
      const WInstr& ins = m_.code[pc];
      if (decodable(ins) && ins.op == WOp::kCall && ins.imm >= 0 &&
          static_cast<std::size_t>(ins.imm) < fn_bounds.size()) {
        w += fn_bounds[static_cast<std::size_t>(ins.imm)];
      }
      std::uint64_t best_succ = 0;
      const auto sit = flow.succs.find(pc);
      if (sit != flow.succs.end()) {
        for (const std::uint32_t to : sit->second) {
          best_succ = std::max(best_succ, cost.count(to) ? cost[to] : 0);
        }
      }
      cost[pc] = w + best_succ;
    }
    return cost.count(entry) ? cost[entry] : 0;
  }

  void cost_pass() {
    const std::size_t n = m_.functions.size();
    std::vector<CostStatus> status(n, CostStatus::kPending);
    std::vector<std::uint64_t> bounds(n, 0);
    std::vector<std::string> reasons(n);

    for (std::uint32_t f = 0; f < n; ++f) {
      WasmFunctionSummary& s = result_.functions[f];
      if (m_.functions[f].entry >= m_.code.size()) {
        status[f] = CostStatus::kUnbounded;
        reasons[f] = "entry out of code";
        continue;
      }
      s.has_loop = has_cycle(flows_[f], m_.functions[f].entry);
      if (s.has_loop) {
        status[f] = CostStatus::kUnbounded;
        reasons[f] = "loop back-edge";
      } else if (flows_[f].aborted) {
        status[f] = CostStatus::kUnbounded;
        reasons[f] = "verification budget exceeded";
      }
    }

    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t f = 0; f < n; ++f) {
        if (status[f] != CostStatus::kPending) continue;
        bool all_bounded = true, any_unbounded = false;
        for (const std::uint32_t c : flows_[f].callees) {
          if (status[c] == CostStatus::kUnbounded) any_unbounded = true;
          if (status[c] != CostStatus::kBounded) all_bounded = false;
        }
        if (any_unbounded) {
          status[f] = CostStatus::kUnbounded;
          reasons[f] = "calls a cost-unbounded function";
          changed = true;
        } else if (all_bounded) {
          bounds[f] = longest_path(flows_[f], m_.functions[f].entry, bounds);
          status[f] = CostStatus::kBounded;
          changed = true;
        }
      }
    }
    for (std::uint32_t f = 0; f < n; ++f) {
      if (status[f] == CostStatus::kPending) {
        status[f] = CostStatus::kUnbounded;
        reasons[f] = "recursive (call-graph cycle)";
        result_.functions[f].recursive = true;
        result_.recursion_free = false;
      }
    }

    for (std::uint32_t f = 0; f < n; ++f) {
      WasmFunctionSummary& s = result_.functions[f];
      const std::uint32_t entry = m_.functions[f].entry;
      if (status[f] == CostStatus::kBounded) {
        s.fuel_bound = bounds[f];
        emit_once(Severity::kNote, "wasm.cost.bound", f,
                  entry < m_.code.size() ? entry : 0,
                  "'" + s.name + "' static fuel bound: " + std::to_string(bounds[f]) +
                      " instructions per invoke");
        result_.module_fuel_bound = std::max(result_.module_fuel_bound, bounds[f]);
      } else {
        result_.cost_bounded = false;
        emit_once(Severity::kWarning, "wasm.cost.unbounded", f,
                  entry < m_.code.size() ? entry : 0,
                  "'" + s.name + "' has no static fuel bound (" + reasons[f] +
                      "): runtime fuel metering required");
      }
    }
  }

  void finish_flags() {
    const Report& rep = result_.report;
    const bool aborted =
        std::any_of(flows_.begin(), flows_.end(), [](const FnFlow& f) { return f.aborted; });
    result_.memory_proven = !aborted && !rep.has("wasm.mem.unproven") && !rep.has("wasm.mem.oob");
    result_.arithmetic_proven = !aborted;
    for (const char* check : {"wasm.div.zero", "wasm.div.maybe_zero", "wasm.div.overflow",
                              "wasm.div.maybe_overflow", "wasm.rem.zero",
                              "wasm.rem.maybe_zero"}) {
      if (rep.has(check)) result_.arithmetic_proven = false;
    }
    if (!result_.cost_bounded) result_.module_fuel_bound = 0;
  }

  const WModule& m_;
  std::span<const WasmHostSig> hosts_;
  WasmVerifyOptions opts_;

  WasmVerifyResult result_;
  std::vector<FnFlow> flows_;
  std::set<std::pair<std::uint32_t, std::string>> emitted_;
  std::set<std::uint32_t> has_exit_;
  std::size_t mem_accesses_ = 0;
  std::size_t mem_proven_ = 0;
};

}  // namespace

WasmVerifyResult verify_module(const security::WModule& module,
                               std::span<const WasmHostSig> hosts,
                               const WasmVerifyOptions& options) {
  return Verifier(module, hosts, options).run();
}

security::ModuleAdmission make_admission(const security::WModule& module,
                                         const WasmVerifyResult& result) {
  security::ModuleAdmission adm;
  adm.module_digest = security::sha256(module.serialize());
  adm.verified = result.ok();
  adm.memory_proven = result.memory_proven;
  adm.arithmetic_proven = result.arithmetic_proven;
  adm.cost_bounded = result.cost_bounded;
  adm.fuel_bound = result.cost_bounded ? result.module_fuel_bound : 0;
  return adm;
}

}  // namespace vedliot::analysis
