# Empty dependencies file for vedliot_runtime.
# This may be replaced when dependencies are built.
