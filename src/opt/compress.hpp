#pragma once
/// \file compress.hpp
/// \brief Deep-compression pipeline: prune -> cluster -> Huffman (Sec. III,
/// reproducing the "compressed down to 49x" claim from Han et al. [7]).
///
/// Storage model after compression (per layer, following the paper):
///  - surviving weights stored as cluster indexes (log2(k) bits each),
///  - sparse positions as 4-bit run-lengths between non-zeros (with escape
///    zero-symbols for runs > 15, exactly like Deep Compression),
///  - a k-entry fp32 codebook,
///  - both index streams entropy-coded with Huffman.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace vedliot::opt {

/// 1-D k-means over the non-zero weights (linear codebook init, Lloyd
/// iterations). Returns the codebook; assigns each non-zero weight to its
/// nearest centroid in place when \p apply is true.
std::vector<float> cluster_weights(Tensor& weights, int codebook_bits, int iterations = 10,
                                   bool apply = true);

struct LayerCompression {
  std::string layer;
  std::int64_t params = 0;
  std::int64_t nonzeros = 0;
  double index_bits = 0;      ///< Huffman-coded cluster indexes
  double position_bits = 0;   ///< Huffman-coded 4-bit run lengths
  double codebook_bits = 0;
  double original_bits = 0;   ///< params * 32
  double compressed_bits() const { return index_bits + position_bits + codebook_bits; }
  double ratio() const { return compressed_bits() > 0 ? original_bits / compressed_bits() : 1.0; }
};

struct CompressionReport {
  std::vector<LayerCompression> layers;
  double original_bits = 0;
  double after_prune_bits = 0;    ///< sparse storage before clustering/coding
  double compressed_bits = 0;
  double ratio() const { return compressed_bits > 0 ? original_bits / compressed_bits : 1.0; }
};

struct CompressionOptions {
  double conv_sparsity = 0.65;   ///< Deep Compression prunes convs less...
  double dense_sparsity = 0.9;   ///< ...and dense layers much harder
  int conv_codebook_bits = 8;    ///< 256-entry codebook for convs
  int dense_codebook_bits = 5;   ///< 32-entry codebook for dense layers
  int kmeans_iterations = 10;
};

/// Run the full pipeline on a weights-materialized graph. Mutates weights
/// (pruning + centroid snapping) and returns the storage accounting.
CompressionReport deep_compress(Graph& g, const CompressionOptions& options = {});

}  // namespace vedliot::opt
