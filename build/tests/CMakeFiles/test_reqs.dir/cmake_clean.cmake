file(REMOVE_RECURSE
  "CMakeFiles/test_reqs.dir/test_reqs.cpp.o"
  "CMakeFiles/test_reqs.dir/test_reqs.cpp.o.d"
  "test_reqs"
  "test_reqs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reqs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
