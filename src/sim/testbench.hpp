#pragma once
/// \file testbench.hpp
/// \brief Renode-style CI test bench (Sec. II-B: "VEDLIoT benefits from
/// Renode's testing and introspection capabilities, using it both for
/// interactive development of accelerator prototypes and within a
/// Continuous Integration environment").
///
/// Wraps a Machine with declarative expectations: run until the UART
/// printed a string, watch memory regions, assert registers and cycle
/// budgets, and collect a pass/fail report suitable for CI logs.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace vedliot::sim {

/// One recorded store into a watched region.
struct WatchEvent {
  std::uint32_t addr = 0;
  std::uint32_t value = 0;
  int width = 0;
  std::uint64_t instret = 0;  ///< retired instructions at the time of the store
};

class TestBench {
 public:
  explicit TestBench(Machine& machine);

  /// Record every store into [base, base+size).
  void watch(std::uint32_t base, std::uint32_t size);

  const std::vector<WatchEvent>& events() const { return events_; }

  /// Run until the UART output contains \p text or the instruction budget
  /// runs out; returns true if the text appeared.
  bool run_until_uart_contains(const std::string& text, std::uint64_t max_instructions = 1'000'000);

  /// Step until the halt reason; returns it.
  HaltReason run(std::uint64_t max_instructions = 1'000'000);

  // -- declarative expectations (collected into the report) -----------------
  void expect_reg(Reg reg, std::uint32_t expected, const std::string& what);
  void expect_uart(const std::string& expected_substring, const std::string& what);
  void expect_halt(HaltReason expected, const std::string& what);
  void expect_max_cycles(std::uint64_t budget, const std::string& what);
  void expect_stores_to(std::uint32_t base, std::uint32_t size, std::size_t min_count,
                        const std::string& what);

  bool all_passed() const;
  std::size_t checks() const { return results_.size(); }

  /// CI-style report: one line per expectation.
  std::string report() const;

 private:
  struct CheckResult {
    bool passed = false;
    std::string what;
    std::string detail;
  };
  void record(bool passed, const std::string& what, const std::string& detail);

  Machine& machine_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> watched_;
  std::vector<WatchEvent> events_;
  std::optional<HaltReason> last_halt_;
  std::vector<CheckResult> results_;
};

}  // namespace vedliot::sim
