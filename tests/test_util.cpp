// Tests for the util substrate: statistics, tables, RNG, error handling.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <climits>
#include <cmath>
#include <limits>
#include <mutex>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace vedliot {
namespace {

using stats::Ewma;
using stats::Histogram;
using stats::Running;

TEST(Stats, MeanOfKnownValues) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stats::variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stats::stddev(xs), 2.0);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(stats::variance(xs), 0.0);
}

TEST(Stats, GeomeanOfPowers) {
  const std::vector<double> xs{1, 10, 100};
  EXPECT_NEAR(stats::geomean(xs), 10.0, 1e-9);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW((void)stats::geomean(xs), InvalidArgument);
}

TEST(Stats, GeomeanRejectsEmpty) {
  EXPECT_THROW((void)stats::geomean({}), Error);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{3, 1, 2};
  EXPECT_DOUBLE_EQ(stats::median(odd), 2.0);
  const std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(stats::median(even), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 30.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 25), 2.5);
}

TEST(Stats, PercentileRejectsOutOfRange) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)stats::percentile(xs, 101), Error);
}

TEST(Stats, MadIsRobustToOneOutlier) {
  const std::vector<double> xs{1, 1, 1, 1, 1, 1, 1, 1000};
  EXPECT_DOUBLE_EQ(stats::mad(xs), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(stats::pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonAntiCorrelation) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{3, 2, 1};
  EXPECT_NEAR(stats::pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(stats::pearson(xs, ys), 0.0);
}

TEST(Stats, LinearFitRecoversLine) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{1, 3, 5, 7};  // y = 1 + 2x
  const auto fit = stats::linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
}

TEST(Stats, EwmaConvergesToConstantInput) {
  Ewma e(0.5);
  for (int i = 0; i < 64; ++i) e.add(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-9);
}

TEST(Stats, EwmaFirstSamplePrimes) {
  Ewma e(0.1);
  EXPECT_FALSE(e.primed());
  e.add(7.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

TEST(Stats, EwmaRejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), Error);
  EXPECT_THROW(Ewma(1.5), Error);
}

TEST(Stats, RunningMatchesBatch) {
  Rng rng(7);
  std::vector<double> xs;
  Running run;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    run.add(x);
  }
  EXPECT_NEAR(run.mean(), stats::mean(xs), 1e-9);
  EXPECT_NEAR(run.variance(), stats::variance(xs), 1e-6);
}

TEST(Stats, HistogramBinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps into bin 0
  h.add(100.0);   // clamps into bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Stats, HistogramRejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.uniform() != b.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, NormalVectorMoments) {
  Rng rng(9);
  const auto v = rng.normal_vector(20000, 1.0, 2.0);
  std::vector<double> d(v.begin(), v.end());
  EXPECT_NEAR(stats::mean(d), 1.0, 0.1);
  EXPECT_NEAR(stats::stddev(d), 2.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), Error);
}

TEST(Fmt, FixedAndRatioAndPercent) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(2.5, 1), "2.5x");
  EXPECT_EQ(fmt_percent(0.0312, 1), "3.1%");
}

TEST(Fmt, EngineeringSuffixes) {
  EXPECT_EQ(fmt_eng(1.5e12), "1.50T");
  EXPECT_EQ(fmt_eng(2.0e9), "2.00G");
  EXPECT_EQ(fmt_eng(450e6), "450M");
  EXPECT_EQ(fmt_eng(1234), "1.23k");
  EXPECT_EQ(fmt_eng(9.5), "9.50");
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::to_gops(2e9), 2.0);
  EXPECT_DOUBLE_EQ(units::from_gops(3.0), 3e9);
  EXPECT_DOUBLE_EQ(units::to_tops_per_watt(1e12, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(units::to_mib(1024.0 * 1024.0), 1.0);
  EXPECT_DOUBLE_EQ(units::to_ms(0.25), 250.0);
  EXPECT_DOUBLE_EQ(units::mbit_per_s(10), 1e7);
}

TEST(ErrorHandling, CheckThrowsWithContext) {
  try {
    VEDLIOT_CHECK(false, "something bad");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("something bad"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
  }
}

TEST(ErrorHandling, HierarchyIsCatchable) {
  EXPECT_THROW(throw NotFound("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw Unsupported("x"), Error);
}

TEST(Rng, BackoffStaysUnderExponentialCeiling) {
  Rng rng(11);
  // Attempt k draws uniformly from [0, min(cap, base * 2^k)].
  for (int attempt = 0; attempt < 10; ++attempt) {
    const double ceiling = std::min(0.032, 0.001 * std::exp2(attempt));
    for (int i = 0; i < 200; ++i) {
      const double w = rng.backoff_s(0.001, 0.032, attempt);
      EXPECT_GE(w, 0.0);
      EXPECT_LE(w, ceiling);
    }
  }
}

TEST(Rng, BackoffGrowsWithAttemptOnAverageThenCaps) {
  Rng rng(12);
  const auto mean_wait = [&](int attempt) {
    double s = 0;
    for (int i = 0; i < 2000; ++i) s += rng.backoff_s(0.001, 0.032, attempt);
    return s / 2000;
  };
  const double a0 = mean_wait(0);
  const double a3 = mean_wait(3);
  const double a8 = mean_wait(8);   // 2^8 * base = 0.256 -> capped at 0.032
  const double a9 = mean_wait(9);
  EXPECT_GT(a3, a0 * 4);            // exponential region
  EXPECT_NEAR(a8, 0.016, 0.002);    // uniform over [0, cap]
  EXPECT_NEAR(a9, a8, 0.002);       // cap reached: no further growth
}

TEST(Rng, BackoffIsDeterministicPerSeed) {
  Rng a(5), b(5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(a.backoff_s(1e-3, 32e-3, i % 6), b.backoff_s(1e-3, 32e-3, i % 6));
  }
}

TEST(Rng, BackoffClampsExtremeAttemptCounts) {
  Rng rng(14);
  // Soak-scale attempt counters can exceed the exponent range of a double;
  // the exponent is clamped to kMaxBackoffExponent so the ceiling stays
  // finite (and at any realistic cap, simply equals the cap).
  for (const int attempt : {64, 100, 1 << 30, INT_MAX}) {
    const double w = rng.backoff_s(1e-3, 32e-3, attempt);
    EXPECT_TRUE(std::isfinite(w));
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 32e-3);
  }
  // Even uncapped, 2^63 * base is finite.
  const double huge = rng.backoff_s(1.0, std::numeric_limits<double>::max(), INT_MAX);
  EXPECT_TRUE(std::isfinite(huge));
  EXPECT_LE(huge, std::exp2(Rng::kMaxBackoffExponent));
  // Negative attempts clamp to the first-retry ceiling instead of
  // producing a sub-base (or NaN) window.
  for (int i = 0; i < 100; ++i) {
    const double w = rng.backoff_s(1e-3, 32e-3, -5);
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1e-3);
  }
}

TEST(Rng, BackoffRespectsJitterFloor) {
  Rng rng(15);
  // Pure full jitter can draw ~0 s and collapse a congested retry loop
  // into a hot spin; the floor pins the minimum wait.
  const double floor = 0.25e-3;
  for (int attempt = 0; attempt < 12; ++attempt) {
    for (int i = 0; i < 200; ++i) {
      const double w = rng.backoff_s(1e-3, 32e-3, attempt, floor);
      EXPECT_GE(w, floor);
      EXPECT_LE(w, std::min(32e-3, 1e-3 * std::exp2(attempt)));
    }
  }
  // A floor above the current ceiling degenerates to a fixed ceiling-length
  // wait — never an inverted interval or a sub-floor draw.
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(rng.backoff_s(1e-3, 32e-3, 0, 5e-3), 1e-3);
  }
  // The default (no floor) preserves the classic policy: draws below any
  // positive floor do occur.
  double lowest = 1.0;
  for (int i = 0; i < 2000; ++i) {
    lowest = std::min(lowest, rng.backoff_s(1e-3, 32e-3, 0));
  }
  EXPECT_LT(lowest, 0.25e-3);
}

TEST(Rng, JitteredStaysWithinFraction) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.jittered(10.0, 0.2);
    EXPECT_GE(v, 8.0);
    EXPECT_LE(v, 12.0);
  }
  // Zero fraction is the identity.
  EXPECT_DOUBLE_EQ(rng.jittered(10.0, 0.0), 10.0);
}

// ---------------------------------------------------------------------------
// util::ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversRangeExactlyOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 1, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkingIsDeterministic) {
  // Chunk boundaries are a pure function of (range, threads, grain): two
  // dispatches of the same range must produce identical partitions.
  const auto partition = [](util::ThreadPool& pool) {
    std::mutex m;
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    pool.parallel_for(0, 103, 10, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
      std::lock_guard<std::mutex> lock(m);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  util::ThreadPool pool(3);
  const auto a = partition(pool);
  const auto b = partition(pool);
  EXPECT_EQ(a, b);
  // Grain 10 over 103 elements with 3 threads: 3 chunks (ceil split).
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.front().first, 0);
  EXPECT_EQ(a.back().second, 103);
}

TEST(ThreadPool, GrainLimitsChunkCount) {
  util::ThreadPool pool(8);
  // Range 10 with grain 8 cannot support more than two chunks.
  const std::size_t chunks =
      pool.parallel_for(0, 10, 8, [](std::int64_t, std::int64_t, std::size_t) {});
  EXPECT_LE(chunks, 2u);
  // Empty range dispatches nothing.
  EXPECT_EQ(pool.parallel_for(5, 5, 1, [](std::int64_t, std::int64_t, std::size_t) {}), 0u);
}

TEST(ThreadPool, ChunkIndexIsUniquePerDispatch) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(4);
  const std::size_t chunks =
      pool.parallel_for(0, 4, 1, [&](std::int64_t, std::int64_t, std::size_t chunk) {
        ASSERT_LT(chunk, seen.size());
        seen[chunk].fetch_add(1);
      });
  for (std::size_t i = 0; i < chunks; ++i) EXPECT_EQ(seen[i].load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  util::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [](std::int64_t lo, std::int64_t, std::size_t) {
                          if (lo >= 50) throw InvalidArgument("boom");
                        }),
      InvalidArgument);
  // The pool survives an exception and can dispatch again.
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(0, 10, 1, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
    for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  std::vector<double> xs(5000);
  std::iota(xs.begin(), xs.end(), 0.0);
  const double serial = std::accumulate(xs.begin(), xs.end(), 0.0);
  util::ThreadPool pool(4);
  std::vector<double> partial(8, 0.0);
  pool.parallel_for(0, static_cast<std::int64_t>(xs.size()), 16,
                    [&](std::int64_t lo, std::int64_t hi, std::size_t chunk) {
                      for (std::int64_t i = lo; i < hi; ++i) {
                        partial[chunk] += xs[static_cast<std::size_t>(i)];
                      }
                    });
  EXPECT_DOUBLE_EQ(std::accumulate(partial.begin(), partial.end(), 0.0), serial);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(util::ThreadPool::hardware_threads(), 1u);
}

// ---------------------------------------------------------------------------
// CRC-32 (weight-digest hash)
// ---------------------------------------------------------------------------

TEST(Crc32, MatchesCheckValue) {
  // The ISO-HDLC check value every conforming CRC-32 must produce.
  const std::string s = "123456789";
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  EXPECT_EQ(util::crc32(std::span<const std::uint8_t>(p, s.size())), 0xCBF43926u);
}

TEST(Crc32, EmptyAndSingleByte) {
  EXPECT_EQ(util::crc32(std::span<const std::uint8_t>{}), 0u);
  const std::uint8_t zero[1] = {0};
  EXPECT_NE(util::crc32(std::span<const std::uint8_t>(zero, 1)), 0u);
}

TEST(Crc32, SeedChainsAcrossFragments) {
  // crc32(a ++ b) == crc32(b, seed = crc32(a)) — the property the weight
  // scrubber relies on to hash a tensor in per-tick fragments.
  std::vector<std::uint8_t> data(257);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 31);
  const auto whole = util::crc32(std::span<const std::uint8_t>(data));
  for (const std::size_t split : {std::size_t{1}, std::size_t{100}, data.size() - 1}) {
    const auto head = util::crc32(std::span<const std::uint8_t>(data.data(), split));
    const auto chained = util::crc32(
        std::span<const std::uint8_t>(data.data() + split, data.size() - split), head);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32, FloatOverloadHashesRawBytes) {
  const std::vector<float> v{1.5f, -2.25f, 0.0f, 3e-8f};
  const auto* raw = reinterpret_cast<const std::uint8_t*>(v.data());
  EXPECT_EQ(util::crc32(std::span<const float>(v)),
            util::crc32(std::span<const std::uint8_t>(raw, v.size() * sizeof(float))));
}

TEST(Crc32, SingleBitFlipChangesDigest) {
  std::vector<float> v(64, 0.5f);
  const auto before = util::crc32(std::span<const float>(v));
  auto u = std::bit_cast<std::uint32_t>(v[17]);
  u ^= 1u << 23;
  v[17] = std::bit_cast<float>(u);
  EXPECT_NE(util::crc32(std::span<const float>(v)), before);
}

}  // namespace
}  // namespace vedliot
