// Tests for model packaging: binary round trip with weights, sealed
// (encrypted + authenticated) deployment bundles, and the memory-aware
// execution order.

#include <gtest/gtest.h>

#include "exec_single.hpp"
#include "graph/cost.hpp"
#include "graph/package.hpp"
#include "graph/zoo.hpp"
#include "runtime/executor.hpp"
#include "runtime/memory_planner.hpp"
#include "safety/ota_transport.hpp"
#include "security/attestation.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace vedliot {
namespace {

Graph materialized(Graph g, std::uint64_t seed = 5) {
  Rng rng(seed);
  g.materialize_weights(rng);
  return g;
}

TEST(Package, RoundTripPreservesStructureAndWeights) {
  Graph g = materialized(zoo::micro_cnn("m", 1, 1, 16, 4));
  const auto blob = pack_model(g);
  Graph back = unpack_model(blob);
  EXPECT_EQ(back.size(), g.size());
  EXPECT_TRUE(back.weights_materialized());
  // identical outputs on identical inputs: the strongest round-trip check
  Rng rng(9);
  Tensor x(Shape{1, 1, 16, 16}, rng.normal_vector(256));
  const Tensor a = testutil::exec_single(g, x);
  const Tensor b = testutil::exec_single(back, x);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.0f);
}

TEST(Package, AnalyticModelRoundTrips) {
  Graph g = zoo::mobilenet_v3_large();  // no weights
  Graph back = unpack_model(pack_model(g));
  EXPECT_EQ(graph_cost(back).macs, graph_cost(g).macs);
  EXPECT_FALSE(back.weights_materialized());
}

TEST(Package, WeightDtypeTagSurvives) {
  Graph g = materialized(zoo::micro_mlp("m", 1, 8, {8}, 3));
  for (NodeId id : g.topo_order()) {
    Node& n = g.node(id);
    if (n.kind == OpKind::kDense) n.weight_dtype = DType::kINT8;
  }
  Graph back = unpack_model(pack_model(g));
  for (NodeId id : back.topo_order()) {
    const Node& n = back.node(id);
    if (n.kind == OpKind::kDense) {
      EXPECT_EQ(n.weight_dtype, DType::kINT8);
    }
  }
}

TEST(Package, RejectsGarbage) {
  std::vector<std::uint8_t> junk{1, 2, 3, 4, 5};
  EXPECT_THROW((void)unpack_model(junk), GraphError);
  Graph g = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2));
  auto blob = pack_model(g);
  blob.resize(blob.size() / 2);  // truncate
  EXPECT_THROW((void)unpack_model(blob), GraphError);
  auto trailing = pack_model(g);
  trailing.push_back(0);
  EXPECT_THROW((void)unpack_model(trailing), GraphError);
}

TEST(Package, SealedDeploymentRoundTrip) {
  security::Key root{};
  root[1] = 0x77;
  security::AttestationAuthority authority(root);
  const security::Key device_key = authority.provision("edge-3");

  Graph g = materialized(zoo::micro_mlp("kws", 1, 16, {12}, 4));
  const SealedModel sealed = seal_model(g, device_key, 1);
  EXPECT_NE(sealed.ciphertext, pack_model(g));  // actually encrypted

  Graph back = unseal_model(sealed, device_key);
  Rng rng(3);
  Tensor x(Shape{1, 16}, rng.normal_vector(16));
  EXPECT_FLOAT_EQ(max_abs_diff(testutil::exec_single(g, x), testutil::exec_single(back, x)), 0.0f);
}

TEST(Package, SealedModelBoundToDevice) {
  security::Key root{};
  security::AttestationAuthority authority(root);
  Graph g = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2));
  const SealedModel sealed = seal_model(g, authority.provision("edge-a"), 1);
  EXPECT_THROW((void)unseal_model(sealed, authority.provision("edge-b")), Error);
}

TEST(Package, SealedModelTamperDetected) {
  security::Key root{};
  security::AttestationAuthority authority(root);
  const auto key = authority.provision("edge-a");
  Graph g = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2));
  SealedModel sealed = seal_model(g, key, 1);
  sealed.ciphertext[10] ^= 0x40;  // flip one weight bit in transit
  EXPECT_THROW((void)unseal_model(sealed, key), Error);
}

TEST(Package, MeasurementIdentifiesModelVersion) {
  security::Key root{};
  security::AttestationAuthority authority(root);
  const auto key = authority.provision("edge-a");
  Graph g1 = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2), 1);
  Graph g2 = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2), 2);  // different weights
  const auto s1 = seal_model(g1, key, 1);
  const auto s2 = seal_model(g2, key, 2);
  EXPECT_FALSE(security::digest_equal(s1.model_measurement, s2.model_measurement));
}

// ---------------------------------------------------------------------------
// v2 digest table: round trips, corruption rejection, check-id matrix
// ---------------------------------------------------------------------------

std::uint32_t read_u32(const std::vector<std::uint8_t>& b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b.at(at + i)) << (8 * i);
  return v;
}

void write_u32(std::vector<std::uint8_t>& b, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.at(at + i) = static_cast<std::uint8_t>(v >> (8 * i));
}

/// Unpack must throw a GraphError whose message starts with the stable
/// dotted check id — the contract loaders and fleet dashboards key on.
void expect_check_id(const std::vector<std::uint8_t>& blob, const std::string& id) {
  try {
    (void)unpack_model(blob);
    FAIL() << "expected GraphError " << id;
  } catch (const GraphError& e) {
    EXPECT_EQ(std::string(e.what()).rfind(id + ":", 0), 0u)
        << "wrong check id: " << e.what();
  }
}

/// Byte offset of the first weight record (index field), from the header.
std::size_t first_record_at(const std::vector<std::uint8_t>& blob) {
  return 12 + read_u32(blob, 8) + 4;
}

TEST(PackageDigest, TableMatchesRecomputedDigests) {
  Graph g = materialized(zoo::micro_cnn("m", 1, 1, 16, 4));
  const auto before = digest_weights(g);
  Graph back = unpack_model(pack_model(g));
  const auto after = digest_weights(back);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].node_index, after[i].node_index);
    EXPECT_EQ(before[i].tensor_index, after[i].tensor_index);
    EXPECT_EQ(before[i].crc, after[i].crc);
  }
}

TEST(PackageDigest, ResNet50ZooPackageRoundTrips) {
  Graph g = materialized(zoo::resnet50(1, 10, 32), 11);
  const auto blob = pack_model(g);
  Graph back = unpack_model(blob);  // digest verification runs here
  EXPECT_TRUE(back.weights_materialized());
  const auto a = digest_weights(g);
  const auto b = digest_weights(back);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].crc, b[i].crc);
}

TEST(PackageDigest, MobileNetV3ZooPackageRoundTrips) {
  Graph g = materialized(zoo::mobilenet_v3_large(1, 10, 32), 12);
  Graph back = unpack_model(pack_model(g));
  const auto a = digest_weights(g);
  const auto b = digest_weights(back);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].crc, b[i].crc);
}

TEST(PackageDigest, FlippedWeightByteRejectedWithExactCheckId) {
  // Flip one byte deep inside the first conv kernel's float data: the
  // package parses fine, the digest table catches the silent corruption.
  Graph g = materialized(zoo::resnet50(1, 10, 32), 13);
  auto blob = pack_model(g);
  const std::size_t rec = first_record_at(blob);
  const std::size_t rank = blob.at(rec + 6);
  const std::size_t floats_at = rec + 7 + 8 * rank;
  blob.at(floats_at + 101) ^= 0x10;
  expect_check_id(blob, "package.digest.mismatch");
}

TEST(PackageCorruption, EveryTruncationRejected) {
  // A package cut anywhere — mid-header, mid-text, mid-record, mid-table —
  // must raise GraphError, never over-read or crash (run under ASan).
  Graph g = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2));
  const auto blob = pack_model(g);
  for (std::size_t n = 0; n < blob.size(); ++n) {
    std::vector<std::uint8_t> cut(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_THROW((void)unpack_model(cut), GraphError) << "truncated to " << n << " bytes";
  }
}

TEST(PackageCorruption, CheckIdMatrix) {
  Graph g = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2));
  const auto blob = pack_model(g);
  const std::size_t rec = first_record_at(blob);
  const std::size_t entries = digest_weights(g).size();
  const std::size_t table_at = blob.size() - 12 * entries - 4;

  {
    auto b = blob;
    b[0] ^= 0xFF;  // wrong magic
    expect_check_id(b, "package.magic");
  }
  {
    auto b = blob;
    write_u32(b, 4, 99);  // unsupported version
    expect_check_id(b, "package.version");
  }
  {
    auto b = blob;
    write_u32(b, 8, static_cast<std::uint32_t>(b.size()));  // text length lies
    expect_check_id(b, "package.truncated");
  }
  {
    auto b = blob;
    write_u32(b, rec, 1u << 20);  // record references a node that isn't there
    expect_check_id(b, "package.node_index");
  }
  {
    auto b = blob;
    // First record claims the last topo index; the next record can then no
    // longer be strictly increasing.
    write_u32(b, rec, static_cast<std::uint32_t>(g.size() - 1));
    expect_check_id(b, "package.record.order");
  }
  {
    auto b = blob;
    b.at(rec + 6) = 200;  // absurd tensor rank
    expect_check_id(b, "package.rank");
  }
  {
    auto b = blob;
    for (int i = 0; i < 8; ++i) b.at(rec + 7 + i) = 0xFF;  // negative dimension
    expect_check_id(b, "package.dim");
  }
  {
    auto b = blob;
    // dim0 = 2^31 passes the per-dim cap; the running product with dim1
    // then blows the element budget before any allocation happens.
    for (int i = 0; i < 8; ++i) b.at(rec + 7 + i) = 0;
    b.at(rec + 7 + 3) = 0x80;
    expect_check_id(b, "package.numel");
  }
  {
    auto b = blob;
    b.push_back(0);  // trailing garbage
    expect_check_id(b, "package.trailing");
  }
  {
    auto b = blob;
    write_u32(b, table_at, static_cast<std::uint32_t>(entries + 1));
    expect_check_id(b, "package.digest.count");
  }
  {
    auto b = blob;
    write_u32(b, table_at + 4, 1u << 16);  // digest key points elsewhere
    expect_check_id(b, "package.digest.key");
  }
  {
    auto b = blob;
    b.at(table_at + 12) ^= 0x01;  // stored crc itself corrupted
    expect_check_id(b, "package.digest.mismatch");
  }
}

TEST(PackageCorruption, V1PackageWithoutTableStillLoads) {
  // Back-compat: a v1 blob is a v2 blob minus the digest table with the
  // version field rewritten — the reader must accept it un-checked.
  Graph g = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2));
  auto blob = pack_model(g);
  const std::size_t entries = digest_weights(g).size();
  blob.resize(blob.size() - 12 * entries - 4);
  write_u32(blob, 4, 1);
  Graph back = unpack_model(blob);
  EXPECT_TRUE(back.weights_materialized());
  Rng rng(7);
  Tensor x(Shape{1, 4}, rng.normal_vector(4));
  EXPECT_FLOAT_EQ(max_abs_diff(testutil::exec_single(g, x), testutil::exec_single(back, x)), 0.0f);
}

// ---------------------------------------------------------------------------
// Package streams over the OTA transport: negative paths. What reaches
// unpack_model after a damaged transfer must fail with the same stable
// package.* check ids a locally-corrupted blob produces — and the transport
// layer itself must refuse most damage before bytes ever reach the loader.
// ---------------------------------------------------------------------------

TEST(PackageStream, TruncatedStreamNeverUnpacks) {
  Graph g = materialized(zoo::micro_cnn("m", 1, 1, 16, 4));
  const auto blob = pack_model(g);
  safety::OtaChunker chunker(blob, 256);
  safety::OtaReceiver rx(chunker.total_bytes(), chunker.chunk_bytes(), chunker.package_crc());

  // the stream dies mid-transfer: only a prefix of chunks ever arrives
  const std::uint32_t delivered = static_cast<std::uint32_t>(chunker.chunk_count()) / 2;
  for (std::uint32_t s = 0; s < delivered; ++s) rx.accept(chunker.chunk(s));

  // transport refuses to assemble a torn image at all
  EXPECT_THROW((void)rx.assemble(), Error);

  // and if an installer bypassed the journal and fed the raw prefix to the
  // loader anyway, the loader rejects it with the stable truncation id
  std::vector<std::uint8_t> prefix(blob.begin(),
                                   blob.begin() + static_cast<std::ptrdiff_t>(delivered * 256));
  expect_check_id(prefix, "package.truncated");
}

TEST(PackageStream, MidChunkCorruptionIsRefusedAtEveryLayer) {
  Graph g = materialized(zoo::micro_cnn("m", 1, 1, 16, 4));
  const auto blob = pack_model(g);
  safety::OtaChunker chunker(blob, 256);
  safety::OtaReceiver rx(chunker.total_bytes(), chunker.chunk_bytes(), chunker.package_crc());

  // layer 1: a damaged payload fails the per-chunk CRC and is discarded
  safety::OtaChunk damaged = chunker.chunk(1);
  damaged.payload[100] ^= 0x04;
  EXPECT_EQ(rx.accept(damaged), safety::OtaReceiver::Accept::kCorrupt);

  // layer 2: an adversarial chunk with a *recomputed* CRC passes the chunk
  // check but the whole-package CRC refuses assembly
  damaged.crc = util::crc32(std::span<const std::uint8_t>(damaged.payload));
  EXPECT_EQ(rx.accept(damaged), safety::OtaReceiver::Accept::kAccepted);
  for (std::uint32_t s = 0; s < chunker.chunk_count(); ++s) rx.accept(chunker.chunk(s));
  ASSERT_TRUE(rx.complete());
  EXPECT_THROW((void)rx.assemble(), Error);

  // layer 3: even bytes that skipped the transport entirely die in the
  // loader on the per-tensor digest table (flip a byte deep inside the
  // first weight tensor's float data, same spot the digest matrix pins)
  std::vector<std::uint8_t> tampered = blob;
  const std::size_t rec = first_record_at(tampered);
  const std::size_t rank = tampered.at(rec + 6);
  tampered.at(rec + 7 + 8 * rank + 101) ^= 0x10;
  expect_check_id(tampered, "package.digest.mismatch");
}

TEST(PackageStream, OutOfOrderDeliveryReassemblesAndUnpacksCleanly) {
  Graph g = materialized(zoo::micro_cnn("m", 1, 1, 16, 4));
  const auto blob = pack_model(g);
  safety::OtaChunker chunker(blob, 256);
  safety::OtaReceiver rx(chunker.total_bytes(), chunker.chunk_bytes(), chunker.package_crc());

  // worst-case reordering: reverse delivery, every chunk duplicated
  for (std::uint32_t s = static_cast<std::uint32_t>(chunker.chunk_count()); s-- > 0;) {
    rx.accept(chunker.chunk(s));
    rx.accept(chunker.chunk(s));
  }
  ASSERT_TRUE(rx.complete());
  EXPECT_EQ(rx.assemble(), blob);
  Graph back = unpack_model(rx.assemble());
  Rng rng(9);
  Tensor x(Shape{1, 1, 16, 16}, rng.normal_vector(256));
  EXPECT_FLOAT_EQ(
      max_abs_diff(testutil::exec_single(g, x), testutil::exec_single(back, x)), 0.0f);
}

// ---------------------------------------------------------------------------
// Memory-aware execution order
// ---------------------------------------------------------------------------

TEST(MemoryOrder, IsValidTopologicalOrder) {
  Graph g = zoo::yolov4();
  const auto order = memory_aware_order(g, DType::kINT8);
  EXPECT_EQ(order.size(), g.size());
  std::map<NodeId, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId id : order) {
    for (NodeId in : g.node(id).inputs) EXPECT_LT(pos.at(in), pos.at(id));
  }
}

TEST(MemoryOrder, PlanWithCustomOrderIsValid) {
  Graph g = zoo::mobilenet_v3_large();
  const auto order = memory_aware_order(g, DType::kFP32);
  const auto plan = plan_memory_with_order(g, order, DType::kFP32);
  EXPECT_TRUE(plan_is_valid(plan));
}

TEST(MemoryOrder, HelpsOnWideFanout) {
  // A graph with two parallel wide branches: naive id-order keeps both
  // branches' tensors alive simultaneously; the memory-aware order finishes
  // one branch before starting the other.
  Graph g("wide");
  const NodeId in = g.add_input("x", Shape{1, 8, 32, 32});
  auto branch = [&](const std::string& name) {
    NodeId cur = in;
    for (int i = 0; i < 3; ++i) {
      cur = g.add(OpKind::kRelu, name + std::to_string(i), {cur});
    }
    return g.add(OpKind::kGlobalAvgPool, name + "_gap", {cur});
  };
  // Interleave the branch construction so id-order alternates branches.
  NodeId a0 = g.add(OpKind::kRelu, "a0", {in});
  NodeId b0 = g.add(OpKind::kRelu, "b0", {in});
  NodeId a1 = g.add(OpKind::kRelu, "a1", {a0});
  NodeId b1 = g.add(OpKind::kRelu, "b1", {b0});
  NodeId a2 = g.add(OpKind::kGlobalAvgPool, "a2", {a1});
  NodeId b2 = g.add(OpKind::kGlobalAvgPool, "b2", {b1});
  g.add(OpKind::kAdd, "merge", {a2, b2});
  (void)branch;

  const auto id_plan = plan_memory(g, DType::kFP32);
  const auto smart = memory_aware_order(g, DType::kFP32);
  const auto smart_plan = plan_memory_with_order(g, smart, DType::kFP32);
  EXPECT_TRUE(plan_is_valid(smart_plan));
  EXPECT_LE(smart_plan.arena_bytes, id_plan.arena_bytes);
}

TEST(MemoryOrder, NeverWorseOnZooModels) {
  for (Graph g : {zoo::resnet50(), zoo::mobilenet_v3_large(), zoo::gesture_net()}) {
    const auto base = plan_memory(g, DType::kINT8);
    const auto smart = plan_memory_with_order(g, memory_aware_order(g, DType::kINT8), DType::kINT8);
    EXPECT_TRUE(plan_is_valid(smart));
    // allow tiny regressions from the greedy heuristic, never > 10%
    EXPECT_LE(static_cast<double>(smart.arena_bytes),
              static_cast<double>(base.arena_bytes) * 1.10)
        << g.name();
  }
}

TEST(MemoryOrder, RejectsBadOrders) {
  Graph g = zoo::micro_mlp("m", 1, 4, {4}, 2);
  auto order = g.topo_order();
  std::swap(order.front(), order.back());  // breaks topology
  EXPECT_THROW((void)plan_memory_with_order(g, order, DType::kFP32), Error);
  order = g.topo_order();
  order.pop_back();  // misses a node
  EXPECT_THROW((void)plan_memory_with_order(g, order, DType::kFP32), Error);
}

}  // namespace
}  // namespace vedliot
