#pragma once
/// \file dtype.hpp
/// \brief Numeric datatypes supported across the VEDLIoT stack.
///
/// The accelerator survey in the paper (Fig. 3) spans FP32 down to binary
/// weights; the toolchain (Sec. III) quantizes to INT8/FP16. DType is the
/// common currency between the graph IR, the optimizer and the hardware
/// models.

#include <cstdint>
#include <string>
#include <string_view>

namespace vedliot {

enum class DType : std::uint8_t {
  kFP32,
  kFP16,
  kINT8,
  kINT4,
  kBinary,
};

/// Width of one element in bits (1 for binary).
int dtype_bits(DType dt);

/// Width of one element in bytes, fractional for sub-byte types.
double dtype_bytes(DType dt);

/// Canonical lower-case name ("fp32", "int8", ...).
std::string_view dtype_name(DType dt);

/// Parse a name produced by dtype_name; throws InvalidArgument otherwise.
DType parse_dtype(std::string_view name);

/// True if the type is an integer (quantized) type.
bool dtype_is_integer(DType dt);

/// Relative compute throughput multiplier vs FP32 on typical DL hardware
/// (vendors quote ~2x for FP16, ~4x for INT8 dense math; used by the
/// performance model when a device supports multiple precisions).
double dtype_speedup_vs_fp32(DType dt);

}  // namespace vedliot
