# Empty dependencies file for test_qruntime.
# This may be replaced when dependencies are built.
