file(REMOVE_RECURSE
  "CMakeFiles/vedliot_tensor.dir/dtype.cpp.o"
  "CMakeFiles/vedliot_tensor.dir/dtype.cpp.o.d"
  "CMakeFiles/vedliot_tensor.dir/quant.cpp.o"
  "CMakeFiles/vedliot_tensor.dir/quant.cpp.o.d"
  "CMakeFiles/vedliot_tensor.dir/shape.cpp.o"
  "CMakeFiles/vedliot_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/vedliot_tensor.dir/tensor.cpp.o"
  "CMakeFiles/vedliot_tensor.dir/tensor.cpp.o.d"
  "libvedliot_tensor.a"
  "libvedliot_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
