#pragma once
/// \file exec_config.hpp
/// \brief One execution-resource knob set shared across the stack.
///
/// Before this header existed the admission batch cap and the intra-op
/// thread count lived twice: once in runtime::RunOptions and once in the
/// serving layer's brownout rungs, and the two copies drifted. ExecConfig
/// is the single currency: RunOptions embeds one, Session exposes it live
/// (set_exec_config / exec_config), each BrownoutStep carries the one its
/// rung serves at, and the fleet batcher consumes it as the batch-coalescing
/// width. A brownout step-down therefore becomes visible *through* the
/// session it degrades, which the regression tests pin.

#include <cstdint>
#include <string>

#include "util/cpu.hpp"

namespace vedliot::runtime {

/// Execution-resource knobs for one deployed model instance.
struct ExecConfig {
  /// Admission batch cap: feeds whose leading dimension exceeds this are
  /// rejected, and batchers never coalesce wider than this. 0 = no limit.
  std::int64_t max_batch = 0;

  /// Intra-op parallelism: kernels split output rows/channels across this
  /// many threads (including the caller). 0 selects the hardware
  /// concurrency. Output bits never depend on this value.
  unsigned threads = 1;

  /// Kernel dispatch level request (util::resolve_simd_level applies the
  /// VEDLIOT_FORCE_PORTABLE / VEDLIOT_SIMD env overrides and availability
  /// on top). kAuto picks the best level the host supports; kPortable pins
  /// the scalar reference kernels — the testable fallback the dispatch
  /// layer must always keep selectable.
  util::SimdLevel simd = util::SimdLevel::kAuto;

  /// Inter-op parallelism: independent graph branches (dataflow waves) run
  /// concurrently across this many threads when > 1. Intra-op threading is
  /// suspended inside a parallel wave, and output bits never depend on this
  /// value. Float backend only; the int8 backend ignores it.
  unsigned inter_op = 1;

  bool operator==(const ExecConfig& other) const {
    return max_batch == other.max_batch && threads == other.threads && simd == other.simd &&
           inter_op == other.inter_op;
  }
  bool operator!=(const ExecConfig& other) const { return !(*this == other); }

  /// "ExecConfig{max_batch=4, threads=2, simd=auto, inter_op=1}" for logs
  /// and violation messages.
  std::string to_string() const {
    return "ExecConfig{max_batch=" + std::to_string(max_batch) +
           ", threads=" + std::to_string(threads) +
           ", simd=" + std::string(util::simd_level_name(simd)) +
           ", inter_op=" + std::to_string(inter_op) + "}";
  }
};

}  // namespace vedliot::runtime
