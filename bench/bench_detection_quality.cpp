// T-KENNING — detection quality pipeline (Sec. III: Kenning "can
// automatically benchmark the processing quality of a given neural
// network" and generate "recall/precision graphs for detection
// algorithms").
//
// Runs the synthetic pedestrian-scene corpus through parameterised
// detector models and prints the recall/precision curve (the graph the
// paper's framework emits) plus AP across IoU thresholds and detector
// quality levels.

#include <iostream>

#include "bench_common.hpp"
#include "apps/detection.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::apps;

void print_artifact() {
  bench::banner("T-KENNING", "detection quality: recall/precision graph + AP sweeps");

  // The recall/precision "graph": sampled points down the score ranking.
  SceneGenerator scenes({}, 31337);
  SimulatedDetector detector({}, 999);
  const auto eval = run_detection_benchmark(scenes, detector, 600);

  std::printf("recall/precision curve (600 scenes, IoU 0.5):\n\n");
  Table curve({"score threshold", "recall", "precision"});
  const std::size_t points = 10;
  for (std::size_t i = 0; i < points; ++i) {
    const std::size_t idx = (i + 1) * eval.curve.size() / points - 1;
    const auto& pt = eval.curve[idx];
    curve.add_row({fmt_fixed(pt.threshold, 2), fmt_percent(pt.recall), fmt_percent(pt.precision)});
  }
  curve.print(std::cout);
  std::printf("\nAP@0.5 = %.3f  (TP %zu / FP %zu / FN %zu)\n", eval.average_precision,
              eval.true_positives, eval.false_positives, eval.false_negatives);

  // AP across IoU strictness.
  std::printf("\nAP vs IoU threshold:\n\n");
  Table iou_t({"IoU threshold", "AP"});
  for (double iou : {0.3, 0.5, 0.7, 0.9}) {
    SceneGenerator s({}, 31337);
    SimulatedDetector d({}, 999);
    iou_t.add_row({fmt_fixed(iou, 1), fmt_fixed(run_detection_benchmark(s, d, 400, iou).average_precision, 3)});
  }
  iou_t.print(std::cout);

  // Detector quality ablation — what the Kenning report lets you compare.
  std::printf("\ndetector quality ablation (AP@0.5):\n\n");
  Table abl({"detector", "AP", "FN", "FP"});
  struct Variant {
    const char* name;
    SimulatedDetector::Config cfg;
  };
  SimulatedDetector::Config sharp;
  sharp.loc_jitter = 0.02;
  SimulatedDetector::Config blind;
  blind.size50 = 48.0;  // misses small pedestrians badly
  SimulatedDetector::Config cluttered;
  cluttered.fp_per_image = 1.0;
  for (const auto& v : {Variant{"baseline", {}}, Variant{"sharp localisation", sharp},
                        Variant{"small-object blind", blind}, Variant{"cluttered", cluttered}}) {
    SceneGenerator s({}, 31337);
    SimulatedDetector d(v.cfg, 999);
    const auto e = run_detection_benchmark(s, d, 400);
    abl.add_row({v.name, fmt_fixed(e.average_precision, 3), std::to_string(e.false_negatives),
                 std::to_string(e.false_positives)});
  }
  abl.print(std::cout);
  bench::note("shape: AP falls with stricter IoU and with each injected weakness —");
  bench::note("exactly the comparisons the Kenning quality report is built to expose.");
}

static void BM_DetectionBenchmark100(benchmark::State& state) {
  for (auto _ : state) {
    SceneGenerator s({}, 1);
    SimulatedDetector d({}, 2);
    benchmark::DoNotOptimize(run_detection_benchmark(s, d, 100));
  }
}
BENCHMARK(BM_DetectionBenchmark100)->Unit(benchmark::kMillisecond);

VEDLIOT_BENCH_MAIN()
