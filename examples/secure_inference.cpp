// Secure edge stack (Sec. IV-C): the full trusted-computing story.
//
//   1. Secure-boot a TrustZone SoC from a signed image chain.
//   2. Load a sandboxed workload into the SGX-style enclave (the Twine
//      pattern: WASM module + WASI-like host interface).
//   3. Remote-attest the enclave to a verifier (quote over MRENCLAVE),
//      chained through the gateway (distributed attestation).
//   4. Seal the computation result to the enclave identity.
//   5. Drive the same firmware on the simulated VexRiscv-class core with
//      the PMP configured — the TEE-on-RISC-V contribution.
//
// Build & run:  ./build/examples/secure_inference

#include <cstdio>

#include "security/attestation.hpp"
#include "security/enclave.hpp"
#include "security/kvstore.hpp"
#include "security/trustzone.hpp"
#include "sim/machine.hpp"

using namespace vedliot;
using namespace vedliot::security;

int main() {
  Key root{};
  root[0] = 0xC0;
  root[31] = 0xDE;

  // --- 1. Secure boot (ARM TrustZone + OP-TEE path) ---
  std::printf("1. secure boot\n");
  TrustZoneSoC soc(root);
  std::vector<BootImage> chain;
  for (const char* stage : {"bl1", "bl2", "optee-os", "linux"}) {
    BootImage img;
    img.name = stage;
    img.image.assign(stage, stage + std::string(stage).size());
    img.signed_hash = sign_boot_image(root, stage, img.image);
    chain.push_back(std::move(img));
  }
  soc.secure_boot(chain);
  std::printf("   boot chain verified, measurement %s...\n",
              to_hex(std::span<const std::uint8_t>(soc.boot_measurement().data(), 8)).c_str());
  soc.install_ta("key-release", [](const std::vector<std::int32_t>&) { return 1; });
  std::printf("   TA 'key-release' installed; SMC round trip -> %d (world switches: %llu)\n\n",
              soc.smc("key-release", {}),
              static_cast<unsigned long long>(soc.world_switches()));

  // --- 2. Enclave with the sandboxed workload ---
  std::printf("2. enclave (SGX-style) running the sandboxed KV workload\n");
  Enclave enclave(EnclaveConfig{}, build_kv_module(256), root);
  enclave.add_host({"log", 1, [](HostContext&, const std::vector<std::int32_t>& args) {
                      std::printf("   [ocall] guest logged value %d\n", args[0]);
                      return 0;
                    }});
  enclave.ecall("kv_put", {1, 100});
  enclave.ecall("kv_put", {2, 250});
  const auto total = enclave.ecall("kv_sum", {});
  std::printf("   in-enclave aggregate: %d (ecalls: %llu, simulated overhead %.1f us)\n\n", total,
              static_cast<unsigned long long>(enclave.ledger().ecalls),
              enclave.ledger().simulated_ns / 1e3);

  // --- 3. Distributed attestation ---
  std::printf("3. distributed attestation (device -> gateway -> verifier)\n");
  AttestationAuthority authority(root);
  DeviceAgent device("sensor-12", authority.provision("sensor-12"));
  DeviceAgent gateway("gateway-2", authority.provision("gateway-2"));
  const Quote q_dev = device.quote(enclave.measurement(), 7);
  const Quote q_gw = gateway.quote_over(q_dev, sha256(std::string_view("gw-fw-1.4")), 9001);
  std::printf("   chain of %d quotes verifies: %s\n\n", 2,
              authority.verify_chain({q_dev, q_gw}, 9001) ? "yes" : "NO");

  // --- 4. Sealing ---
  std::printf("4. sealing the result to the enclave identity\n");
  const std::vector<std::uint8_t> result{static_cast<std::uint8_t>(total & 0xFF),
                                         static_cast<std::uint8_t>(total >> 8)};
  const SealedBlob blob = enclave.seal(result);
  std::printf("   sealed %zu bytes; unseal round trip ok: %s\n", result.size(),
              enclave.unseal(blob) == result ? "yes" : "NO");
  SealedBlob tampered = blob;
  tampered.ciphertext[0] ^= 1;
  try {
    enclave.unseal(tampered);
    std::printf("   TAMPER NOT DETECTED!\n");
  } catch (const EnclaveError&) {
    std::printf("   tampered blob rejected as expected\n\n");
  }

  // --- 5. PMP-protected firmware on the simulated RISC-V core ---
  std::printf("5. VexRiscv-class core: U-mode app contained by the PMP\n");
  sim::Machine machine;
  auto& pmp = machine.enable_pmp(8);
  PmpEntry ro_all;
  ro_all.mode = AddressMatch::kTor;
  ro_all.addr = 0xFFFFFFFF >> 2;
  ro_all.r = true;
  ro_all.x = true;  // readable + executable, NOT writable for U-mode
  pmp.configure(0, ro_all);

  constexpr std::uint32_t kUserCode = sim::kRamBase + 0x100;
  sim::Assembler a(sim::kRamBase);
  const int handler = a.new_label();
  const int setup = a.new_label();
  a.j(setup);
  a.bind(handler);
  a.li(sim::a0, 1);  // handler reached
  a.ecall();
  a.bind(setup);
  a.li(sim::t1, static_cast<std::int32_t>(sim::kRamBase + 4));
  a.csrrw(sim::x0, 0x305, sim::t1);
  a.li(sim::t2, 0);
  a.csrrw(sim::x0, 0x300, sim::t2);
  a.li(sim::t3, static_cast<std::int32_t>(kUserCode));
  a.csrrw(sim::x0, 0x341, sim::t3);
  a.mret();
  while (a.pc() < kUserCode) a.nop();
  a.li(sim::t4, static_cast<std::int32_t>(sim::kRamBase + 0x3000));
  a.sw(sim::t4, sim::t4, 0);  // U-mode write -> PMP store fault
  a.ecall();
  machine.load_program(a);
  machine.run();
  std::printf("   U-mode store blocked: trap cause %u, handled in M-mode: %s\n",
              machine.cpu().csr(0x342), machine.cpu().reg(sim::a0) == 1 ? "yes" : "NO");
  std::printf("\nend-to-end trust chain complete.\n");
  return 0;
}
