#pragma once
/// \file pass.hpp
/// \brief Optimization pass framework (Sec. III "model surgery").
///
/// Passes mutate a Graph in place and report what they changed. The
/// PassManager runs a pipeline, verifies the IR after every pass with the
/// strict analysis verifier, attributes any findings to the offending pass,
/// and records a structural diff (nodes added/killed/rewired) per pass —
/// mirroring how the paper's toolchain applies operator fusion, quantization
/// and pruning between the ONNX import and target compilation stages.

#include <memory>
#include <string>
#include <vector>

#include "analysis/finding.hpp"
#include "analysis/verifier.hpp"
#include "graph/graph.hpp"

namespace vedliot::opt {

struct PassResult {
  std::string pass_name;
  int nodes_changed = 0;     ///< nodes fused/rewritten/eliminated (pass-reported)
  std::string detail;        ///< human-readable summary

  /// Structural diff computed by the PassManager from before/after snapshots.
  int nodes_added = 0;       ///< live nodes that did not exist before the pass
  int nodes_killed = 0;      ///< nodes live before, dead (or gone) after
  int nodes_rewired = 0;     ///< surviving nodes whose input list changed

  /// Post-pass verification findings, attributed to this pass. Empty when
  /// verification is disabled or the pass left the graph clean.
  analysis::Report findings;
};

/// Thrown by PassManager in strict mode when a pass leaves the IR invalid.
class PassError : public Error {
 public:
  PassError(std::string pass_name, analysis::Report findings, const std::string& message)
      : Error(message), pass_name_(std::move(pass_name)), findings_(std::move(findings)) {}

  const std::string& pass_name() const { return pass_name_; }
  const analysis::Report& findings() const { return findings_; }

 private:
  std::string pass_name_;
  analysis::Report findings_;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  /// Apply the pass; must leave the graph verifier-clean.
  virtual PassResult run(Graph& g) = 0;
};

struct PassOptions {
  bool verify = true;   ///< run the IR verifier after every pass
  bool strict = true;   ///< throw PassError on error-severity findings
  /// Check groups for the per-pass verification. The memory group is off by
  /// default: its liveness statistics are O(n^2) notes, not invariants.
  analysis::VerifyOptions checks = [] {
    analysis::VerifyOptions v;
    v.memory = false;
    return v;
  }();
};

class PassManager {
 public:
  PassManager& add(std::unique_ptr<Pass> pass);

  /// Run all passes in order; verifies the graph after each one per \p opts,
  /// attributing findings (and, in strict mode, the PassError) to the pass
  /// that produced them.
  std::vector<PassResult> run(Graph& g, const PassOptions& opts);
  std::vector<PassResult> run(Graph& g) { return run(g, PassOptions{}); }

  std::size_t size() const { return passes_.size(); }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace vedliot::opt
