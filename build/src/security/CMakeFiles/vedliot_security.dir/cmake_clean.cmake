file(REMOVE_RECURSE
  "CMakeFiles/vedliot_security.dir/attestation.cpp.o"
  "CMakeFiles/vedliot_security.dir/attestation.cpp.o.d"
  "CMakeFiles/vedliot_security.dir/crypto.cpp.o"
  "CMakeFiles/vedliot_security.dir/crypto.cpp.o.d"
  "CMakeFiles/vedliot_security.dir/enclave.cpp.o"
  "CMakeFiles/vedliot_security.dir/enclave.cpp.o.d"
  "CMakeFiles/vedliot_security.dir/kvstore.cpp.o"
  "CMakeFiles/vedliot_security.dir/kvstore.cpp.o.d"
  "CMakeFiles/vedliot_security.dir/pmp.cpp.o"
  "CMakeFiles/vedliot_security.dir/pmp.cpp.o.d"
  "CMakeFiles/vedliot_security.dir/trustzone.cpp.o"
  "CMakeFiles/vedliot_security.dir/trustzone.cpp.o.d"
  "CMakeFiles/vedliot_security.dir/wasm.cpp.o"
  "CMakeFiles/vedliot_security.dir/wasm.cpp.o.d"
  "libvedliot_security.a"
  "libvedliot_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
