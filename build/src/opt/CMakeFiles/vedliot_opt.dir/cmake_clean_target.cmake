file(REMOVE_RECURSE
  "libvedliot_opt.a"
)
