// T-CFU — Custom Function Units in the functional simulator (Sec. II-B:
// "a CFU is an accelerator tightly coupled with the CPU ... used as an
// input for Renode to extend simulated cores").
//
// Runs the same int8 dot-product kernel on the simulated RV32IM core with
// (a) plain RV32IM mul/add, (b) the scalar MAC CFU, (c) the SIMD 4x-int8
// CFU op — reporting instruction and cycle counts per configuration.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::sim;

namespace {

constexpr int kVectorLen = 256;  // int8 elements
constexpr std::uint32_t kData = kRamBase + 0x10000;

/// Store two int8 vectors (packed 4 per word) into simulated RAM.
void load_vectors(Machine& m, Rng& rng) {
  for (int i = 0; i < kVectorLen / 4; ++i) {
    std::uint32_t xw = 0, ww = 0;
    for (int b = 0; b < 4; ++b) {
      xw |= (static_cast<std::uint32_t>(rng.uniform_int(-128, 127)) & 0xFF) << (8 * b);
      ww |= (static_cast<std::uint32_t>(rng.uniform_int(-128, 127)) & 0xFF) << (8 * b);
    }
    m.bus().write32(kData + static_cast<std::uint32_t>(4 * i), xw);
    m.bus().write32(kData + 0x1000 + static_cast<std::uint32_t>(4 * i), ww);
  }
}

/// (a) pure RV32IM: byte loads, multiply-accumulate in registers.
Assembler software_kernel() {
  Assembler a(kRamBase);
  a.li(s0, static_cast<std::int32_t>(kData));
  a.li(s2, static_cast<std::int32_t>(kData + 0x1000));
  a.li(s1, kVectorLen);
  a.li(a0, 0);  // acc
  const int loop = a.new_label();
  const int done = a.new_label();
  a.bind(loop);
  a.beq(s1, x0, done);
  a.lb(t1, s0, 0);  // sign-extended int8 load
  a.lb(t2, s2, 0);
  a.mul(t3, t1, t2);
  a.add(a0, a0, t3);
  a.addi(s0, s0, 1);
  a.addi(s2, s2, 1);
  a.addi(s1, s1, -1);
  a.j(loop);
  a.bind(done);
  a.ecall();
  return a;
}

/// (b) scalar MAC CFU: same byte loads, MAC in the CFU.
Assembler scalar_cfu_kernel() {
  Assembler a(kRamBase);
  a.li(s0, static_cast<std::int32_t>(kData));
  a.li(s2, static_cast<std::int32_t>(kData + 0x1000));
  a.li(s1, kVectorLen);
  a.cfu(1, 0, a0, x0, x0);  // reset acc
  const int loop = a.new_label();
  const int done = a.new_label();
  a.bind(loop);
  a.beq(s1, x0, done);
  a.lb(t1, s0, 0);
  a.lb(t2, s2, 0);
  a.cfu(0, 0, x0, t1, t2);  // acc += t1*t2
  a.addi(s0, s0, 1);
  a.addi(s2, s2, 1);
  a.addi(s1, s1, -1);
  a.j(loop);
  a.bind(done);
  a.cfu(2, 0, a0, x0, x0);
  a.ecall();
  return a;
}

/// (c) SIMD CFU: word loads, 4 MACs per custom instruction.
Assembler simd_cfu_kernel() {
  Assembler a(kRamBase);
  a.li(s0, static_cast<std::int32_t>(kData));
  a.li(s2, static_cast<std::int32_t>(kData + 0x1000));
  a.li(s1, kVectorLen / 4);
  a.cfu(1, 0, a0, x0, x0);
  const int loop = a.new_label();
  const int done = a.new_label();
  a.bind(loop);
  a.beq(s1, x0, done);
  a.lw(t1, s0, 0);
  a.lw(t2, s2, 0);
  a.cfu(4, 0, x0, t1, t2);  // 4x int8 dot product
  a.addi(s0, s0, 4);
  a.addi(s2, s2, 4);
  a.addi(s1, s1, -1);
  a.j(loop);
  a.bind(done);
  a.cfu(2, 0, a0, x0, x0);
  a.ecall();
  return a;
}

struct RunResult {
  std::int32_t result;
  std::uint64_t instructions;
  std::uint64_t cycles;
};

RunResult run_kernel(Assembler kernel) {
  Machine m;
  m.attach_cfu(std::make_shared<MacCfu>());
  Rng rng(4242);  // same data for every configuration
  load_vectors(m, rng);
  m.load_program(kernel);
  const auto halt = m.run(10'000'000);
  if (halt != HaltReason::kEcall) std::printf("kernel did not halt cleanly!\n");
  return {static_cast<std::int32_t>(m.cpu().reg(a0)), m.cpu().instructions_retired(),
          m.cpu().cycles()};
}

}  // namespace

void print_artifact() {
  bench::banner("T-CFU", "int8 dot product on the simulated core: RV32IM vs CFU variants");

  const auto sw = run_kernel(software_kernel());
  const auto scalar = run_kernel(scalar_cfu_kernel());
  const auto simd = run_kernel(simd_cfu_kernel());

  Table t({"kernel", "result", "instructions", "cycles", "speedup (cycles)"});
  t.add_row({"RV32IM software", std::to_string(sw.result), std::to_string(sw.instructions),
             std::to_string(sw.cycles), "1.0x"});
  t.add_row({"scalar MAC CFU", std::to_string(scalar.result), std::to_string(scalar.instructions),
             std::to_string(scalar.cycles),
             fmt_ratio(static_cast<double>(sw.cycles) / static_cast<double>(scalar.cycles), 2)});
  t.add_row({"SIMD 4x-int8 CFU", std::to_string(simd.result), std::to_string(simd.instructions),
             std::to_string(simd.cycles),
             fmt_ratio(static_cast<double>(sw.cycles) / static_cast<double>(simd.cycles), 2)});
  t.print(std::cout);

  if (sw.result != scalar.result || sw.result != simd.result) {
    std::printf("RESULT MISMATCH across kernels!\n");
  } else {
    std::printf("all three kernels agree: %d\n", sw.result);
  }
  bench::note("shape: the scalar CFU removes the mul/add chain; the SIMD CFU additionally");
  bench::note("amortizes loads 4x — the co-designed instruction wins where the memory");
  bench::note("interface allows it, which is exactly what CFU prototyping is for.");
}

static void BM_SimSoftwareKernel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_kernel(software_kernel()));
  }
}
BENCHMARK(BM_SimSoftwareKernel)->Unit(benchmark::kMicrosecond);

static void BM_SimSimdCfuKernel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_kernel(simd_cfu_kernel()));
  }
}
BENCHMARK(BM_SimSimdCfuKernel)->Unit(benchmark::kMicrosecond);

VEDLIOT_BENCH_MAIN()
