#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vedliot::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double geomean(std::span<const double> xs) {
  VEDLIOT_CHECK(!xs.empty(), "geomean of empty range");
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw InvalidArgument("geomean requires strictly positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

namespace {
std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

double median(std::span<const double> xs) {
  VEDLIOT_CHECK(!xs.empty(), "median of empty range");
  auto v = sorted_copy(xs);
  const std::size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double percentile(std::span<const double> xs, double p) {
  VEDLIOT_CHECK(!xs.empty(), "percentile of empty range");
  VEDLIOT_CHECK(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  auto v = sorted_copy(xs);
  if (v.size() == 1) return v.front();
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double mad(std::span<const double> xs) {
  VEDLIOT_CHECK(!xs.empty(), "mad of empty range");
  const double m = median(xs);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) dev[i] = std::abs(xs[i] - m);
  return median(dev);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  VEDLIOT_CHECK(xs.size() == ys.size(), "pearson requires equal-length ranges");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  VEDLIOT_CHECK(xs.size() == ys.size(), "linear_fit requires equal-length ranges");
  VEDLIOT_CHECK(xs.size() >= 2, "linear_fit requires at least 2 points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  LinearFit fit;
  fit.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  VEDLIOT_CHECK(alpha > 0.0 && alpha <= 1.0, "Ewma alpha must be in (0,1]");
}

void Ewma::add(double x) {
  if (!primed_) {
    value_ = x;
    primed_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Running::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Running::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double Running::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  VEDLIOT_CHECK(hi > lo, "Histogram requires hi > lo");
  VEDLIOT_CHECK(bins > 0, "Histogram requires at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  VEDLIOT_CHECK(i < counts_.size(), "Histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

}  // namespace vedliot::stats
