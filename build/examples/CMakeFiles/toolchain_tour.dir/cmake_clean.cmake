file(REMOVE_RECURSE
  "CMakeFiles/toolchain_tour.dir/toolchain_tour.cpp.o"
  "CMakeFiles/toolchain_tour.dir/toolchain_tour.cpp.o.d"
  "toolchain_tour"
  "toolchain_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolchain_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
