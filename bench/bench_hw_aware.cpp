// T-HWAWARE — theoretical vs hardware speed-ups (Sec. III: "the theoretical
// speed-ups do not always translate to more efficient execution" [8]).
//
// For channel pruning and INT8 quantization, compares the theoretical
// speed-up (MAC/bit reduction) against the modeled wall-clock speed-up on
// each evaluation platform. The gap is the paper's motivation for
// hardware-aware optimization.

#include <iostream>

#include "bench_common.hpp"
#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "hw/perf_model.hpp"
#include "opt/prune.hpp"
#include "opt/quantize.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace vedliot;

void print_artifact() {
  bench::banner("T-HWAWARE", "theoretical vs realized speed-up per device");

  // --- Experiment A: 50% structured channel pruning on MobileNetV3 ---
  Graph base = zoo::mobilenet_v3_large();
  Graph pruned = base.clone();
  {
    Rng rng(5);
    pruned.materialize_weights(rng);
    opt::ChannelPrunePass pass(0.5);
    pass.run(pruned);
  }
  const double theo_prune = static_cast<double>(graph_cost(base).macs) /
                            static_cast<double>(opt::effective_macs(pruned));

  std::printf("\nA) 50%% channel pruning on MobileNetV3-Large "
              "(theoretical speed-up %.2fx from MAC reduction):\n\n", theo_prune);
  Table ta({"device", "fp32/best latency before", "after (effective)", "realized", "of theoretical"});
  for (const auto& dev : hw::yolo_eval_platforms()) {
    const auto before = hw::estimate(dev, base, dev.best_dtype);
    // Realized: compute roof shrinks by the MAC reduction, but the memory
    // roof barely moves (weights prune less than MACs, activations not at
    // all) — re-estimate with scaled ops.
    const auto cost = graph_cost(base);
    const double traffic = graph_traffic_bytes_with_locality(
        base, dev.best_dtype, dev.best_dtype, dev.onchip_mib * 1024 * 1024);
    const auto after = hw::estimate_workload(
        dev, static_cast<double>(cost.ops) / theo_prune, traffic * 0.75,
        weight_bytes(base, dev.best_dtype) * 0.75, 1, dev.best_dtype);
    const double realized = before.latency_s / after.latency_s;
    ta.add_row({dev.name, fmt_fixed(before.latency_s * 1e3, 2) + " ms",
                fmt_fixed(after.latency_s * 1e3, 2) + " ms", fmt_ratio(realized),
                fmt_percent(realized / theo_prune)});
  }
  ta.print(std::cout);

  // --- Experiment B: unstructured (connection-wise) pruning of ResNet50 ---
  // The starkest version of the paper's point: zeroing 80% of the weights
  // cuts the FLOP count 5x on paper, but a dense MAC array still multiplies
  // the zeros — realized speed-up on standard accelerators is 1.0x. Only
  // the *structured* pruning of experiment A converts into real latency.
  std::printf("\nB) 80%% unstructured magnitude pruning of ResNet50 "
              "(theoretical 5.0x from FLOP count):\n\n");
  Table tb({"device", "dense latency", "pruned (dense hw)", "realized", "of theoretical"});
  Graph resnet = zoo::resnet50();
  {
    Rng rng(7);
    resnet.materialize_weights(rng);
    opt::MagnitudePrunePass pass(0.8);
    pass.run(resnet);
  }
  for (const auto& dev : hw::yolo_eval_platforms()) {
    const auto dense = hw::estimate(dev, resnet, dev.best_dtype);
    // A dense accelerator executes the zeroed MACs anyway: the graph-level
    // op count is unchanged, so the estimate IS the pruned latency.
    const double realized = 1.0;
    tb.add_row({dev.name, fmt_fixed(dense.latency_s * 1e3, 2) + " ms",
                fmt_fixed(dense.latency_s * 1e3, 2) + " ms", fmt_ratio(realized),
                fmt_percent(realized / 5.0)});
  }
  tb.print(std::cout);
  bench::note("shape: structured pruning (A) realizes most of its theoretical gain on");
  bench::note("compute-bound devices and ~2/3 on bandwidth-bound ones; unstructured");
  bench::note("pruning (B) realizes nothing on dense hardware — the hardware-aware");
  bench::note("optimizer must choose transformations the target can exploit.");
}

static void BM_ChannelPrunePass(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = zoo::micro_cnn("m", 1, 3, 32, 10, 32);
    Rng rng(1);
    g.materialize_weights(rng);
    state.ResumeTiming();
    opt::ChannelPrunePass pass(0.5);
    auto r = pass.run(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ChannelPrunePass)->Unit(benchmark::kMillisecond);

VEDLIOT_BENCH_MAIN()
