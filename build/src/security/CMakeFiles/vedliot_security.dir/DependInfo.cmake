
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/attestation.cpp" "src/security/CMakeFiles/vedliot_security.dir/attestation.cpp.o" "gcc" "src/security/CMakeFiles/vedliot_security.dir/attestation.cpp.o.d"
  "/root/repo/src/security/crypto.cpp" "src/security/CMakeFiles/vedliot_security.dir/crypto.cpp.o" "gcc" "src/security/CMakeFiles/vedliot_security.dir/crypto.cpp.o.d"
  "/root/repo/src/security/enclave.cpp" "src/security/CMakeFiles/vedliot_security.dir/enclave.cpp.o" "gcc" "src/security/CMakeFiles/vedliot_security.dir/enclave.cpp.o.d"
  "/root/repo/src/security/kvstore.cpp" "src/security/CMakeFiles/vedliot_security.dir/kvstore.cpp.o" "gcc" "src/security/CMakeFiles/vedliot_security.dir/kvstore.cpp.o.d"
  "/root/repo/src/security/pmp.cpp" "src/security/CMakeFiles/vedliot_security.dir/pmp.cpp.o" "gcc" "src/security/CMakeFiles/vedliot_security.dir/pmp.cpp.o.d"
  "/root/repo/src/security/trustzone.cpp" "src/security/CMakeFiles/vedliot_security.dir/trustzone.cpp.o" "gcc" "src/security/CMakeFiles/vedliot_security.dir/trustzone.cpp.o.d"
  "/root/repo/src/security/wasm.cpp" "src/security/CMakeFiles/vedliot_security.dir/wasm.cpp.o" "gcc" "src/security/CMakeFiles/vedliot_security.dir/wasm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vedliot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
