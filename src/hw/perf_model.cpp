#include "hw/perf_model.hpp"

#include <algorithm>

#include "graph/cost.hpp"
#include "runtime/memory_planner.hpp"
#include "util/error.hpp"

namespace vedliot::hw {

PerfEstimate estimate_workload(const DeviceSpec& dev, double ops, double traffic_bytes,
                               double weight_bytes, int batch, DType dt) {
  VEDLIOT_CHECK(ops > 0, "workload has no operations");
  PerfEstimate e;
  e.device = dev.name;
  e.batch = batch;
  e.dtype = dt;

  const double peak_ops = dev.peak_gops_at(dt) * 1e9;
  const double util = dev.utilization(batch);
  e.compute_time_s = ops / (peak_ops * util);

  // Memory roof: all operand traffic through DRAM. If the weights don't fit
  // on chip they are streamed once per *inference* rather than once per
  // batch (no reuse across batch elements), which is what makes batching
  // ineffective on bandwidth-starved devices.
  double effective_traffic = traffic_bytes;
  if (weight_bytes > dev.onchip_mib * 1024.0 * 1024.0) {
    effective_traffic += weight_bytes * static_cast<double>(batch - 1);
  }
  e.memory_time_s = effective_traffic / (dev.mem_bandwidth_gbs * 1e9);

  e.latency_s = std::max(e.compute_time_s, e.memory_time_s);
  e.bound = e.compute_time_s >= e.memory_time_s ? Bound::kCompute : Bound::kMemory;

  e.achieved_gops = ops / e.latency_s / 1e9;

  // Power: idle plus dynamic power proportional to how much of the peak
  // compute fabric is actually busy (memory-bound runs burn less).
  const double busy_fraction = std::min(1.0, ops / (peak_ops * e.latency_s));
  e.power_w = dev.idle_w + (dev.tdp_w - dev.idle_w) * (0.25 + 0.75 * busy_fraction / dev.util_sat);
  e.power_w = std::min(e.power_w, dev.tdp_w);

  e.energy_j = e.power_w * e.latency_s;
  e.energy_per_inference_j = e.energy_j / static_cast<double>(batch);
  e.fps = static_cast<double>(batch) / e.latency_s;
  e.efficiency_gops_w = e.achieved_gops / e.power_w;
  return e;
}

PerfEstimate estimate(const DeviceSpec& dev, const Graph& g, DType dt) {
  const GraphCost cost = graph_cost(g);
  const int batch = static_cast<int>(g.node(g.inputs().front()).out_shape.dim(0));
  const double traffic =
      graph_traffic_bytes_with_locality(g, dt, dt, dev.onchip_mib * 1024.0 * 1024.0);
  const double wbytes = weight_bytes(g, dt);

  PerfEstimate e = estimate_workload(dev, static_cast<double>(cost.ops), traffic, wbytes, batch, dt);
  e.model = g.name();
  const MemoryPlan plan = plan_memory(g, dt);
  e.arena_mib = static_cast<double>(plan.arena_bytes) / (1024.0 * 1024.0);
  e.weight_mib = wbytes / (1024.0 * 1024.0);
  return e;
}

}  // namespace vedliot::hw
