#pragma once
/// \file placement.hpp
/// \brief Fleet placement: replicas across RECS chassis under slot and
/// chassis power budgets, with a per-slot power meter.
///
/// The fleet layer (serve/fleet.hpp) scales replicas of a serving process
/// up and down; each replica must live in a real chassis slot, and the
/// chassis enforces the Sec. II-A budgets (RECS|Box: 130 W per COM Express
/// slot, 500 W per chassis). FleetPlacement packs replicas first-fit into
/// as many chassis as needed — Chassis::install is the only admission path,
/// so a placement that would exceed a budget is impossible by construction
/// rather than checked after the fact — and meters per-slot average power
/// so the soak can verify the honesty claim: metered power <= the slot
/// budget the chassis admitted the module under.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "platform/baseboard.hpp"

namespace vedliot::platform {

/// One placed replica: a module in a chassis slot.
struct Placement {
  std::string replica;      ///< "replica0", assigned by the fleet
  std::size_t chassis = 0;  ///< index into chassis()
  std::string slot;         ///< slot name within that chassis
  std::string module;       ///< installed module name
};

class FleetPlacement {
 public:
  struct Config {
    /// Baseboard every chassis in the fleet uses.
    BaseboardSpec board;
    /// Module names cycled over placements (["COMe-XavierAGX",
    /// "COMe-D1577"] alternates accelerator and CPU modules).
    std::vector<std::string> modules;
  };

  explicit FleetPlacement(Config config);

  /// Place one replica: first-fit into the lowest-index chassis slot whose
  /// form factor and power budget admit the next module, opening a new
  /// chassis when every existing one is full. Returns the placement.
  Placement place(const std::string& replica);

  /// Release a replica's slot (hot-removal); throws NotFound for unknown
  /// replicas. The chassis stays open (autoscaling reuses the slot).
  void release(const std::string& replica);

  const std::vector<Placement>& placements() const { return placements_; }
  const Placement& placement_of(const std::string& replica) const;
  std::size_t chassis_count() const { return chassis_.size(); }
  const Chassis& chassis(std::size_t i) const;

  /// Record \p joules consumed by \p replica's module over \p seconds of
  /// busy time (the fleet meters every executed batch).
  void meter(const std::string& replica, double joules, double seconds);

  struct SlotPower {
    std::string replica;
    std::string slot;
    double budget_w = 0;       ///< slot budget the module was admitted under
    double module_cap_w = 0;   ///< module's own envelope
    double joules = 0;         ///< metered energy
    double busy_s = 0;         ///< metered busy time
    /// Average draw while busy (0 when never busy).
    double avg_power_w() const { return busy_s > 0 ? joules / busy_s : 0; }
  };

  /// Per-replica power accounting, in replica order.
  std::vector<SlotPower> power_report() const;

 private:
  Config cfg_;
  std::vector<std::unique_ptr<Chassis>> chassis_;
  std::vector<Placement> placements_;           ///< live placements
  std::map<std::string, std::pair<double, double>> metered_;  ///< joules, busy_s
  std::size_t next_module_ = 0;
};

}  // namespace vedliot::platform
