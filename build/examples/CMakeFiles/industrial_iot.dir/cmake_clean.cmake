file(REMOVE_RECURSE
  "CMakeFiles/industrial_iot.dir/industrial_iot.cpp.o"
  "CMakeFiles/industrial_iot.dir/industrial_iot.cpp.o.d"
  "industrial_iot"
  "industrial_iot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/industrial_iot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
