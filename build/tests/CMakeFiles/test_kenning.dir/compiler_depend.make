# Empty compiler generated dependencies file for test_kenning.
# This may be replaced when dependencies are built.
