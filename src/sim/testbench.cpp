#include "sim/testbench.hpp"

#include <sstream>

namespace vedliot::sim {

TestBench::TestBench(Machine& machine) : machine_(machine) {
  machine_.bus().set_write_hook([this](std::uint32_t addr, std::uint32_t value, int width) {
    for (const auto& [base, size] : watched_) {
      if (addr >= base && addr < base + size) {
        events_.push_back({addr, value, width, machine_.cpu().instructions_retired()});
        break;
      }
    }
  });
}

void TestBench::watch(std::uint32_t base, std::uint32_t size) {
  watched_.emplace_back(base, size);
}

bool TestBench::run_until_uart_contains(const std::string& text,
                                        std::uint64_t max_instructions) {
  for (std::uint64_t i = 0; i < max_instructions; ++i) {
    if (machine_.uart().output().find(text) != std::string::npos) return true;
    const HaltReason r = machine_.cpu().step();
    if (r != HaltReason::kRunning) {
      last_halt_ = r;
      break;
    }
  }
  return machine_.uart().output().find(text) != std::string::npos;
}

HaltReason TestBench::run(std::uint64_t max_instructions) {
  const HaltReason r = machine_.run(max_instructions);
  last_halt_ = r;
  return r;
}

void TestBench::record(bool passed, const std::string& what, const std::string& detail) {
  results_.push_back({passed, what, detail});
}

void TestBench::expect_reg(Reg reg, std::uint32_t expected, const std::string& what) {
  const std::uint32_t actual = machine_.cpu().reg(reg);
  std::ostringstream os;
  os << "reg x" << static_cast<int>(reg) << " = " << actual << ", expected " << expected;
  record(actual == expected, what, os.str());
}

void TestBench::expect_uart(const std::string& expected_substring, const std::string& what) {
  const bool ok = machine_.uart().output().find(expected_substring) != std::string::npos;
  record(ok, what, ok ? "found \"" + expected_substring + "\"" :
                        "uart output was \"" + machine_.uart().output() + "\"");
}

void TestBench::expect_halt(HaltReason expected, const std::string& what) {
  const bool ok = last_halt_.has_value() && *last_halt_ == expected;
  record(ok, what, ok ? "halted as expected" : "halt reason differed or machine still running");
}

void TestBench::expect_max_cycles(std::uint64_t budget, const std::string& what) {
  const auto cycles = machine_.cpu().cycles();
  std::ostringstream os;
  os << cycles << " cycles, budget " << budget;
  record(cycles <= budget, what, os.str());
}

void TestBench::expect_stores_to(std::uint32_t base, std::uint32_t size, std::size_t min_count,
                                 const std::string& what) {
  std::size_t count = 0;
  for (const auto& e : events_) {
    if (e.addr >= base && e.addr < base + size) ++count;
  }
  std::ostringstream os;
  os << count << " stores observed, expected >= " << min_count;
  record(count >= min_count, what, os.str());
}

bool TestBench::all_passed() const {
  for (const auto& r : results_) {
    if (!r.passed) return false;
  }
  return true;
}

std::string TestBench::report() const {
  std::ostringstream os;
  for (const auto& r : results_) {
    os << (r.passed ? "[PASS] " : "[FAIL] ") << r.what << " — " << r.detail << '\n';
  }
  os << (all_passed() ? "ALL PASSED" : "FAILURES PRESENT") << " (" << results_.size()
     << " checks)\n";
  return os.str();
}

}  // namespace vedliot::sim
