#pragma once
/// \file exec_config.hpp
/// \brief One execution-resource knob set shared across the stack.
///
/// Before this header existed the admission batch cap and the intra-op
/// thread count lived twice: once in runtime::RunOptions and once in the
/// serving layer's brownout rungs, and the two copies drifted. ExecConfig
/// is the single currency: RunOptions embeds one, Session exposes it live
/// (set_exec_config / exec_config), each BrownoutStep carries the one its
/// rung serves at, and the fleet batcher consumes it as the batch-coalescing
/// width. A brownout step-down therefore becomes visible *through* the
/// session it degrades, which the regression tests pin.

#include <cstdint>
#include <string>

namespace vedliot::runtime {

/// Execution-resource knobs for one deployed model instance.
struct ExecConfig {
  /// Admission batch cap: feeds whose leading dimension exceeds this are
  /// rejected, and batchers never coalesce wider than this. 0 = no limit.
  std::int64_t max_batch = 0;

  /// Intra-op parallelism: kernels split output rows/channels across this
  /// many threads (including the caller). 0 selects the hardware
  /// concurrency. Output bits never depend on this value.
  unsigned threads = 1;

  bool operator==(const ExecConfig& other) const {
    return max_batch == other.max_batch && threads == other.threads;
  }
  bool operator!=(const ExecConfig& other) const { return !(*this == other); }

  /// "ExecConfig{max_batch=4, threads=2}" for logs and violation messages.
  std::string to_string() const {
    return "ExecConfig{max_batch=" + std::to_string(max_batch) +
           ", threads=" + std::to_string(threads) + "}";
  }
};

}  // namespace vedliot::runtime
