#pragma once
/// \file server.hpp
/// \brief Overload-safe serving front-end over a fault-injecting platform.
///
/// One Server drives a set of backend slots on a PlatformSimulator through
/// a seeded, fully deterministic discrete-event run:
///
///  * admission control — a bounded priority/EDF queue (queue.hpp); an
///    arrival is shed (never silently queued) when the queue is full, when
///    no backend is currently allowed, or when a conservative wait-bound
///    estimate from the hw cost model says its deadline is infeasible;
///  * deadline enforcement — queued tickets past their deadline are
///    cancelled; dispatch re-checks feasibility against the fastest
///    allowed backend before committing compute;
///  * failure handling — per-backend circuit breakers (breaker.hpp) fed
///    by transfer/completion failures and by heartbeat down/up beats from
///    platform::HealthMonitor; failed requests retry with full-jitter
///    exponential backoff, bounded by a per-client retry-token budget;
///  * brownout degradation — a hysteretic ladder (brownout.hpp) that steps
///    the deployment through cheaper configurations (int8, smaller batch,
///    smaller model) under sustained overload and back up when calm;
///  * integrity self-healing (integrity mode, set ServerConfig::store) —
///    the server serves from its own deployed clones of the variant graphs,
///    an incremental safety::WeightScrubber re-hashes a few weight tensors
///    per control tick against the golden digest table, and a scrub hit (or
///    a checked-faulty robustness verdict) quarantines the implicated
///    backend, re-materializes the corrupted tensors from the golden
///    package in the safety::ModelStore, rebuilds the serving session and
///    returns to service; OTA pushes (submit_ota) stage, verify and swap
///    through the store, with corruption during the post-swap probation
///    window rolling the update back instead of repairing.
///
/// Every decision is a structured ServeEvent, mirrored 1:1 into the
/// optional obs::Tracer (instant spans, category "vedliot.serve") and
/// counted in the optional obs::MetricsRegistry under `vedliot.serve.*` —
/// the soak harnesses (soak.hpp, integrity_soak.hpp) assert that mirror
/// exactly.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/faults.hpp"
#include "platform/health.hpp"
#include "runtime/session.hpp"
#include "safety/model_store.hpp"
#include "safety/robustness.hpp"
#include "safety/scrub.hpp"
#include "serve/breaker.hpp"
#include "serve/brownout.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "util/rng.hpp"

namespace vedliot::serve {

enum class ServeEventKind {
  kAdmitted,        ///< request accepted into the queue
  kShed,            ///< rejected at admission (bound / infeasible / no backend)
  kDisplaced,       ///< queued request evicted by a higher-priority arrival
  kDispatched,      ///< request handed to a backend
  kTransientFault,  ///< one transfer leg failed transiently
  kBackendFailure,  ///< a dispatched request failed on its backend
  kRetry,           ///< failed request re-queued after jittered backoff
  kFailed,          ///< request gave up (retry budget / no time left)
  kCancelled,       ///< deadline passed while queued / infeasible at dispatch
  kCompleted,       ///< response delivered within its deadline
  kDeadlineMiss,    ///< response delivered after its deadline
  kQualityDegraded, ///< robustness check flagged the response divergent
  kBackendDown,     ///< heartbeat monitor declared a backend dead
  kBackendUp,       ///< previously-down backend answered probes again
  kBreakerOpen,     ///< circuit breaker tripped on a backend
  kBreakerHalfOpen, ///< breaker cooldown expired, probing
  kBreakerClosed,   ///< probes succeeded, backend back in rotation
  kBrownoutDown,    ///< degraded one rung (value = new level)
  kBrownoutUp,      ///< recovered one rung (value = new level)
  kMemoryFault,     ///< scheduled SEU flipped weight bits in a deployed model
  kScrubHit,        ///< scrubber localized corruption to a (node, tensor)
  kQuarantine,      ///< implicated backend force-opened while weights rewrite
  kModelReloaded,   ///< corrupted tensors re-materialized from the golden store
  kOtaStaged,       ///< OTA payload arrived, verification starting
  kOtaCommitted,    ///< OTA verified and swapped atomically (value = version)
  kOtaRejected,     ///< OTA failed pre-swap verification, old version serving
  kOtaRolledBack,   ///< post-swap corruption, previous version restored
  kBatchExecuted,   ///< fleet: a coalesced batch ran (value = real lanes)
  kCacheHit,        ///< fleet: idempotent request answered from the cache
  kScaleUp,         ///< fleet: replica added (value = new replica count)
  kScaleDown,       ///< fleet: replica drained (value = new replica count)
  kOtaChunk,        ///< rollout: device accepted a transfer chunk (value = seq)
  kOtaChunkRetry,   ///< rollout: chunk resend scheduled (value = backoff s)
  kOtaResumed,      ///< rollout: interrupted transfer resumed (value = next seq)
  kWaveStarted,     ///< rollout: wave opened (value = wave index)
  kWavePassed,      ///< rollout: wave health gate passed (value = wave index)
  kRolloutHalted,   ///< rollout: failure fraction tripped (value = fraction)
  kRollbackPaced,   ///< rollout: rollback delayed by token bucket (value = wait s)
  kRolloutDone,     ///< rollout: terminal state reached (value = final version)
};

std::string_view serve_event_name(ServeEventKind kind);

struct ServeEvent {
  double time_s = 0;
  ServeEventKind kind = ServeEventKind::kAdmitted;
  std::string subject;  ///< "request 42", "backend come1", "brownout", ...
  std::string detail;
  double value = 0;     ///< kind-specific (latency s, backoff s, level, ...)
};

/// One line per event: "[ 0.0300s] shed               request 42  queue full".
std::string format_serve_event(const ServeEvent& e);

// ModelVariant and BrownoutStep (both pre-v2 residents of this header)
// now live with the ladder in brownout.hpp; Request moved to request.hpp
// as the versioned v2 wire struct.

struct ServerConfig {
  std::vector<std::string> backends;   ///< slots of the simulator's chassis
  std::vector<ModelVariant> variants;  ///< at least ladder.front().variant
  std::vector<BrownoutStep> ladder;    ///< healthy rung first

  QueueConfig queue;
  BreakerConfig breaker;
  BrownoutConfig brownout;             ///< max_level forced to ladder size - 1
  platform::HealthConfig health;

  double control_period_s = 10e-3;     ///< heartbeat / breaker / brownout tick
  std::string ingress = "switch0";     ///< fabric node requests enter/leave by

  double retry_tokens_per_request = 0.2;  ///< earned per offered request
  double retry_token_cap = 8.0;           ///< per-client bucket ceiling
  double backoff_base_s = 2e-3;
  double backoff_cap_s = 20e-3;
  /// Full-jitter backoff floor (Rng::backoff_s): 0 keeps the classic
  /// [0, ceiling) draw; a positive floor stops retries from landing ~0 s
  /// apart under loss. Default 0 preserves pre-floor event schedules.
  double backoff_floor_s = 0.0;

  std::uint64_t seed = 0x5EEDu;        ///< backoff jitter + execute inputs

  obs::Tracer* trace = nullptr;            ///< 1:1 event mirror when set
  obs::MetricsRegistry* metrics = nullptr; ///< vedliot.serve.* when set

  /// Optional output plausibility check (Sec. IV-B): in execute mode every
  /// completed response is submitted; a checked-faulty verdict marks the
  /// response quality-degraded (kQualityDegraded) but still delivered.
  /// Must outlive the server when set.
  safety::RobustnessService* robustness = nullptr;

  /// Run real tensors through runtime sessions on completion (variants
  /// need materialized / deployment-ready graphs). Off = analytic timing
  /// only, which is what the chaos soak uses. Per-rung execution resources
  /// (batch cap, intra-op threads) travel in each BrownoutStep's ExecConfig.
  bool execute = false;

  /// Integrity mode: when set, the server clones every variant graph at
  /// construction and serves from its own deployed copies (variant graphs
  /// need materialized weights). Golden packages are installed into the
  /// store under each variant's name on first use; a WeightScrubber per
  /// deployed copy re-hashes `scrub.tensors_per_tick` tensors every control
  /// tick, and detected corruption self-heals through the store (see
  /// file-level comment). Must outlive the server.
  safety::ModelStore* store = nullptr;
  safety::WeightScrubber::Config scrub;   ///< per-tick re-hash budget

  /// After an OTA commit, a scrub hit within this many full sweeps is
  /// attributed to the push itself (the freshly-written image is bad):
  /// roll back instead of repairing.
  std::size_t ota_probation_sweeps = 1;

  /// Per-client worst-case sandbox surcharge in seconds, derived from each
  /// tenant module's static fuel bound (security::tenant_cost_s over a
  /// verifier ModuleAdmission). Added to admission estimates and dispatch
  /// feasibility for that client's requests. +infinity — the verifier found
  /// no static bound (wasm.cost.unbounded) — sheds the tenant's requests at
  /// admission. Clients not in the map pay no surcharge.
  std::map<std::string, double> tenant_cost_s;
};

struct ServeReport {
  std::vector<ServeEvent> events;

  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::size_t displaced = 0;
  std::size_t completed = 0;         ///< within deadline
  std::size_t deadline_missed = 0;   ///< delivered late
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  std::size_t retries = 0;
  std::size_t quality_degraded = 0;

  std::size_t max_queue_depth = 0;
  int max_brownout_level = 0;
  int final_brownout_level = 0;

  // Integrity mode (0 unless ServerConfig::store is set).
  std::size_t memory_faults = 0;     ///< SEU events applied to deployed models
  std::size_t scrub_hits = 0;        ///< corrupted tensors localized
  std::size_t quarantines = 0;       ///< backends force-opened for reload
  std::size_t model_reloads = 0;     ///< golden repairs / full restores
  std::size_t ota_staged = 0;
  std::size_t ota_committed = 0;
  std::size_t ota_rejected = 0;
  std::size_t ota_rolled_back = 0;
  std::size_t integrity_checks = 0;  ///< robustness checks over deliveries
  std::size_t integrity_faults = 0;  ///< checked-faulty verdicts
  std::size_t dirty_at_end = 0;      ///< corrupt tensors left after the run

  /// In-deadline completions over offered load (0 when nothing offered).
  double goodput() const;

  /// Deterministic JSON summary (events included): bitwise-identical for
  /// identical seeds, which the soak harness checks by string compare.
  std::string to_json() const;
};

/// Serving front-end over one PlatformSimulator. One-shot: submit the
/// offered load, then run() once.
class Server {
 public:
  Server(platform::PlatformSimulator& sim, ServerConfig config);
  ~Server();

  /// Register one offered request (before run()). Returns the request id.
  /// The request must be wire version kServeApiVersion.
  std::uint64_t submit(Request r);

  /// Pre-v2 positional submit. Deprecated shim kept for exactly one PR:
  /// construct a serve::Request and call submit(Request) instead.
  [[deprecated("construct a serve::Request (wire v2) and call submit(Request)")]]
  std::uint64_t submit(const std::string& client, int priority, double arrival_s,
                       double deadline_s, std::int64_t batch = 1);

  /// Schedule an over-the-air update for \p variant's store entry at
  /// simulated time \p t (integrity mode only; call before run()). The
  /// update must keep the variant's architecture — only weights change.
  void submit_ota(double t, std::size_t variant, safety::OtaPackage update);

  /// Drive the serving loop for \p duration_s of simulated time.
  ServeReport run(double duration_s);

  std::span<const ServeEvent> events() const { return report_.events; }

 private:
  struct InFlight {
    Ticket ticket;
    std::string slot;
    double started_s = 0;
    double finish_s = 0;
    double gops_scale = 1.0;  ///< capacity assumed when finish_s was set
  };

  struct PendingOta {
    double time_s = 0;
    std::size_t variant = 0;
    safety::OtaPackage update;
    bool corrupted = false;  ///< a kOtaCorrupt marker fell on this payload
  };

  void log(double t, ServeEventKind kind, const std::string& subject,
           const std::string& detail, double value = 0);
  void log_transition(double t, const std::string& slot, const BreakerTransition& tr);
  const BrownoutStep& rung() const { return cfg_.ladder[static_cast<std::size_t>(level_)]; }
  double service_time(const std::string& slot, std::int64_t batch) const;
  /// Static-fuel-bound surcharge for this client (0 when unconfigured,
  /// +inf for cost-unbounded tenants).
  double tenant_overhead(const std::string& client) const;
  /// Fastest/slowest healthy-rate service time over allowed backends; empty
  /// when every breaker is open.
  std::optional<std::pair<double, double>> service_bounds(std::int64_t batch) const;
  void admit(const Request& r);
  void control_tick(double t);
  void try_dispatch(double t);
  void finish(double t, InFlight f);
  void retry_or_fail(double t, Ticket ticket, const std::string& reason);
  void apply_brownout(double t, int delta);
  void execute_request(double t, const Ticket& ticket, const std::string& slot);

  // Integrity mode (all no-ops unless cfg_.store is set).
  void apply_memory_fault(double t, const platform::FaultEvent& e);
  void corrupt_next_ota();
  void process_ota(double t, PendingOta ota);
  void scrub_tick(double t);
  void quarantine(double t, const std::string& slot, const std::string& why);
  void recover(double t, std::size_t variant,
               std::span<const safety::WeightScrubber::Hit> hits, bool in_probation);
  void rebuild_session(std::size_t variant);

  platform::PlatformSimulator& sim_;
  ServerConfig cfg_;
  Rng rng_;

  AdmissionQueue queue_;
  BrownoutLadder ladder_;
  platform::HealthMonitor health_;
  std::map<std::string, CircuitBreaker> breakers_;
  std::map<std::string, InFlight> in_flight_;      ///< by slot
  int level_ = 0;

  std::vector<Request> arrivals_;                   ///< sorted by arrival
  std::size_t next_arrival_ = 0;
  std::map<std::uint64_t, Request> requests_;       ///< by id
  std::map<std::uint64_t, int> attempts_;           ///< dispatch attempts by id
  std::map<std::string, double> retry_tokens_;      ///< by client
  std::uint64_t next_id_ = 1;

  /// Per-variant base service time by backend slot, at the variant graph's
  /// native batch (scaled linearly by request batch / gops_scale at use).
  mutable std::vector<std::map<std::string, double>> base_latency_;

  std::vector<std::unique_ptr<runtime::Session>> sessions_;  ///< execute mode

  // Integrity mode state (empty when cfg_.store is null).
  std::vector<std::unique_ptr<Graph>> deployed_;  ///< served clones, by variant
  std::vector<std::unique_ptr<safety::WeightScrubber>> scrubbers_;
  std::vector<std::size_t> probation_;   ///< post-OTA probation ticks left
  std::string suspect_slot_;             ///< backend hit by the last SEU
  std::vector<PendingOta> otas_;         ///< sorted by time
  std::size_t next_ota_ = 0;
  Rng fault_rng_;                        ///< SEU bit picks + payload damage

  ServeReport report_;
  bool ran_ = false;
};

}  // namespace vedliot::serve
