file(REMOVE_RECURSE
  "CMakeFiles/bench_smart_mirror.dir/bench_smart_mirror.cpp.o"
  "CMakeFiles/bench_smart_mirror.dir/bench_smart_mirror.cpp.o.d"
  "bench_smart_mirror"
  "bench_smart_mirror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smart_mirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
