# Empty dependencies file for bench_fig2_form_factors.
# This may be replaced when dependencies are built.
