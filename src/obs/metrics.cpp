#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vedliot::obs {

Histogram::Histogram(double lo, double hi, std::size_t buckets) : lo_(lo), hi_(hi) {
  VEDLIOT_CHECK(hi > lo, "histogram needs hi > lo");
  VEDLIOT_CHECK(buckets >= 1, "histogram needs at least one bucket");
  counts_.assign(buckets, 0);
}

void Histogram::add(double x) {
  const double w = bucket_width();
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / w));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
  sum_ += x;
  if (total_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double Histogram::percentile(double p) const {
  VEDLIOT_CHECK(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  if (total_ == 0) return 0.0;
  // Target rank in [0, total-1] with linear interpolation, matching
  // stats::percentile's convention on raw samples.
  const double rank = p / 100.0 * static_cast<double>(total_ - 1);
  double seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double first = seen;                                 // rank of first sample here
    const double last = seen + static_cast<double>(counts_[i]) - 1;  // rank of last
    if (rank <= last) {
      const double bucket_lo = lo_ + static_cast<double>(i) * bucket_width();
      const double frac = counts_[i] > 1
                              ? (rank - first) / static_cast<double>(counts_[i] - 1)
                              : 0.5;
      const double v = bucket_lo + frac * bucket_width();
      return std::clamp(v, min_, max_);
    }
    seen += static_cast<double>(counts_[i]);
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) { return counters_[name]; }

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                      std::size_t buckets) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(lo, hi, buckets)).first->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace vedliot::obs
