#include "opt/huffman.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace vedliot::opt {

void BitWriter::put(std::uint32_t bits, int count) {
  VEDLIOT_CHECK(count >= 0 && count <= 32, "BitWriter count out of range");
  for (int i = count - 1; i >= 0; --i) {
    const int bit = (bits >> i) & 1;
    if (bits_ % 8 == 0) bytes_.push_back(0);
    if (bit) bytes_.back() |= static_cast<std::uint8_t>(1u << (7 - bits_ % 8));
    ++bits_;
  }
}

int BitReader::get() {
  VEDLIOT_CHECK(pos_ / 8 < bytes_.size(), "BitReader read past end");
  const int bit = (bytes_[pos_ / 8] >> (7 - pos_ % 8)) & 1;
  ++pos_;
  return bit;
}

HuffmanCoder::HuffmanCoder(const std::map<std::uint32_t, std::uint64_t>& freqs) {
  VEDLIOT_CHECK(!freqs.empty(), "HuffmanCoder requires at least one symbol");

  struct QEntry {
    std::uint64_t freq;
    std::int32_t node;
    bool operator>(const QEntry& o) const {
      return freq > o.freq || (freq == o.freq && node > o.node);
    }
  };
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;

  for (const auto& [sym, freq] : freqs) {
    TreeNode leaf;
    leaf.leaf = true;
    leaf.symbol = sym;
    tree_.push_back(leaf);
    pq.push({freq, static_cast<std::int32_t>(tree_.size() - 1)});
  }
  if (tree_.size() == 1) {
    // Degenerate single-symbol alphabet: use a 1-bit code.
    root_ = 0;
    codes_[tree_[0].symbol] = {0, 1};
    return;
  }
  while (pq.size() > 1) {
    const QEntry a = pq.top();
    pq.pop();
    const QEntry b = pq.top();
    pq.pop();
    TreeNode inner;
    inner.left = a.node;
    inner.right = b.node;
    tree_.push_back(inner);
    pq.push({a.freq + b.freq, static_cast<std::int32_t>(tree_.size() - 1)});
  }
  root_ = pq.top().node;

  // DFS to assign codes.
  struct Frame {
    std::int32_t node;
    std::uint32_t bits;
    int depth;
  };
  std::vector<Frame> stack{{root_, 0, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const TreeNode& n = tree_[static_cast<std::size_t>(f.node)];
    if (n.leaf) {
      codes_[n.symbol] = {f.bits, std::max(f.depth, 1)};
      continue;
    }
    stack.push_back({n.left, f.bits << 1, f.depth + 1});
    stack.push_back({n.right, (f.bits << 1) | 1u, f.depth + 1});
  }
}

std::vector<std::uint8_t> HuffmanCoder::encode(const std::vector<std::uint32_t>& symbols,
                                               std::size_t* bit_count) const {
  BitWriter w;
  for (std::uint32_t s : symbols) {
    auto it = codes_.find(s);
    if (it == codes_.end()) throw NotFound("symbol not in Huffman alphabet");
    w.put(it->second.bits, it->second.length);
  }
  if (bit_count) *bit_count = w.bit_count();
  return w.bytes();
}

std::vector<std::uint32_t> HuffmanCoder::decode(const std::vector<std::uint8_t>& bytes,
                                                std::size_t n) const {
  std::vector<std::uint32_t> out;
  out.reserve(n);
  BitReader r(bytes);
  const bool degenerate = tree_.size() == 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (degenerate) {
      r.get();
      out.push_back(tree_[0].symbol);
      continue;
    }
    std::int32_t node = root_;
    while (!tree_[static_cast<std::size_t>(node)].leaf) {
      node = r.get() ? tree_[static_cast<std::size_t>(node)].right
                     : tree_[static_cast<std::size_t>(node)].left;
    }
    out.push_back(tree_[static_cast<std::size_t>(node)].symbol);
  }
  return out;
}

std::uint64_t HuffmanCoder::encoded_bits(const std::map<std::uint32_t, std::uint64_t>& freqs) const {
  std::uint64_t bits = 0;
  for (const auto& [sym, freq] : freqs) {
    auto it = codes_.find(sym);
    if (it == codes_.end()) throw NotFound("symbol not in Huffman alphabet");
    bits += freq * static_cast<std::uint64_t>(it->second.length);
  }
  return bits;
}

}  // namespace vedliot::opt
