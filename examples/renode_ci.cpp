// Functional-simulation CI (Sec. II-B: Renode used "for interactive
// development of accelerator prototypes and within a Continuous
// Integration environment").
//
// A firmware image for the CFU-equipped core is exercised by the test
// bench exactly like a CI job would: boot banner over UART, a DL kernel on
// the SIMD CFU, a periodic timer interrupt heartbeat, memory watchpoints
// on the result buffer, and a pass/fail report at the end.
//
// Build & run:  ./build/examples/renode_ci

#include <cstdio>
#include <memory>

#include "sim/testbench.hpp"
#include "util/rng.hpp"

using namespace vedliot;
using namespace vedliot::sim;

namespace {

/// Firmware: print "BOOT", arm a timer tick, run an int8 dot product on the
/// SIMD CFU, store the result, print "DONE".
Assembler firmware() {
  Assembler a(kRamBase);
  const int handler = a.new_label();
  const int main_entry = a.new_label();
  a.j(main_entry);

  a.bind(handler);  // timer tick: bump the heartbeat counter in s11.
  // The ISR runs without a stack, so it only touches registers reserved for
  // it (s8/s9/s11) — clobbering the main loop's temporaries would corrupt
  // the in-flight kernel.
  a.addi(s11, s11, 1);
  a.li(s8, static_cast<std::int32_t>(kTimerBase));
  a.lw(s9, s8, 0);
  a.addi(s9, s9, 500);
  a.sw(s9, s8, 8);
  a.sw(x0, s8, 12);
  a.mret();

  a.bind(main_entry);
  // UART banner.
  a.li(t0, static_cast<std::int32_t>(kUartBase));
  for (char ch : std::string("BOOT\n")) {
    a.li(t1, ch);
    a.sw(t1, t0, 0);
  }
  // Timer interrupt setup.
  a.li(s11, 0);
  a.li(t0, static_cast<std::int32_t>(kTimerBase));
  a.lw(t1, t0, 0);
  a.addi(t1, t1, 500);
  a.sw(t1, t0, 8);
  a.sw(x0, t0, 12);
  a.li(t1, static_cast<std::int32_t>(kRamBase + 4));
  a.csrrw(x0, 0x305, t1);
  a.li(t1, 0x80);
  a.csrrw(x0, 0x304, t1);
  a.li(t1, 0x8);
  a.csrrw(x0, 0x300, t1);

  // DL kernel: packed int8 dot product via the SIMD CFU over 64 words.
  const std::uint32_t data = kRamBase + 0x8000;
  a.li(s0, static_cast<std::int32_t>(data));
  a.li(s2, static_cast<std::int32_t>(data + 0x1000));
  a.li(s1, 64);
  a.cfu(1, 0, a0, x0, x0);
  const int loop = a.new_label();
  const int done = a.new_label();
  a.bind(loop);
  a.beq(s1, x0, done);
  a.lw(t1, s0, 0);
  a.lw(t2, s2, 0);
  a.cfu(4, 0, x0, t1, t2);
  a.addi(s0, s0, 4);
  a.addi(s2, s2, 4);
  a.addi(s1, s1, -1);
  a.j(loop);
  a.bind(done);
  a.cfu(2, 0, a0, x0, x0);
  // Store the result where the host checks it.
  a.li(t3, static_cast<std::int32_t>(kRamBase + 0xA000));
  a.sw(a0, t3, 0);
  a.li(t0, static_cast<std::int32_t>(kUartBase));
  for (char ch : std::string("DONE\n")) {
    a.li(t1, ch);
    a.sw(t1, t0, 0);
  }
  a.ecall();
  return a;
}

}  // namespace

int main() {
  std::printf("Renode-style CI run for the CFU firmware\n\n");

  Machine machine;
  machine.attach_cfu(std::make_shared<MacCfu>());

  // Host side: load the input vectors and compute the expected result.
  std::int32_t expected = 0;
  Rng rng(77);
  for (int i = 0; i < 64; ++i) {
    std::uint32_t xw = 0, ww = 0;
    for (int b = 0; b < 4; ++b) {
      const auto xv = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
      const auto wv = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
      expected += static_cast<std::int32_t>(xv) * wv;
      xw |= (static_cast<std::uint32_t>(xv) & 0xFF) << (8 * b);
      ww |= (static_cast<std::uint32_t>(wv) & 0xFF) << (8 * b);
    }
    machine.bus().write32(kRamBase + 0x8000 + static_cast<std::uint32_t>(4 * i), xw);
    machine.bus().write32(kRamBase + 0x9000 + static_cast<std::uint32_t>(4 * i), ww);
  }

  TestBench bench(machine);
  bench.watch(kRamBase + 0xA000, 16);  // result buffer watchpoint

  auto fw = firmware();
  machine.load_program(fw);

  const bool booted = bench.run_until_uart_contains("BOOT", 100'000);
  std::printf("boot banner observed: %s\n", booted ? "yes" : "NO");
  bench.run(1'000'000);

  bench.expect_uart("DONE", "kernel completion banner");
  bench.expect_halt(HaltReason::kEcall, "clean firmware exit");
  bench.expect_reg(a0, static_cast<std::uint32_t>(expected), "CFU dot product result");
  bench.expect_stores_to(kRamBase + 0xA000, 16, 1, "result written to the output buffer");
  bench.expect_max_cycles(50'000, "cycle budget");

  std::printf("\n%s", bench.report().c_str());
  std::printf("timer heartbeats observed: %u\n", machine.cpu().reg(s11));
  std::printf("instructions: %llu, cycles: %llu\n",
              static_cast<unsigned long long>(machine.cpu().instructions_retired()),
              static_cast<unsigned long long>(machine.cpu().cycles()));
  return bench.all_passed() ? 0 : 1;
}
